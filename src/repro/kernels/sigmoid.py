"""Sigmoid kernel: Φ(x, y) = tanh(γ·<x, y> + coef0).

Not positive semi-definite in general; the SMO α update falls back to
the ρ >= 0 handling (Platt's bound-objective comparison) when needed.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel


class SigmoidKernel(Kernel):
    name = "sigmoid"

    def __init__(self, gamma: float = 1.0, coef0: float = 0.0):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norm_b: float
    ) -> np.ndarray:
        return np.tanh(self.gamma * np.asarray(dots) + self.coef0)

    def block_from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norms_b: np.ndarray
    ) -> np.ndarray:
        return np.tanh(self.gamma * np.asarray(dots) + self.coef0)

    def self_value(self, norm_sq: float) -> float:
        return float(np.tanh(self.gamma * norm_sq + self.coef0))

    def params(self) -> dict:
        return {"gamma": self.gamma, "coef0": self.coef0}
