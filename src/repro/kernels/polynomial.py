"""Polynomial kernel: Φ(x, y) = (γ·<x, y> + coef0)^degree."""

from __future__ import annotations

import numpy as np

from .base import Kernel


class PolynomialKernel(Kernel):
    name = "poly"

    def __init__(self, degree: int = 3, gamma: float = 1.0, coef0: float = 0.0):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norm_b: float
    ) -> np.ndarray:
        return (self.gamma * np.asarray(dots) + self.coef0) ** self.degree

    def block_from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norms_b: np.ndarray
    ) -> np.ndarray:
        return (self.gamma * np.asarray(dots) + self.coef0) ** self.degree

    def self_value(self, norm_sq: float) -> float:
        return float((self.gamma * norm_sq + self.coef0) ** self.degree)

    def params(self) -> dict:
        return {"degree": self.degree, "gamma": self.gamma, "coef0": self.coef0}
