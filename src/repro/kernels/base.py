"""Kernel function interface.

A kernel evaluates Φ(x, z) between samples.  The solvers only ever need
two shapes of evaluation, and both are vectorized:

- ``row_against_block``: Φ(x, x_i) for one sample against every row of a
  CSR block — the gradient-update hot path (Eq. 2) and the
  reconstruction inner loop (Alg. 3, line 5);
- ``pair``: Φ(x_i, x_j) for one pair — the ρ computation (Eq. 7).

For kernels that depend on ||x||² (RBF), callers pass precomputed squared
row norms so the hot path touches each nonzero exactly once.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..sparse.csr import CSRMatrix, sparse_sparse_dot

#: A sample exchanged between ranks: (indices, values, ||x||^2)
SampleRow = Tuple[np.ndarray, np.ndarray, float]


class Kernel(abc.ABC):
    """Base class for kernel functions Φ."""

    #: short identifier used by parameter dumps / registry lookups
    name: str = "abstract"

    @abc.abstractmethod
    def from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norm_b: float
    ) -> np.ndarray:
        """Map raw inner products <x_i, z> to kernel values Φ(x_i, z).

        ``norms_a`` are ||x_i||² for the block rows, ``norm_b`` is ||z||².
        Kernels that ignore norms (linear, polynomial, sigmoid) may ignore
        those arguments.
        """

    def row_against_block(
        self,
        block: CSRMatrix,
        block_norms_sq: np.ndarray,
        idx: np.ndarray,
        vals: np.ndarray,
        norm_sq: float,
    ) -> np.ndarray:
        """Φ(z, x_i) for every row i of ``block``; z = (idx, vals)."""
        dots = block.dot_sparse_vec(idx, vals)
        return self.from_dots(dots, block_norms_sq, norm_sq)

    def pair(self, a: SampleRow, b: SampleRow) -> float:
        """Φ between two sample rows."""
        ai, av, an = a
        bi, bv, bn = b
        dot = sparse_sparse_dot(ai, av, bi, bv)
        out = self.from_dots(
            np.asarray([dot]), np.asarray([an]), bn
        )
        return float(out[0])

    def self_value(self, norm_sq: float) -> float:
        """Φ(x, x) given ||x||²."""
        one = np.asarray([norm_sq])
        return float(self.from_dots(one, np.asarray([norm_sq]), norm_sq)[0])

    def diag(self, norms_sq: np.ndarray) -> np.ndarray:
        """Φ(x_i, x_i) for a whole block, given squared row norms."""
        return np.asarray([self.self_value(float(n)) for n in norms_sq])

    def params(self) -> dict:
        """Hyperparameters, for reports and model serialization."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"
