"""Kernel function interface.

A kernel evaluates Φ(x, z) between samples.  The solvers need three
shapes of evaluation, all vectorized:

- ``block``: Φ(a_i, b_j) for every row pair of two CSR blocks — one
  tiled CSR×CSRᵀ product plus one vectorized kernel map.  This is the
  blocked kernel-evaluation engine behind the reconstruction fold
  (Alg. 3), batch prediction, and the baseline's cache fills;
- ``row_against_block``: Φ(x, x_i) for one sample against every row of a
  CSR block — the gradient-update hot path (Eq. 2);
- ``pair``: Φ(x_i, x_j) for one pair — the ρ computation (Eq. 7).

Column ``j`` of ``block(A, na, B, nb)`` is bitwise identical to
``row_against_block(A, na, *B.row(j), nb[j])`` — every kernel map is a
pure elementwise expression, so batching changes neither values nor the
solvers' deterministic iteration sequences.

For kernels that depend on ||x||² (RBF), callers pass precomputed squared
row norms so the hot path touches each nonzero exactly once.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix, sparse_sparse_dot

#: A sample exchanged between ranks: (indices, values, ||x||^2)
SampleRow = Tuple[np.ndarray, np.ndarray, float]


class Kernel(abc.ABC):
    """Base class for kernel functions Φ."""

    #: short identifier used by parameter dumps / registry lookups
    name: str = "abstract"

    @abc.abstractmethod
    def from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norm_b: float
    ) -> np.ndarray:
        """Map raw inner products <x_i, z> to kernel values Φ(x_i, z).

        ``norms_a`` are ||x_i||² for the block rows, ``norm_b`` is ||z||².
        Kernels that ignore norms (linear, polynomial, sigmoid) may ignore
        those arguments.
        """

    def block(
        self,
        A: CSRMatrix,
        norms_a: np.ndarray,
        B: CSRMatrix,
        norms_b: np.ndarray,
        *,
        tile_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Φ(a_i, b_j) for every row pair, as a dense ``(A.nrows, B.nrows)``
        array — the batched counterpart of ``row_against_block``.

        One tiled SpGEMM produces all the inner products and one
        vectorized map applies the kernel, replacing ``B.nrows`` Python
        iterations with a handful of numpy calls.  ``tile_rows`` bounds
        the SpGEMM scratch (see :meth:`CSRMatrix.dot_csr_t`).
        """
        if tile_rows is None:
            dots = A.dot_csr_t(B)
        else:
            dots = A.dot_csr_t(B, tile_rows=tile_rows)
        return self.block_from_dots(
            dots,
            np.asarray(norms_a, dtype=np.float64),
            np.asarray(norms_b, dtype=np.float64),
        )

    def block_from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norms_b: np.ndarray
    ) -> np.ndarray:
        """Map a ``(len(norms_a), len(norms_b))`` slab of inner products to
        kernel values.  The default broadcasts :meth:`from_dots`; kernels
        override it with an explicit vectorized expression.
        """
        return self.from_dots(dots, norms_a[:, None], norms_b[None, :])

    def row_against_block(
        self,
        block: CSRMatrix,
        block_norms_sq: np.ndarray,
        idx: np.ndarray,
        vals: np.ndarray,
        norm_sq: float,
    ) -> np.ndarray:
        """Φ(z, x_i) for every row i of ``block``; z = (idx, vals)."""
        dots = block.dot_sparse_vec(idx, vals)
        return self.from_dots(dots, block_norms_sq, norm_sq)

    def pair(self, a: SampleRow, b: SampleRow) -> float:
        """Φ between two sample rows."""
        ai, av, an = a
        bi, bv, bn = b
        dot = sparse_sparse_dot(ai, av, bi, bv)
        out = self.from_dots(
            np.asarray([dot]), np.asarray([an]), bn
        )
        return float(out[0])

    def self_value(self, norm_sq: float) -> float:
        """Φ(x, x) given ||x||²."""
        one = np.asarray([norm_sq])
        return float(self.from_dots(one, np.asarray([norm_sq]), norm_sq)[0])

    def diag(self, norms_sq: np.ndarray) -> np.ndarray:
        """Φ(x_i, x_i) for a whole block, given squared row norms.

        Since <x, x> = ||x||², the diagonal is one vectorized
        ``from_dots`` call over the whole norms vector (dots, norms_a and
        norm_b all equal ||x||² elementwise).
        """
        norms_sq = np.asarray(norms_sq, dtype=np.float64)
        return self.from_dots(norms_sq, norms_sq, norms_sq)

    def params(self) -> dict:
        """Hyperparameters, for reports and model serialization."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"
