"""``repro.kernels`` — kernel functions and the baseline's row cache."""

from .base import Kernel, SampleRow
from .cache import KernelColumnCache, KernelRowCache
from .linear import LinearKernel
from .polynomial import PolynomialKernel
from .rbf import RBFKernel
from .sigmoid import SigmoidKernel

_KERNELS = {
    "rbf": RBFKernel,
    "linear": LinearKernel,
    "poly": PolynomialKernel,
    "sigmoid": SigmoidKernel,
}


def make_kernel(name: str, **params) -> Kernel:
    """Instantiate a kernel by name (``rbf``/``linear``/``poly``/``sigmoid``)."""
    try:
        cls = _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(_KERNELS)}"
        ) from None
    return cls(**params)


__all__ = [
    "Kernel",
    "KernelColumnCache",
    "KernelRowCache",
    "LinearKernel",
    "PolynomialKernel",
    "RBFKernel",
    "SampleRow",
    "SigmoidKernel",
    "make_kernel",
]
