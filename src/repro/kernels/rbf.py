"""Gaussian (RBF) kernel — the kernel the paper evaluates with.

Φ(x, y) = exp(-γ·||x − y||²), with the paper's Table III reporting the
kernel width σ²; we take γ = 1/σ² (libsvm's ``-g`` convention applied to
the reported widths)."""

from __future__ import annotations

import numpy as np

from .base import Kernel


class RBFKernel(Kernel):
    """Gaussian kernel with parameter ``gamma``."""

    name = "rbf"

    def __init__(self, gamma: float):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)

    @classmethod
    def from_sigma_sq(cls, sigma_sq: float) -> "RBFKernel":
        """Construct from the paper's kernel width σ² (γ = 1/σ²)."""
        if sigma_sq <= 0:
            raise ValueError(f"sigma^2 must be positive, got {sigma_sq}")
        return cls(1.0 / sigma_sq)

    def from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norm_b: float
    ) -> np.ndarray:
        dist_sq = norms_a + norm_b - 2.0 * dots
        # guard tiny negative values from floating-point cancellation
        np.maximum(dist_sq, 0.0, out=dist_sq)
        return np.exp(-self.gamma * dist_sq)

    def block_from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norms_b: np.ndarray
    ) -> np.ndarray:
        # same elementwise expression (and op order) as from_dots per
        # column, so the slab is bitwise identical to B.nrows
        # row-at-a-time calls; in-place ops just avoid slab-sized temps
        dist_sq = norms_a[:, None] + norms_b[None, :]
        dist_sq -= 2.0 * dots
        np.maximum(dist_sq, 0.0, out=dist_sq)
        dist_sq *= -self.gamma
        return np.exp(dist_sq, out=dist_sq)

    def self_value(self, norm_sq: float) -> float:
        return 1.0

    def diag(self, norms_sq: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(norms_sq).shape[0])

    def params(self) -> dict:
        return {"gamma": self.gamma}
