"""Linear kernel: Φ(x, y) = <x, y>.

The paper's infrastructure "allows us to plugin other kernels (such as
linear, polynomial)" (§V-C); this is the pluggable linear variant.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel


class LinearKernel(Kernel):
    name = "linear"

    def from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norm_b: float
    ) -> np.ndarray:
        return np.asarray(dots, dtype=np.float64)

    def block_from_dots(
        self, dots: np.ndarray, norms_a: np.ndarray, norms_b: np.ndarray
    ) -> np.ndarray:
        return np.asarray(dots, dtype=np.float64)

    def self_value(self, norm_sq: float) -> float:
        return float(norm_sq)

    def diag(self, norms_sq: np.ndarray) -> np.ndarray:
        return np.asarray(norms_sq, dtype=np.float64).copy()
