"""LRU kernel-row cache.

§III-A argues the proposed distributed solver should avoid a kernel cache
entirely; the cache lives here for the *libsvm-style baseline*, which is
given "a compute node's entire memory as a kernel cache" (§V-A) — the
best case for the baseline.

Rows are keyed by sample index and bounded by a byte budget with
least-recently-used eviction; hit/miss counters feed the baseline's
performance model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np


class KernelRowCache:
    """Byte-bounded LRU cache of full kernel rows."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, index: int) -> Optional[np.ndarray]:
        """Return the cached row (marking it most-recently-used) or None."""
        row = self._rows.get(index)
        if row is None:
            self.misses += 1
            return None
        self._rows.move_to_end(index)
        self.hits += 1
        return row

    def put(self, index: int, row: np.ndarray) -> None:
        """Insert a row, evicting LRU entries to respect the byte budget."""
        if index in self._rows:
            self._bytes -= self._rows[index].nbytes
            del self._rows[index]
        if row.nbytes > self.capacity_bytes:
            # row cannot fit at all: legal, just never cached
            return
        while self._bytes + row.nbytes > self.capacity_bytes and self._rows:
            _, old = self._rows.popitem(last=False)
            self._bytes -= old.nbytes
            self.evictions += 1
        self._rows[index] = row
        self._bytes += row.nbytes

    def simulate_misses(self, keys, row_nbytes) -> list:
        """Which of ``keys`` would miss if fetched via get/put in order?

        Pure lookahead for batched row production: replays the exact
        get-then-put-on-miss sequence (recency updates, evictions, the
        too-big-to-cache rule) against a shadow of the current state.
        ``row_nbytes`` is either one uniform size for every newly
        produced row, or a per-key callable ``key -> nbytes`` — the
        active set shrinks over a solve, so post-shrink columns are
        narrower than their predecessors and a uniform size would
        mispredict evictions.  Nothing is mutated; counters are
        untouched.
        """
        size_of = row_nbytes if callable(row_nbytes) else (lambda _k: row_nbytes)
        sizes = {k: r.nbytes for k, r in self._rows.items()}  # LRU→MRU order
        used = self._bytes
        miss = []
        for k in keys:
            k = int(k)
            if k in sizes:
                sizes[k] = sizes.pop(k)  # move_to_end
                continue
            miss.append(k)
            nb = int(size_of(k))
            if nb > self.capacity_bytes:
                continue
            while used + nb > self.capacity_bytes and sizes:
                used -= sizes.pop(next(iter(sizes)))
            sizes[k] = nb
            used += nb
        return miss

    def invalidate(self) -> None:
        self._rows.clear()
        self._bytes = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._rows),
            "bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class KernelColumnCache:
    """Per-rank, byte-budgeted cache of *training-side* kernel columns.

    Where :class:`KernelRowCache` serves the libsvm baseline's full
    rows, this serves the distributed engines: one entry is
    Φ(sample, this rank's active rows), keyed by the sample's global
    index.  Two tiers:

    - a small pinned workspace (``pinned_slots`` most-recent entries,
      budget-exempt) holding the in-flight working-set columns — the
      second-order election computes the up column one half-step before
      the γ update consumes it, and planning-ahead reuse re-steps the
      previous pair, so these few columns are hot regardless of budget;
    - a byte-budgeted LRU (a :class:`KernelRowCache` underneath) for
      everything that survives longer, sized by ``--kernel-cache-mb``.

    Columns are only valid for one active-set *epoch*: a shrink,
    reconstruction or compaction changes which rows (and how many) a
    column spans, so :meth:`bump_epoch` drops everything.  Hit/miss
    counters count column *requests* (they feed ``SolveTrace`` and the
    CLI report); the byte-level stats of the LRU tier are exposed via
    :meth:`stats`.
    """

    def __init__(self, capacity_bytes: int, pinned_slots: int = 4):
        if pinned_slots < 2:
            raise ValueError(
                f"pinned_slots must hold at least the working pair, "
                f"got {pinned_slots}"
            )
        self._lru = KernelRowCache(capacity_bytes)
        self._pinned: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.pinned_slots = int(pinned_slots)
        self.epoch = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity_bytes(self) -> int:
        return self._lru.capacity_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: int) -> Optional[np.ndarray]:
        col = self._pinned.get(key)
        if col is not None:
            self._pinned.move_to_end(key)
            self.hits += 1
            return col
        col = self._lru.get(key)
        if col is not None:
            self.hits += 1
        else:
            self.misses += 1
        return col

    def put(self, key: int, col: np.ndarray) -> None:
        """Record a freshly produced column (pinned + LRU tiers)."""
        self._pinned[key] = col
        self._pinned.move_to_end(key)
        while len(self._pinned) > self.pinned_slots:
            self._pinned.popitem(last=False)
        self._lru.put(key, col)

    def bump_epoch(self) -> None:
        """Active set changed (shrink / reconstruction / compaction):
        every cached column spans the wrong rows now."""
        self.epoch += 1
        self._pinned.clear()
        self._lru.invalidate()

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "epoch": self.epoch,
            "pinned_entries": len(self._pinned),
            "lru": self._lru.stats(),
        }
