"""LRU kernel-row cache.

§III-A argues the proposed distributed solver should avoid a kernel cache
entirely; the cache lives here for the *libsvm-style baseline*, which is
given "a compute node's entire memory as a kernel cache" (§V-A) — the
best case for the baseline.

Rows are keyed by sample index and bounded by a byte budget with
least-recently-used eviction; hit/miss counters feed the baseline's
performance model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np


class KernelRowCache:
    """Byte-bounded LRU cache of full kernel rows."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, index: int) -> Optional[np.ndarray]:
        """Return the cached row (marking it most-recently-used) or None."""
        row = self._rows.get(index)
        if row is None:
            self.misses += 1
            return None
        self._rows.move_to_end(index)
        self.hits += 1
        return row

    def put(self, index: int, row: np.ndarray) -> None:
        """Insert a row, evicting LRU entries to respect the byte budget."""
        if index in self._rows:
            self._bytes -= self._rows[index].nbytes
            del self._rows[index]
        if row.nbytes > self.capacity_bytes:
            # row cannot fit at all: legal, just never cached
            return
        while self._bytes + row.nbytes > self.capacity_bytes and self._rows:
            _, old = self._rows.popitem(last=False)
            self._bytes -= old.nbytes
            self.evictions += 1
        self._rows[index] = row
        self._bytes += row.nbytes

    def simulate_misses(self, keys, row_nbytes: int) -> list:
        """Which of ``keys`` would miss if fetched via get/put in order?

        Pure lookahead for batched row production: replays the exact
        get-then-put-on-miss sequence (recency updates, evictions, the
        too-big-to-cache rule) against a shadow of the current state,
        assuming every newly produced row occupies ``row_nbytes``.
        Nothing is mutated; counters are untouched.
        """
        sizes = {k: r.nbytes for k, r in self._rows.items()}  # LRU→MRU order
        used = self._bytes
        miss = []
        for k in keys:
            k = int(k)
            if k in sizes:
                sizes[k] = sizes.pop(k)  # move_to_end
                continue
            miss.append(k)
            if row_nbytes > self.capacity_bytes:
                continue
            while used + row_nbytes > self.capacity_bytes and sizes:
                used -= sizes.pop(next(iter(sizes)))
            sizes[k] = row_nbytes
            used += row_nbytes
        return miss

    def invalidate(self) -> None:
        self._rows.clear()
        self._bytes = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._rows),
            "bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
