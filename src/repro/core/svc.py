"""High-level sklearn-style classifier facade.

Wraps the distributed solver with label mapping, kernel construction
from scalar hyperparameters and the familiar ``fit``/``predict``/
``score`` interface::

    from repro.core import SVC

    clf = SVC(C=10.0, sigma_sq=4.0, heuristic="multi5pc", nprocs=8)
    clf.fit(X_train, y_train)
    acc = clf.score(X_test, y_test)
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import RunConfig, resolve_config
from ..kernels import Kernel, RBFKernel, make_kernel
from ..perfmodel.machine import MachineSpec
from ..sparse.csr import CSRMatrix
from .params import SVMParams
from .shrinking import Heuristic, get_heuristic
from .solver import FitResult, fit_parallel


class NotFittedError(RuntimeError):
    """predict/score called before fit."""


class SVC:
    """Two-class support vector classifier on the simulated cluster.

    Parameters
    ----------
    C:
        Box constraint.
    kernel:
        Kernel name (``"rbf"``/``"linear"``/``"poly"``/``"sigmoid"``) or a
        :class:`~repro.kernels.Kernel` instance.
    gamma, sigma_sq:
        RBF width — give either γ directly or the paper's σ² (γ = 1/σ²).
    eps:
        SMO stopping tolerance ε (Eq. 5).
    heuristic:
        A Table II heuristic name (``"original"``, ``"single5pc"``, ...,
        ``"multi50pc"``) or a :class:`~repro.core.shrinking.Heuristic`.
    nprocs:
        Simulated MPI process count.
    machine:
        Machine model for virtual-time accounting (default: the paper's
        Cascade testbed).
    max_iter:
        Iteration safety bound.
    class_weight:
        ``None`` (unweighted), a ``{label: weight}`` dict in the
        original label space, or ``"balanced"`` (weights inversely
        proportional to class frequencies, as in sklearn/libsvm).
    faults:
        Deterministic fault-injection plan for the simulated runtime
        (a :class:`~repro.mpi.faults.FaultPlan` or its spec string,
        e.g. ``"seed=7;drop:src=0,dest=1,tag=3,nth=1"``).  A fit that
        completes under injection is bitwise identical to the
        fault-free fit.
    engine:
        Iteration engine: ``"packed"`` (fused election Allreduce,
        compacted active-set state, owner-rooted pair broadcast) or
        ``"legacy"``; ``None`` defers to the ``REPRO_SVM_ENGINE``
        environment variable (default ``"packed"``).  Both engines
        produce bitwise-identical models.
    wss:
        Working-set-selection policy: ``"mvp"`` (default; bitwise
        identical to the historical behaviour), ``"second_order"``
        (LIBSVM-style WSS2) or ``"planning_ahead"`` (second-order plus
        zero-communication pair reuse); ``None`` defers to the
        ``REPRO_SVM_WSS`` environment variable.  Non-default policies
        converge in fewer iterations to a model equal within solver
        tolerance.
    kernel_cache_mb:
        Per-rank training-side kernel-column cache budget in MiB
        (``0`` disables; see :class:`~repro.kernels.KernelColumnCache`).
    comm:
        Collective suite: ``"flat"`` or ``"hierarchical"`` (topology-
        aware two-level collectives); ``None`` defers to the
        ``REPRO_SVM_COMM`` environment variable (default ``"flat"``).
        Both suites produce bitwise-identical models.
    dc:
        Divide-and-conquer outer loop (:mod:`repro.core.dcsvm`): a
        :class:`~repro.core.dcsvm.DCConfig`, a spec string such as
        ``"clusters=4,levels=2"``, or an int cluster count.  The
        subproblem duals warm-start the exact solve, so the final model
        is still tolerance-certified exact.  ``None`` (default) trains
        cold.
    config:
        A :class:`~repro.config.RunConfig` bundling the run-time knobs
        (``nprocs``, ``heuristic``, ``engine``, ``machine``, ``faults``,
        tracing).  The individual keywords above remain as back-compat
        shims — when passed explicitly they override the config's fields
        and emit a :class:`DeprecationWarning`.  New call sites should
        pass ``config=`` (build overrides with ``cfg.replace(...)``).
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: Union[str, Kernel] = "rbf",
        gamma: Optional[float] = None,
        sigma_sq: Optional[float] = None,
        eps: float = 1e-3,
        heuristic: Optional[Union[str, Heuristic]] = None,
        nprocs: Optional[int] = None,
        machine: Optional[MachineSpec] = None,
        max_iter: int = 10_000_000,
        shrink_eps_factor: float = 10.0,
        class_weight: Optional[Union[dict, str]] = None,
        faults=None,
        engine: Optional[str] = None,
        wss: Optional[str] = None,
        kernel_cache_mb: Optional[float] = None,
        comm: Optional[str] = None,
        dc=None,
        config: Optional[RunConfig] = None,
    ) -> None:
        if gamma is not None and sigma_sq is not None:
            raise ValueError("give either gamma or sigma_sq, not both")
        cfg = resolve_config(
            config,
            _entry="SVC",
            heuristic=heuristic,
            nprocs=nprocs,
            machine=machine,
            faults=faults,
            engine=engine,
            wss=wss,
            kernel_cache_mb=kernel_cache_mb,
            comm=comm,
            dc=dc,
        )
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.sigma_sq = sigma_sq
        self.eps = eps
        self.heuristic = cfg.heuristic
        self.nprocs = cfg.nprocs
        self.machine = cfg.machine
        self.max_iter = max_iter
        self.shrink_eps_factor = shrink_eps_factor
        self.class_weight = class_weight
        self.faults = cfg.faults
        self.engine = cfg.engine
        self.wss = cfg.wss
        self.kernel_cache_mb = cfg.kernel_cache_mb
        self.comm = cfg.comm
        self.dc = cfg.dc
        self.config = cfg

        self.model_ = None
        self.fit_result_: Optional[FitResult] = None
        self.classes_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _build_kernel(self) -> Kernel:
        if isinstance(self.kernel, Kernel):
            return self.kernel
        name = str(self.kernel)
        if name == "rbf":
            if self.sigma_sq is not None:
                return RBFKernel.from_sigma_sq(self.sigma_sq)
            return RBFKernel(self.gamma if self.gamma is not None else 1.0)
        kwargs = {}
        if self.gamma is not None:
            kwargs["gamma"] = self.gamma
        return make_kernel(name, **kwargs)

    def _class_weights(self, y: np.ndarray) -> tuple:
        """(weight_neg, weight_pos) for classes_ = (neg_label, pos_label)."""
        if self.class_weight is None:
            return 1.0, 1.0
        neg_label, pos_label = self.classes_
        if self.class_weight == "balanced":
            n = y.shape[0]
            n_pos = int(np.count_nonzero(y == pos_label))
            n_neg = n - n_pos
            if n_pos == 0 or n_neg == 0:
                raise ValueError("balanced weights need both classes present")
            return n / (2.0 * n_neg), n / (2.0 * n_pos)
        if isinstance(self.class_weight, dict):
            try:
                return (
                    float(self.class_weight[neg_label]),
                    float(self.class_weight[pos_label]),
                )
            except KeyError as exc:
                raise ValueError(
                    f"class_weight missing an entry for label {exc.args[0]!r}"
                ) from None
        raise ValueError(
            f"class_weight must be None, 'balanced' or a dict; "
            f"got {self.class_weight!r}"
        )

    def _params(self, weight_neg: float = 1.0, weight_pos: float = 1.0) -> SVMParams:
        return SVMParams(
            C=self.C,
            kernel=self._build_kernel(),
            eps=self.eps,
            max_iter=self.max_iter,
            shrink_eps_factor=self.shrink_eps_factor,
            weight_pos=weight_pos,
            weight_neg=weight_neg,
        )

    def _run_config(self) -> RunConfig:
        """The effective RunConfig, folding in any ``set_params`` edits."""
        return self.config.replace(
            heuristic=self.heuristic,
            nprocs=self.nprocs,
            machine=self.machine,
            faults=self.faults,
            engine=self.engine,
            wss=self.wss,
            kernel_cache_mb=self.kernel_cache_mb,
            comm=self.comm,
            dc=self.dc,
        )

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "SVC":
        """Train on ``(X, y)``; y may use any two label values."""
        y = np.asarray(y)
        classes = np.unique(y)
        if classes.size != 2:
            raise ValueError(
                f"need exactly two classes, got {classes.size}: {classes!r}"
            )
        # map to −1/+1 with the larger label as +1 (sklearn convention)
        self.classes_ = classes
        y_signed = np.where(y == classes[1], 1.0, -1.0)
        weight_neg, weight_pos = self._class_weights(y)
        self.fit_result_ = fit_parallel(
            X,
            y_signed,
            self._params(weight_neg, weight_pos),
            config=self._run_config().replace(
                heuristic=get_heuristic(self.heuristic)
            ),
        )
        self.model_ = self.fit_result_.model
        return self

    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise NotFittedError("call fit() before predict/score")

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        return self.model_.decision_function(X)

    def predict(self, X) -> np.ndarray:
        """Predicted labels in the original label space."""
        self._check_fitted()
        signed = self.model_.predict(X)
        return np.where(signed > 0, self.classes_[1], self.classes_[0])

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    # ------------------------------------------------------------------
    # fitted attributes (sklearn-flavoured)
    # ------------------------------------------------------------------
    @property
    def support_(self) -> np.ndarray:
        self._check_fitted()
        return self.model_.sv_indices

    @property
    def dual_coef_(self) -> np.ndarray:
        self._check_fitted()
        return self.model_.sv_coef

    @property
    def intercept_(self) -> float:
        self._check_fitted()
        return self.model_.b

    @property
    def n_iter_(self) -> int:
        self._check_fitted()
        return self.fit_result_.iterations

    @property
    def n_support_(self) -> int:
        self._check_fitted()
        return self.model_.n_sv

    def get_params(self) -> dict:
        return {
            "C": self.C,
            "kernel": self.kernel if isinstance(self.kernel, str) else self.kernel.name,
            "gamma": self.gamma,
            "sigma_sq": self.sigma_sq,
            "eps": self.eps,
            "heuristic": (
                self.heuristic
                if isinstance(self.heuristic, str)
                else self.heuristic.name
            ),
            "nprocs": self.nprocs,
            "max_iter": self.max_iter,
            "shrink_eps_factor": self.shrink_eps_factor,
            "class_weight": self.class_weight,
            "faults": self.faults,
            "engine": self.engine,
            "wss": self.wss,
            "kernel_cache_mb": self.kernel_cache_mb,
            "comm": self.comm,
            "dc": self.dc,
        }

    def set_params(self, **kwargs) -> "SVC":
        for k, v in kwargs.items():
            if not hasattr(self, k):
                raise ValueError(f"unknown parameter {k!r}")
            setattr(self, k, v)
        return self

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the fitted classifier (labels + model) to a JSON file.

        On top of the bit-exact :func:`~repro.core.model.save_model`
        format this records the original label space (``classes_`` with
        dtype) and the scalar hyperparameters, so :meth:`load` returns a
        classifier whose ``predict`` output is bitwise identical in the
        original labels.  Run-time-only knobs (``machine``, ``faults``)
        are not persisted — they describe the simulated cluster, not the
        model.
        """
        import json
        from pathlib import Path

        self._check_fitted()
        Path(path).write_text(
            json.dumps(self._to_jsonable()), encoding="utf-8"
        )

    def _to_jsonable(self) -> dict:
        from .model import model_to_jsonable

        cw = self.class_weight
        if isinstance(cw, dict):
            # JSON stringifies dict keys; a pair list keeps label types
            cw = {"pairs": [[k, float(v)] for k, v in cw.items()]}
        return {
            "format": "repro-svc",
            "version": 1,
            "classes": {
                "values": self.classes_.tolist(),
                "dtype": str(self.classes_.dtype),
            },
            "params": {
                "C": self.C,
                "gamma": self.gamma,
                "sigma_sq": self.sigma_sq,
                "eps": self.eps,
                "heuristic": (
                    self.heuristic
                    if isinstance(self.heuristic, str)
                    else self.heuristic.name
                ),
                "nprocs": self.nprocs,
                "max_iter": self.max_iter,
                "shrink_eps_factor": self.shrink_eps_factor,
                "class_weight": cw,
                "engine": self.engine,
                "dc": str(self.dc) if self.dc is not None else None,
            },
            "model": model_to_jsonable(self.model_),
        }

    @classmethod
    def load(cls, path) -> "SVC":
        """Load a classifier written by :meth:`save` (fitted, ready to
        predict; ``fit_result_`` is not persisted)."""
        import json
        from pathlib import Path

        return cls._from_jsonable(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    @classmethod
    def _from_jsonable(cls, doc: dict) -> "SVC":
        from .model import model_from_jsonable

        if doc.get("format") != "repro-svc":
            raise ValueError(
                f"not a repro-svc document (format={doc.get('format')!r})"
            )
        params = dict(doc["params"])
        cw = params.get("class_weight")
        if isinstance(cw, dict):
            params["class_weight"] = {k: v for k, v in cw["pairs"]}
        # run-time knobs travel through RunConfig, not the keyword shims
        run_knobs = {
            k: params.pop(k)
            for k in ("heuristic", "nprocs", "engine", "dc")
            if params.get(k) is not None
        }
        model = model_from_jsonable(doc["model"])
        clf = cls(
            kernel=model.kernel,
            config=RunConfig().merged(**run_knobs),
            **params,
        )
        clf.model_ = model
        clf.classes_ = np.asarray(
            doc["classes"]["values"], dtype=np.dtype(doc["classes"]["dtype"])
        )
        return clf
