"""Index-set classification (Eq. 4) — vectorized.

Every sample belongs to exactly one of I0..I4 depending on (y, α):

    I0 = {0 < α < C}                  (free / unbounded SVs)
    I1 = {y = +1, α = 0}
    I2 = {y = -1, α = C}
    I3 = {y = +1, α = C}
    I4 = {y = -1, α = 0}

β_up is min γ over I0 ∪ I1 ∪ I2 ("up-eligible"); β_low is max γ over
I0 ∪ I3 ∪ I4 ("low-eligible") — Eq. (3).
"""

from __future__ import annotations

import numpy as np

#: tolerance for α-at-bound tests, relative to C
_BOUND_RTOL = 1e-12

I0, I1, I2, I3, I4 = 0, 1, 2, 3, 4


def classify(alpha: np.ndarray, y: np.ndarray, C: float) -> np.ndarray:
    """Return the I-set id (0..4) of every sample."""
    at_zero = alpha <= C * _BOUND_RTOL
    at_c = alpha >= C * (1.0 - _BOUND_RTOL)
    pos = y > 0
    out = np.full(alpha.shape, I0, dtype=np.int8)
    out[at_zero & pos] = I1
    out[at_c & ~pos] = I2
    out[at_c & pos] = I3
    out[at_zero & ~pos] = I4
    return out


def up_mask(alpha: np.ndarray, y: np.ndarray, C: float) -> np.ndarray:
    """Membership in I0 ∪ I1 ∪ I2 (candidates for β_up = min γ).

    Equivalent to the classic condition
    ``(y == +1 and α < C) or (y == -1 and α > 0)``.
    """
    at_zero = alpha <= C * _BOUND_RTOL
    at_c = alpha >= C * (1.0 - _BOUND_RTOL)
    pos = y > 0
    return (pos & ~at_c) | (~pos & ~at_zero)


def low_mask(alpha: np.ndarray, y: np.ndarray, C: float) -> np.ndarray:
    """Membership in I0 ∪ I3 ∪ I4 (candidates for β_low = max γ)."""
    at_zero = alpha <= C * _BOUND_RTOL
    at_c = alpha >= C * (1.0 - _BOUND_RTOL)
    pos = y > 0
    return (pos & ~at_zero) | (~pos & ~at_c)


def up_low_masks(
    alpha: np.ndarray, y: np.ndarray, C
) -> "tuple[np.ndarray, np.ndarray]":
    """Both election masks from one pass over the bound tests.

    Returns ``(up, low)`` bitwise identical to :func:`up_mask` /
    :func:`low_mask`; the shared ``at_zero``/``at_c``/``pos``
    intermediates are computed once (the per-iteration hot path calls
    both masks back to back).
    """
    at_zero = alpha <= C * _BOUND_RTOL
    at_c = alpha >= C * (1.0 - _BOUND_RTOL)
    pos = y > 0
    not_pos = ~pos
    not_zero = ~at_zero
    not_c = ~at_c
    return (pos & not_c) | (not_pos & not_zero), (pos & not_zero) | (not_pos & not_c)


def free_mask(alpha: np.ndarray, C: float) -> np.ndarray:
    """Membership in I0 (0 < α < C), used for the final β (hyperplane b)."""
    return (alpha > C * _BOUND_RTOL) & (alpha < C * (1.0 - _BOUND_RTOL))


def shrinkable_mask(
    alpha: np.ndarray,
    y: np.ndarray,
    gamma: np.ndarray,
    C: float,
    beta_up: float,
    beta_low: float,
) -> np.ndarray:
    """The paper's shrinking condition, Eq. (9).

    A sample can be shrunk when it sits at a bound on the side where it
    can no longer become a violator::

        i ∈ I3 ∪ I4  and  γ_i < β_up      (can only raise β_low; too low)
        i ∈ I1 ∪ I2  and  γ_i > β_low     (can only lower β_up; too high)

    Free samples (I0) are never shrunk.
    """
    sets = classify(alpha, y, C)
    low_only = (sets == I3) | (sets == I4)
    up_only = (sets == I1) | (sets == I2)
    return (low_only & (gamma < beta_up)) | (up_only & (gamma > beta_low))
