"""The trained model: support vectors + hyperplane threshold.

The decision function is

    f(x) = Σ_j α_j y_j Φ(x_j, x) − β

with β the paper's hyperplane threshold (§III); predictions are
sign(f(x)).  Only samples with α > 0 (the support vectors, ζ) are kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..kernels import Kernel, make_kernel
from ..sparse.csr import CSRMatrix

#: test rows evaluated per kernel slab — bounds prediction scratch at
#: roughly PREDICT_BLOCK_ROWS × n_sv doubles
PREDICT_BLOCK_ROWS = 1024


@dataclass
class SVMModel:
    """A trained two-class SVM."""

    sv_X: CSRMatrix  # support-vector rows
    sv_coef: np.ndarray  # α_j · y_j per support vector
    sv_indices: np.ndarray  # global training indices of the SVs
    beta: float  # hyperplane threshold; offset b = −β
    kernel: Kernel

    def __post_init__(self) -> None:
        if self.sv_coef.shape != (self.sv_X.shape[0],):
            raise ValueError(
                f"{self.sv_coef.shape[0]} coefficients for "
                f"{self.sv_X.shape[0]} support vectors"
            )
        self._sv_norms = self.sv_X.row_norms_sq()

    @property
    def n_sv(self) -> int:
        return self.sv_X.shape[0]

    @property
    def b(self) -> float:
        """Decision-function offset (−β)."""
        return -self.beta

    def decision_function(
        self,
        X: Union[CSRMatrix, np.ndarray],
        *,
        block_rows: int = PREDICT_BLOCK_ROWS,
    ) -> np.ndarray:
        """f(x) for every row of ``X``, evaluated block-at-a-time.

        Each block of test rows is one CSR×CSRᵀ kernel slab against the
        support vectors (``Kernel.block``) plus one weighted row sum,
        instead of a Python loop over rows.  The row sum is a pairwise
        reduction whose result depends only on the row's own values, so
        the decision value of a sample is bitwise independent of how the
        input is blocked or sharded (``decision_function_parallel``
        relies on this).
        """
        X = _as_csr(X, self.sv_X.shape[1])
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        norms = X.row_norms_sq()
        out = np.empty(X.shape[0])
        for lo in range(0, X.shape[0], block_rows):
            hi = min(lo + block_rows, X.shape[0])
            slab = self.kernel.block(
                X.row_slice(lo, hi), norms[lo:hi], self.sv_X, self._sv_norms
            )
            slab *= self.sv_coef
            out[lo:hi] = np.add.reduce(slab, axis=1) - self.beta
        return out

    def predict(self, X: Union[CSRMatrix, np.ndarray]) -> np.ndarray:
        """±1 labels for every row of ``X``."""
        f = self.decision_function(X)
        return np.where(f >= 0.0, 1.0, -1.0)

    def accuracy(self, X: Union[CSRMatrix, np.ndarray], y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y, dtype=np.float64)))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (round-trips via :meth:`from_dict`).

        Format version 2: every float travels bit-exactly — ``sv_coef``
        as raw little-endian float64 bytes, ``beta`` and the kernel's
        float hyperparameters as IEEE-754 hex strings (``float.hex``).
        Version-1 dicts (plain JSON floats, flat kernel dict) are still
        accepted by :meth:`from_dict`; JSON's shortest-repr floats are
        value-exact for finite numbers, but the hex form is unambiguous
        about signed zeros / subnormals and survives any non-Python
        JSON round-trip unchanged.
        """
        return {
            "format": "repro-svm-model",
            "version": 2,
            "sv_X": self.sv_X.to_bytes(),
            "sv_coef": np.ascontiguousarray(
                self.sv_coef, dtype="<f8"
            ).tobytes(),
            "sv_indices": self.sv_indices.tolist(),
            "beta": float(self.beta).hex(),
            "kernel": {
                "name": self.kernel.name,
                "params": {
                    k: _encode_param(v) for k, v in self.kernel.params().items()
                },
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SVMModel":
        if d.get("version", 1) >= 2:
            kspec = d["kernel"]
            kernel = make_kernel(
                kspec["name"],
                **{k: _decode_param(v) for k, v in kspec["params"].items()},
            )
            coef_bytes = d["sv_coef"]
            sv_coef = np.frombuffer(coef_bytes, dtype="<f8").astype(
                np.float64, copy=True
            )
            beta = float.fromhex(d["beta"])
        else:  # version-1 dicts (pre-exact format)
            kparams = dict(d["kernel"])
            kernel = make_kernel(kparams.pop("name"), **kparams)
            sv_coef = np.asarray(d["sv_coef"], dtype=np.float64)
            beta = float(d["beta"])
        return cls(
            sv_X=CSRMatrix.from_bytes(d["sv_X"]),
            sv_coef=sv_coef,
            sv_indices=np.asarray(d["sv_indices"], dtype=np.int64),
            beta=beta,
            kernel=kernel,
        )


def _encode_param(v):
    """JSON-safe, bit-exact kernel hyperparameter encoding."""
    if isinstance(v, bool) or isinstance(v, int):
        return v
    if isinstance(v, float):
        return {"hex": v.hex()}
    raise TypeError(f"kernel parameter of unsupported type {type(v).__name__}")


def _decode_param(v):
    if isinstance(v, dict):
        return float.fromhex(v["hex"])
    return v


def model_to_jsonable(model: SVMModel) -> dict:
    """:meth:`SVMModel.to_dict` with byte fields base64-encoded.

    The result is pure JSON data; shared by :func:`save_model` and the
    ``SVC``/``MultiClassSVC`` persistence layers.
    """
    import base64

    d = model.to_dict()
    d["sv_X"] = base64.b64encode(d["sv_X"]).decode("ascii")
    d["sv_coef"] = base64.b64encode(d["sv_coef"]).decode("ascii")
    return d


def model_from_jsonable(d: dict) -> SVMModel:
    """Inverse of :func:`model_to_jsonable` (accepts v1 and v2 dicts)."""
    import base64

    d = dict(d)
    d["sv_X"] = base64.b64decode(d["sv_X"])
    if d.get("version", 1) >= 2:
        d["sv_coef"] = base64.b64decode(d["sv_coef"])
    return SVMModel.from_dict(d)


def save_model(model: SVMModel, path) -> None:
    """Write a model to a JSON file (byte fields base64-encoded)."""
    import json
    from pathlib import Path

    Path(path).write_text(
        json.dumps(model_to_jsonable(model)), encoding="utf-8"
    )


def load_model(path) -> SVMModel:
    """Read a model written by :func:`save_model` (either format version)."""
    import json
    from pathlib import Path

    return model_from_jsonable(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def _as_csr(X: Union[CSRMatrix, np.ndarray], n_features: int) -> CSRMatrix:
    if isinstance(X, CSRMatrix):
        if X.shape[1] != n_features:
            raise ValueError(
                f"{X.shape[1]} features in input, model has {n_features}"
            )
        return X
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[None, :]
    if X.shape[1] != n_features:
        raise ValueError(
            f"{X.shape[1]} features in input, model has {n_features}"
        )
    return CSRMatrix.from_dense(X)
