"""libsvm-style sequential solver — the paper's baseline (§V-A).

The paper compares against libsvm 3.18 enhanced with OpenMP, "allowing
libsvm to use a compute node's entire memory as a kernel cache".  This
module reimplements that baseline from scratch in the libsvm style:

- second-order working-set selection (Fan et al., WSS 2 — libsvm's
  default), unlike the distributed solver's first-order maximal
  violating pair;
- a byte-bounded LRU cache of full kernel rows
  (:class:`repro.kernels.KernelRowCache`);
- libsvm-flavoured shrinking: a shrink pass every ``min(N, 1000)``
  iterations, one gradient reconstruction ("unshrink") when the gap
  first drops within 10× of the final tolerance, and a reconstruction
  before optimality is certified.

Operation counters (kernel evaluations split by cache hit/miss,
iterations) feed :mod:`repro.perfmodel.baseline`, which models the
single-core ("libsvm-sequential") and 16-core OpenMP
("libsvm-enhanced") execution times on the target machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..kernels import KernelRowCache
from ..sparse.csr import CSRMatrix
from .params import ConvergenceError, SVMParams
from .sets import free_mask, low_mask, shrinkable_mask, up_mask
from .wss import TAU, compute_beta, solve_pair


@dataclass
class LibsvmResult:
    """Converged baseline state + operation counters."""

    alpha: np.ndarray
    gamma: np.ndarray
    beta: float
    iterations: int
    kernel_evals: int  # actual evaluations (cache misses, by element)
    kernel_requests: int  # evaluations that would happen without a cache
    cache_stats: dict
    shrink_passes: int
    reconstructions: int
    gap: float

    @property
    def n_sv(self) -> int:
        return int(np.count_nonzero(self.alpha > 0))

    @property
    def cache_hit_rate(self) -> float:
        if self.kernel_requests == 0:
            return 0.0
        return 1.0 - self.kernel_evals / self.kernel_requests


#: cache-miss rows produced per blocked batch — bounds the slab at
#: ROW_BATCH × N doubles during gradient reconstruction
ROW_BATCH = 64


class _RowProvider:
    """Kernel rows on demand through the LRU cache."""

    def __init__(self, X: CSRMatrix, norms: np.ndarray, kernel, cache_bytes: int):
        self.X = X
        self.norms = norms
        self.kernel = kernel
        self.cache = KernelRowCache(cache_bytes)
        self.evals = 0
        self.requests = 0

    def row(self, i: int) -> np.ndarray:
        n = self.X.shape[0]
        self.requests += n
        cached = self.cache.get(i)
        if cached is not None:
            return cached
        xi, xv = self.X.row(i)
        row = self.kernel.row_against_block(
            self.X, self.norms, xi, xv, float(self.norms[i])
        )
        self.evals += n
        self.cache.put(i, row)
        return row

    def rows(self, idxs, *, batch: int = ROW_BATCH):
        """Yield the kernel rows for ``idxs`` in order, producing cache
        misses in blocked batches.

        ``simulate_misses`` predicts exactly which requests will miss, so
        all misses of a batch are evaluated as one ``Kernel.block`` slab,
        then the get/put sequence of repeated :meth:`row` calls is
        replayed verbatim — rows, hit/miss/eviction counters and the
        cache's eventual state are all identical to the row-at-a-time
        path.
        """
        n = self.X.shape[0]
        idxs = [int(i) for i in idxs]
        for lo in range(0, len(idxs), batch):
            chunk = idxs[lo : lo + batch]
            miss = self.cache.simulate_misses(chunk, n * 8)
            fresh = {}
            if miss:
                miss_arr = np.asarray(miss, dtype=np.int64)
                slab = self.kernel.block(
                    self.X,
                    self.norms,
                    self.X.take_rows(miss_arr),
                    self.norms[miss_arr],
                )
                for k, i in enumerate(miss):
                    fresh[i] = np.ascontiguousarray(slab[:, k])
            for i in chunk:
                self.requests += n
                cached = self.cache.get(i)
                if cached is not None:
                    yield cached
                    continue
                row = fresh[i]
                self.evals += n
                self.cache.put(i, row)
                yield row


def solve_libsvm_style(
    X: CSRMatrix,
    y: np.ndarray,
    params: SVMParams,
    *,
    cache_bytes: Optional[int] = None,
    shrinking: bool = True,
    second_order: bool = True,
) -> LibsvmResult:
    """Train in the libsvm style; see module docstring."""
    y = np.asarray(y, dtype=np.float64)
    n = X.shape[0]
    if y.shape != (n,):
        raise ValueError(f"{y.size} labels for {n} samples")
    if n == 0:
        raise ValueError("empty training set")
    if not np.all(np.abs(y) == 1.0):
        raise ValueError("labels must be +1/-1")
    kernel, eps = params.kernel, params.eps
    C = params.box_for(y)  # per-sample box

    norms = X.row_norms_sq()
    diag = kernel.diag(norms)
    # default cache: 1 GiB — "a compute node's entire memory" scaled to
    # the reproduction's problem sizes (callers override for ablations)
    provider = _RowProvider(
        X, norms, kernel, cache_bytes if cache_bytes is not None else 1 << 30
    )

    alpha = np.zeros(n)
    gamma = -y.copy()
    active = np.ones(n, dtype=bool)
    shrink_interval = min(n, 1000)
    since_shrink = 0
    unshrunk = False
    shrink_passes = 0
    reconstructions = 0
    iterations = 0

    def reconstruct() -> None:
        nonlocal reconstructions
        gamma[:] = -y
        sv = np.flatnonzero(alpha > 0)
        # cache-miss rows arrive in blocked batches; the accumulation
        # order (ascending j) is unchanged
        for j, row in zip(sv, provider.rows(sv)):
            gamma[:] += (alpha[j] * y[j]) * row
        active[:] = True
        reconstructions += 1

    while True:
        act = np.flatnonzero(active)
        a_act, y_act, g_act = alpha[act], y[act], gamma[act]
        up = up_mask(a_act, y_act, C[act])
        low = low_mask(a_act, y_act, C[act])

        up_idx = act[up]
        low_idx = act[low]
        beta_up = float(gamma[up_idx].min()) if up_idx.size else np.inf
        beta_low = float(gamma[low_idx].max()) if low_idx.size else -np.inf
        gap = beta_low - beta_up

        if beta_up + 2.0 * eps >= beta_low:
            if active.all():
                break
            reconstruct()  # certify optimality over the full set
            continue
        if shrinking and not unshrunk and gap <= 20.0 * eps and not active.all():
            # libsvm's "unshrink": one full reconstruction near the end
            reconstruct()
            unshrunk = True
            continue
        if params.max_iter and iterations >= params.max_iter:
            raise ConvergenceError(
                f"libsvm-style solver exceeded max_iter={params.max_iter} "
                f"(gap {gap:.3e})"
            )

        # --- working-set selection -----------------------------------
        i = int(up_idx[np.argmin(gamma[up_idx])])
        row_i = provider.row(i)
        if second_order:
            # WSS 2: maximize the second-order gain among valid partners
            cand = low_idx[gamma[low_idx] > gamma[i]]
            eta = diag[i] + diag[cand] - 2.0 * row_i[cand]
            np.maximum(eta, TAU, out=eta)
            gain = (gamma[cand] - gamma[i]) ** 2 / eta
            j = int(cand[np.argmax(gain)])
        else:
            j = int(low_idx[np.argmax(gamma[low_idx])])
        row_j = provider.row(j)

        new_i, new_j = solve_pair(
            float(diag[i]), float(diag[j]), float(row_i[j]),
            float(y[i]), float(y[j]),
            float(alpha[i]), float(alpha[j]),
            float(gamma[i]), float(gamma[j]),
            float(C[i]), float(C[j]),
        )
        d_i, d_j = new_i - alpha[i], new_j - alpha[j]
        gamma[act] += (y[i] * d_i) * row_i[act] + (y[j] * d_j) * row_j[act]
        alpha[i], alpha[j] = new_i, new_j
        iterations += 1
        since_shrink += 1

        # --- periodic shrink pass ------------------------------------
        if shrinking and since_shrink >= shrink_interval:
            since_shrink = 0
            mask = shrinkable_mask(
                alpha[act], y[act], gamma[act], C[act], beta_up, beta_low
            )
            if mask.any():
                active[act[mask]] = False
                shrink_passes += 1

    beta = compute_beta(gamma, free_mask(alpha, C), beta_up, beta_low)
    return LibsvmResult(
        alpha=alpha,
        gamma=gamma,
        beta=beta,
        iterations=iterations,
        kernel_evals=provider.evals,
        kernel_requests=provider.requests,
        cache_stats=provider.cache.stats(),
        shrink_passes=shrink_passes,
        reconstructions=reconstructions,
        gap=gap,
    )
