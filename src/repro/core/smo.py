"""Sequential reference SMO — Algorithm 1 of the paper.

First-order maximal-violating-pair selection, no shrinking, no kernel
cache.  This is the ground truth the distributed solvers are tested
against: with the deterministic tie-break, the parallel Original solver
must replay the exact same iteration sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..sparse.csr import CSRMatrix
from .gradient import apply_pair_update, init_gradient
from .params import ConvergenceError, SVMParams
from .sets import free_mask, low_mask, up_mask
from .wss import compute_beta, local_extrema, solve_pair


@dataclass
class SMOResult:
    """Converged state of a sequential solve."""

    alpha: np.ndarray
    gamma: np.ndarray
    beta: float
    beta_up: float
    beta_low: float
    iterations: int
    kernel_evals: int
    #: per-iteration optimality gap (recorded when ``record_gap`` is set)
    gap_history: List[float] = field(default_factory=list)

    @property
    def n_sv(self) -> int:
        return int(np.count_nonzero(self.alpha > 0))


def solve_sequential(
    X: CSRMatrix,
    y: np.ndarray,
    params: SVMParams,
    *,
    record_gap: bool = False,
) -> SMOResult:
    """Train on the full dataset with plain SMO (Algorithm 1)."""
    y = np.asarray(y, dtype=np.float64)
    n = X.shape[0]
    if y.shape != (n,):
        raise ValueError(f"{y.shape[0] if y.ndim else 0} labels for {n} samples")
    if n == 0:
        raise ValueError("empty training set")
    if not np.all(np.abs(y) == 1.0):
        raise ValueError("labels must be +1/-1")
    kernel = params.kernel
    C = params.box_for(y)  # per-sample box (scalar weights broadcast)

    norms = X.row_norms_sq()
    alpha = np.zeros(n)
    gamma = init_gradient(y)
    kernel_evals = 0
    gap_history: List[float] = []

    iterations = 0
    while True:
        up = up_mask(alpha, y, C)
        low = low_mask(alpha, y, C)
        beta_up, i_up, beta_low, i_low = local_extrema(gamma, up, low, 0)
        if record_gap:
            gap_history.append(beta_low - beta_up)
        if beta_up + 2.0 * params.eps >= beta_low:
            break
        if params.max_iter and iterations >= params.max_iter:
            raise ConvergenceError(
                f"SMO did not converge within {params.max_iter} iterations "
                f"(gap {beta_low - beta_up:.3e}, eps {params.eps:.1e})"
            )
        iterations += 1

        ui, uv = X.row(i_up)
        li, lv = X.row(i_low)
        un, ln = float(norms[i_up]), float(norms[i_low])
        k_uu = kernel.self_value(un)
        k_ll = kernel.self_value(ln)
        k_ul = kernel.pair((ui, uv, un), (li, lv, ln))
        kernel_evals += 3

        new_up, new_low = solve_pair(
            k_uu, k_ll, k_ul,
            float(y[i_up]), float(y[i_low]),
            float(alpha[i_up]), float(alpha[i_low]),
            float(gamma[i_up]), float(gamma[i_low]),
            float(C[i_up]), float(C[i_low]),
        )
        d_up = new_up - alpha[i_up]
        d_low = new_low - alpha[i_low]

        # both gradient-update kernel columns from one blocked call
        pair = CSRMatrix.from_rows([(ui, uv), (li, lv)], X.shape[1])
        k_cols = kernel.block(X, norms, pair, np.array([un, ln]))
        kernel_evals += 2 * n
        apply_pair_update(
            gamma, k_cols[:, 0], k_cols[:, 1],
            float(y[i_up]), float(y[i_low]), d_up, d_low,
        )
        alpha[i_up] = new_up
        alpha[i_low] = new_low

    beta = compute_beta(gamma, free_mask(alpha, C), beta_up, beta_low)
    return SMOResult(
        alpha=alpha,
        gamma=gamma,
        beta=beta,
        beta_up=beta_up,
        beta_low=beta_low,
        iterations=iterations,
        kernel_evals=kernel_evals,
        gap_history=gap_history,
    )
