"""``repro.core`` — the paper's contribution: distributed shrinking SMO.

Layers, bottom-up:

- :mod:`sets`, :mod:`gradient`, :mod:`wss` — the SMO numerics (Eq. 1-9);
- :mod:`smo` — sequential reference (Algorithm 1);
- :mod:`libsvm_smo` — the libsvm-style baseline with kernel cache;
- :mod:`state`, :mod:`shrinking`, :mod:`reconstruction`, :mod:`parallel`
  — the distributed engine (Algorithms 2-5, Table II heuristics);
- :mod:`solver`, :mod:`model`, :mod:`svc` — driver, trained model and
  the sklearn-style facade;
- :mod:`validation` — k-fold CV / grid search (§V-C).
"""

from ..config import RunConfig
from .dcsvm import DCConfig, DCStats, fit_dc, partition_samples, project_feasible
from .equiv import (
    assert_model_equiv,
    check_kkt,
    dense_kernel_matrix,
    held_out_grid,
)
from .libsvm_smo import LibsvmResult, solve_libsvm_style
from .model import SVMModel, load_model, save_model
from .multiclass import MultiClassSVC
from .params import ConvergenceError, SVMParams
from .shrinking import (
    BEST_HEURISTIC,
    HEURISTICS,
    WORST_HEURISTIC,
    Heuristic,
    get_heuristic,
    unsafe_variant,
)
from .smo import SMOResult, solve_sequential
from .predict import (
    ParallelPrediction,
    decision_function_parallel,
    predict_parallel,
)
from .solver import FitResult, fit_parallel
from .svc import SVC, NotFittedError
from .svr import SVR, SVRFitResult, fit_svr_parallel
from .train import train
from .trace import FitStats, RankTrace, ReconEvent, SolveTrace
from .validation import (
    GridSearchResult,
    cross_val_score,
    grid_search,
    kfold_indices,
    stratified_kfold_indices,
)

__all__ = [
    "BEST_HEURISTIC",
    "ConvergenceError",
    "DCConfig",
    "DCStats",
    "FitResult",
    "FitStats",
    "GridSearchResult",
    "HEURISTICS",
    "Heuristic",
    "LibsvmResult",
    "MultiClassSVC",
    "NotFittedError",
    "ParallelPrediction",
    "RankTrace",
    "ReconEvent",
    "RunConfig",
    "SMOResult",
    "SVC",
    "SVR",
    "SVRFitResult",
    "SVMModel",
    "SVMParams",
    "SolveTrace",
    "WORST_HEURISTIC",
    "assert_model_equiv",
    "check_kkt",
    "cross_val_score",
    "dense_kernel_matrix",
    "decision_function_parallel",
    "fit_dc",
    "fit_parallel",
    "fit_svr_parallel",
    "partition_samples",
    "project_feasible",
    "get_heuristic",
    "grid_search",
    "held_out_grid",
    "kfold_indices",
    "load_model",
    "predict_parallel",
    "save_model",
    "solve_libsvm_style",
    "solve_sequential",
    "stratified_kfold_indices",
    "train",
    "unsafe_variant",
]
