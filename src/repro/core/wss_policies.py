"""Pluggable working-set-selection policies.

The paper's solver always elects the maximal-violating pair (first-order
WSS, here ``mvp``).  Two refinements from the WSS literature cut
iterations-to-convergence substantially and are wired into both engines
behind this registry:

``mvp``
    Keerthi et al. maximal violating pair — bitwise identical to the
    historical behaviour; the default.

``second_order``
    LIBSVM's WSS2 (Fan, Chen & Lin 2005) mapped onto this codebase's γ
    convention: i_up is still the first-order argmin γ over the up set,
    but i_low maximizes the analytic gain b²/a with b = γ_j − β_up > 0
    and curvature a = Φ(u,u) + Φ(j,j) − 2Φ(u,j) (τ-regularized when
    a ≤ 0).  Distributed as a two-phase election: the first-order fused
    allreduce (phase A, which also still provides the β_low convergence
    bound), then a per-rank curvature-scored argmax over the local low
    candidates using the up sample's local kernel column, combined with
    one typed :data:`~repro.mpi.reduceops.MAXLOC_PAYLOAD` allreduce
    carrying (gain, global index, γ_j).

``planning_ahead``
    Second-order selection plus Glasmachers-style working-set reuse:
    every rank maintains a small pool of recently broadcast working-set
    samples whose (α, γ) it tracks *redundantly* — the pair update is
    computed on every rank, and a pool bystander's γ change needs only
    the pair kernels between pool samples, which each rank computes
    locally from the broadcast rows.  When some pool pair still
    violates KKT with enough expected gain, it is reused with **zero
    communication** — no election allreduces, no sample movement.
    (Re-stepping only the *immediately previous* pair would be vacuous:
    the analytic two-variable solve is exact, so the updated pair
    itself almost never violates again until other updates perturb its
    γ — which is precisely what the pool tracks.)

Selection: ``RunConfig.wss`` / ``--wss`` / the ``REPRO_SVM_WSS``
environment variable; :func:`resolve_wss` applies the usual explicit >
env > default precedence.

Every non-``mvp`` selection decision is computed from values that are
redundantly identical on all ranks (allreduced scalars, broadcast
payloads, pair kernel values) or combined through deterministic typed
reductions with ties broken toward the smallest global index — so the
iteration sequence remains independent of the process count, exactly
like ``mvp``.  The *models* differ from ``mvp`` only within solver
tolerance (certified by ``assert_model_equiv`` in the test suite).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .sets import _BOUND_RTOL
from .wss import NO_INDEX, TAU

#: environment override for the working-set-selection policy
WSS_ENV = "REPRO_SVM_WSS"

#: cap on consecutive zero-communication reuses (planning_ahead) —
#: bounds how stale the global β bounds the trace reports can get
MAX_CONSECUTIVE_REUSES = 8

#: planning-ahead pool size — recently broadcast samples whose (α, γ)
#: every rank maintains redundantly; kept tiny because γ maintenance
#: costs pool−2 pair kernels per update per tracked sample
POOL_CAPACITY = 4


@dataclass(frozen=True)
class WSSPolicy:
    """One working-set-selection policy.

    ``second_order`` enables the two-phase curvature-scored election;
    ``reuse_eta`` (``None`` = off) enables planning-ahead working-set
    reuse: the previous pair is re-stepped without any election when its
    projected gain is at least ``reuse_eta`` times the gain of the last
    elected pair.
    """

    name: str
    second_order: bool = False
    reuse_eta: Optional[float] = None

    @property
    def uses_provider(self) -> bool:
        """Whether the engines route kernel columns through the
        byte-budgeted column cache (actual-eval accounting) for this
        policy regardless of the cache budget."""
        return self.second_order


WSS_POLICIES = {
    "mvp": WSSPolicy("mvp"),
    "second_order": WSSPolicy("second_order", second_order=True),
    "planning_ahead": WSSPolicy(
        "planning_ahead", second_order=True, reuse_eta=0.5
    ),
}


def get_wss_policy(name) -> WSSPolicy:
    """Look up a policy by name (a :class:`WSSPolicy` passes through)."""
    if isinstance(name, WSSPolicy):
        return name
    try:
        return WSS_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown wss policy {name!r}; expected one of "
            f"{sorted(WSS_POLICIES)}"
        ) from None


def resolve_wss(wss: Optional[str] = None) -> str:
    """Pick the WSS policy name: explicit arg > env var > "mvp"."""
    if wss is None:
        wss = os.environ.get(WSS_ENV) or "mvp"
    if isinstance(wss, WSSPolicy):
        return wss.name
    if wss not in WSS_POLICIES:
        raise ValueError(
            f"unknown wss policy {wss!r}; expected one of "
            f"{sorted(WSS_POLICIES)}"
        )
    return wss


# ----------------------------------------------------------------------
# second-order (WSS2) scoring
# ----------------------------------------------------------------------
def second_order_best(
    gamma: np.ndarray,
    low: np.ndarray,
    kcol_up: np.ndarray,
    diag: np.ndarray,
    k_uu: float,
    beta_up: float,
    gidx: np.ndarray,
) -> Tuple[float, int, float]:
    """This rank's best curvature-scored i_low candidate.

    Scores every low-eligible sample j with b = γ_j − β_up > 0 by
    b²/a, a = Φ(u,u) + Φ(j,j) − 2Φ(u,j) (τ-regularized when a ≤ 0 —
    libsvm's non-PSD handling).  Returns ``(gain, global_index, γ_j)``,
    or ``(-inf, NO_INDEX, -inf)`` when no candidate has positive b.

    Ties break toward the smallest global index: ``np.argmax`` takes
    the first maximum and ``gidx`` is ascending within a rank, so the
    local winner — and, through the MAXLOC_PAYLOAD combine, the global
    one — is p-independent.  Every input is bitwise identical across
    process counts (γ and the kernel maps are elementwise), so the
    scores are too.
    """
    cand = np.flatnonzero(low)
    if cand.size == 0:
        return -np.inf, NO_INDEX, -np.inf
    b = gamma[cand] - beta_up
    pos = b > 0.0
    if not pos.any():
        return -np.inf, NO_INDEX, -np.inf
    cand = cand[pos]
    b = b[pos]
    a = k_uu + diag[cand] - 2.0 * kcol_up[cand]
    a = np.where(a > 0.0, a, TAU)
    score = (b * b) / a
    k = int(np.argmax(score))
    return float(score[k]), int(gidx[cand[k]]), float(gamma[cand[k]])


# ----------------------------------------------------------------------
# planning-ahead working-set reuse
# ----------------------------------------------------------------------
def up_eligible(alpha: float, y: float, C: float) -> bool:
    """Scalar membership in I0 ∪ I1 ∪ I2 (same bound tests as
    :func:`repro.core.sets.up_mask`)."""
    if y > 0:
        return alpha < C * (1.0 - _BOUND_RTOL)
    return alpha > C * _BOUND_RTOL


def low_eligible(alpha: float, y: float, C: float) -> bool:
    """Scalar membership in I0 ∪ I3 ∪ I4."""
    if y > 0:
        return alpha > C * _BOUND_RTOL
    return alpha < C * (1.0 - _BOUND_RTOL)


@dataclass
class PoolSample:
    """One tracked sample: broadcast row + redundantly maintained state.

    ``row`` is the ``(indices, values, norm_sq)`` triple every rank
    received when the sample entered a working set; ``alpha``/``gamma``
    are refreshed by :meth:`ReusePool.observe_update` from the
    redundantly computed pair update, so they are identical on every
    rank without any further communication.
    """

    gidx: int
    row: tuple
    y: float
    C: float
    alpha: float
    gamma: float


class ReusePool:
    """Recently broadcast working-set samples, tracked for reuse.

    After each pair update every rank calls :meth:`observe_update`: the
    two updated samples are upserted with their new (α, γ), and each
    *bystander* already in the pool gets its γ advanced by the same
    term-by-term arithmetic :func:`~repro.core.gradient.apply_pair_update`
    applies to the owner's array — the needed Φ(bystander, pair) values
    are computed locally from the broadcast rows (and memoized).
    :meth:`best_pair` then scores every ordered pool pair by the
    second-order b²/a gain; a winner above the caller's threshold can
    be stepped with zero communication, since everything about both
    samples is redundantly known on all ranks.

    Determinism: pool contents mirror the collective broadcast
    sequence, all maintenance arithmetic is identical scalar math on
    identical inputs, and :meth:`best_pair` iterates in insertion order
    keeping the first maximum — so every rank elects the same pair.

    ``take_new_evals`` drains the count of pair kernels actually
    produced (memo misses) so the engines can charge them honestly.
    """

    def __init__(self, kernel, capacity: int = POOL_CAPACITY):
        self.kernel = kernel
        self.capacity = int(capacity)
        self._samples: "OrderedDict[int, PoolSample]" = OrderedDict()
        self._pair_k: dict = {}  # (gidx lo, gidx hi) -> Φ value
        self._new_evals = 0

    def __len__(self) -> int:
        return len(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self._pair_k.clear()

    def take_new_evals(self) -> int:
        n, self._new_evals = self._new_evals, 0
        return n

    def _key(self, ga: int, gb: int):
        return (ga, gb) if ga < gb else (gb, ga)

    def seed_k(self, ga: int, gb: int, value: float) -> None:
        """Record a pair kernel the engine already evaluated (free)."""
        self._pair_k[self._key(ga, gb)] = value

    def k(self, a: PoolSample, b: PoolSample) -> float:
        """Φ(a, b), memoized; a miss costs one local kernel evaluation."""
        key = self._key(a.gidx, b.gidx)
        v = self._pair_k.get(key)
        if v is None:
            v = self.kernel.pair(a.row, b.row)
            self._pair_k[key] = v
            self._new_evals += 1
        return v

    def observe_update(
        self,
        up: PoolSample,
        low: PoolSample,
        coef_up: float,
        coef_low: float,
    ) -> None:
        """Fold one redundantly computed pair update into the pool.

        ``up``/``low`` carry the pair's *new* α and γ (the caller
        replicates the update arithmetic); ``coef_* = y_* · Δα_*`` are
        the γ-update coefficients.  Bystander γ maintenance applies the
        same skip-on-zero-coefficient steps as the array update.
        """
        for s in self._samples.values():
            if s.gidx == up.gidx or s.gidx == low.gidx:
                continue
            if coef_up != 0.0:
                s.gamma = s.gamma + coef_up * self.k(s, up)
            if coef_low != 0.0:
                s.gamma = s.gamma + coef_low * self.k(s, low)
        for smp in (up, low):
            self._samples[smp.gidx] = smp
            self._samples.move_to_end(smp.gidx)
        while len(self._samples) > self.capacity:
            g, _ = self._samples.popitem(last=False)
            for key in [kk for kk in self._pair_k if g in kk]:
                del self._pair_k[key]

    def best_pair(self, phase_eps: float):
        """Best still-violating (up, low) pool pair, or ``None``.

        Both orientations of every unordered pair are checked for KKT
        eligibility and a gap above the phase's 2ε threshold, then
        scored by b²/a (τ-regularized curvature) — the same gain the
        second-order election maximizes.  Strict ``>`` keeps the first
        maximum in insertion order, so ties are rank-independent.
        """
        samples = list(self._samples.values())
        best = None
        for i, a in enumerate(samples):
            for b in samples[i + 1 :]:
                gap_ab = b.gamma - a.gamma  # orientation up=a, low=b
                gap_ba = -gap_ab
                if gap_ab > 2.0 * phase_eps:
                    if up_eligible(a.alpha, a.y, a.C) and low_eligible(
                        b.alpha, b.y, b.C
                    ):
                        curv = (
                            self.k(a, a) + self.k(b, b) - 2.0 * self.k(a, b)
                        )
                        if curv <= 0.0:
                            curv = TAU
                        gain = (gap_ab * gap_ab) / curv
                        if best is None or gain > best[0]:
                            best = (gain, a, b)
                elif gap_ba > 2.0 * phase_eps:
                    if up_eligible(b.alpha, b.y, b.C) and low_eligible(
                        a.alpha, a.y, a.C
                    ):
                        curv = (
                            self.k(a, a) + self.k(b, b) - 2.0 * self.k(a, b)
                        )
                        if curv <= 0.0:
                            curv = TAU
                        gain = (gap_ba * gap_ba) / curv
                        if best is None or gain > best[0]:
                            best = (gain, b, a)
        return best
