"""Working-set selection (Eq. 3) and the two-sample analytic step (Eq. 6-7).

Selection is the maximal-violating-pair rule of Keerthi et al.: the
worst violators

    β_up  = min{γ_i : i ∈ I0 ∪ I1 ∪ I2},   i_up  = argmin
    β_low = max{γ_i : i ∈ I0 ∪ I3 ∪ I4},   i_low = argmax

Ties are broken toward the smallest global index, which makes the
iteration sequence independent of the process count — the distributed
solver at any p replays the sequential solver's steps exactly.

The α update solves the two-variable QP analytically.  The paper's
Eq. (6) is the unconstrained Newton step

    α_low' = α_low − y_low (γ_up − γ_low) / ρ,
    ρ = 2Φ(up,low) − Φ(up,up) − Φ(low,low)

followed by clipping to the feasible box (Platt's L/H bounds).  For
non-positive-definite ρ ≥ 0 we apply libsvm's τ-regularization
(ρ := −τ), which matches Platt's endpoint handling in practice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: regularizer for non-PSD pair curvature (libsvm's TAU)
TAU = 1e-12

#: sentinel index used when a rank has no eligible candidate
NO_INDEX = -1


class SolverError(RuntimeError):
    """A poisoned solver state detected during working-set selection."""


def guard_gamma_finite(
    gamma: np.ndarray,
    rank: int | None = None,
    local_indices: np.ndarray | None = None,
) -> None:
    """Raise :class:`SolverError` when ``gamma`` contains a NaN.

    ``argmin``/``argmax`` silently absorb NaN entries (numpy propagates
    them to the winner), which would elect a garbage pair and poison the
    whole run; this names the offending rank and local sample index
    instead.  ``local_indices`` maps positions in ``gamma`` (e.g. a
    packed active view) back to local sample indices for the message.
    """
    bad = np.isnan(gamma)
    if not bad.any():
        return
    k = int(np.flatnonzero(bad)[0])
    li = int(local_indices[k]) if local_indices is not None else k
    where = f"rank {rank}" if rank is not None else "this rank"
    raise SolverError(
        f"NaN gradient entry during working-set selection on {where}, "
        f"local index {li} ({int(bad.sum())} NaN entr"
        f"{'y' if int(bad.sum()) == 1 else 'ies'} total) — the dual "
        f"state is poisoned (bad kernel parameters or corrupted input?)"
    )


@dataclass(frozen=True)
class Violators:
    """The global worst-violator pair after the allreduce."""

    beta_up: float
    i_up: int
    gamma_up: float
    beta_low: float
    i_low: int
    gamma_low: float

    def gap(self) -> float:
        return self.beta_low - self.beta_up

    def converged(self, eps: float) -> bool:
        """Eq. (5): β_up + 2ε ≥ β_low."""
        return self.beta_up + 2.0 * eps >= self.beta_low


def local_extrema(
    gamma: np.ndarray,
    up: np.ndarray,
    low: np.ndarray,
    global_offset: int,
    *,
    rank: int | None = None,
    local_indices: np.ndarray | None = None,
) -> Tuple[float, int, float, int]:
    """This rank's (β_up, i_up, β_low, i_low) over the given masks.

    Returns global indices; ``(inf, NO_INDEX)`` / ``(-inf, NO_INDEX)``
    when the respective candidate set is empty on this rank.  A NaN in
    ``gamma`` raises :class:`SolverError` (``rank`` / ``local_indices``
    feed the diagnostic) instead of silently poisoning the extrema.
    """
    guard_gamma_finite(gamma, rank=rank, local_indices=local_indices)
    beta_up, i_up = np.inf, NO_INDEX
    beta_low, i_low = -np.inf, NO_INDEX
    up_idx = np.flatnonzero(up)
    if up_idx.size:
        k = up_idx[np.argmin(gamma[up_idx])]
        beta_up, i_up = float(gamma[k]), global_offset + int(k)
    low_idx = np.flatnonzero(low)
    if low_idx.size:
        k = low_idx[np.argmax(gamma[low_idx])]
        beta_low, i_low = float(gamma[k]), global_offset + int(k)
    return beta_up, i_up, beta_low, i_low


def solve_pair(
    k_up_up: float,
    k_low_low: float,
    k_up_low: float,
    y_up: float,
    y_low: float,
    alpha_up: float,
    alpha_low: float,
    gamma_up: float,
    gamma_low: float,
    C_up: float,
    C_low: float | None = None,
) -> Tuple[float, float]:
    """Analytic two-variable step; returns (α_up', α_low') clipped.

    Follows Eq. (6)-(7) with standard box clipping.  The pair constraint
    y_up·α_up + y_low·α_low = const is preserved exactly.  ``C_up`` /
    ``C_low`` are the two samples' box constraints (they differ under
    per-class weighting; pass one value for the unweighted problem).
    """
    if C_low is None:
        C_low = C_up
    rho = 2.0 * k_up_low - k_up_up - k_low_low  # Eq. (7); <= 0 for PSD
    if rho >= 0.0:
        rho = -TAU  # libsvm's handling of non-PD curvature
    # unconstrained Newton step on α_low (Eq. 6)
    new_low = alpha_low - y_low * (gamma_up - gamma_low) / rho
    # feasible interval for α_low given the pair constraint
    s = y_up * y_low
    if s > 0:
        total = alpha_up + alpha_low
        lo = max(0.0, total - C_up)
        hi = min(C_low, total)
    else:
        diff = alpha_low - alpha_up
        lo = max(0.0, diff)
        hi = min(C_low, C_up + diff)
    new_low = min(max(new_low, lo), hi)
    new_up = alpha_up + s * (alpha_low - new_low)  # Eq. (6), second line
    # snap residual round-off onto the box
    new_up = min(max(new_up, 0.0), C_up)
    return new_up, new_low


def beta_from_moments(
    total: float,
    count: float,
    beta_up: float,
    beta_low: float,
) -> float:
    """β from (Σ γ over I0, |I0|) plus the violator bounds.

    Mean of γ over I0 when I0 is non-empty, else the β midpoint.  With
    no free SVs *and* one-sided (or empty) violator bounds the midpoint
    is ±inf/NaN — which would poison every prediction — so it collapses
    to 0.  Shared by the sequential solvers and the distributed engine
    (which feeds globally allreduced moments).
    """
    if count:
        return float(total / count)
    mid = 0.5 * (beta_low + beta_up)
    return mid if math.isfinite(mid) else 0.0


def compute_beta(
    gamma: np.ndarray,
    free: np.ndarray,
    beta_up: float,
    beta_low: float,
) -> float:
    """Final hyperplane threshold β (§III):

    mean of γ over I0 when I0 is non-empty, else the β midpoint (0 when
    the midpoint is not finite).  The decision function offset is b = −β.
    """
    n_free = int(np.count_nonzero(free))
    return beta_from_moments(
        float(gamma[free].sum()) if n_free else 0.0, n_free, beta_up, beta_low
    )
