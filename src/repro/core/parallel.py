"""The distributed SMO engine — Algorithms 2, 4 and 5.

One :class:`RankSolver` runs per simulated MPI rank.  The engine is a
single iteration loop parameterized by the shrinking heuristic:

- ``original`` (Algorithm 2): shrinking never fires;
- ``single*`` (Algorithm 4): shrink until the active problem converges
  at 2ε, reconstruct gradients once, disable shrinking, finish exactly;
- ``multi*`` (Algorithm 5): converge the shrunk problem at 20ε,
  reconstruct, then repeat [converge at 2ε → reconstruct] until a
  reconstruction certifies global optimality.

Every iteration performs, per the paper:

1. route the two working-set samples through rank 0 and broadcast them
   (Algorithm 2 lines 3-9);
2. the analytic α pair update, redundantly on every rank (3 kernel
   evaluations, Eq. 6-7);
3. the γ update over the rank's *active* samples (2 kernel-row
   evaluations, Eq. 2), plus set bookkeeping;
4. optionally a shrink pass (Eq. 9) when the countdown δ_c fires,
   followed by the Allreduce that establishes the next threshold from
   the global active-set size (§IV-A2);
5. two scalar Allreduces (MINLOC/MAXLOC) electing the next worst
   violators (Eq. 3).

Determinism: value ties in the violator election break toward the
smallest global index, so the iteration sequence — and therefore the
returned model — is bitwise identical for every process count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..kernels import Kernel
from ..mpi.communicator import Comm
from ..mpi.reduceops import MAXLOC, MINLOC, MINLOC_MAXLOC, SUM
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from .gradient import apply_pair_update
from .params import ConvergenceError, SVMParams
from .reconstruction import gradient_reconstruction
from .sets import free_mask, low_mask, shrinkable_mask, up_low_masks, up_mask
from .shrinking import Heuristic
from .state import CompactActiveSet, LocalBlock
from .trace import RankTrace
from .wss import (
    NO_INDEX,
    Violators,
    beta_from_moments,
    local_extrema,
    solve_pair,
)

TAG_SAMPLE_UP = 1
TAG_SAMPLE_LOW = 2


@dataclass
class RankResult:
    """Everything a rank returns to the driver."""

    alpha: np.ndarray
    gamma: np.ndarray
    beta: float
    beta_up: float
    beta_low: float
    iterations: int
    trace: RankTrace
    vtime: float


class RankSolver:
    """Per-rank solver state machine."""

    def __init__(
        self,
        comm: Comm,
        blk: LocalBlock,
        part: BlockPartition,
        params: SVMParams,
        heuristic: Heuristic,
    ) -> None:
        self.comm = comm
        self.blk = blk
        self.part = part
        self.params = params
        self.heur = heuristic
        self.kernel: Kernel = params.kernel
        self.C = params.box_for(blk.y)  # per-sample box constraints
        self.trace = RankTrace(rank=comm.rank, n_local=blk.n_local)
        self.iterations = 0
        self._initial_threshold = heuristic.initial_threshold(part.n)
        self.delta_c = self._initial_threshold
        self.shrink_enabled = heuristic.shrinks
        self.avg_nnz = blk.X.avg_row_nnz or 1.0

    # ------------------------------------------------------------------
    # elementary steps
    # ------------------------------------------------------------------
    def select(self) -> Violators:
        """Local extrema over the active set + global MINLOC/MAXLOC election."""
        blk = self.blk
        idx, _, _ = blk.active_view()
        a = blk.alpha[idx]
        yv = blk.y[idx]
        g = blk.gamma[idx]
        Cv = self.C[idx]
        up = up_mask(a, yv, Cv)
        low = low_mask(a, yv, Cv)
        bu, ku, bl, kl = local_extrema(g, up, low, 0)
        gi_up = blk.global_start + int(idx[ku]) if ku != NO_INDEX else NO_INDEX
        gi_low = blk.global_start + int(idx[kl]) if kl != NO_INDEX else NO_INDEX
        # a handful of flops per active sample for masks and argmin/argmax
        self.comm.advance(self.comm.machine.time_flops(8.0 * idx.size))
        up_v, up_i = self.comm.allreduce((bu, gi_up), MINLOC)
        low_v, low_i = self.comm.allreduce((bl, gi_low), MAXLOC)
        return Violators(
            beta_up=up_v, i_up=up_i, gamma_up=up_v,
            beta_low=low_v, i_low=low_i, gamma_low=low_v,
        )

    def fetch_pair(self, viol: Violators):
        """Route the two working-set samples via rank 0, then broadcast."""
        comm, blk = self.comm, self.blk
        payloads = [None, None]
        for slot, (gidx, tag) in enumerate(
            ((viol.i_up, TAG_SAMPLE_UP), (viol.i_low, TAG_SAMPLE_LOW))
        ):
            owner = self.part.owner(gidx)
            if comm.rank == owner:
                if owner == 0:
                    # consumed locally and only pickled at the bcast —
                    # CSR views are safe, skip the copy
                    payloads[slot] = blk.sample_payload(
                        blk.to_local(gidx), copy=False
                    )
                else:
                    comm.send(blk.sample_payload(blk.to_local(gidx)), 0, tag)
            if comm.rank == 0 and owner != 0:
                payloads[slot] = comm.recv(source=owner, tag=tag)
        self.trace.pair_broadcasts += 2
        return comm.bcast(tuple(payloads), root=0)

    def iterate_once(self, viol: Violators, shrink_active: bool) -> None:
        """One SMO step: α pair update, γ update, optional shrink pass."""
        comm, blk, kernel = self.comm, self.blk, self.kernel
        pay_up, pay_low = self.fetch_pair(viol)
        ui, uv, un, yu, au = pay_up
        li, lv, ln, yl, al = pay_low

        k_uu = kernel.self_value(un)
        k_ll = kernel.self_value(ln)
        k_ul = kernel.pair((ui, uv, un), (li, lv, ln))
        new_up, new_low = solve_pair(
            k_uu, k_ll, k_ul, yu, yl, au, al,
            viol.gamma_up, viol.gamma_low,
            self.params.box_for(yu), self.params.box_for(yl),
        )
        d_up = new_up - au
        d_low = new_low - al

        idx, Xa, na = blk.active_view()
        # both gradient-update kernel columns from one blocked call
        pair = CSRMatrix.from_rows([(ui, uv), (li, lv)], blk.X.shape[1])
        k_cols = kernel.block(Xa, na, pair, np.array([un, ln]))
        gsub = blk.gamma[idx]
        apply_pair_update(gsub, k_cols[:, 0], k_cols[:, 1], yu, yl, d_up, d_low)
        blk.gamma[idx] = gsub
        if blk.owns_global(viol.i_up):
            blk.alpha[blk.to_local(viol.i_up)] = new_up
        if blk.owns_global(viol.i_low):
            blk.alpha[blk.to_local(viol.i_low)] = new_low

        evals = 2 * idx.size + 3
        self.trace.kernel_evals += evals
        self.trace.iter_kernel_evals += evals
        comm.charge_kernel_evals(evals, self.avg_nnz)

        if shrink_active:
            self.delta_c -= 1
            if self.delta_c <= 0:
                self._shrink_pass(viol)

        self.trace.record_iteration(blk.n_active)
        if comm.rank == 0:
            self.trace.gap_history.append(viol.gap())
        self.iterations += 1
        if self.params.max_iter and self.iterations > self.params.max_iter:
            raise ConvergenceError(
                f"parallel SMO exceeded max_iter={self.params.max_iter} "
                f"(gap {viol.gap():.3e})"
            )

    def _shrink_pass(self, viol: Violators) -> None:
        """Eq. (9) elimination + the δ Allreduce (Alg. 4 lines 27-29).

        The Allreduce happens *before* the mask is applied (same message
        pattern and — in the normal case — same reduced value as folding
        it afterwards): when an over-eager threshold would shrink the
        *global* active set to empty, every rank sees ``delta == 0`` and
        skips the elimination.  Without the guard the empty active
        problem is trivially "converged", the solver reconstructs, the
        bounds have not moved, and the shrink fires again — a
        reconstruction loop that re-evaluates Θ(n·|α>0|) kernels per
        lap without progressing.
        """
        blk = self.blk
        idx, _, _ = blk.active_view()
        mask = shrinkable_mask(
            blk.alpha[idx], blk.y[idx], blk.gamma[idx],
            self.C[idx], viol.beta_up, viol.beta_low,
        )
        n_shrunk = int(np.count_nonzero(mask))
        delta = self.comm.allreduce(blk.n_active - n_shrunk, SUM)
        if delta == 0:
            # every rank reaches the same global decision: keep the
            # current active set and re-arm from the initial threshold
            self.trace.shrink_iters.append(self.iterations)
            self.trace.shrunk_per_event.append(0)
            self.delta_c = max(1.0, self._initial_threshold)
            return
        if n_shrunk:
            blk.active[idx[mask]] = False
            blk.invalidate_active()
        self.trace.shrink_iters.append(self.iterations)
        self.trace.shrunk_per_event.append(n_shrunk)
        if self.heur.subsequent == "active_set":
            self.delta_c = max(1.0, float(delta))
        else:
            self.delta_c = max(1.0, self._initial_threshold)

    def reconstruct(self) -> Violators:
        """Algorithm 3, then a fresh violator election over all samples."""
        gradient_reconstruction(
            self.comm, self.blk, self.kernel, self.iterations, self.trace
        )
        return self.select()

    # ------------------------------------------------------------------
    # phases & drivers
    # ------------------------------------------------------------------
    def run_phase(
        self, viol: Violators, eps: float, shrink_active: bool
    ) -> Violators:
        """Iterate until β_up + 2·eps ≥ β_low on the active problem."""
        while not viol.converged(eps):
            self.iterate_once(viol, shrink_active)
            viol = self.select()
        return viol

    def any_shrunk_global(self) -> bool:
        return bool(self.comm.allreduce(self.blk.n_shrunk, SUM) > 0)

    def solve(self) -> RankResult:
        params, heur = self.params, self.heur
        if self.any_shrunk_global():
            # warm start: blocks arrive with seeded alphas and every
            # sample marked stale; one reconstruction ring builds the
            # exact initial gradients from the seed
            viol = self.reconstruct()
        else:
            viol = self.select()

        if heur.reconstruction == "none":
            viol = self.run_phase(viol, params.eps, shrink_active=False)
        elif heur.reconstruction == "never":
            # CA-SVM-style permanent elimination: shrink, never repair.
            # Fast but approximate — the mode the paper argues against.
            viol = self.run_phase(viol, params.eps, shrink_active=True)
        elif heur.reconstruction == "single":
            viol = self.run_phase(viol, params.eps, shrink_active=heur.shrinks)
            if self.any_shrunk_global():
                viol = self.reconstruct()
                self.shrink_enabled = False
                self.delta_c = math.inf
                viol = self.run_phase(viol, params.eps, shrink_active=False)
        else:  # multi
            eps1 = params.eps * params.shrink_eps_factor
            viol = self.run_phase(viol, eps1, shrink_active=heur.shrinks)
            if self.any_shrunk_global():
                viol = self.reconstruct()
            # each reconstruction re-arms the shrink countdown with the
            # initial threshold (Alg. 5 keeps shrinking "as required";
            # re-arming is what lets the post-20ε phase — where the
            # bounds are tight — drive the active set below 10%, the
            # behaviour §V-D5 reports for real-sim)
            self.delta_c = min(self.delta_c, self._initial_threshold)
            while not viol.converged(params.eps):
                viol = self.run_phase(viol, params.eps, shrink_active=heur.shrinks)
                if self.any_shrunk_global():
                    viol = self.reconstruct()
                self.delta_c = min(self.delta_c, self._initial_threshold)

        beta = self._final_beta(viol)
        return RankResult(
            alpha=self.blk.alpha,
            gamma=self.blk.gamma,
            beta=beta,
            beta_up=viol.beta_up,
            beta_low=viol.beta_low,
            iterations=self.iterations,
            trace=self.trace,
            vtime=self.comm.vtime,
        )

    def _final_beta(self, viol: Violators) -> float:
        """β from the global mean of γ over I0 (§III)."""
        blk = self.blk
        free = free_mask(blk.alpha, self.C)
        local = np.array([blk.gamma[free].sum(), np.count_nonzero(free)])
        total, count = self.comm.allreduce(local, SUM)
        return beta_from_moments(total, count, viol.beta_up, viol.beta_low)


class _ResidentSample:
    """A working-set sample cached on every rank between iterations.

    Holds the broadcast payload plus the kernel column against this
    rank's active rows; ``epoch`` tags which compaction of the active
    set the column was computed for, so a shrink or reconstruction
    invalidates it without touching the cache.  ``alpha`` is refreshed
    on every rank from the redundantly computed pair update, so a cache
    hit needs no payload movement at all.
    """

    __slots__ = ("idx", "vals", "norm", "y", "alpha", "kcol", "epoch")

    def __init__(self, idx, vals, norm, y, alpha) -> None:
        self.idx = idx
        self.vals = vals
        self.norm = norm
        self.y = y
        self.alpha = alpha
        self.kcol = None
        self.epoch = -1


@dataclass
class _PendingShrink:
    """A shrink whose δ Allreduce rides the next violator election."""

    mask: np.ndarray  # over the packed active arrays
    n_shrunk: int
    fire_iteration: int  # iteration number the countdown fired at


class PackedRankSolver(RankSolver):
    """The overhauled per-iteration engine (ISSUE 4 tentpole).

    Produces bitwise-identical (α, β, iteration sequence, kernel-eval
    counts) to :class:`RankSolver` while replacing the three per-
    iteration costs:

    - **Fused election**: one typed :data:`MINLOC_MAXLOC` Allreduce
      carries (β_up, i_up, β_low, i_low) — and, when a shrink countdown
      has fired, the surviving-active-count SUM in a fifth slot —
      instead of two pickled Allreduces plus a separate shrink SUM.
      The fused array op applies the same value-then-lowest-index
      comparisons over the same combine tree, so the elected pair is
      identical; the shrink elimination is deferred one half-step (to
      the election that carries its δ), which changes no elected
      winner because the masked-out candidates are exactly the samples
      the legacy engine had already eliminated by then.
    - **Compacted state**: α/y/γ/C/norms and the active CSR rows live
      in packed arrays (:class:`CompactActiveSet`), rebuilt only at
      shrink/reconstruction events — no ``flatnonzero`` and no
      fancy-index gathers per iteration.
    - **Owner-rooted pair movement**: each working-set sample is
      broadcast from its owning rank (no rank-0 relay), and a
      resident-pair cache skips the broadcast and reuses the kernel
      column when i_up/i_low repeats within one compaction epoch.
      Kernel-eval *accounting* stays the canonical 2·n_active + 3 per
      iteration even on a column-cache hit — the reuse is host-time
      memoization of a bitwise-identical recomputation, and keeping
      the charge preserves eval-count equality with the legacy engine.
    """

    def __init__(
        self,
        comm: Comm,
        blk: LocalBlock,
        part: BlockPartition,
        params: SVMParams,
        heuristic: Heuristic,
    ) -> None:
        super().__init__(comm, blk, part, params, heuristic)
        self.compact = CompactActiveSet(blk, self.C)
        self._resident: dict = {}
        self._pending: "_PendingShrink | None" = None

    # ------------------------------------------------------------------
    # fused election
    # ------------------------------------------------------------------
    def _election_buffer(self, up, low, tail) -> np.ndarray:
        cs = self.compact
        bu, ku, bl, kl = local_extrema(cs.gamma, up, low, 0)
        gi_up = float(cs.gidx[ku]) if ku != NO_INDEX else float(NO_INDEX)
        gi_low = float(cs.gidx[kl]) if kl != NO_INDEX else float(NO_INDEX)
        slots = [bu, gi_up, bl, gi_low]
        if tail is not None:
            slots.append(tail)
        return np.array(slots, dtype=np.float64)

    def select(self) -> Violators:
        """One fused typed Allreduce elects the pair (and settles a
        pending shrink's δ when one rode along)."""
        cs, comm = self.compact, self.comm
        pending = self._pending
        up, low = up_low_masks(cs.alpha, cs.y, cs.C)
        if pending is not None:
            # candidates the deferred shrink will eliminate must not
            # win this election — the legacy engine eliminated them
            # before electing
            if pending.n_shrunk:
                keep = ~pending.mask
                up &= keep
                low &= keep
            tail = float(cs.n_active - pending.n_shrunk)
        else:
            tail = None
        comm.advance(comm.machine.time_flops(8.0 * cs.n_active))
        out = comm.allreduce_buffer(
            self._election_buffer(up, low, tail), MINLOC_MAXLOC
        )
        if pending is not None:
            out = self._resolve_shrink(pending, int(out[4]), out)
        return Violators(
            beta_up=float(out[0]), i_up=int(out[1]), gamma_up=float(out[0]),
            beta_low=float(out[2]), i_low=int(out[3]), gamma_low=float(out[2]),
        )

    def _resolve_shrink(
        self, pending: _PendingShrink, delta: int, out: np.ndarray
    ) -> np.ndarray:
        """Apply (or veto) the deferred elimination now that δ is known."""
        self._pending = None
        cs, blk = self.compact, self.blk
        self.trace.shrink_iters.append(pending.fire_iteration)
        if delta == 0:
            # over-eager global shrink-to-empty: keep the active set,
            # re-arm, and redo the election without the exclusions
            # (the fused winners above were elected over the wrong
            # candidate set; this second Allreduce is the rare path)
            self.trace.shrunk_per_event.append(0)
            self.delta_c = max(1.0, self._initial_threshold)
            up, low = up_low_masks(cs.alpha, cs.y, cs.C)
            self.comm.advance(
                self.comm.machine.time_flops(8.0 * cs.n_active)
            )
            return self.comm.allreduce_buffer(
                self._election_buffer(up, low, None), MINLOC_MAXLOC
            )
        self.trace.shrunk_per_event.append(pending.n_shrunk)
        if pending.n_shrunk:
            cs.flush()
            blk.active[cs.lidx[pending.mask]] = False
            blk.invalidate_active()
            cs.rebuild()
        if self.heur.subsequent == "active_set":
            self.delta_c = max(1.0, float(delta))
        else:
            self.delta_c = max(1.0, self._initial_threshold)
        return out

    # ------------------------------------------------------------------
    # owner-rooted pair movement
    # ------------------------------------------------------------------
    def _fetch_sample(self, gidx: int) -> _ResidentSample:
        ent = self._resident.get(gidx)
        if ent is not None:
            return ent
        comm, blk, cs = self.comm, self.blk, self.compact
        owner = self.part.owner(gidx)
        payload = None
        if comm.rank == owner:
            pay = blk.sample_payload(blk.to_local(gidx), copy=False)
            # blk.alpha is stale between flushes — α lives in the
            # packed array while the sample is active
            payload = pay[:4] + (
                float(cs.alpha[cs.position_of_global(gidx)]),
            )
        payload = comm.bcast(payload, root=owner)
        self.trace.pair_broadcasts += 1
        ent = _ResidentSample(*payload)
        self._resident[gidx] = ent
        return ent

    def fetch_pair(self, viol: Violators):
        """Broadcast each sample from its owner; resident samples are
        free.

        The cache is coherent without invalidation: a sample's row, y
        and norm never change, and its α changes only while it is *in*
        the working set — at which moment every rank recomputes the
        update redundantly and refreshes the entry.  Every rank runs
        the same broadcast sequence, so the cache contents are
        identical everywhere and the hit/miss decision needs no
        coordination.
        """
        return self._fetch_sample(viol.i_up), self._fetch_sample(viol.i_low)

    def _kernel_columns(
        self, ent_up: _ResidentSample, ent_low: _ResidentSample
    ) -> tuple:
        """Φ(sample, active rows) for both pair samples, memoized per
        compaction epoch.

        Uncached columns are produced by one blocked call (both at
        once on a full miss).  Bitwise identical to the legacy 2-column
        call however the batch splits: column j of ``kernel.block``
        equals the single-column product (see
        :meth:`CSRMatrix.dot_csr_t`), and the kernel maps are pure
        elementwise expressions.
        """
        cs = self.compact
        need = [
            e
            for e in (ent_up, ent_low)
            if e.kcol is None or e.epoch != cs.epoch
        ]
        if need:
            rows = CSRMatrix.from_rows(
                [(e.idx, e.vals) for e in need], self.blk.X.shape[1]
            )
            cols = self.kernel.block(
                cs.Xa, cs.norms, rows, np.array([e.norm for e in need])
            )
            for j, e in enumerate(need):
                e.kcol = cols[:, j]
                e.epoch = cs.epoch
        return ent_up.kcol, ent_low.kcol

    # ------------------------------------------------------------------
    # the packed iteration
    # ------------------------------------------------------------------
    def iterate_once(self, viol: Violators, shrink_active: bool) -> None:
        comm, cs, kernel = self.comm, self.compact, self.kernel
        ent_up, ent_low = self.fetch_pair(viol)
        yu, au = ent_up.y, ent_up.alpha
        yl, al = ent_low.y, ent_low.alpha

        k_uu = kernel.self_value(ent_up.norm)
        k_ll = kernel.self_value(ent_low.norm)
        k_ul = kernel.pair(
            (ent_up.idx, ent_up.vals, ent_up.norm),
            (ent_low.idx, ent_low.vals, ent_low.norm),
        )
        new_up, new_low = solve_pair(
            k_uu, k_ll, k_ul, yu, yl, au, al,
            viol.gamma_up, viol.gamma_low,
            self.params.box_for(yu), self.params.box_for(yl),
        )
        d_up = new_up - au
        d_low = new_low - al

        k_up_col, k_low_col = self._kernel_columns(ent_up, ent_low)
        apply_pair_update(cs.gamma, k_up_col, k_low_col, yu, yl, d_up, d_low)
        if self.blk.owns_global(viol.i_up):
            cs.alpha[cs.position_of_global(viol.i_up)] = new_up
        if self.blk.owns_global(viol.i_low):
            cs.alpha[cs.position_of_global(viol.i_low)] = new_low
        # every rank computed the update redundantly — keep the cached
        # payloads current so a repeat election moves no bytes
        ent_up.alpha = new_up
        ent_low.alpha = new_low

        evals = 2 * cs.n_active + 3
        self.trace.kernel_evals += evals
        self.trace.iter_kernel_evals += evals
        comm.charge_kernel_evals(evals, self.avg_nnz)

        if shrink_active:
            self.delta_c -= 1
            if self.delta_c <= 0:
                mask = shrinkable_mask(
                    cs.alpha, cs.y, cs.gamma, cs.C,
                    viol.beta_up, viol.beta_low,
                )
                self._pending = _PendingShrink(
                    mask=mask,
                    n_shrunk=int(np.count_nonzero(mask)),
                    fire_iteration=self.iterations,
                )

        self.trace.record_iteration(cs.n_active)
        if comm.rank == 0:
            self.trace.gap_history.append(viol.gap())
        self.iterations += 1
        if self.params.max_iter and self.iterations > self.params.max_iter:
            raise ConvergenceError(
                f"parallel SMO exceeded max_iter={self.params.max_iter} "
                f"(gap {viol.gap():.3e})"
            )

    # ------------------------------------------------------------------
    # event boundaries: flush packed state back into the block
    # ------------------------------------------------------------------
    def reconstruct(self) -> Violators:
        assert self._pending is None, "shrink unresolved at reconstruction"
        self.compact.flush()
        gradient_reconstruction(
            self.comm, self.blk, self.kernel, self.iterations, self.trace
        )
        self.compact.rebuild()
        return self.select()

    def _final_beta(self, viol: Violators) -> float:
        assert self._pending is None, "shrink unresolved at finalization"
        self.compact.flush()
        return super()._final_beta(viol)


#: engine registry — "packed" is the default; "legacy" keeps the
#: original relay-and-two-Allreduce path alive for A/B equivalence
#: tests and the before/after benchmark
ENGINES = {"packed": PackedRankSolver, "legacy": RankSolver}


def solve_rank(
    comm: Comm,
    blk: LocalBlock,
    part: BlockPartition,
    params: SVMParams,
    heuristic: Heuristic,
    engine: str = "packed",
) -> RankResult:
    """Entry point executed by :func:`repro.mpi.run_spmd` on each rank."""
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {sorted(ENGINES)}"
        ) from None
    return cls(comm, blk, part, params, heuristic).solve()
