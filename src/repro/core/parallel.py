"""The distributed SMO engine — Algorithms 2, 4 and 5.

One :class:`RankSolver` runs per simulated MPI rank.  The engine is a
single iteration loop parameterized by the shrinking heuristic:

- ``original`` (Algorithm 2): shrinking never fires;
- ``single*`` (Algorithm 4): shrink until the active problem converges
  at 2ε, reconstruct gradients once, disable shrinking, finish exactly;
- ``multi*`` (Algorithm 5): converge the shrunk problem at 20ε,
  reconstruct, then repeat [converge at 2ε → reconstruct] until a
  reconstruction certifies global optimality.

Every iteration performs, per the paper:

1. route the two working-set samples through rank 0 and broadcast them
   (Algorithm 2 lines 3-9);
2. the analytic α pair update, redundantly on every rank (3 kernel
   evaluations, Eq. 6-7);
3. the γ update over the rank's *active* samples (2 kernel-row
   evaluations, Eq. 2), plus set bookkeeping;
4. optionally a shrink pass (Eq. 9) when the countdown δ_c fires,
   followed by the Allreduce that establishes the next threshold from
   the global active-set size (§IV-A2);
5. two scalar Allreduces (MINLOC/MAXLOC) electing the next worst
   violators (Eq. 3).

Determinism: value ties in the violator election break toward the
smallest global index, so the iteration sequence — and therefore the
returned model — is bitwise identical for every process count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..kernels import Kernel, KernelColumnCache
from ..mpi.communicator import Comm
from ..mpi.reduceops import MAXLOC, MAXLOC_PAYLOAD, MINLOC, MINLOC_MAXLOC, SUM
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from .gradient import apply_pair_update
from .params import ConvergenceError, SVMParams
from .reconstruction import gradient_reconstruction
from .sets import free_mask, low_mask, shrinkable_mask, up_low_masks, up_mask
from .shrinking import Heuristic
from .state import CompactActiveSet, LocalBlock
from .trace import RankTrace
from .wss import (
    NO_INDEX,
    Violators,
    beta_from_moments,
    local_extrema,
    solve_pair,
)
from .wss_policies import (
    MAX_CONSECUTIVE_REUSES,
    PoolSample,
    ReusePool,
    get_wss_policy,
    second_order_best,
)

TAG_SAMPLE_UP = 1
TAG_SAMPLE_LOW = 2


@dataclass
class RankResult:
    """Everything a rank returns to the driver."""

    alpha: np.ndarray
    gamma: np.ndarray
    beta: float
    beta_up: float
    beta_low: float
    iterations: int
    trace: RankTrace
    vtime: float


class RankSolver:
    """Per-rank solver state machine."""

    def __init__(
        self,
        comm: Comm,
        blk: LocalBlock,
        part: BlockPartition,
        params: SVMParams,
        heuristic: Heuristic,
        *,
        wss="mvp",
        cache_bytes: int = 0,
        warm_seeded: bool = False,
    ) -> None:
        self.comm = comm
        self.blk = blk
        self.part = part
        self.params = params
        self.heur = heuristic
        #: the block arrived with trusted (exact) gradients: inactive
        #: samples are a deliberate warm-start active-set seed, not a
        #: stale-α marker, so the solve skips the initial
        #: reconstruction ring and lets the heuristic's normal
        #: end-of-phase reconstruction verify them later
        self.warm_seeded = warm_seeded
        self.kernel: Kernel = params.kernel
        self.C = params.box_for(blk.y)  # per-sample box constraints
        self.trace = RankTrace(rank=comm.rank, n_local=blk.n_local)
        self.iterations = 0
        self._initial_threshold = heuristic.initial_threshold(part.n)
        self.delta_c = self._initial_threshold
        self.shrink_enabled = heuristic.shrinks
        self.avg_nnz = blk.X.avg_row_nnz or 1.0
        # working-set-selection policy + training-side column cache.
        # The provider path (columns produced one at a time through the
        # cache, actual evals charged) engages for any non-mvp policy or
        # a positive budget; the default mvp/budget-0 combination keeps
        # the historical cache-free code paths bitwise untouched.
        self.wss = get_wss_policy(wss)
        self._colcache = (
            KernelColumnCache(int(cache_bytes))
            if (int(cache_bytes) > 0 or self.wss.uses_provider)
            else None
        )
        self._phase_eps = params.eps  # eps of the phase currently running
        self._epoch = 0  # active-set epoch (bumped on shrink/reconstruct)
        self._diag_memo: "tuple | None" = None
        self._payloads: dict = {}  # gidx -> mutable payload (non-mvp only)
        # planning-ahead reuse pool (tracked recent working-set samples)
        self._pool = (
            ReusePool(self.kernel)
            if self.wss.reuse_eta is not None
            else None
        )
        self._last_gain = math.inf  # gain of the last elected pair
        self._reuse_run = 0  # consecutive reuses since the last election

    # ------------------------------------------------------------------
    # elementary steps
    # ------------------------------------------------------------------
    def select(self) -> Violators:
        """Elect the next working pair under the configured WSS policy.

        ``mvp`` runs the historical first-order election unchanged; the
        second-order policies run the two-phase election, and
        ``planning_ahead`` first tries a zero-communication reuse of the
        previous pair.
        """
        if self.wss.reuse_eta is not None:
            viol = self._take_reuse()
            if viol is not None:
                return viol
        if self.wss.second_order:
            return self._select_second_order()
        return self._select_mvp()

    def _select_mvp(self) -> Violators:
        """Local extrema over the active set + global MINLOC/MAXLOC election."""
        blk = self.blk
        idx, _, _ = blk.active_view()
        a = blk.alpha[idx]
        yv = blk.y[idx]
        g = blk.gamma[idx]
        Cv = self.C[idx]
        up = up_mask(a, yv, Cv)
        low = low_mask(a, yv, Cv)
        bu, ku, bl, kl = local_extrema(
            g, up, low, 0, rank=self.comm.rank, local_indices=idx
        )
        gi_up = blk.global_start + int(idx[ku]) if ku != NO_INDEX else NO_INDEX
        gi_low = blk.global_start + int(idx[kl]) if kl != NO_INDEX else NO_INDEX
        # a handful of flops per active sample for masks and argmin/argmax
        self.comm.advance(self.comm.machine.time_flops(8.0 * idx.size))
        up_v, up_i = self.comm.allreduce((bu, gi_up), MINLOC)
        low_v, low_i = self.comm.allreduce((bl, gi_low), MAXLOC)
        return Violators(
            beta_up=up_v, i_up=up_i, gamma_up=up_v,
            beta_low=low_v, i_low=low_i, gamma_low=low_v,
        )

    def _select_second_order(self) -> Violators:
        """Two-phase WSS2 election (legacy comm pattern).

        Phase A is the first-order election (two pickled allreduces) —
        its β_low remains the convergence bound, and on a converged (or
        empty) phase the first-order pair is returned directly.  Phase B
        broadcasts the up sample, scores every local low candidate by
        b²/a against the up sample's local kernel column, and combines
        (gain, global index, γ_j) with one MAXLOC_PAYLOAD allreduce.
        """
        blk, comm = self.blk, self.comm
        idx, Xa, na = blk.active_view()
        a = blk.alpha[idx]
        yv = blk.y[idx]
        g = blk.gamma[idx]
        Cv = self.C[idx]
        up, low = up_low_masks(a, yv, Cv)
        bu, ku, bl, kl = local_extrema(
            g, up, low, 0, rank=comm.rank, local_indices=idx
        )
        gi_up = blk.global_start + int(idx[ku]) if ku != NO_INDEX else NO_INDEX
        gi_low = blk.global_start + int(idx[kl]) if kl != NO_INDEX else NO_INDEX
        comm.advance(comm.machine.time_flops(8.0 * idx.size))
        up_v, up_i = comm.allreduce((bu, gi_up), MINLOC)
        low_v, low_i = comm.allreduce((bl, gi_low), MAXLOC)
        first = Violators(
            beta_up=up_v, i_up=up_i, gamma_up=up_v,
            beta_low=low_v, i_low=low_i, gamma_low=low_v,
        )
        self._reuse_run = 0
        if (
            up_i == NO_INDEX
            or low_i == NO_INDEX
            or first.converged(self._phase_eps)
        ):
            return first
        pay_up = self._fetch_one(up_i, TAG_SAMPLE_UP)
        k_uu = self.kernel.self_value(pay_up[2])
        kcol_up = self._column(up_i, pay_up, Xa, na)
        diag = self._diag(na)
        # curvature scores: ~a dozen flops per low candidate
        comm.advance(comm.machine.time_flops(12.0 * idx.size))
        gain, j, gamma_j = second_order_best(
            g, low, kcol_up, diag, k_uu, up_v, blk.global_start + idx
        )
        out = comm.allreduce((gain, j, gamma_j), MAXLOC_PAYLOAD)
        self.trace.wss_elections += 1
        if int(out[1]) == NO_INDEX:
            # unreachable while phase A reports a violator (that sample
            # itself has positive b) — kept as a safe first-order step
            return first
        self._last_gain = float(out[0])
        return Violators(
            beta_up=up_v, i_up=up_i, gamma_up=up_v,
            beta_low=low_v, i_low=int(out[1]), gamma_low=float(out[2]),
        )

    # ------------------------------------------------------------------
    # planning-ahead reuse (shared by both engines)
    # ------------------------------------------------------------------
    def _take_reuse(self) -> "Violators | None":
        """Step a still-violating pool pair with zero communication.

        Allowed only when every rank reaches the same decision from
        redundantly known values: no pending/imminent shrink (the next
        election must carry fresh global bounds for the shrink mask),
        pool still valid for this active-set epoch, some pool pair
        still violating at the phase ε, projected gain at least
        ``reuse_eta`` of the last elected gain, and fewer than
        MAX_CONSECUTIVE_REUSES reuses since the last election.
        """
        if self._pool is None or len(self._pool) == 0:
            return None
        if self._reuse_run >= MAX_CONSECUTIVE_REUSES:
            return None
        if getattr(self, "_pending", None) is not None:
            return None
        if self.shrink_enabled and self.delta_c <= 1:
            # also keeps the shrink countdown from firing mid-reuse,
            # where viol carries pair γ instead of global β bounds
            return None
        best = self._pool.best_pair(self._phase_eps)
        self._charge_pool_evals()
        if best is None or best[0] < self.wss.reuse_eta * self._last_gain:
            return None
        gain, up, low = best
        self._reuse_run += 1
        self.trace.wss_reuses += 1
        return Violators(
            beta_up=up.gamma, i_up=up.gidx, gamma_up=up.gamma,
            beta_low=low.gamma, i_low=low.gidx, gamma_low=low.gamma,
        )

    def _charge_pool_evals(self) -> None:
        """Charge pair kernels the pool actually produced (memo misses
        — identical on every rank, so the virtual clocks stay aligned)."""
        n = self._pool.take_new_evals()
        if n:
            self.trace.kernel_evals += n
            self.trace.iter_kernel_evals += n
            self.comm.charge_kernel_evals(n, self.avg_nnz)

    def _observe_pair(
        self, viol, row_up, row_low, yu, yl, new_up, new_low,
        k_uu, k_ll, k_ul, d_up, d_low,
    ) -> None:
        """Fold the just-computed pair update into the reuse pool.

        The pair's new γ values replicate
        :func:`~repro.core.gradient.apply_pair_update` term by term
        (including the skip-on-zero-coefficient branches), so they are
        bitwise equal to the owner's array entries; bystander γ
        maintenance inside the pool applies the same arithmetic with
        locally computed pair kernels.
        """
        coef_up = yu * d_up
        coef_low = yl * d_low
        g_u, g_l = viol.gamma_up, viol.gamma_low
        if coef_up != 0.0:
            g_u = g_u + coef_up * k_uu
            g_l = g_l + coef_up * k_ul
        if coef_low != 0.0:
            g_u = g_u + coef_low * k_ul
            g_l = g_l + coef_low * k_ll
        pool = self._pool
        pool.seed_k(viol.i_up, viol.i_up, k_uu)
        pool.seed_k(viol.i_low, viol.i_low, k_ll)
        pool.seed_k(viol.i_up, viol.i_low, k_ul)
        pool.observe_update(
            PoolSample(
                gidx=viol.i_up, row=row_up, y=yu,
                C=self.params.box_for(yu), alpha=new_up, gamma=g_u,
            ),
            PoolSample(
                gidx=viol.i_low, row=row_low, y=yl,
                C=self.params.box_for(yl), alpha=new_low, gamma=g_l,
            ),
            coef_up, coef_low,
        )
        self._charge_pool_evals()

    # ------------------------------------------------------------------
    # training-side kernel-column provider (non-mvp policies / cache on)
    # ------------------------------------------------------------------
    def _column(self, gidx, payload, Xa, na) -> np.ndarray:
        """Φ(sample, active rows) through the per-rank column cache.

        Only actual production charges kernel evaluations — unlike the
        canonical accounting, a cache hit is free, which is the whole
        point of the budgeted cache.
        """
        cache = self._colcache
        col = cache.get(gidx)
        if col is None:
            rows = CSRMatrix.from_rows(
                [(payload[0], payload[1])], self.blk.X.shape[1]
            )
            col = self.kernel.block(Xa, na, rows, np.array([payload[2]]))[:, 0]
            cache.put(gidx, col)
            n = int(na.shape[0])
            self.trace.kernel_evals += n
            self.trace.iter_kernel_evals += n
            self.comm.charge_kernel_evals(n, self.avg_nnz)
        return col

    def _diag(self, norms_active) -> np.ndarray:
        """Φ(x_j, x_j) over the active rows, memoized per epoch (libsvm's
        QD vector); charged once per epoch like any produced column."""
        if self._diag_memo is not None and self._diag_memo[0] == self._epoch:
            return self._diag_memo[1]
        d = self.kernel.diag(norms_active)
        n = int(norms_active.shape[0])
        self.trace.kernel_evals += n
        self.trace.iter_kernel_evals += n
        self.comm.charge_kernel_evals(n, self.avg_nnz)
        self._diag_memo = (self._epoch, d)
        return d

    def _bump_epoch(self) -> None:
        """The active set changed: columns, diag and reuse plan are stale.

        The sample-payload stash survives — rows/y are immutable and α
        is refreshed redundantly after every pair update.
        """
        self._epoch += 1
        if self._colcache is not None:
            self._colcache.bump_epoch()
        self._diag_memo = None
        if self._pool is not None:
            # a shrunk sample must not be re-elected; the pool refills
            # from post-event broadcasts, which are all active
            self._pool.clear()

    def _fetch_one(self, gidx: int, tag: int):
        """Route one sample via rank 0 and broadcast it, with a stash.

        The stash contents are identical on every rank (every payload
        arrives by broadcast and α refreshes are redundant), so the
        hit/miss decision — and hence the communication pattern — needs
        no coordination.
        """
        ent = self._payloads.get(gidx)
        if ent is not None:
            return ent
        comm, blk = self.comm, self.blk
        owner = self.part.owner(gidx)
        payload = None
        if comm.rank == owner:
            if owner == 0:
                payload = blk.sample_payload(blk.to_local(gidx), copy=False)
            else:
                comm.send(blk.sample_payload(blk.to_local(gidx)), 0, tag)
        if comm.rank == 0 and owner != 0:
            payload = comm.recv(source=owner, tag=tag)
        payload = comm.bcast(payload, root=0)
        self.trace.pair_broadcasts += 1
        ent = list(payload)
        self._payloads[gidx] = ent
        return ent

    def fetch_pair(self, viol: Violators):
        """Route the two working-set samples via rank 0, then broadcast."""
        if self.wss.name != "mvp":
            # stash-aware movement: a sample already resident on every
            # rank (e.g. the phase-B up sample, or a reused pair) is free
            return (
                self._fetch_one(viol.i_up, TAG_SAMPLE_UP),
                self._fetch_one(viol.i_low, TAG_SAMPLE_LOW),
            )
        comm, blk = self.comm, self.blk
        payloads = [None, None]
        for slot, (gidx, tag) in enumerate(
            ((viol.i_up, TAG_SAMPLE_UP), (viol.i_low, TAG_SAMPLE_LOW))
        ):
            owner = self.part.owner(gidx)
            if comm.rank == owner:
                if owner == 0:
                    # consumed locally and only pickled at the bcast —
                    # CSR views are safe, skip the copy
                    payloads[slot] = blk.sample_payload(
                        blk.to_local(gidx), copy=False
                    )
                else:
                    comm.send(blk.sample_payload(blk.to_local(gidx)), 0, tag)
            if comm.rank == 0 and owner != 0:
                payloads[slot] = comm.recv(source=owner, tag=tag)
        self.trace.pair_broadcasts += 2
        return comm.bcast(tuple(payloads), root=0)

    def iterate_once(self, viol: Violators, shrink_active: bool) -> None:
        """One SMO step: α pair update, γ update, optional shrink pass."""
        comm, blk, kernel = self.comm, self.blk, self.kernel
        pay_up, pay_low = self.fetch_pair(viol)
        ui, uv, un, yu, au = pay_up
        li, lv, ln, yl, al = pay_low

        k_uu = kernel.self_value(un)
        k_ll = kernel.self_value(ln)
        k_ul = kernel.pair((ui, uv, un), (li, lv, ln))
        new_up, new_low = solve_pair(
            k_uu, k_ll, k_ul, yu, yl, au, al,
            viol.gamma_up, viol.gamma_low,
            self.params.box_for(yu), self.params.box_for(yl),
        )
        d_up = new_up - au
        d_low = new_low - al

        idx, Xa, na = blk.active_view()
        if self._colcache is None:
            # both gradient-update kernel columns from one blocked call
            pair = CSRMatrix.from_rows([(ui, uv), (li, lv)], blk.X.shape[1])
            k_cols = kernel.block(Xa, na, pair, np.array([un, ln]))
            k_up_col, k_low_col = k_cols[:, 0], k_cols[:, 1]
            evals = 2 * idx.size + 3
        else:
            # provider path: columns charge on production in _column,
            # only the 3 pair evaluations are charged here
            k_up_col = self._column(viol.i_up, pay_up, Xa, na)
            k_low_col = self._column(viol.i_low, pay_low, Xa, na)
            evals = 3
        gsub = blk.gamma[idx]
        apply_pair_update(gsub, k_up_col, k_low_col, yu, yl, d_up, d_low)
        blk.gamma[idx] = gsub
        if blk.owns_global(viol.i_up):
            blk.alpha[blk.to_local(viol.i_up)] = new_up
        if blk.owns_global(viol.i_low):
            blk.alpha[blk.to_local(viol.i_low)] = new_low
        if self.wss.name != "mvp":
            # keep the redundantly known stash α current
            ent = self._payloads.get(viol.i_up)
            if ent is not None:
                ent[4] = new_up
            ent = self._payloads.get(viol.i_low)
            if ent is not None:
                ent[4] = new_low
        if self.wss.reuse_eta is not None:
            self._observe_pair(
                viol, (ui, uv, un), (li, lv, ln), yu, yl, new_up, new_low,
                k_uu, k_ll, k_ul, d_up, d_low,
            )

        self.trace.kernel_evals += evals
        self.trace.iter_kernel_evals += evals
        comm.charge_kernel_evals(evals, self.avg_nnz)

        if shrink_active:
            self.delta_c -= 1
            if self.delta_c <= 0:
                self._shrink_pass(viol)

        self.trace.record_iteration(blk.n_active)
        if comm.rank == 0:
            self.trace.gap_history.append(viol.gap())
        self.iterations += 1
        if self.params.max_iter and self.iterations > self.params.max_iter:
            raise ConvergenceError(
                f"parallel SMO exceeded max_iter={self.params.max_iter} "
                f"(gap {viol.gap():.3e})"
            )

    def _shrink_pass(self, viol: Violators) -> None:
        """Eq. (9) elimination + the δ Allreduce (Alg. 4 lines 27-29).

        The Allreduce happens *before* the mask is applied (same message
        pattern and — in the normal case — same reduced value as folding
        it afterwards): when an over-eager threshold would shrink the
        *global* active set to empty, every rank sees ``delta == 0`` and
        skips the elimination.  Without the guard the empty active
        problem is trivially "converged", the solver reconstructs, the
        bounds have not moved, and the shrink fires again — a
        reconstruction loop that re-evaluates Θ(n·|α>0|) kernels per
        lap without progressing.
        """
        blk = self.blk
        idx, _, _ = blk.active_view()
        mask = shrinkable_mask(
            blk.alpha[idx], blk.y[idx], blk.gamma[idx],
            self.C[idx], viol.beta_up, viol.beta_low,
        )
        n_shrunk = int(np.count_nonzero(mask))
        delta = self.comm.allreduce(blk.n_active - n_shrunk, SUM)
        if delta == 0:
            # every rank reaches the same global decision: keep the
            # current active set and re-arm from the initial threshold
            self.trace.shrink_iters.append(self.iterations)
            self.trace.shrunk_per_event.append(0)
            self.delta_c = max(1.0, self._initial_threshold)
            return
        if n_shrunk:
            blk.active[idx[mask]] = False
            blk.invalidate_active()
        # collective (delta != 0 on every rank): the reuse plan lives on
        # all ranks and must drop everywhere or the reuse decision —
        # and with it the communication pattern — would diverge
        self._bump_epoch()
        self.trace.shrink_iters.append(self.iterations)
        self.trace.shrunk_per_event.append(n_shrunk)
        if self.heur.subsequent == "active_set":
            self.delta_c = max(1.0, float(delta))
        else:
            self.delta_c = max(1.0, self._initial_threshold)

    def reconstruct(self) -> Violators:
        """Algorithm 3, then a fresh violator election over all samples."""
        gradient_reconstruction(
            self.comm, self.blk, self.kernel, self.iterations, self.trace
        )
        self._bump_epoch()
        self._last_gain = math.inf
        return self.select()

    # ------------------------------------------------------------------
    # phases & drivers
    # ------------------------------------------------------------------
    def run_phase(
        self, viol: Violators, eps: float, shrink_active: bool
    ) -> Violators:
        """Iterate until β_up + 2·eps ≥ β_low on the active problem."""
        self._phase_eps = eps  # reuse/phase-B decisions test this bound
        while not viol.converged(eps):
            self.iterate_once(viol, shrink_active)
            viol = self.select()
        return viol

    def any_shrunk_global(self) -> bool:
        return bool(self.comm.allreduce(self.blk.n_shrunk, SUM) > 0)

    def solve(self) -> RankResult:
        params, heur = self.params, self.heur
        if not self.warm_seeded and self.any_shrunk_global():
            # warm start: blocks arrive with seeded alphas and every
            # sample marked stale; one reconstruction ring builds the
            # exact initial gradients from the seed
            viol = self.reconstruct()
        else:
            # cold start, or a warm-seeded block whose gradients are
            # exact by contract (warm_start_gamma): go straight to
            # selection — any seeded-inactive samples re-enter through
            # the heuristic's ordinary reconstruction passes below
            viol = self.select()

        if heur.reconstruction == "none":
            viol = self.run_phase(viol, params.eps, shrink_active=False)
        elif heur.reconstruction == "never":
            # CA-SVM-style permanent elimination: shrink, never repair.
            # Fast but approximate — the mode the paper argues against.
            viol = self.run_phase(viol, params.eps, shrink_active=True)
        elif heur.reconstruction == "single":
            viol = self.run_phase(viol, params.eps, shrink_active=heur.shrinks)
            if self.any_shrunk_global():
                viol = self.reconstruct()
                self.shrink_enabled = False
                self.delta_c = math.inf
                viol = self.run_phase(viol, params.eps, shrink_active=False)
        else:  # multi
            eps1 = params.eps * params.shrink_eps_factor
            viol = self.run_phase(viol, eps1, shrink_active=heur.shrinks)
            if self.any_shrunk_global():
                viol = self.reconstruct()
            # each reconstruction re-arms the shrink countdown with the
            # initial threshold (Alg. 5 keeps shrinking "as required";
            # re-arming is what lets the post-20ε phase — where the
            # bounds are tight — drive the active set below 10%, the
            # behaviour §V-D5 reports for real-sim)
            self.delta_c = min(self.delta_c, self._initial_threshold)
            while not viol.converged(params.eps):
                viol = self.run_phase(viol, params.eps, shrink_active=heur.shrinks)
                if self.any_shrunk_global():
                    viol = self.reconstruct()
                self.delta_c = min(self.delta_c, self._initial_threshold)

        if self._colcache is not None:
            self.trace.cache_hits = self._colcache.hits
            self.trace.cache_misses = self._colcache.misses
        beta = self._final_beta(viol)
        return RankResult(
            alpha=self.blk.alpha,
            gamma=self.blk.gamma,
            beta=beta,
            beta_up=viol.beta_up,
            beta_low=viol.beta_low,
            iterations=self.iterations,
            trace=self.trace,
            vtime=self.comm.vtime,
        )

    def _final_beta(self, viol: Violators) -> float:
        """β from the global mean of γ over I0 (§III)."""
        blk = self.blk
        free = free_mask(blk.alpha, self.C)
        local = np.array([blk.gamma[free].sum(), np.count_nonzero(free)])
        total, count = self.comm.allreduce(local, SUM)
        return beta_from_moments(total, count, viol.beta_up, viol.beta_low)


class _ResidentSample:
    """A working-set sample cached on every rank between iterations.

    Holds the broadcast payload plus the kernel column against this
    rank's active rows; ``epoch`` tags which compaction of the active
    set the column was computed for, so a shrink or reconstruction
    invalidates it without touching the cache.  ``alpha`` is refreshed
    on every rank from the redundantly computed pair update, so a cache
    hit needs no payload movement at all.
    """

    __slots__ = ("idx", "vals", "norm", "y", "alpha", "kcol", "epoch", "gidx")

    def __init__(self, idx, vals, norm, y, alpha) -> None:
        self.idx = idx
        self.vals = vals
        self.norm = norm
        self.y = y
        self.alpha = alpha
        self.kcol = None
        self.epoch = -1
        self.gidx = NO_INDEX  # set by the fetch that registers the entry


@dataclass
class _PendingShrink:
    """A shrink whose δ Allreduce rides the next violator election."""

    mask: np.ndarray  # over the packed active arrays
    n_shrunk: int
    fire_iteration: int  # iteration number the countdown fired at


class PackedRankSolver(RankSolver):
    """The overhauled per-iteration engine (ISSUE 4 tentpole).

    Produces bitwise-identical (α, β, iteration sequence, kernel-eval
    counts) to :class:`RankSolver` while replacing the three per-
    iteration costs:

    - **Fused election**: one typed :data:`MINLOC_MAXLOC` Allreduce
      carries (β_up, i_up, β_low, i_low) — and, when a shrink countdown
      has fired, the surviving-active-count SUM in a fifth slot —
      instead of two pickled Allreduces plus a separate shrink SUM.
      The fused array op applies the same value-then-lowest-index
      comparisons over the same combine tree, so the elected pair is
      identical; the shrink elimination is deferred one half-step (to
      the election that carries its δ), which changes no elected
      winner because the masked-out candidates are exactly the samples
      the legacy engine had already eliminated by then.
    - **Compacted state**: α/y/γ/C/norms and the active CSR rows live
      in packed arrays (:class:`CompactActiveSet`), rebuilt only at
      shrink/reconstruction events — no ``flatnonzero`` and no
      fancy-index gathers per iteration.
    - **Owner-rooted pair movement**: each working-set sample is
      broadcast from its owning rank (no rank-0 relay), and a
      resident-pair cache skips the broadcast and reuses the kernel
      column when i_up/i_low repeats within one compaction epoch.
      Kernel-eval *accounting* stays the canonical 2·n_active + 3 per
      iteration even on a column-cache hit — the reuse is host-time
      memoization of a bitwise-identical recomputation, and keeping
      the charge preserves eval-count equality with the legacy engine.
    """

    def __init__(
        self,
        comm: Comm,
        blk: LocalBlock,
        part: BlockPartition,
        params: SVMParams,
        heuristic: Heuristic,
        *,
        wss="mvp",
        cache_bytes: int = 0,
        warm_seeded: bool = False,
    ) -> None:
        super().__init__(
            comm, blk, part, params, heuristic,
            wss=wss, cache_bytes=cache_bytes, warm_seeded=warm_seeded,
        )
        self.compact = CompactActiveSet(blk, self.C)
        self._resident: dict = {}
        self._pending: "_PendingShrink | None" = None

    # ------------------------------------------------------------------
    # fused election
    # ------------------------------------------------------------------
    def _election_buffer(self, up, low, tail) -> np.ndarray:
        cs = self.compact
        bu, ku, bl, kl = local_extrema(
            cs.gamma, up, low, 0,
            rank=self.comm.rank, local_indices=cs.lidx,
        )
        gi_up = float(cs.gidx[ku]) if ku != NO_INDEX else float(NO_INDEX)
        gi_low = float(cs.gidx[kl]) if kl != NO_INDEX else float(NO_INDEX)
        slots = [bu, gi_up, bl, gi_low]
        if tail is not None:
            slots.append(tail)
        return np.array(slots, dtype=np.float64)

    def _select_mvp(self) -> Violators:
        """One fused typed Allreduce elects the pair (and settles a
        pending shrink's δ when one rode along)."""
        cs, comm = self.compact, self.comm
        pending = self._pending
        up, low = up_low_masks(cs.alpha, cs.y, cs.C)
        if pending is not None:
            # candidates the deferred shrink will eliminate must not
            # win this election — the legacy engine eliminated them
            # before electing
            if pending.n_shrunk:
                keep = ~pending.mask
                up &= keep
                low &= keep
            tail = float(cs.n_active - pending.n_shrunk)
        else:
            tail = None
        comm.advance(comm.machine.time_flops(8.0 * cs.n_active))
        out = comm.allreduce_buffer(
            self._election_buffer(up, low, tail), MINLOC_MAXLOC
        )
        if pending is not None:
            out = self._resolve_shrink(pending, int(out[4]), out)
        return Violators(
            beta_up=float(out[0]), i_up=int(out[1]), gamma_up=float(out[0]),
            beta_low=float(out[2]), i_low=int(out[3]), gamma_low=float(out[2]),
        )

    def _select_second_order(self) -> Violators:
        """Two-phase WSS2 election on the packed engine.

        Phase A is the unchanged fused MINLOC_MAXLOC allreduce —
        including the pending-shrink δ tail and candidate exclusions —
        so shrink semantics are identical to ``mvp``.  Phase B fetches
        the elected up sample (owner-rooted broadcast, resident-cache
        aware), scores the local low candidates by b²/a against its
        kernel column, and combines (gain, global index, γ_j) with one
        typed MAXLOC_PAYLOAD allreduce.  β_low from phase A remains the
        convergence bound (libsvm's WSS2 stopping rule).
        """
        cs, comm = self.compact, self.comm
        pending = self._pending
        up, low = up_low_masks(cs.alpha, cs.y, cs.C)
        if pending is not None:
            if pending.n_shrunk:
                keep = ~pending.mask
                up &= keep
                low &= keep
            tail = float(cs.n_active - pending.n_shrunk)
        else:
            tail = None
        comm.advance(comm.machine.time_flops(8.0 * cs.n_active))
        out = comm.allreduce_buffer(
            self._election_buffer(up, low, tail), MINLOC_MAXLOC
        )
        if pending is not None:
            out = self._resolve_shrink(pending, int(out[4]), out)
            # the shrink (or its veto) may have recompacted the arrays;
            # phase B scores over the post-resolution candidate set
            up, low = up_low_masks(cs.alpha, cs.y, cs.C)
        beta_up, i_up = float(out[0]), int(out[1])
        beta_low, i_low1 = float(out[2]), int(out[3])
        first = Violators(
            beta_up=beta_up, i_up=i_up, gamma_up=beta_up,
            beta_low=beta_low, i_low=i_low1, gamma_low=beta_low,
        )
        self._reuse_run = 0
        if (
            i_up == NO_INDEX
            or i_low1 == NO_INDEX
            or first.converged(self._phase_eps)
        ):
            return first
        ent_up = self._fetch_sample(i_up)
        k_uu = self.kernel.self_value(ent_up.norm)
        kcol_up = self._column_packed(ent_up)
        diag = self._diag(cs.norms)
        comm.advance(comm.machine.time_flops(12.0 * cs.n_active))
        gain, j, gamma_j = second_order_best(
            cs.gamma, low, kcol_up, diag, k_uu, beta_up, cs.gidx
        )
        out2 = comm.allreduce_buffer(
            np.array([gain, float(j), gamma_j], dtype=np.float64),
            MAXLOC_PAYLOAD,
        )
        self.trace.wss_elections += 1
        if int(out2[1]) == NO_INDEX:
            return first
        self._last_gain = float(out2[0])
        return Violators(
            beta_up=beta_up, i_up=i_up, gamma_up=beta_up,
            beta_low=beta_low, i_low=int(out2[1]), gamma_low=float(out2[2]),
        )

    def _resolve_shrink(
        self, pending: _PendingShrink, delta: int, out: np.ndarray
    ) -> np.ndarray:
        """Apply (or veto) the deferred elimination now that δ is known."""
        self._pending = None
        cs, blk = self.compact, self.blk
        self.trace.shrink_iters.append(pending.fire_iteration)
        if delta == 0:
            # over-eager global shrink-to-empty: keep the active set,
            # re-arm, and redo the election without the exclusions
            # (the fused winners above were elected over the wrong
            # candidate set; this second Allreduce is the rare path)
            self.trace.shrunk_per_event.append(0)
            self.delta_c = max(1.0, self._initial_threshold)
            up, low = up_low_masks(cs.alpha, cs.y, cs.C)
            self.comm.advance(
                self.comm.machine.time_flops(8.0 * cs.n_active)
            )
            return self.comm.allreduce_buffer(
                self._election_buffer(up, low, None), MINLOC_MAXLOC
            )
        self.trace.shrunk_per_event.append(pending.n_shrunk)
        if pending.n_shrunk:
            cs.flush()
            blk.active[cs.lidx[pending.mask]] = False
            blk.invalidate_active()
            cs.rebuild()
        # collective (delta != 0 on every rank, the fire event is a
        # shared countdown): the reuse plan and column cache must drop
        # on all ranks together or the reuse decision — and with it the
        # communication pattern — would diverge
        self._bump_epoch()
        if self.heur.subsequent == "active_set":
            self.delta_c = max(1.0, float(delta))
        else:
            self.delta_c = max(1.0, self._initial_threshold)
        return out

    # ------------------------------------------------------------------
    # owner-rooted pair movement
    # ------------------------------------------------------------------
    def _fetch_sample(self, gidx: int) -> _ResidentSample:
        ent = self._resident.get(gidx)
        if ent is not None:
            return ent
        comm, blk, cs = self.comm, self.blk, self.compact
        owner = self.part.owner(gidx)
        payload = None
        if comm.rank == owner:
            pay = blk.sample_payload(blk.to_local(gidx), copy=False)
            # blk.alpha is stale between flushes — α lives in the
            # packed array while the sample is active
            payload = pay[:4] + (
                float(cs.alpha[cs.position_of_global(gidx)]),
            )
        payload = comm.bcast(payload, root=owner)
        self.trace.pair_broadcasts += 1
        ent = _ResidentSample(*payload)
        ent.gidx = gidx  # column-cache key (provider path)
        self._resident[gidx] = ent
        return ent

    def fetch_pair(self, viol: Violators):
        """Broadcast each sample from its owner; resident samples are
        free.

        The cache is coherent without invalidation: a sample's row, y
        and norm never change, and its α changes only while it is *in*
        the working set — at which moment every rank recomputes the
        update redundantly and refreshes the entry.  Every rank runs
        the same broadcast sequence, so the cache contents are
        identical everywhere and the hit/miss decision needs no
        coordination.
        """
        return self._fetch_sample(viol.i_up), self._fetch_sample(viol.i_low)

    def _kernel_columns(
        self, ent_up: _ResidentSample, ent_low: _ResidentSample
    ) -> tuple:
        """Φ(sample, active rows) for both pair samples, memoized per
        compaction epoch.

        Uncached columns are produced by one blocked call (both at
        once on a full miss).  Bitwise identical to the legacy 2-column
        call however the batch splits: column j of ``kernel.block``
        equals the single-column product (see
        :meth:`CSRMatrix.dot_csr_t`), and the kernel maps are pure
        elementwise expressions.
        """
        cs = self.compact
        if self._colcache is not None:
            # provider path: each column is served/produced through the
            # byte-budgeted cache and charged only on actual production
            return self._column_packed(ent_up), self._column_packed(ent_low)
        need = [
            e
            for e in (ent_up, ent_low)
            if e.kcol is None or e.epoch != cs.epoch
        ]
        if need:
            rows = CSRMatrix.from_rows(
                [(e.idx, e.vals) for e in need], self.blk.X.shape[1]
            )
            cols = self.kernel.block(
                cs.Xa, cs.norms, rows, np.array([e.norm for e in need])
            )
            for j, e in enumerate(need):
                e.kcol = cols[:, j]
                e.epoch = cs.epoch
        return ent_up.kcol, ent_low.kcol

    def _column_packed(self, ent: _ResidentSample) -> np.ndarray:
        """Φ(sample, packed active rows) through the per-rank column
        cache; production (a miss) charges the actual evaluations."""
        cache = self._colcache
        col = cache.get(ent.gidx)
        if col is None:
            cs = self.compact
            rows = CSRMatrix.from_rows(
                [(ent.idx, ent.vals)], self.blk.X.shape[1]
            )
            col = self.kernel.block(
                cs.Xa, cs.norms, rows, np.array([ent.norm])
            )[:, 0]
            cache.put(ent.gidx, col)
            n = int(cs.n_active)
            self.trace.kernel_evals += n
            self.trace.iter_kernel_evals += n
            self.comm.charge_kernel_evals(n, self.avg_nnz)
        return col

    # ------------------------------------------------------------------
    # the packed iteration
    # ------------------------------------------------------------------
    def iterate_once(self, viol: Violators, shrink_active: bool) -> None:
        comm, cs, kernel = self.comm, self.compact, self.kernel
        ent_up, ent_low = self.fetch_pair(viol)
        yu, au = ent_up.y, ent_up.alpha
        yl, al = ent_low.y, ent_low.alpha

        k_uu = kernel.self_value(ent_up.norm)
        k_ll = kernel.self_value(ent_low.norm)
        k_ul = kernel.pair(
            (ent_up.idx, ent_up.vals, ent_up.norm),
            (ent_low.idx, ent_low.vals, ent_low.norm),
        )
        new_up, new_low = solve_pair(
            k_uu, k_ll, k_ul, yu, yl, au, al,
            viol.gamma_up, viol.gamma_low,
            self.params.box_for(yu), self.params.box_for(yl),
        )
        d_up = new_up - au
        d_low = new_low - al

        k_up_col, k_low_col = self._kernel_columns(ent_up, ent_low)
        apply_pair_update(cs.gamma, k_up_col, k_low_col, yu, yl, d_up, d_low)
        if self.blk.owns_global(viol.i_up):
            cs.alpha[cs.position_of_global(viol.i_up)] = new_up
        if self.blk.owns_global(viol.i_low):
            cs.alpha[cs.position_of_global(viol.i_low)] = new_low
        # every rank computed the update redundantly — keep the cached
        # payloads current so a repeat election moves no bytes
        ent_up.alpha = new_up
        ent_low.alpha = new_low
        if self.wss.reuse_eta is not None:
            self._observe_pair(
                viol,
                (ent_up.idx, ent_up.vals, ent_up.norm),
                (ent_low.idx, ent_low.vals, ent_low.norm),
                yu, yl, new_up, new_low, k_uu, k_ll, k_ul, d_up, d_low,
            )

        if self._colcache is None:
            evals = 2 * cs.n_active + 3
        else:
            # provider accounting: columns charged on production inside
            # _column_packed, only the 3 pair evaluations land here
            evals = 3
        self.trace.kernel_evals += evals
        self.trace.iter_kernel_evals += evals
        comm.charge_kernel_evals(evals, self.avg_nnz)

        if shrink_active:
            self.delta_c -= 1
            if self.delta_c <= 0:
                mask = shrinkable_mask(
                    cs.alpha, cs.y, cs.gamma, cs.C,
                    viol.beta_up, viol.beta_low,
                )
                self._pending = _PendingShrink(
                    mask=mask,
                    n_shrunk=int(np.count_nonzero(mask)),
                    fire_iteration=self.iterations,
                )

        self.trace.record_iteration(cs.n_active)
        if comm.rank == 0:
            self.trace.gap_history.append(viol.gap())
        self.iterations += 1
        if self.params.max_iter and self.iterations > self.params.max_iter:
            raise ConvergenceError(
                f"parallel SMO exceeded max_iter={self.params.max_iter} "
                f"(gap {viol.gap():.3e})"
            )

    # ------------------------------------------------------------------
    # event boundaries: flush packed state back into the block
    # ------------------------------------------------------------------
    def reconstruct(self) -> Violators:
        assert self._pending is None, "shrink unresolved at reconstruction"
        self.compact.flush()
        gradient_reconstruction(
            self.comm, self.blk, self.kernel, self.iterations, self.trace
        )
        self.compact.rebuild()
        self._bump_epoch()
        self._last_gain = math.inf
        return self.select()

    def _final_beta(self, viol: Violators) -> float:
        assert self._pending is None, "shrink unresolved at finalization"
        self.compact.flush()
        return super()._final_beta(viol)


#: engine registry — "packed" is the default; "legacy" keeps the
#: original relay-and-two-Allreduce path alive for A/B equivalence
#: tests and the before/after benchmark
ENGINES = {"packed": PackedRankSolver, "legacy": RankSolver}


def solve_rank(
    comm: Comm,
    blk: LocalBlock,
    part: BlockPartition,
    params: SVMParams,
    heuristic: Heuristic,
    engine: str = "packed",
    *,
    wss: str = "mvp",
    cache_bytes: int = 0,
    warm_seeded: bool = False,
) -> RankResult:
    """Entry point executed by :func:`repro.mpi.run_spmd` on each rank."""
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {sorted(ENGINES)}"
        ) from None
    return cls(
        comm, blk, part, params, heuristic, wss=wss, cache_bytes=cache_bytes,
        warm_seeded=warm_seeded,
    ).solve()
