"""Model-equivalence certification: the tolerance-equivalence contract.

Warm-started and cold solves follow different SMO paths and stop at
*different* eps-KKT points, so bitwise equality is the wrong contract
between them.  :func:`assert_model_equiv` is the right one — each
solution is KKT-feasible in its own right, the dual objectives agree on
the eps-wide optimal plateau, and the decision functions match on a
held-out probe grid.  The streaming subsystem (:mod:`repro.stream`)
certifies every incremental refit against a cold solve with exactly
this harness; the test suite reuses it through ``tests/conftest.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sparse import CSRMatrix

__all__ = [
    "assert_model_equiv",
    "check_kkt",
    "dense_kernel_matrix",
    "held_out_grid",
]


def dense_kernel_matrix(X: CSRMatrix, kernel) -> np.ndarray:
    """Reference kernel matrix via the public row API."""
    n = X.shape[0]
    norms = X.row_norms_sq()
    K = np.empty((n, n))
    for i in range(n):
        xi, xv = X.row(i)
        K[i] = kernel.row_against_block(X, norms, xi, xv, float(norms[i]))
    return K


def check_kkt(X, y, alpha, beta, kernel, C, eps, tol_scale=3.0):
    """Assert the KKT conditions of the trained dual solution."""
    K = dense_kernel_matrix(X, kernel)
    gamma = K @ (alpha * y) - y
    # box constraints and the equality constraint
    assert np.all(alpha >= -1e-10)
    assert np.all(alpha <= C + 1e-8)
    assert abs(float(alpha @ y)) < 1e-6 * max(1.0, C)
    # eps-KKT via the beta_up/beta_low gap
    from .sets import low_mask, up_mask

    up = up_mask(alpha, y, C)
    low = low_mask(alpha, y, C)
    beta_up = gamma[up].min() if up.any() else np.inf
    beta_low = gamma[low].max() if low.any() else -np.inf
    assert beta_up + tol_scale * eps >= beta_low - eps, (
        f"KKT gap too large: beta_low - beta_up = {beta_low - beta_up}"
    )


def held_out_grid(X: CSRMatrix, n_probe: int = 64, seed: int = 7) -> CSRMatrix:
    """A deterministic probe set the training never saw: midpoints of
    random training-sample pairs, jittered by a fraction of the
    per-feature spread.  Stays inside the data's support, where the
    decision function is meaningful, without reusing any training row."""
    Xd = X.to_dense()
    n, d = Xd.shape
    rng = np.random.default_rng(seed)
    i = rng.integers(0, n, size=n_probe)
    j = rng.integers(0, n, size=n_probe)
    spread = np.std(Xd, axis=0, ddof=0)
    probe = 0.5 * (Xd[i] + Xd[j]) + 0.15 * spread * rng.standard_normal(
        (n_probe, d)
    )
    return CSRMatrix.from_dense(probe)


def assert_model_equiv(a, b, X, y, params, tol: Optional[float] = None):
    """Certify two fits of the same problem as tolerance-equivalent.

    ``a`` and ``b`` are :class:`repro.core.FitResult`-like objects (need
    ``.alpha`` and ``.model``).  Warm-started and cold solves follow
    different SMO paths and stop at *different* eps-KKT points, so
    bitwise equality is the wrong contract; this is the right one:

    1. **KKT residual**: each solution satisfies the eps-KKT conditions
       (box, equality, and the beta_up/beta_low gap) in its own right;
    2. **objective gap**: the dual objectives agree to ``tol`` — both
       sit on the (eps-wide) optimal plateau of the same problem;
    3. **decision agreement**: the decision functions match on a
       held-out probe grid to ``tol`` in value, and the predicted
       labels agree wherever either model is confident (|f| > tol).

    ``tol`` defaults to ``50 * params.eps`` — generous against the
    plateau width yet far below any sample's contribution to the
    decision function (alphas are O(C)).
    """
    from .predict import decision_function_parallel

    eps = params.eps
    tol = 50.0 * eps if tol is None else tol
    C = params.C
    y = np.asarray(y, dtype=np.float64)

    K = dense_kernel_matrix(X, params.kernel)
    for r in (a, b):
        check_kkt(X, y, r.alpha, None, params.kernel, C, eps)

    def dual_objective(alpha):
        v = alpha * y
        return float(alpha.sum() - 0.5 * (v @ (K @ v)))

    da, db = dual_objective(a.alpha), dual_objective(b.alpha)
    assert abs(da - db) <= tol * max(1.0, abs(da)), (
        f"dual objectives disagree: {da} vs {db} "
        f"(gap {abs(da - db)}, tol {tol * max(1.0, abs(da))})"
    )

    probe = held_out_grid(X)
    fa = decision_function_parallel(a.model, probe).decision_values
    fb = decision_function_parallel(b.model, probe).decision_values
    scale = max(1.0, float(np.max(np.abs(fa))))
    worst = float(np.max(np.abs(fa - fb)))
    assert worst <= tol * scale, (
        f"decision functions disagree on the held-out grid: "
        f"max |f_a - f_b| = {worst}, tol {tol * scale}"
    )
    confident = (np.abs(fa) > tol * scale) | (np.abs(fb) > tol * scale)
    assert np.array_equal(
        np.sign(fa[confident]), np.sign(fb[confident])
    ), "confident predictions disagree on the held-out grid"
