"""Driver: set up shards, run the SPMD job, assemble the model.

:func:`fit_parallel` is the library's mid-level entry point — it takes a
full ``(X, y)``, partitions it block-row across ``nprocs`` simulated
ranks, runs the selected Table II heuristic, and returns the trained
:class:`~repro.core.model.SVMModel` together with the merged trace and
virtual-time statistics.  The high-level sklearn-style facade lives in
:mod:`repro.core.svc`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..config import RunConfig, resolve_config
from ..mpi import SpmdResult, run_spmd
from ..perfmodel.machine import MachineSpec
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from .dcsvm import DCStats, dc_warm_start, project_feasible
from .model import SVMModel
from .parallel import ENGINES, RankResult, solve_rank
from .params import SVMParams
from .shrinking import Heuristic, get_heuristic
from .state import make_blocks
from .trace import FitStats, SolveTrace
from .wss_policies import resolve_wss

#: environment override for the iteration engine ("packed" / "legacy")
ENGINE_ENV = "REPRO_SVM_ENGINE"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Pick the iteration engine: explicit arg > env var > "packed"."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "packed"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {sorted(ENGINES)}"
        )
    return engine


@dataclass
class FitResult:
    """Outcome of one distributed training run."""

    model: SVMModel
    stats: FitStats
    trace: SolveTrace
    spmd: SpmdResult
    alpha: np.ndarray  # full α vector in global order
    beta_up: float
    beta_low: float
    #: divide-and-conquer outer-loop summary (None for a cold start)
    dc: Optional[DCStats] = None
    #: final gradient vector γ = K(αy) − y in global order.  Every
    #: shrinking heuristic that reconstructs at the end (all but the
    #: "never" variants) exits with this exact; :mod:`repro.stream`
    #: carries it into the next ``partial_fit`` to skip the warm-start
    #: reconstruction ring.
    gamma: Optional[np.ndarray] = None

    @property
    def vtime(self) -> float:
        return self.stats.vtime

    @property
    def total_vtime(self) -> float:
        """Modeled end-to-end time including any DC outer loop."""
        return self.stats.vtime + (self.dc.outer_vtime if self.dc else 0.0)

    @property
    def iterations(self) -> int:
        return self.stats.iterations


def fit_parallel(
    X: Union[CSRMatrix, np.ndarray],
    y: np.ndarray,
    params: SVMParams,
    *,
    config: Optional[RunConfig] = None,
    heuristic: Optional[Union[str, Heuristic]] = None,
    nprocs: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    deadlock_timeout: Optional[float] = None,
    warm_start_alpha: Optional[np.ndarray] = None,
    warm_start_gamma: Optional[np.ndarray] = None,
    warm_start_active: Optional[np.ndarray] = None,
    faults=None,
    engine: Optional[str] = None,
    wss: Optional[str] = None,
    kernel_cache_mb: Optional[float] = None,
    comm: Optional[str] = None,
    dc=None,
) -> FitResult:
    """Train with the distributed solver on ``nprocs`` simulated ranks.

    Run-time knobs (``nprocs``, ``heuristic``, ``engine``, ``machine``,
    ``faults``, ``deadlock_timeout``) are preferably passed as one
    :class:`~repro.config.RunConfig` via ``config=``; the individual
    keywords remain as back-compat shims and, when given explicitly,
    override the config's fields (see :func:`repro.config.resolve_config`).

    ``nprocs`` may exceed the sample count: surplus ranks own zero rows
    and participate only in collectives and the reconstruction ring,
    matching what a real over-provisioned MPI job does.

    ``warm_start_alpha`` seeds the solve from a previous dual solution
    (same samples and kernel — e.g. re-fitting after a small C change,
    or the next step of a regularization path).  The initial gradients
    are rebuilt from the seed with one gradient-reconstruction ring, so
    warm starting costs O(|{α>0}|·N/p) once instead of re-running the
    full iteration history.

    ``warm_start_gamma`` (requires ``warm_start_alpha``) additionally
    seeds the gradient vector γ = K(αy) − y, skipping that
    reconstruction ring entirely: every sample starts active with its
    gradient taken on faith from the caller.  Only sound when the γ is
    *exact* for the seeded α — e.g. carried out of a previous
    :class:`FitResult` whose heuristic reconstructs at the end (all but
    the ``"never"`` variants), extended with freshly computed rows for
    appended samples.  The streaming subsystem (:mod:`repro.stream`)
    is the intended caller.

    ``faults`` injects a deterministic adversarial delivery schedule
    into the simulated runtime (a
    :class:`~repro.mpi.faults.FaultPlan`, spec string, or fault
    sequence).  A fit that completes under injection returns a model
    bitwise identical to the fault-free fit.

    ``engine`` selects the per-iteration engine: ``"packed"`` (default;
    fused violator Allreduce, compacted active-set state, owner-rooted
    pair broadcast) or ``"legacy"`` (the original two-Allreduce,
    rank-0-relay path).  The two produce bitwise-identical models,
    iteration sequences and kernel-eval counts; only host time and
    simulated communication cost differ.  ``None`` reads the
    ``REPRO_SVM_ENGINE`` environment variable, falling back to
    ``"packed"``.

    ``wss`` selects the working-set-selection policy: ``"mvp"``
    (default; Keerthi et al. maximal violating pair, bitwise identical
    to the historical behaviour), ``"second_order"`` (LIBSVM's WSS2
    curvature-scored i_low via a two-phase election), or
    ``"planning_ahead"`` (second-order plus zero-communication reuse of
    the previous pair).  The non-default policies trade extra per-
    iteration work/communication for substantially fewer iterations and
    kernel evaluations; their models agree with ``mvp`` within solver
    tolerance.  ``None`` reads the ``REPRO_SVM_WSS`` environment
    variable, falling back to ``"mvp"``.

    ``kernel_cache_mb`` gives each rank a byte-budgeted LRU cache of
    training-side kernel columns (invalidated at every shrink/
    reconstruction).  ``0`` (default) keeps the canonical cache-free
    accounting; any positive budget — or a second-order policy, which
    needs the elected column twice — routes columns through the cache
    and charges only actual production.

    ``comm`` selects the collective suite: ``"flat"`` (the single-level
    textbook algorithms) or ``"hierarchical"`` (topology-aware two-level
    variants; see :mod:`repro.mpi.topology`).  Both produce bitwise
    identical models and iteration sequences; only the simulated
    communication cost differs.  ``None`` reads the ``REPRO_SVM_COMM``
    environment variable, falling back to ``"flat"``.

    ``dc`` enables the divide-and-conquer outer loop
    (:mod:`repro.core.dcsvm`): cluster the samples, solve the
    subproblems concurrently on carved sub-communicators, and seed this
    exact solve from the feasibility-projected concatenation of the
    sub-duals.  The final model still comes from the exact solver — DC
    changes where the solve *starts*, never where it converges.
    Mutually exclusive with an explicit ``warm_start_alpha``.

    ``warm_start_active`` (requires ``warm_start_gamma``) additionally
    seeds the *active set*: a boolean mask of the samples the first
    solve phase iterates over (typically the previous support vectors
    plus a freshly appended batch).  Masked-out samples start shrunk
    with their seeded-exact gradients on record; the heuristic's
    ordinary end-of-phase reconstruction re-admits and verifies them,
    so only heuristics that reconstruct (``"single"``/``"multi"``
    modes) accept the seed — the solve still converges on the full
    problem, it just pays narrow iterations first.
    """
    cfg = resolve_config(
        config,
        _entry="fit_parallel",
        heuristic=heuristic,
        nprocs=nprocs,
        machine=machine,
        deadlock_timeout=deadlock_timeout,
        faults=faults,
        engine=engine,
        wss=wss,
        kernel_cache_mb=kernel_cache_mb,
        comm=comm,
        dc=dc,
    )
    heuristic, nprocs = cfg.heuristic, cfg.nprocs
    machine, faults = cfg.machine, cfg.faults
    engine = resolve_engine(cfg.engine)
    wss = resolve_wss(cfg.wss)
    cache_bytes = int(cfg.kernel_cache_mb * 1024 * 1024)
    if not isinstance(X, CSRMatrix):
        X = CSRMatrix.from_dense(np.asarray(X, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64)
    n = X.shape[0]
    if y.shape != (n,):
        raise ValueError(f"{y.size} labels for {n} samples")
    if n == 0:
        raise ValueError("empty training set")
    if not np.all(np.abs(y) == 1.0):
        raise ValueError("labels must be +1/-1 (use repro.core.SVC for raw labels)")
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    heur = get_heuristic(heuristic)

    part = BlockPartition(n, nprocs)
    blocks = make_blocks(X, y, part)

    dc_stats: Optional[DCStats] = None
    if cfg.dc is not None:
        if warm_start_alpha is not None:
            raise ValueError(
                "dc and warm_start_alpha are mutually exclusive: the DC "
                "outer loop produces the warm start itself"
            )
        warm_start_alpha, dc_stats = dc_warm_start(
            X, y, params, cfg, heur=heur, engine=engine
        )

    if warm_start_alpha is not None:
        w_in = np.asarray(warm_start_alpha)
        if not np.issubdtype(w_in.dtype, np.number) or np.issubdtype(
            w_in.dtype, np.complexfloating
        ):
            raise TypeError(
                f"warm_start_alpha must be real-valued, got dtype {w_in.dtype}"
            )
        # any real dtype is accepted and upcast; a narrower float's
        # rounding error widens the constraint slack proportionally
        eps_in = (
            np.finfo(w_in.dtype).eps
            if np.issubdtype(w_in.dtype, np.floating)
            else np.finfo(np.float64).eps
        )
        warm_start_alpha = w_in.astype(np.float64)
        if warm_start_alpha.shape != (n,):
            raise ValueError(
                f"warm_start_alpha has shape {warm_start_alpha.shape}, "
                f"expected ({n},)"
            )
        box = params.box_for(y)
        box_slack = max(1e-9, 4.0 * eps_in * float(np.max(box)))
        if np.any(warm_start_alpha < -max(1e-12, box_slack)) or np.any(
            warm_start_alpha > box + box_slack
        ):
            raise ValueError("warm_start_alpha violates the box constraints")
        eq_tol = 1e-6 * max(1.0, params.C)
        eq_slack = max(eq_tol, 8.0 * eps_in * params.C * n)
        residual = abs(float(warm_start_alpha @ y))
        if residual > eq_slack:
            raise ValueError(
                "warm_start_alpha violates the equality constraint sum(a*y)=0"
            )
        if residual > eq_tol:
            # a narrower dtype's rounding residual, within its slack:
            # repair it exactly instead of rejecting the seed
            warm_start_alpha = project_feasible(warm_start_alpha, y, box)
        if warm_start_gamma is not None:
            warm_start_gamma = np.asarray(warm_start_gamma, dtype=np.float64)
            if warm_start_gamma.shape != (n,):
                raise ValueError(
                    f"warm_start_gamma has shape {warm_start_gamma.shape}, "
                    f"expected ({n},)"
                )
        if warm_start_active is not None:
            if warm_start_gamma is None:
                raise ValueError(
                    "warm_start_active requires warm_start_gamma: shrunk "
                    "samples keep their seeded gradients on record"
                )
            warm_start_active = np.asarray(warm_start_active, dtype=bool)
            if warm_start_active.shape != (n,):
                raise ValueError(
                    f"warm_start_active has shape {warm_start_active.shape},"
                    f" expected ({n},)"
                )
            if not warm_start_active.any():
                raise ValueError("warm_start_active selects no samples")
            if heur.reconstruction not in ("single", "multi"):
                raise ValueError(
                    f"warm_start_active needs a reconstructing heuristic "
                    f"to re-admit the masked-out samples; "
                    f"{heur.name!r} has reconstruction="
                    f"{heur.reconstruction!r}"
                )
        for rank, blk in enumerate(blocks):
            lo, hi = part.bounds(rank)
            blk.alpha[:] = np.clip(warm_start_alpha[lo:hi], 0.0, box[lo:hi])
            if warm_start_gamma is not None:
                # gradients supplied: seed blk.gamma directly (gamma0
                # stays −y so any later reconstruction still rebuilds
                # correctly); the solver goes straight to selection
                # without the warm-start reconstruction ring
                blk.gamma[:] = warm_start_gamma[lo:hi]
                if warm_start_active is not None:
                    blk.active[:] = warm_start_active[lo:hi]
                    blk.invalidate_active()
            else:
                # mark every sample stale: the first reconstruction pass
                # in solve_rank rebuilds gradients from the seeded alphas
                blk.active[:] = False
                blk.invalidate_active()
    elif warm_start_gamma is not None:
        raise ValueError("warm_start_gamma requires warm_start_alpha")
    elif warm_start_active is not None:
        raise ValueError("warm_start_active requires warm_start_alpha")

    warm_seeded = warm_start_gamma is not None

    def entry(comm):
        return solve_rank(
            comm, blocks[comm.rank], part, params, heur, engine,
            wss=wss, cache_bytes=cache_bytes, warm_seeded=warm_seeded,
        )

    t0 = time.perf_counter()
    spmd = run_spmd(
        entry, nprocs, machine=machine, trace=cfg.trace,
        deadlock_timeout=cfg.deadlock_timeout, faults=faults,
        comm=cfg.comm,
    )
    wall = time.perf_counter() - t0
    results: List[RankResult] = spmd.results

    alpha = np.concatenate([r.alpha for r in results])
    beta = results[0].beta
    sv_idx = np.flatnonzero(alpha > 0)
    model = SVMModel(
        sv_X=X.take_rows(sv_idx),
        sv_coef=alpha[sv_idx] * y[sv_idx],
        sv_indices=sv_idx,
        beta=beta,
        kernel=params.kernel,
    )
    trace = SolveTrace.merge(
        [r.trace for r in results], n, X.shape[1], X.avg_row_nnz
    )
    stats = FitStats(
        heuristic=heur.name,
        nprocs=nprocs,
        iterations=results[0].iterations,
        n_sv=int(sv_idx.size),
        beta=beta,
        vtime=spmd.vtime,
        wall_time=wall,
        kernel_evals=trace.kernel_evals,
        bytes_sent=spmd.total_bytes_sent,
        messages=spmd.total_messages,
        trace=trace,
        engine=engine,
        wss=wss,
    )
    return FitResult(
        model=model,
        stats=stats,
        trace=trace,
        spmd=spmd,
        alpha=alpha,
        beta_up=results[0].beta_up,
        beta_low=results[0].beta_low,
        dc=dc_stats,
        gamma=np.concatenate([r.gamma for r in results]),
    )
