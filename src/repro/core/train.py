"""One-call training entry point for the public facade.

``repro.train(X, y)`` dispatches on the number of classes: two labels
train a binary :class:`~repro.core.svc.SVC`, more train a one-vs-one
:class:`~repro.core.multiclass.MultiClassSVC`.  All hyperparameters and
the :class:`~repro.config.RunConfig` pass straight through::

    import repro

    clf = repro.train(X, y, C=10.0, sigma_sq=4.0,
                      config=repro.RunConfig(nprocs=8))
    clf.save("model.json")
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import RunConfig
from .multiclass import MultiClassSVC
from .svc import SVC


def train(
    X, y, *, config: Optional[RunConfig] = None, **svc_params
) -> Union[SVC, MultiClassSVC]:
    """Fit a classifier on ``(X, y)`` and return it.

    Two distinct labels produce a fitted :class:`SVC`; three or more a
    fitted :class:`MultiClassSVC` (one-vs-one).  ``svc_params`` are the
    :class:`SVC` constructor arguments; run-time knobs ride in
    ``config``.
    """
    classes = np.unique(np.asarray(y))
    if classes.size < 2:
        raise ValueError(f"need at least two classes, got {classes.size}")
    if classes.size == 2:
        return SVC(config=config, **svc_params).fit(X, y)
    return MultiClassSVC(config=config, **svc_params).fit(X, y)
