"""ε-support-vector regression on the distributed shrinking engine.

The paper's conclusion points at regression as a direct beneficiary
("even larger datasets than considered in this paper can now be used
for classification and regression, without any accuracy loss").  This
module delivers it by the standard reduction: the ε-SVR dual

    min  ½ Σ_ij (α_i − α*_i)(α_j − α*_j) K_ij
         + ε Σ_i (α_i + α*_i) − Σ_i y_i (α_i − α*_i)
    s.t. Σ_i (α_i − α*_i) = 0,   0 ≤ α_i, α*_i ≤ C

is a 2n-variable box-constrained QP with a single equality constraint —
*exactly* the shape of the classification dual, with synthetic labels
λ = (+1…, −1…) and linear term p = (ε − y, ε + y).  In the engine's
gradient convention (γ_s = λ_s ∇_s) the initial gradient is

    γ0 = (ε − y,  −ε − y)

and every other ingredient — maximal-violating-pair selection, the
analytic pair step, Eq. (9) shrinking, the reconstruction ring, the
final threshold β with b = −β — carries over verbatim.  The distributed
solver therefore trains regressions with the same Table II heuristics
and the same accuracy guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..config import RunConfig, resolve_config
from ..kernels import Kernel, RBFKernel, make_kernel
from ..mpi import SpmdResult, run_spmd
from ..perfmodel.machine import MachineSpec
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from .model import SVMModel, _as_csr
from .params import SVMParams
from .parallel import solve_rank
from .shrinking import Heuristic, get_heuristic
from .state import make_blocks
from .svc import NotFittedError
from .trace import SolveTrace

#: drop combined coefficients below this fraction of C when collecting SVs
_COEF_TOL = 1e-12


@dataclass
class SVRFitResult:
    """Outcome of a distributed ε-SVR training run."""

    model: SVMModel  # stores β coefficients; prediction = decision_function
    beta_coef: np.ndarray  # β_i = α_i − α*_i, full length n
    iterations: int
    trace: SolveTrace
    spmd: SpmdResult

    @property
    def vtime(self) -> float:
        return self.spmd.vtime


def fit_svr_parallel(
    X: Union[CSRMatrix, np.ndarray],
    y: np.ndarray,
    params: SVMParams,
    *,
    epsilon: float = 0.1,
    config: Optional[RunConfig] = None,
    heuristic: Optional[Union[str, Heuristic]] = None,
    nprocs: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    comm: Optional[str] = None,
) -> SVRFitResult:
    """Train ε-SVR with the distributed shrinking solver.

    ``params.eps`` is the SMO optimality tolerance; ``epsilon`` is the
    regression tube half-width.  Run-time knobs ride in one
    :class:`~repro.config.RunConfig` via ``config=``; the individual
    keywords remain as deprecated back-compat shims that override the
    config when given explicitly.
    """
    cfg = resolve_config(
        config, _entry="fit_svr_parallel",
        heuristic=heuristic, nprocs=nprocs, machine=machine, comm=comm,
    )
    heuristic, nprocs = cfg.heuristic, cfg.nprocs
    machine, comm = cfg.machine, cfg.comm
    if epsilon < 0:
        raise ValueError(f"epsilon (tube width) must be >= 0, got {epsilon}")
    if params.weighted:
        raise ValueError(
            "per-class weights have no meaning for regression; "
            "use unweighted SVMParams"
        )
    if not isinstance(X, CSRMatrix):
        X = CSRMatrix.from_dense(np.asarray(X, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64)
    n = X.shape[0]
    if y.shape != (n,):
        raise ValueError(f"{y.size} targets for {n} samples")
    if n == 0:
        raise ValueError("empty training set")
    if nprocs < 1 or nprocs > 2 * n:
        raise ValueError(f"nprocs must be in [1, {2 * n}], got {nprocs}")
    heur = get_heuristic(heuristic)

    # the doubled problem: (α block with λ=+1, α* block with λ=−1)
    X2 = CSRMatrix.vstack([X, X])
    lam = np.concatenate([np.ones(n), -np.ones(n)])
    gamma0 = np.concatenate([epsilon - y, -epsilon - y])

    part = BlockPartition(2 * n, nprocs)
    blocks = make_blocks(X2, lam, part, gamma0=gamma0)

    def entry(comm):
        return solve_rank(comm, blocks[comm.rank], part, params, heur)

    spmd = run_spmd(entry, nprocs, machine=machine, comm=comm)
    results = spmd.results

    alpha_ext = np.concatenate([r.alpha for r in results])
    beta_coef = alpha_ext[:n] - alpha_ext[n:]
    thresh = results[0].beta

    sv = np.flatnonzero(np.abs(beta_coef) > _COEF_TOL * params.C)
    model = SVMModel(
        sv_X=X.take_rows(sv),
        sv_coef=beta_coef[sv],
        sv_indices=sv,
        beta=thresh,
        kernel=params.kernel,
    )
    trace = SolveTrace.merge(
        [r.trace for r in results], 2 * n, X.shape[1], X.avg_row_nnz
    )
    return SVRFitResult(
        model=model,
        beta_coef=beta_coef,
        iterations=results[0].iterations,
        trace=trace,
        spmd=spmd,
    )


class SVR:
    """ε-SVR facade with the familiar fit/predict/score interface.

    Parameters mirror :class:`~repro.core.svc.SVC`, plus ``epsilon`` —
    the regression tube half-width (errors within ±ε are free).
    ``score`` returns the coefficient of determination R².
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: Union[str, Kernel] = "rbf",
        gamma: Optional[float] = None,
        sigma_sq: Optional[float] = None,
        eps: float = 1e-3,
        epsilon: float = 0.1,
        heuristic: Optional[Union[str, Heuristic]] = None,
        nprocs: Optional[int] = None,
        machine: Optional[MachineSpec] = None,
        max_iter: int = 10_000_000,
        config: Optional[RunConfig] = None,
    ) -> None:
        if gamma is not None and sigma_sq is not None:
            raise ValueError("give either gamma or sigma_sq, not both")
        cfg = resolve_config(
            config, _entry="SVR",
            heuristic=heuristic, nprocs=nprocs, machine=machine,
        )
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.sigma_sq = sigma_sq
        self.eps = eps
        self.epsilon = epsilon
        self.heuristic = cfg.heuristic
        self.nprocs = cfg.nprocs
        self.machine = cfg.machine
        self.max_iter = max_iter
        self.config = cfg
        self.model_: Optional[SVMModel] = None
        self.fit_result_: Optional[SVRFitResult] = None

    def _build_kernel(self) -> Kernel:
        if isinstance(self.kernel, Kernel):
            return self.kernel
        name = str(self.kernel)
        if name == "rbf":
            if self.sigma_sq is not None:
                return RBFKernel.from_sigma_sq(self.sigma_sq)
            return RBFKernel(self.gamma if self.gamma is not None else 1.0)
        kwargs = {}
        if self.gamma is not None:
            kwargs["gamma"] = self.gamma
        return make_kernel(name, **kwargs)

    def fit(self, X, y) -> "SVR":
        params = SVMParams(
            C=self.C,
            kernel=self._build_kernel(),
            eps=self.eps,
            max_iter=self.max_iter,
        )
        self.fit_result_ = fit_svr_parallel(
            X, y, params,
            epsilon=self.epsilon,
            config=self.config.replace(
                heuristic=self.heuristic,
                nprocs=self.nprocs,
                machine=self.machine,
            ),
        )
        self.model_ = self.fit_result_.model
        return self

    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise NotFittedError("call fit() before predict/score")

    def predict(self, X) -> np.ndarray:
        """Regression estimates f(x) = Σ β_j Φ(x_j, x) + b."""
        self._check_fitted()
        return self.model_.decision_function(X)

    def score(self, X, y) -> float:
        """Coefficient of determination R²."""
        y = np.asarray(y, dtype=np.float64)
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    @property
    def n_support_(self) -> int:
        self._check_fitted()
        return self.model_.n_sv

    @property
    def n_iter_(self) -> int:
        self._check_fitted()
        return self.fit_result_.iterations
