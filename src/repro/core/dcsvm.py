"""Divide-and-conquer training with warm-started exact refinement.

The exact distributed SMO (:func:`repro.core.fit_parallel`) is the
accuracy anchor, but a cold start pays the full iteration history on
every fit.  DC-SVM (Hsieh et al., 1311.0914) and parallel block
minimization (Chiang et al., 1608.02010) observe that the kernel matrix
of a well-clustered problem is nearly block diagonal, so most of the
dual ascent can happen inside small concurrent subproblems.

A subtlety this implementation is built around: the exact solver is
*path conserving*.  Seeded from one of its own intermediate iterates it
resumes the trajectory and rough + refine costs exactly what cold did;
seeded from an off-path point (a one-shot concatenation of
independently solved cluster duals, a cascade SV union, a subsample
solution) the refinement costs as much as a cold solve.  The only warm
starts that pay are points *near the solver's own optimum*.  The outer
loop here therefore iterates blocks to (near) convergence instead of
concatenating once:

1. **Partition** (:func:`partition_samples` / :class:`_Rotator`): a
   seeded, capacity-constrained kernel-k-means pass.  Landmarks come
   from a fixed candidate pool whose similarity columns are cached, so
   re-partitioning each round ("rotation") costs kernel evaluations
   only on first touch.  Every sample is assigned to its most-similar
   landmark subject to per-class capacities, so each cluster holds a
   balanced share of both labels (the property-tested guarantee).  The
   assignment is a pure function of ``(X, y, k, kernel, seed)`` —
   independent of the process count.
2. **Concurrent gradient-corrected sub-solves** (:func:`_solve_round`):
   one SPMD job per round; ranks are carved into per-cluster
   sub-communicators (:func:`repro.mpi.topology.carve`), each cluster
   runs the unmodified per-rank engine seeded with its slice of the
   *global* dual α and gradient f.  That makes each sub-solve the exact
   block subproblem "optimize α on this cluster with every other block
   frozen", so both collective suites and fault injection work inside
   subproblems, and the job's virtual makespan models the clusters
   running concurrently.
3. **Line-searched merge**: the blockwise step d = α_new − α is applied
   with the exact Cauchy step ω* = min(1, dᵀg / dᵀQd), which guarantees
   monotone dual ascent (plain Jacobi block steps oscillate).  The
   gradient update Δf = K·(d∘y) reuses a kernel-column cache — the
   changed coordinates recur heavily across rounds, so steady-state
   rounds cost flops, not kernel evaluations.
4. **Stop + project**: rounds rotate the partition seed (so every
   violator pair eventually co-locates) until the solver's own
   convergence measure β_low − β_up falls under a small multiple of ε,
   then :func:`project_feasible` repairs the float drift and the result
   seeds the exact packed-engine solve as ``warm_start_alpha``.

Correctness contract: the final model is produced by the *exact*
solver, so DC changes only where the solve starts, never where it
converges — the equivalence harness (``tests/core/test_dc_equivalence``)
certifies KKT residual, objective gap and decision-function agreement
against the cold solve for every (levels, clusters, nprocs, comm,
kernel) cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import RunConfig
from ..mpi import run_spmd
from ..mpi.topology import carve
from ..perfmodel import costs
from ..perfmodel.machine import MachineSpec
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from .params import SVMParams
from .parallel import solve_rank
from .sets import up_low_masks
from .shrinking import Heuristic, unsafe_variant
from .state import make_blocks
from .wss_policies import resolve_wss

#: cap on the candidate pool used for kernel-k-means++ landmark seeding
_LANDMARK_POOL = 256

#: the outer loop stops when β_low − β_up ≤ this multiple of ε; the
#: exact refinement closes the remaining factor in a few hundred
#: iterations, whereas stopping much earlier forfeits most of the win
_GAP_TARGET_FACTOR = 4.0

#: sub-solves run at tolerance max(gap / divisor, ε) — loose while the
#: outer gap is large, tightening as the loop closes in
_SUB_EPS_DIVISOR = 8.0

#: a level breaks out early after this many rounds without the gap
#: improving by at least (1 − _STALL_FACTOR)
_STALL_ROUNDS = 25
_STALL_FACTOR = 0.995

#: hard per-level round budget (a backstop, not a tuning knob)
_MAX_ROUNDS = 1000

#: the sub-solve heuristic: shrinking pays (a sub-iteration's γ update
#: scans only the active samples), but reconstruction would rebuild γ
#: from the cluster's alphas alone and silently drop the frozen blocks'
#: contribution carried by ``gamma0`` — so sub-solves always run the
#: permanent-elimination variant.  The approximation is harmless here:
#: a sub-solve only proposes a feasible block step, and the driver's
#: line search + the final exact refinement absorb any slack.
_SUB_HEUR = unsafe_variant("multi5pc", name="dc-sub")


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DCConfig:
    """Knobs of the divide-and-conquer outer loop.

    ``levels`` stacks partition granularities DC-SVM style: the loop
    starts at ``clusters**levels`` subproblems (cheap rounds, loose gap
    target) and coarsens level by level down to ``clusters``, which is
    driven to the final gap target.  ``seed`` drives the landmark pool
    and its per-round rotation only — two runs with the same seed
    produce identical partitions regardless of process count.
    """

    levels: int = 1
    clusters: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError(f"dc levels must be >= 1, got {self.levels}")
        if self.clusters < 2:
            raise ValueError(f"dc clusters must be >= 2, got {self.clusters}")

    @classmethod
    def parse(cls, spec: str) -> "DCConfig":
        """Parse a CLI spec: ``"4"`` (clusters) or
        ``"clusters=4,levels=2,seed=7"`` (any subset, any order)."""
        spec = spec.strip()
        if not spec:
            raise ValueError("empty dc spec")
        kwargs = {}
        for item in spec.split(","):
            item = item.strip()
            if "=" not in item:
                kwargs["clusters"] = int(item)
                continue
            key, _, value = item.partition("=")
            key = key.strip()
            if key not in ("levels", "clusters", "seed"):
                raise ValueError(
                    f"unknown dc knob {key!r} (levels | clusters | seed)"
                )
            kwargs[key] = int(value)
        return cls(**kwargs)

    def __str__(self) -> str:
        return (
            f"levels={self.levels},clusters={self.clusters},seed={self.seed}"
        )


def as_dc(value: Any) -> Optional[DCConfig]:
    """Coerce ``None`` / :class:`DCConfig` / spec string / int / dict."""
    if value is None or isinstance(value, DCConfig):
        return value
    if isinstance(value, str):
        return DCConfig.parse(value)
    if isinstance(value, int):
        return DCConfig(clusters=value)
    if isinstance(value, dict):
        return DCConfig(**value)
    raise TypeError(
        f"dc must be a DCConfig, spec string, int or dict; got {type(value)!r}"
    )


# ----------------------------------------------------------------------
# stage 1: the seeded label-balanced kernel partitioner
# ----------------------------------------------------------------------
def _balanced_assign(S: np.ndarray, y: np.ndarray, k: int) -> np.ndarray:
    """Capacity-constrained greedy assignment from a similarity matrix.

    Each class is distributed over the clusters independently: samples
    claim their most-similar landmark in decreasing-confidence order,
    subject to balanced per-class capacities (between ``floor(n_c/k)``
    and ``ceil(n_c/k)`` samples of class ``c`` per cluster).
    """
    n = S.shape[0]
    prefs = np.argsort(-S, axis=1, kind="stable")
    assign = np.full(n, -1, dtype=np.int64)
    for sign in (1.0, -1.0):
        members = np.flatnonzero(y == sign)
        if members.size == 0:
            continue
        base, extra = divmod(members.size, k)
        capacity = np.array(
            [base + (1 if j < extra else 0) for j in range(k)], dtype=np.int64
        )
        # decreasing best-similarity order, global index as tie-break:
        # confident samples claim their landmark first, the tail fills
        # the remaining capacity
        order = members[
            np.lexsort((members, -S[members, prefs[members, 0]]))
        ]
        for i in order:
            for j in prefs[i]:
                if capacity[j] > 0:
                    assign[i] = j
                    capacity[j] -= 1
                    break
    return assign


def partition_samples(
    X: CSRMatrix,
    y: np.ndarray,
    k: int,
    kernel,
    seed: int = 0,
) -> np.ndarray:
    """Assign every sample to one of ``k`` clusters; returns the int
    assignment array.

    Capacity-constrained kernel k-means: ``k`` landmarks are chosen by
    kernel-k-means++ (greedy farthest-point in kernel distance over a
    seeded candidate pool), then each class is distributed over the
    clusters independently — samples claim their most-similar landmark
    in decreasing-confidence order, subject to balanced per-class
    capacities.  Guarantees (property-tested):

    - every sample is assigned exactly once, to a cluster in ``[0, k)``;
    - cluster ``j`` holds between ``floor(n_c/k)`` and ``ceil(n_c/k)``
      samples of each class ``c`` (the label-balance bound);
    - the assignment depends only on ``(X, y, k, kernel, seed)`` — it is
      bit-identical for identical seeds at any process count.
    """
    n = X.shape[0]
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (n,):
        raise ValueError(f"{y.size} labels for {n} samples")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    if k == 1:
        return np.zeros(n, dtype=np.int64)

    rng = np.random.default_rng(seed)
    norms = X.row_norms_sq()
    diag = kernel.diag(norms)

    # -- kernel-k-means++ landmark seeding over a bounded pool ----------
    # the pool must hold at least k distinct candidates
    pool_size = min(n, max(_LANDMARK_POOL, k))
    pool = np.sort(rng.choice(n, size=pool_size, replace=False))
    Xp = X.take_rows(pool)
    np_pool = norms[pool]
    # pairwise kernel over the pool: small (≤ _LANDMARK_POOL²)
    Kp = kernel.block(Xp, np_pool, Xp, np_pool)
    dp = diag[pool]
    # kernel distance d²(a, b) = Φ(a,a) + Φ(b,b) − 2Φ(a,b)
    first = int(rng.integers(len(pool)))
    chosen = [first]
    mind = dp + dp[first] - 2.0 * Kp[:, first]
    while len(chosen) < k:
        nxt = int(np.argmax(mind))  # argmax breaks ties at lowest index
        chosen.append(nxt)
        mind = np.minimum(mind, dp + dp[nxt] - 2.0 * Kp[:, nxt])
    landmarks = pool[np.asarray(chosen, dtype=np.int64)]

    # -- similarities of every sample to every landmark -----------------
    Xl = X.take_rows(landmarks)
    S = kernel.block(X, norms, Xl, norms[landmarks])  # (n, k)
    # similarity → preference: higher Φ = closer in kernel distance
    # (the −2Φ term is the only sample-dependent part of d²)
    return _balanced_assign(S, y, k)


class _Rotator:
    """Per-round rotating partitioner over a fixed landmark pool.

    The pool and its pairwise kernel block are computed once; each
    round draws ``k`` fresh landmarks from the pool by seeded
    kernel-k-means++ (D² sampling, so different seeds explore different
    landmark subsets) and assigns with the shared capacity-constrained
    greedy.  Sample-to-landmark similarity columns are cached, so a
    round's kernel-evaluation bill covers only first-touched landmarks
    — steady-state rotation is pure flops.  Rotation is what breaks the
    Jacobi plateau: a violator pair split by one partition co-locates
    under another.
    """

    def __init__(self, X: CSRMatrix, y: np.ndarray, kernel, seed: int):
        self.X, self.y, self.kernel = X, np.asarray(y, dtype=np.float64), kernel
        n = X.shape[0]
        self.norms = X.row_norms_sq()
        rng = np.random.default_rng(seed)
        self.pool_size = min(n, _LANDMARK_POOL)
        self.pool = np.sort(rng.choice(n, size=self.pool_size, replace=False))
        Xp = X.take_rows(self.pool)
        np_pool = self.norms[self.pool]
        self.Kp = kernel.block(Xp, np_pool, Xp, np_pool)
        self.dp = kernel.diag(np_pool)
        self._cols: Dict[int, np.ndarray] = {}  # pool position -> K[:, pool[pos]]

    def assign(self, k: int, seed: int) -> Tuple[np.ndarray, int]:
        """One rotated partition; returns ``(assignment, new_columns)``
        where ``new_columns`` is the number of landmark similarity
        columns that had to be evaluated (the round's kernel bill)."""
        k = min(k, self.pool_size)
        rng = np.random.default_rng(seed)
        first = int(rng.integers(self.pool_size))
        chosen = [first]
        d2 = np.maximum(0.0, self.dp + self.dp[first] - 2.0 * self.Kp[:, first])
        while len(chosen) < k:
            total = float(d2.sum())
            if total <= 0.0:
                nxt = int(rng.integers(self.pool_size))
            else:
                nxt = int(np.searchsorted(np.cumsum(d2), rng.random() * total))
                nxt = min(nxt, self.pool_size - 1)
            chosen.append(nxt)
            d2 = np.minimum(
                d2,
                np.maximum(
                    0.0, self.dp + self.dp[nxt] - 2.0 * self.Kp[:, nxt]
                ),
            )
        missing = [c for c in chosen if c not in self._cols]
        if missing:
            mi = self.pool[np.asarray(missing, dtype=np.int64)]
            block = self.kernel.block(
                self.X, self.norms, self.X.take_rows(mi), self.norms[mi]
            )
            for t, c in enumerate(missing):
                self._cols[c] = block[:, t]
        S = np.stack([self._cols[c] for c in chosen], axis=1)
        return _balanced_assign(S, self.y, k), len(missing)


class _ColumnCache:
    """Kernel-column cache for the gradient updates.

    The coordinates a round moves are dominated by the recurring
    support-vector boundary set, so across hundreds of rounds only a
    few hundred distinct columns are ever touched — the cache turns the
    per-round gradient update Δf = K[:, changed]·(d∘y) from an
    O(n·|changed|) kernel bill into a flops-only matvec after warmup.
    The modeled cost (:func:`repro.perfmodel.costs.dc_sync_time`)
    charges kernel evaluations for misses only, mirroring this.
    """

    def __init__(self, X: CSRMatrix, kernel):
        self.X, self.kernel = X, kernel
        self.norms = X.row_norms_sq()
        self._cols: Dict[int, np.ndarray] = {}

    def fetch(self, idx: np.ndarray) -> Tuple[np.ndarray, int]:
        """Columns ``K[:, idx]`` as an (n, len(idx)) block, plus the
        miss count actually evaluated."""
        missing = [int(j) for j in idx if int(j) not in self._cols]
        if missing:
            mi = np.asarray(missing, dtype=np.int64)
            block = self.kernel.block(
                self.X, self.norms, self.X.take_rows(mi), self.norms[mi]
            )
            for t, j in enumerate(missing):
                self._cols[j] = block[:, t]
        return (
            np.stack([self._cols[int(j)] for j in idx], axis=1),
            len(missing),
        )


# ----------------------------------------------------------------------
# feasibility projection of a dual vector
# ----------------------------------------------------------------------
def project_feasible(
    alpha: np.ndarray,
    y: np.ndarray,
    box: np.ndarray,
    *,
    max_sweeps: int = 64,
) -> np.ndarray:
    """Project a dual vector onto the feasible set
    ``{0 ≤ α ≤ box, sum(α·y) = 0}``.

    Alternates the equality correction (spread the residual over the
    coordinates that can still move in the needed direction) with the
    box clip; any residual the sweeps leave behind is absorbed by a
    deterministic greedy pass that walks α toward 0 — always possible,
    since α = 0 is feasible.  Handles the degenerate inputs the
    property tests pin: all-zero (identity), all-at-bound, and
    single-class clusters (projects to all-zero).
    """
    y = np.asarray(y, dtype=np.float64)
    n = y.shape[0]
    box = np.broadcast_to(np.asarray(box, dtype=np.float64), (n,))
    a = np.clip(np.asarray(alpha, dtype=np.float64), 0.0, box)
    if n == 0:
        return a
    scale = max(1.0, float(box.max(initial=0.0)))
    tol = 1e-12 * scale * max(1, n)

    for _ in range(max_sweeps):
        r = float(a @ y)
        if abs(r) <= tol:
            return a
        # coordinates that can move α·y toward −sign(r)
        if r > 0:
            movable = ((y > 0) & (a > 0)) | ((y < 0) & (a < box))
        else:
            movable = ((y > 0) & (a < box)) | ((y < 0) & (a > 0))
        m = int(np.count_nonzero(movable))
        if m == 0:
            break
        a[movable] -= y[movable] * (r / m)
        np.clip(a, 0.0, box, out=a)

    # deterministic absorption: reduce same-sign contributions toward 0
    r = float(a @ y)
    if abs(r) > 0.0:
        sgn = 1.0 if r > 0 else -1.0
        for i in np.flatnonzero((y * sgn > 0) & (a > 0)):
            take = min(float(a[i]), abs(r))
            a[i] -= take
            r -= sgn * take
            if abs(r) <= 0.0:
                break
    return np.clip(a, 0.0, box)


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass
class RoundStats:
    """One outer round: a rotated partition, k concurrent sub-solves,
    a line-searched merge and the gradient sync."""

    round_index: int
    k: int
    cluster_sizes: List[int]
    #: per-cluster sub-solve iteration counts (for makespan projection)
    iterations: List[int]
    #: per-cluster kernel-evaluation counts — the projector derives the
    #: effective (shrunk) γ-update width from evals / (2 · iterations)
    kernel_evals: List[int]
    #: per-cluster pair-broadcast counts (resident-cache misses; the
    #: projector prices the owner-rooted broadcasts from these)
    pair_broadcasts: List[int]
    #: coordinates moved by the accepted step
    changed: int
    #: kernel columns evaluated for the gradient sync (cache misses)
    new_sync_cols: int
    #: landmark similarity columns evaluated for the rotation
    new_landmark_cols: int
    #: accepted line-search step ω* ∈ (0, 1]
    step: float
    #: β_low − β_up after the merge
    gap: float
    vtime: float
    wall_time: float
    bytes_sent: int
    messages: int

    def to_dict(self) -> dict:
        return {
            "round": self.round_index,
            "k": self.k,
            "cluster_sizes": self.cluster_sizes,
            "iterations": self.iterations,
            "kernel_evals": self.kernel_evals,
            "pair_broadcasts": self.pair_broadcasts,
            "changed": self.changed,
            "new_sync_cols": self.new_sync_cols,
            "new_landmark_cols": self.new_landmark_cols,
            "step": self.step,
            "gap": self.gap,
            "vtime": self.vtime,
        }


@dataclass
class LevelStats:
    """Outcome of one DC level (all rounds at one partition count)."""

    level: int
    n_clusters: int
    rounds: List[RoundStats] = field(default_factory=list)
    #: modeled time of the level: sub-solve makespans plus the costed
    #: rotation / gradient-sync overheads of its rounds
    vtime: float = 0.0
    wall_time: float = 0.0
    bytes_sent: int = 0
    messages: int = 0
    #: the last round's assignment (for inspection / tests)
    assignments: Optional[np.ndarray] = None

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def iterations(self) -> int:
        """Total sub-solve iterations across the level's rounds."""
        return sum(sum(r.iterations) for r in self.rounds)

    @property
    def cluster_sizes(self) -> List[int]:
        return self.rounds[-1].cluster_sizes if self.rounds else []

    @property
    def final_gap(self) -> float:
        return self.rounds[-1].gap if self.rounds else float("inf")


@dataclass
class DCStats:
    """Outer-loop summary attached to the final :class:`FitResult`."""

    config: DCConfig
    levels: List[LevelStats]
    #: modeled outer-loop time: sub-solve makespans plus the costed
    #: setup / rotation / sync / projection overheads
    outer_vtime: float
    outer_wall: float
    #: β_low − β_up of the warm start handed to the refinement
    final_gap: float = float("inf")
    #: the projected warm start handed to the exact refinement
    warm_alpha: Optional[np.ndarray] = None

    @property
    def assignments(self) -> Optional[np.ndarray]:
        """The last rotated cluster assignment."""
        return self.levels[-1].assignments if self.levels else None

    @property
    def n_rounds(self) -> int:
        return sum(ls.n_rounds for ls in self.levels)

    @property
    def sub_iterations(self) -> int:
        return sum(ls.iterations for ls in self.levels)

    def to_dict(self) -> dict:
        return {
            "config": str(self.config),
            "outer_vtime": self.outer_vtime,
            "outer_wall": self.outer_wall,
            "final_gap": self.final_gap,
            "n_rounds": self.n_rounds,
            "sub_iterations": self.sub_iterations,
            "levels": [
                {
                    "level": ls.level,
                    "n_clusters": ls.n_clusters,
                    "n_rounds": ls.n_rounds,
                    "iterations": ls.iterations,
                    "final_gap": ls.final_gap,
                    "vtime": ls.vtime,
                    "wall_time": ls.wall_time,
                    "bytes_sent": ls.bytes_sent,
                    "messages": ls.messages,
                    "rounds": [r.to_dict() for r in ls.rounds],
                }
                for ls in self.levels
            ],
        }


# ----------------------------------------------------------------------
# stage 2: one round of concurrent sub-solves on the SPMD runtime
# ----------------------------------------------------------------------
def _solve_round(
    X: CSRMatrix,
    y: np.ndarray,
    alpha: np.ndarray,
    f: np.ndarray,
    assign: np.ndarray,
    k: int,
    params: SVMParams,
    cfg: RunConfig,
    engine: str,
):
    """Solve the ``k`` block subproblems of one partition concurrently.

    One SPMD job: ranks are grouped contiguously, each group is carved
    into a sub-communicator, and each group solves its contiguous share
    of the clusters sequentially.  Groups never exchange messages, so
    the job's virtual makespan is the time of the slowest group — the
    concurrent-clusters model.

    Each cluster's shards are seeded with the *global* α and gradient f
    restricted to the cluster (``gamma0=f[idx]``, alphas copied in, no
    stale-marking), which makes the sub-solve exactly the block
    subproblem "optimize these α with every other block frozen".  The
    sub-solves always run the permanent-elimination heuristic
    ``_SUB_HEUR``: shrinking pays, but a reconstruction would rebuild γ
    from the cluster's alphas alone and silently drop the frozen
    blocks' contribution carried by ``gamma0``.

    Returns ``(block_alpha, sizes, iters, spmd)`` where ``block_alpha``
    is the blockwise minimizer (the line search back on the driver
    decides how far to move toward it).
    """
    p = cfg.nprocs
    sub_heur = _SUB_HEUR
    # sub-solves honour the run's WSS policy and column-cache budget —
    # the budget is per rank, so carved sub-communicators keep it as-is
    wss = resolve_wss(cfg.wss)
    cache_bytes = int(cfg.kernel_cache_mb * 1024 * 1024)

    cluster_idx = [np.flatnonzero(assign == c) for c in range(k)]
    cluster_idx = [ci for ci in cluster_idx if ci.size]
    k_eff = len(cluster_idx)
    ngroups = min(p, k_eff)
    gpart = BlockPartition(p, ngroups)  # ranks → groups
    cpart = BlockPartition(k_eff, ngroups)  # clusters → groups

    sub = []
    for c, idx in enumerate(cluster_idx):
        group = cpart.owner(c)
        # never give a cluster more ranks than samples: tiny clusters
        # run on a narrower carve, the group's tail ranks sit out
        sub_p = min(gpart.count(group), idx.size)
        part_c = BlockPartition(idx.size, sub_p)
        blocks = make_blocks(X.take_rows(idx), y[idx], part_c, gamma0=f[idx])
        for r, blk in enumerate(blocks):
            lo, hi = part_c.bounds(r)
            blk.alpha[:] = alpha[idx[lo:hi]]
        sub.append((idx, part_c, blocks))

    def entry(comm):
        group = gpart.owner(comm.rank)
        glo, _ = gpart.bounds(group)
        out = []
        for c in range(*cpart.bounds(group)):
            _, part_c, blocks = sub[c]
            subcomm = carve(comm, range(glo, glo + part_c.p))
            if subcomm is None:
                continue  # this cluster is narrower than the group
            rr = solve_rank(
                subcomm, blocks[subcomm.rank], part_c, params, sub_heur,
                engine, wss=wss, cache_bytes=cache_bytes,
            )
            out.append((c, subcomm.rank, rr))
        return out

    spmd = run_spmd(
        entry, p, machine=cfg.machine, trace=cfg.trace,
        deadlock_timeout=cfg.deadlock_timeout, faults=cfg.faults,
        comm=cfg.comm,
    )

    per_cluster: dict = {}
    for rank_out in spmd.results:
        for c, sub_rank, rr in rank_out:
            per_cluster.setdefault(c, {})[sub_rank] = rr

    block_alpha = alpha.copy()
    sizes, iters, evals, bcasts = [], [], [], []
    for c, (idx, part_c, _) in enumerate(sub):
        ranked = per_cluster[c]
        results = [ranked[r] for r in range(part_c.p)]
        block_alpha[idx] = np.concatenate([r.alpha for r in results])
        sizes.append(int(idx.size))
        iters.append(int(results[0].iterations))
        evals.append(int(sum(r.trace.kernel_evals for r in results)))
        # like SolveTrace.merge: every rank observes the same broadcast
        # sequence, so the cluster count is the max over its ranks
        bcasts.append(
            int(max(r.trace.pair_broadcasts for r in results))
        )
    return block_alpha, sizes, iters, evals, bcasts, spmd


# ----------------------------------------------------------------------
# the outer loop
# ----------------------------------------------------------------------
def _gap(alpha: np.ndarray, y: np.ndarray, f: np.ndarray, box) -> float:
    """β_low − β_up under the solver's own convergence convention."""
    up, low = up_low_masks(alpha, y, box)
    beta_up = float(np.min(f[up])) if up.any() else np.inf
    beta_low = float(np.max(f[low])) if low.any() else -np.inf
    return beta_low - beta_up


def dc_warm_start(
    X: CSRMatrix,
    y: np.ndarray,
    params: SVMParams,
    cfg: RunConfig,
    *,
    heur: Heuristic,
    engine: str,
) -> Tuple[np.ndarray, DCStats]:
    """Run the DC outer loop and return ``(warm_alpha, stats)``.

    ``warm_alpha`` is feasibility-projected (box + equality) and ready
    for :func:`repro.core.fit_parallel`'s ``warm_start_alpha``;
    ``stats.outer_vtime`` carries the modeled outer-loop cost (the
    per-round sub-solve makespans plus the costed setup / rotation /
    gradient-sync / projection overheads) so total-modeled-time
    comparisons against a cold solve stay honest.

    ``heur`` is accepted for signature symmetry with the refinement but
    intentionally unused: sub-solves always run the shrink-without-
    reconstruction heuristic ``_SUB_HEUR`` (see :func:`_solve_round`).
    """
    del heur  # sub-solves pin their own heuristic; see _solve_round
    dc = as_dc(cfg.dc)
    if dc is None:
        raise ValueError("dc_warm_start called without a dc config")
    machine = cfg.machine or MachineSpec.cascade()
    n = X.shape[0]
    p = cfg.nprocs
    avg_nnz = X.avg_row_nnz or 1.0
    box = params.box_for(y)
    eps = params.eps

    rotator = _Rotator(X, y, params.kernel, seed=dc.seed)
    col_cache = _ColumnCache(X, params.kernel)
    # one-time modeled setup: pool similarity block + replicating the
    # sample rows to the ranks (DC re-clusters every round, so every
    # rank keeps the full row set — the standard DC-SVM layout)
    outer_vtime = costs.dc_pool_time(machine, n, avg_nnz) + costs.dc_scatter_time(
        machine, n, p, avg_nnz
    )

    # level schedule: finest (clusters**levels) → coarsest (clusters),
    # gap targets interpolated geometrically down to the final target
    final_target = _GAP_TARGET_FACTOR * eps
    ks, targets = [], []
    for i, level in enumerate(range(dc.levels, 0, -1)):
        k = min(dc.clusters ** level, max(2, n // 2))
        t = (i + 1) / dc.levels
        # initial gap is 2 at α = 0 for ±1 labels; interpolate from there
        targets.append(float(2.0 ** (1.0 - t) * final_target ** t))
        ks.append(k)

    alpha = np.zeros(n)
    f = -y.astype(np.float64).copy()  # gradient at α = 0
    gap = _gap(alpha, y, f, box)
    levels: List[LevelStats] = []
    round_counter = 0
    t_outer = time.perf_counter()

    for level, (k, target) in enumerate(zip(ks, targets), start=1):
        lstats = LevelStats(level=level, n_clusters=k)
        best_gap, stall = gap, 0
        while gap > target and lstats.n_rounds < _MAX_ROUNDS:
            t_round = time.perf_counter()
            sub_eps = max(gap / _SUB_EPS_DIVISOR, eps)
            sub_params = replace(params, eps=sub_eps)
            assign, new_landmarks = rotator.assign(
                k, seed=dc.seed + round_counter
            )
            block_alpha, sizes, iters, evals, bcasts, spmd = _solve_round(
                X, y, alpha, f, assign, k, sub_params, cfg, engine
            )

            # line-searched merge: d is the blockwise step; the exact
            # Cauchy step ω* = min(1, dᵀg / dᵀQd) guarantees monotone
            # dual ascent (ω ∈ [0, 1] keeps feasibility by convexity)
            d = block_alpha - alpha
            changed = np.flatnonzero(d != 0.0)
            step = 1.0
            if changed.size:
                cols, new_sync = col_cache.fetch(changed)
                df = cols @ (d[changed] * y[changed])
                dqd = float(d[changed] @ (y[changed] * df[changed]))
                dlin = float(-d[changed] @ (y[changed] * f[changed]))
                if dqd > 0.0:
                    step = min(1.0, dlin / dqd)
                alpha = alpha + step * d
                f = f + step * df
            else:
                new_sync = 0
            gap = _gap(alpha, y, f, box)

            outer_vtime += spmd.vtime
            outer_vtime += costs.dc_rotate_time(
                machine, n, k, p, new_landmarks, avg_nnz
            )
            outer_vtime += costs.dc_sync_time(
                machine, n, p, int(changed.size), new_sync, avg_nnz
            )
            lstats.vtime += spmd.vtime
            lstats.wall_time += time.perf_counter() - t_round
            lstats.bytes_sent += spmd.total_bytes_sent
            lstats.messages += spmd.total_messages
            lstats.assignments = assign
            lstats.rounds.append(
                RoundStats(
                    round_index=round_counter,
                    k=len(sizes),
                    cluster_sizes=sizes,
                    iterations=iters,
                    kernel_evals=evals,
                    pair_broadcasts=bcasts,
                    changed=int(changed.size),
                    new_sync_cols=new_sync,
                    new_landmark_cols=new_landmarks,
                    step=step,
                    gap=gap,
                    vtime=spmd.vtime,
                    wall_time=time.perf_counter() - t_round,
                    bytes_sent=spmd.total_bytes_sent,
                    messages=spmd.total_messages,
                )
            )
            round_counter += 1
            if gap < best_gap * _STALL_FACTOR:
                best_gap, stall = gap, 0
            else:
                stall += 1
                if stall >= _STALL_ROUNDS:
                    break  # the refinement absorbs the remaining gap
        levels.append(lstats)

    warm = project_feasible(alpha, y, box)
    outer_vtime += costs.dc_project_time(machine, n)
    stats = DCStats(
        config=dc,
        levels=levels,
        outer_vtime=outer_vtime,
        outer_wall=time.perf_counter() - t_outer,
        final_gap=gap,
        warm_alpha=warm,
    )
    return warm, stats


def fit_dc(X, y, params: SVMParams, *, dc: Any = None, config=None, **kwargs):
    """Convenience wrapper: a DC-warm-started exact fit.

    Equivalent to ``fit_parallel(X, y, params, config=..., dc=dc)``;
    the returned :class:`~repro.core.solver.FitResult` carries the
    outer-loop summary in ``.dc``.
    """
    from ..config import resolve_config
    from .solver import fit_parallel

    cfg = resolve_config(config, dc=dc or DCConfig())
    return fit_parallel(X, y, params, config=cfg, **kwargs)
