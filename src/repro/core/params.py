"""Solver hyperparameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..kernels import Kernel, RBFKernel


@dataclass(frozen=True)
class SVMParams:
    """Hyperparameters shared by every solver variant.

    Attributes
    ----------
    C:
        Box constraint (the paper's Table III ``C``).
    kernel:
        Kernel function Φ; defaults to the paper's Gaussian kernel.
    eps:
        Optimality tolerance ε in Eq. (5): stop when
        ``beta_up + 2*eps >= beta_low``.  libsvm's default 1e-3.
    max_iter:
        Safety bound on total iterations (0 = unbounded).  Mirrors real
        deployments where a runaway job must terminate; the solver raises
        :class:`ConvergenceError` when exceeded.
    shrink_eps_factor:
        Multi-reconstruction phase-1 tolerance multiplier: Algorithm 5
        first converges the shrunk problem at ``shrink_eps_factor * eps``
        (the paper uses 20, i.e. reconstruct at 20ε then drive to 2ε).
    weight_pos, weight_neg:
        Per-class penalty multipliers (libsvm's ``-w``): the box
        constraint of a sample with label y is ``C * weight(y)``.
        Useful for imbalanced problems.
    """

    C: float = 1.0
    kernel: Kernel = field(default_factory=lambda: RBFKernel(1.0))
    eps: float = 1e-3
    max_iter: int = 10_000_000
    shrink_eps_factor: float = 10.0
    weight_pos: float = 1.0
    weight_neg: float = 1.0

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}")
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if self.max_iter < 0:
            raise ValueError(f"max_iter must be >= 0, got {self.max_iter}")
        if self.shrink_eps_factor < 1:
            raise ValueError(
                f"shrink_eps_factor must be >= 1, got {self.shrink_eps_factor}"
            )
        if self.weight_pos <= 0 or self.weight_neg <= 0:
            raise ValueError(
                f"class weights must be positive, got "
                f"({self.weight_pos}, {self.weight_neg})"
            )

    @property
    def weighted(self) -> bool:
        return self.weight_pos != 1.0 or self.weight_neg != 1.0

    def box_for(self, y):
        """Per-sample box constraint C_i = C·weight(y_i).

        Accepts a scalar label or a label array; returns the same shape.
        """
        import numpy as np

        y = np.asarray(y)
        out = self.C * np.where(y > 0, self.weight_pos, self.weight_neg)
        return float(out) if out.ndim == 0 else out


class ConvergenceError(RuntimeError):
    """Raised when a solver exceeds its iteration budget."""
