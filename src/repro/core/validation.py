"""Cross-validation and hyperparameter search (§V-C).

The paper selects (C, σ²) per dataset by ten-fold cross-validation with
libsvm.  These utilities provide the same workflow against the
reproduction's solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from .svc import SVC


def kfold_indices(
    n: int, k: int, *, seed: Optional[int] = 0, shuffle: bool = True
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs for k-fold CV."""
    if not 2 <= k <= n:
        raise ValueError(f"k must be in [2, n={n}], got {k}")
    order = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(order)
    folds = np.array_split(order, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield np.sort(train), np.sort(test)


def stratified_kfold_indices(
    y: np.ndarray, k: int, *, seed: Optional[int] = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """k-fold split preserving per-class proportions."""
    y = np.asarray(y)
    n = y.shape[0]
    rng = np.random.default_rng(seed)
    fold_of = np.empty(n, dtype=np.int64)
    for cls in np.unique(y):
        idx = np.flatnonzero(y == cls)
        rng.shuffle(idx)
        fold_of[idx] = np.arange(idx.size) % k
    for i in range(k):
        test = np.flatnonzero(fold_of == i)
        train = np.flatnonzero(fold_of != i)
        if test.size == 0 or train.size == 0:
            raise ValueError(f"fold {i} is empty; reduce k={k}")
        yield train, test


def _take(X, idx: np.ndarray):
    if isinstance(X, CSRMatrix):
        return X.take_rows(idx)
    return np.asarray(X)[idx]


def cross_val_score(
    clf: SVC, X, y, *, k: int = 10, seed: Optional[int] = 0,
    stratified: bool = True,
) -> np.ndarray:
    """Per-fold accuracy of a fresh clone of ``clf`` on each split."""
    y = np.asarray(y)
    splitter = (
        stratified_kfold_indices(y, k, seed=seed)
        if stratified
        else kfold_indices(y.shape[0], k, seed=seed)
    )
    # run-time knobs clone through the RunConfig (the keyword shims on
    # SVC are deprecated); only model hyperparameters travel as kwargs
    run_keys = {
        "heuristic", "nprocs", "faults", "engine", "wss",
        "kernel_cache_mb", "comm", "dc",
    }
    hyper = {
        k: v for k, v in clf.get_params().items() if k not in run_keys
    }
    scores = []
    for train, test in splitter:
        fold_clf = SVC(config=clf._run_config(), **hyper)
        fold_clf.fit(_take(X, train), y[train])
        scores.append(fold_clf.score(_take(X, test), y[test]))
    return np.asarray(scores)


@dataclass
class GridSearchResult:
    """Winner and the full score table of a grid search."""

    best_params: dict
    best_score: float
    table: List[Tuple[dict, float]]


def grid_search(
    X,
    y,
    *,
    Cs: Sequence[float],
    sigma_sqs: Sequence[float],
    k: int = 10,
    seed: Optional[int] = 0,
    base_params: Optional[dict] = None,
) -> GridSearchResult:
    """Ten-fold CV over a (C, σ²) grid — the paper's §V-C procedure."""
    base = dict(base_params or {})
    table: List[Tuple[dict, float]] = []
    best: Tuple[float, dict] = (-np.inf, {})
    for C in Cs:
        for s2 in sigma_sqs:
            params = {**base, "C": C, "sigma_sq": s2}
            clf = SVC(**params)
            score = float(cross_val_score(clf, X, y, k=k, seed=seed).mean())
            table.append((params, score))
            if score > best[0]:
                best = (score, params)
    return GridSearchResult(best_params=best[1], best_score=best[0], table=table)
