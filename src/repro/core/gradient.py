"""Gradient initialization and rank-local updates (Eq. 1-2).

The gradient in the paper's convention is

    γ_i = Σ_j α_j y_j Φ(x_i, x_j) − y_i            (Eq. 1)

so at α = 0 the gradient is simply −y.  Each SMO step changes exactly two
α's (the working set), and every sample's gradient is updated with two
kernel evaluations (Eq. 2)::

    γ_i += y_up·Δα_up·Φ(x_up, x_i) + y_low·Δα_low·Φ(x_low, x_i)
"""

from __future__ import annotations

import numpy as np


def init_gradient(y: np.ndarray) -> np.ndarray:
    """γ at the initial point α = 0."""
    return -np.asarray(y, dtype=np.float64)


def apply_pair_update(
    gamma: np.ndarray,
    k_up: np.ndarray,
    k_low: np.ndarray,
    y_up: float,
    y_low: float,
    d_alpha_up: float,
    d_alpha_low: float,
) -> None:
    """In-place Eq. (2) update of ``gamma`` (any subset of samples).

    ``k_up``/``k_low`` are the kernel values of the two working-set
    samples against the same subset ``gamma`` covers.
    """
    if k_up.shape != gamma.shape or k_low.shape != gamma.shape:
        raise ValueError(
            f"kernel column shapes {k_up.shape}/{k_low.shape} do not match "
            f"gradient shape {gamma.shape}"
        )
    coef_up = y_up * d_alpha_up
    coef_low = y_low * d_alpha_low
    if coef_up != 0.0:
        gamma += coef_up * k_up
    if coef_low != 0.0:
        gamma += coef_low * k_low


def full_gradient(
    kernel_matrix: np.ndarray, alpha: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Direct Eq. (1) evaluation from a dense kernel matrix (tests only)."""
    return kernel_matrix @ (alpha * y) - y
