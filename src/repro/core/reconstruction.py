"""Distributed gradient reconstruction — Algorithm 3.

When samples are shrunk their gradients go stale (Eq. 2 skips them).
Before the solver can certify optimality, every stale γ_i must be
recomputed from scratch against *all* samples with α_j > 0 — including
bound SVs that are themselves currently shrunk.

Each rank packs its α>0 samples (CSR block + coefficients α_j·y_j) and
the blocks circulate around a ring of p steps (``Isend``/``Irecv``/
``Waitall`` in the paper; eager nonblocking sends here).  At each step a
rank folds the visiting block's contribution into the gradients of its
own shrunk samples.  After the ring, γ_i = Σ_j α_j y_j Φ(x_j, x_i) − y_i
exactly, all samples are re-activated, and fresh β_up/β_low are
computed by the caller.

Communication moves Θ(|{α>0}|) samples per rank per step — the paper's
Θ(|X − Ȧ| · G) bandwidth bound — instead of an Allgather needing a
full-dataset receive buffer (§IV-B2).

The fold itself runs through the blocked kernel-evaluation engine: each
visiting block is consumed as a handful of CSR×CSRᵀ kernel slabs
(``Kernel.block``) and weighted row sums instead of one Python iteration
per contributing sample, bit-for-bit equivalent to the per-sample
formulation (see ``_fold_blocked``).
"""

from __future__ import annotations

import zlib
from typing import Optional, Tuple

import numpy as np

from ..kernels import Kernel
from ..mpi.errors import CorruptMessageError, MessageLostError, RingRecoveryError
from ..sparse.csr import CSRMatrix
from .state import LocalBlock
from .trace import RankTrace, ReconEvent

#: base tag for ring traffic (engine uses 1 and 2 for working-set
#: samples).  Step ``s`` of the ring uses ``TAG_RING + s``: sends are
#: eager and a neighbor may run several steps ahead, so per-step tags
#: keep matching unambiguous when a chunk is delayed, dropped or being
#: re-requested — the receiver can never confuse the step-``s``
#: retransmission with the step-``s+1`` chunk already queued behind it.
TAG_RING = 3

#: ring-level recovery attempts per step before giving up (each
#: attempt re-requests the pristine chunk from the fault-engine ledger)
RING_MAX_RETRIES = 3

#: visiting-block rows folded per blocked step — bounds the dense kernel
#: slab at FOLD_TILE_ROWS × |local shrunk set| doubles
FOLD_TILE_ROWS = 512

#: module default for the fold implementation.  ``"blocked"`` evaluates
#: one kernel slab (SpGEMM) per tile of the visiting block; ``"rowwise"``
#: is the paper's literal per-sample loop.  The two are bit-for-bit
#: equivalent (see ``_fold_blocked``); tests flip this to prove it.
DEFAULT_FOLD = "blocked"

#: module default for the ring wire protocol.  ``"frames"`` moves each
#: chunk as a typed frame (header + indptr + indices + data sections;
#: the frame's CRC32 replaces the chunk-level checksum), ``"pickle"`` is
#: the legacy pickled 4-tuple carrying its own CRC.  Both feed the same
#: corrupt-chunk re-request protocol; tests and benchmarks flip this to
#: compare exact wire bytes.
DEFAULT_WIRE = "frames"


def _chunk_crc(blob: bytes, coefs: np.ndarray, norms: np.ndarray) -> int:
    """CRC32 over the chunk's three payload fields."""
    crc = zlib.crc32(blob)
    crc = zlib.crc32(np.ascontiguousarray(coefs).tobytes(), crc)
    crc = zlib.crc32(np.ascontiguousarray(norms).tobytes(), crc)
    return crc & 0xFFFFFFFF


def _pack_contrib(blk: LocalBlock, wire: Optional[str] = None) -> Tuple:
    """This rank's ring payload: CSR bytes, coefs α·y, row norms.

    The CSR blob and the norm vector depend only on the support set
    {α > 0}, so they are cached on the block and reused while the set
    is unchanged; the coefficients are recomputed every time (α values
    move between reconstructions even when the set does not).

    On the ``"frames"`` wire the chunk is the bare 3-tuple — the typed
    frame's own CRC32 protects it in transit.  On the ``"pickle"`` wire
    a chunk-level CRC travels as a fourth field (the historical format).
    """
    contrib = np.flatnonzero(blk.alpha > 0)
    cached = blk._descriptor_cache
    if cached is not None and np.array_equal(cached[0], contrib):
        blob, norms = cached[1], cached[2]
    else:
        blob = blk.X.take_rows(contrib).to_bytes()
        norms = blk.norms[contrib]
        blk._descriptor_cache = (contrib.copy(), blob, norms)
    coefs = blk.alpha[contrib] * blk.y[contrib]
    if (wire or DEFAULT_WIRE) == "frames":
        return blob, coefs, norms
    return blob, coefs, norms, _chunk_crc(blob, coefs, norms)


def _verify_chunk(chunk, source: int) -> None:
    """Integrity-check one visiting chunk.

    A framed chunk (3-tuple) was already CRC-verified by the frame
    decoder; a pickled chunk (4-tuple) is checked against its carried
    chunk-level CRC.  Anything else is malformed.
    """
    if isinstance(chunk, tuple) and len(chunk) == 3:
        return
    if not (isinstance(chunk, tuple) and len(chunk) == 4):
        raise CorruptMessageError(
            f"ring chunk from rank {source} has malformed structure "
            f"({type(chunk).__name__})"
        )
    blob, coefs, norms, crc = chunk
    if _chunk_crc(blob, coefs, norms) != crc:
        raise CorruptMessageError(
            f"ring chunk from rank {source} failed CRC32 verification"
        )


def _ring_recv(comm, recv_req, source: int, tag: int, step: int):
    """Complete one ring receive with integrity-checked recovery.

    A chunk that fails deserialization or CRC verification is
    re-requested from the left neighbor (via the fault-engine ledger —
    the simulator's stand-in for a retransmit protocol) up to
    :data:`RING_MAX_RETRIES` times.  Exhausted retries, or a chunk the
    message layer reports as lost, raise a structured
    :class:`~repro.mpi.errors.RingRecoveryError` naming the rank, tag
    and ring step.
    """
    attempts = 0
    req = recv_req
    while True:
        try:
            chunk = req.wait()
            _verify_chunk(chunk, source)
            return chunk
        except CorruptMessageError as exc:
            attempts += 1
            if attempts > RING_MAX_RETRIES or not comm.rerequest(source, tag):
                raise RingRecoveryError(
                    comm.rank, tag, step, attempts, exc
                ) from exc
            req = comm.irecv(source=source, tag=tag)
        except MessageLostError as exc:
            raise RingRecoveryError(
                comm.rank, tag, step, attempts, exc
            ) from exc


def _fold_rowwise(
    kernel: Kernel,
    X_shrunk: CSRMatrix,
    norms_shrunk: np.ndarray,
    accum: np.ndarray,
    Xc: CSRMatrix,
    coefs: np.ndarray,
    norms: np.ndarray,
) -> int:
    """The paper's literal fold: one kernel column per visiting sample."""
    evals = 0
    for j in range(Xc.shape[0]):
        ji, jv = Xc.row(j)
        kcol = kernel.row_against_block(
            X_shrunk, norms_shrunk, ji, jv, float(norms[j])
        )
        accum += coefs[j] * kcol
        evals += kcol.size
    return evals


def _fold_blocked(
    kernel: Kernel,
    X_shrunk: CSRMatrix,
    norms_shrunk: np.ndarray,
    accum: np.ndarray,
    Xc: CSRMatrix,
    coefs: np.ndarray,
    norms: np.ndarray,
    tile_rows: int = FOLD_TILE_ROWS,
) -> int:
    """Blocked fold: one kernel slab + one weighted sum per tile.

    Bit-for-bit equivalent to ``_fold_rowwise``: each slab column is
    bitwise identical to the corresponding ``row_against_block`` call
    (see :meth:`Kernel.block`), and ``np.add.accumulate`` with the
    running partial as carry-in performs exactly the left-to-right
    additions of the per-sample loop — floating-point summation order,
    and therefore the deterministic engine's iteration sequence, is
    preserved.
    """
    evals = 0
    for lo in range(0, Xc.shape[0], tile_rows):
        hi = min(lo + tile_rows, Xc.shape[0])
        slab = kernel.block(
            X_shrunk, norms_shrunk, Xc.row_slice(lo, hi), norms[lo:hi]
        )
        slab *= coefs[lo:hi]
        carried = np.concatenate([accum[:, None], slab], axis=1)
        np.add.accumulate(carried, axis=1, out=carried)
        accum[:] = carried[:, -1]
        evals += slab.size
    return evals


def _apply_chunk(
    kernel: Kernel,
    X_shrunk: CSRMatrix,
    norms_shrunk: np.ndarray,
    accum: np.ndarray,
    chunk: Tuple,
    fold: Optional[str] = None,
) -> int:
    """Fold one visiting block into the partial gradients; returns #evals."""
    blob, coefs, norms = chunk[0], chunk[1], chunk[2]
    if accum.size == 0 or coefs.size == 0:
        return 0
    Xc = CSRMatrix.from_bytes(blob)
    fold = DEFAULT_FOLD if fold is None else fold
    if fold == "blocked":
        return _fold_blocked(
            kernel, X_shrunk, norms_shrunk, accum, Xc, coefs, norms
        )
    if fold == "rowwise":
        return _fold_rowwise(
            kernel, X_shrunk, norms_shrunk, accum, Xc, coefs, norms
        )
    raise ValueError(f"unknown fold mode {fold!r}")


def gradient_reconstruction(
    comm,
    blk: LocalBlock,
    kernel: Kernel,
    iteration: int,
    trace: RankTrace,
    *,
    deterministic: bool = True,
    fold: Optional[str] = None,
    wire: Optional[str] = None,
) -> None:
    """Run Algorithm 3 on this rank; on return every sample is active
    and every gradient is exact.

    With ``deterministic=True`` (default) the visiting blocks are
    buffered and folded into the gradients in *global rank order*, so
    the floating-point summation order — and therefore the reconstructed
    γ, bitwise — is independent of the process count.  This costs
    Θ(|{α>0}|) buffer memory per rank (the support set).  The paper's
    pure streaming ring (one visiting block in memory at a time,
    accumulation in ring-arrival order) is ``deterministic=False``; it
    reconstructs the same values up to rounding.

    ``fold`` selects the fold implementation (``"blocked"``, the batched
    SpGEMM engine, or ``"rowwise"``, the per-sample loop); ``None``
    follows :data:`DEFAULT_FOLD`.  Both folds produce bitwise-identical
    gradients and identical kernel-evaluation counts.

    ``wire`` selects the ring payload protocol (``"frames"`` or
    ``"pickle"``; ``None`` follows :data:`DEFAULT_WIRE`).  The decoded
    chunks are identical byte-for-byte on either wire, so γ is bitwise
    independent of the choice; only the wire size (the reported
    ``bytes_sent``) differs.
    """
    p = comm.size
    wire = DEFAULT_WIRE if wire is None else wire
    if wire not in ("frames", "pickle"):
        raise ValueError(f"unknown wire mode {wire!r}")
    shrunk_idx = np.flatnonzero(~blk.active)
    X_shr = blk.X.take_rows(shrunk_idx)
    norms_shr = blk.norms[shrunk_idx]
    accum = np.zeros(shrunk_idx.size)

    chunk = _pack_contrib(blk, wire)
    n_contrib_local = int(chunk[1].size)
    b0 = comm.clock.stats.bytes_sent
    evals = 0

    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    buffered = [None] * p if deterministic else None
    for step in range(p):
        if deterministic:
            buffered[(comm.rank - step) % p] = chunk
        else:
            evals += _apply_chunk(kernel, X_shr, norms_shr, accum, chunk, fold)
        if step < p - 1:
            tag = TAG_RING + step
            recv_req = comm.irecv(source=left, tag=tag)
            send_req = comm.isend(chunk, right, tag=tag, wire=wire)
            chunk = _ring_recv(comm, recv_req, left, tag, step)
            send_req.wait()
    # exact wire bytes this rank pushed into the ring (clock delta: the
    # ring is the only sender between the two snapshots)
    bytes_sent = comm.clock.stats.bytes_sent - b0
    if deterministic:
        for src in range(p):
            evals += _apply_chunk(
                kernel, X_shr, norms_shr, accum, buffered[src], fold
            )

    # γ_i = Σ_j α_j y_j Φ(x_j, x_i) + γ0_i  (Alg. 3 line 6; γ0 = −y for
    # classification, the ε-SVR linear term otherwise)
    if shrunk_idx.size:
        blk.gamma[shrunk_idx] = accum + blk.gamma0[shrunk_idx]
        blk.active[shrunk_idx] = True
        blk.invalidate_active()

    avg_nnz = blk.X.avg_row_nnz or 1.0
    comm.charge_kernel_evals(evals, avg_nnz)
    trace.kernel_evals += evals
    trace.recon_events.append(
        ReconEvent(
            iteration=iteration,
            n_shrunk_local=int(shrunk_idx.size),
            n_contrib_local=n_contrib_local,
            bytes_sent=bytes_sent,
            kernel_evals=evals,
        )
    )
