"""Solver instrumentation.

Each rank fills a :class:`RankTrace` while it runs; the driver merges
them into one :class:`SolveTrace` that records the global per-iteration
active-set trajectory, shrink/reconstruction events and operation
counts.  The trace feeds

- the analysis the paper reports in §V-D (active-set fraction,
  iteration counts, reconstruction-time ratio), and
- the performance projector (:mod:`repro.perfmodel.projector`), which
  replays the trace against the machine model at arbitrary ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class ReconEvent:
    """One gradient reconstruction on one rank."""

    iteration: int
    n_shrunk_local: int  # samples whose γ this rank recomputed
    n_contrib_local: int  # α>0 samples this rank contributed to the ring
    bytes_sent: int
    kernel_evals: int


@dataclass
class RankTrace:
    """Per-rank instrumentation, filled during the solve."""

    rank: int
    n_local: int
    active_counts: List[int] = field(default_factory=list)
    #: optimality gap β_low − β_up per iteration (rank 0 only)
    gap_history: List[float] = field(default_factory=list)
    shrink_iters: List[int] = field(default_factory=list)
    shrunk_per_event: List[int] = field(default_factory=list)
    recon_events: List[ReconEvent] = field(default_factory=list)
    kernel_evals: int = 0
    iter_kernel_evals: int = 0  # kernel evals in the iterative part only
    #: working-set sample broadcasts this rank took part in (the packed
    #: engine's resident cache makes this < 2·iterations; identical on
    #: every rank since the broadcast sequence is collective)
    pair_broadcasts: int = 0
    #: full (two-phase, for second-order policies) violator elections;
    #: identical on every rank — elections are collective
    wss_elections: int = 0
    #: planning-ahead zero-communication pair reuses; identical on
    #: every rank — the reuse decision is computed redundantly
    wss_reuses: int = 0
    #: training-side kernel-column cache hits/misses on this rank
    cache_hits: int = 0
    cache_misses: int = 0

    def record_iteration(self, n_active_local: int) -> None:
        self.active_counts.append(n_active_local)


@dataclass
class SolveTrace:
    """Merged, global view of one distributed solve."""

    n_samples: int
    n_features: int
    avg_nnz: float
    nprocs: int
    iterations: int
    #: global active-set size at each iteration
    active_counts: np.ndarray
    #: optimality gap per iteration (from rank 0)
    gap_history: np.ndarray
    #: iterations at which shrink passes fired (on any rank)
    shrink_iters: List[int]
    #: global samples removed at each shrink event
    shrunk_per_event: List[int]
    #: merged reconstruction events, ordered by iteration
    recon_events: List[ReconEvent]
    kernel_evals: int
    iter_kernel_evals: int
    #: per-iteration-loop working-set broadcasts (p-independent: the
    #: miss sequence of the packed engine's resident cache is fixed by
    #: the deterministic iteration sequence)
    pair_broadcasts: int = 0
    #: full violator elections (= iterations under ``mvp``; fewer under
    #: planning-ahead, whose reuses skip the election entirely)
    wss_elections: int = 0
    #: planning-ahead zero-communication pair reuses
    wss_reuses: int = 0
    #: training-side kernel-column cache hits/misses summed over ranks
    #: (0/0 when the engines ran the canonical cache-free path)
    cache_hits: int = 0
    cache_misses: int = 0

    @classmethod
    def merge(
        cls,
        rank_traces: List[RankTrace],
        n_samples: int,
        n_features: int,
        avg_nnz: float,
    ) -> "SolveTrace":
        iters = max((len(t.active_counts) for t in rank_traces), default=0)
        active = np.zeros(iters, dtype=np.int64)
        for t in rank_traces:
            a = np.asarray(t.active_counts, dtype=np.int64)
            active[: a.size] += a
        shrink_iters = sorted({i for t in rank_traces for i in t.shrink_iters})
        shrunk = {}
        for t in rank_traces:
            for it, n in zip(t.shrink_iters, t.shrunk_per_event):
                shrunk[it] = shrunk.get(it, 0) + n
        recon = sorted(
            (ev for t in rank_traces for ev in t.recon_events),
            key=lambda e: e.iteration,
        )
        gaps = np.asarray(
            max((t.gap_history for t in rank_traces), key=len), dtype=np.float64
        )
        return cls(
            n_samples=n_samples,
            n_features=n_features,
            avg_nnz=avg_nnz,
            nprocs=len(rank_traces),
            iterations=iters,
            active_counts=active,
            gap_history=gaps,
            shrink_iters=shrink_iters,
            shrunk_per_event=[shrunk[i] for i in shrink_iters],
            recon_events=recon,
            kernel_evals=sum(t.kernel_evals for t in rank_traces),
            iter_kernel_evals=sum(t.iter_kernel_evals for t in rank_traces),
            pair_broadcasts=max(
                (t.pair_broadcasts for t in rank_traces), default=0
            ),
            wss_elections=max(
                (t.wss_elections for t in rank_traces), default=0
            ),
            wss_reuses=max((t.wss_reuses for t in rank_traces), default=0),
            cache_hits=sum(t.cache_hits for t in rank_traces),
            cache_misses=sum(t.cache_misses for t in rank_traces),
        )

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # ------------------------------------------------------------------
    # §V-D style analysis helpers
    # ------------------------------------------------------------------
    def active_fraction(self) -> np.ndarray:
        """Active-set size as a fraction of N, per iteration."""
        if self.n_samples == 0:
            return np.zeros(0)
        return self.active_counts / float(self.n_samples)

    def fraction_of_iters_below(self, frac: float) -> float:
        """Fraction of iterations whose active set was below ``frac``·N.

        The paper observes e.g. "for 75% of the iterations, the active
        set is ... 20%" on MNIST.
        """
        if self.iterations == 0:
            return 0.0
        return float(np.mean(self.active_fraction() <= frac))

    def total_shrunk(self) -> int:
        return int(sum(self.shrunk_per_event))

    def n_reconstructions(self) -> int:
        """Number of distinct reconstruction rounds (by iteration index)."""
        return len({ev.iteration for ev in self.recon_events})

    def recon_kernel_evals(self) -> int:
        return sum(ev.kernel_evals for ev in self.recon_events)

    def recon_bytes(self) -> int:
        return sum(ev.bytes_sent for ev in self.recon_events)

    # ------------------------------------------------------------------
    # persistence (instrumented runs are expensive; traces are not)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation; round-trips via :meth:`from_dict`."""
        return {
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "avg_nnz": self.avg_nnz,
            "nprocs": self.nprocs,
            "iterations": self.iterations,
            "active_counts": self.active_counts.tolist(),
            "gap_history": self.gap_history.tolist(),
            "shrink_iters": list(self.shrink_iters),
            "shrunk_per_event": list(self.shrunk_per_event),
            "recon_events": [vars(ev) for ev in self.recon_events],
            "kernel_evals": self.kernel_evals,
            "iter_kernel_evals": self.iter_kernel_evals,
            "pair_broadcasts": self.pair_broadcasts,
            "wss_elections": self.wss_elections,
            "wss_reuses": self.wss_reuses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SolveTrace":
        return cls(
            n_samples=int(d["n_samples"]),
            n_features=int(d["n_features"]),
            avg_nnz=float(d["avg_nnz"]),
            nprocs=int(d["nprocs"]),
            iterations=int(d["iterations"]),
            active_counts=np.asarray(d["active_counts"], dtype=np.int64),
            gap_history=np.asarray(d["gap_history"], dtype=np.float64),
            shrink_iters=[int(i) for i in d["shrink_iters"]],
            shrunk_per_event=[int(i) for i in d["shrunk_per_event"]],
            recon_events=[ReconEvent(**ev) for ev in d["recon_events"]],
            kernel_evals=int(d["kernel_evals"]),
            iter_kernel_evals=int(d["iter_kernel_evals"]),
            pair_broadcasts=int(d.get("pair_broadcasts", 0)),
            wss_elections=int(d.get("wss_elections", 0)),
            wss_reuses=int(d.get("wss_reuses", 0)),
            cache_hits=int(d.get("cache_hits", 0)),
            cache_misses=int(d.get("cache_misses", 0)),
        )

    def save(self, path) -> None:
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "SolveTrace":
        import json
        from pathlib import Path

        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


@dataclass
class FitStats:
    """Driver-level outcome statistics attached to a fitted model."""

    heuristic: str
    nprocs: int
    iterations: int
    n_sv: int
    beta: float
    vtime: float  # modeled seconds on the target machine
    wall_time: float  # measured host seconds for the simulated job
    kernel_evals: int
    bytes_sent: int
    messages: int
    trace: Optional[SolveTrace] = None
    engine: str = "packed"  # iteration engine the fit ran with
    wss: str = "mvp"  # working-set-selection policy the fit ran with
