"""Distributed (simulated-MPI) batch prediction.

Training is the paper's focus, but a model trained on 2.3M samples is
usually *applied* to even more data.  This module block-partitions the
test set across simulated ranks; each rank evaluates the decision
function over its shard against the (replicated) support vectors, and
rank 0 gathers the pieces.  Virtual time is charged per kernel
evaluation, so prediction throughput can be projected with the same
machine model as training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..config import RunConfig, resolve_config
from ..mpi import SpmdResult, run_spmd
from ..perfmodel.machine import MachineSpec
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from .model import SVMModel, _as_csr


@dataclass
class ParallelPrediction:
    """Decision values plus the simulated job's accounting."""

    decision_values: np.ndarray
    spmd: SpmdResult

    @property
    def labels(self) -> np.ndarray:
        return np.where(self.decision_values >= 0.0, 1.0, -1.0)

    @property
    def vtime(self) -> float:
        return self.spmd.vtime


def decision_function_parallel(
    model: SVMModel,
    X: Union[CSRMatrix, np.ndarray],
    *,
    config: Optional[RunConfig] = None,
    nprocs: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
) -> ParallelPrediction:
    """Evaluate ``model.decision_function`` over ``X`` on ``nprocs``
    simulated ranks (block-row partition of the test set).

    Prefer passing one :class:`~repro.config.RunConfig` via ``config=``;
    the ``nprocs``/``machine`` keywords remain as back-compat shims,
    override the config when given explicitly, and emit a
    :class:`DeprecationWarning`.
    """
    cfg = resolve_config(
        config, _entry="decision_function_parallel",
        nprocs=nprocs, machine=machine,
    )
    nprocs, machine = cfg.nprocs, cfg.machine
    X = _as_csr(X, model.sv_X.shape[1])
    n = X.shape[0]
    if n == 0:
        raise ValueError("empty prediction input")
    nprocs = min(nprocs, n)
    part = BlockPartition(n, nprocs)
    # zero-copy contiguous views — shard setup no longer copies the
    # test set once per rank
    shards = [X.row_slice(*part.bounds(r)) for r in range(nprocs)]
    avg_nnz = model.sv_X.avg_row_nnz or 1.0

    def entry(comm):
        shard = shards[comm.rank]
        local = model.decision_function(shard)
        comm.charge_kernel_evals(shard.shape[0] * model.n_sv, avg_nnz)
        gathered = comm.gather(local, root=0)
        if comm.rank == 0:
            return np.concatenate(gathered)
        return None

    spmd = run_spmd(
        entry, nprocs, machine=machine, trace=cfg.trace,
        deadlock_timeout=cfg.deadlock_timeout, faults=cfg.faults,
        comm=cfg.comm,
    )
    return ParallelPrediction(decision_values=spmd.results[0], spmd=spmd)


def predict_parallel(
    model: SVMModel,
    X: Union[CSRMatrix, np.ndarray],
    *,
    config: Optional[RunConfig] = None,
    nprocs: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
) -> np.ndarray:
    """±1 labels via :func:`decision_function_parallel`."""
    return decision_function_parallel(
        model, X, config=config, nprocs=nprocs, machine=machine
    ).labels
