"""The paper's shrinking heuristics (Table II).

A heuristic is the combination of

- an *initial shrinking threshold*: the iteration count before the first
  shrink pass — either a fixed count ("random: 2/500/1000", after Lin's
  libsvm practice) or a fraction of the sample count ("numsamples:
  5/10/50 %");
- a *gradient-reconstruction policy*: ``single`` (Algorithm 4: one
  reconstruction, then shrinking is disabled) or ``multi`` (Algorithm 5:
  reconstruct at 20ε and again after each 2ε convergence until optimal);
- a *subsequent-threshold policy* (§IV-A2): after each shrink pass the
  next threshold is the global active-set size (the paper's adaptive
  default, computed with an Allreduce) or the initial threshold again.

``Original`` is the no-shrinking baseline (Algorithm 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Tuple

#: aggressiveness classes from Table II
AGGRESSIVE = "aggressive"
AVERAGE = "average"
CONSERVATIVE = "conservative"


@dataclass(frozen=True)
class Heuristic:
    """One row of Table II."""

    name: str
    threshold_kind: str  # "random" | "numsamples" | "none"
    threshold_value: float  # iterations, or fraction of N
    reconstruction: str  # "single" | "multi" | "none"
    klass: str  # aggressiveness class
    subsequent: str = "active_set"  # "active_set" | "initial"

    def __post_init__(self) -> None:
        if self.threshold_kind not in ("random", "numsamples", "none"):
            raise ValueError(f"bad threshold kind {self.threshold_kind!r}")
        if self.reconstruction not in ("single", "multi", "none", "never"):
            raise ValueError(f"bad reconstruction {self.reconstruction!r}")
        if self.subsequent not in ("active_set", "initial"):
            raise ValueError(f"bad subsequent policy {self.subsequent!r}")
        if self.threshold_kind == "numsamples" and not 0 < self.threshold_value <= 1:
            raise ValueError(
                f"numsamples threshold must be a fraction in (0, 1], "
                f"got {self.threshold_value}"
            )
        if self.threshold_kind == "random" and self.threshold_value < 1:
            raise ValueError(
                f"random threshold must be >= 1 iteration, got {self.threshold_value}"
            )

    @property
    def shrinks(self) -> bool:
        return self.threshold_kind != "none"

    def initial_threshold(self, n_samples: int) -> float:
        """Iterations before the first shrink pass (inf = never)."""
        if self.threshold_kind == "none":
            return math.inf
        if self.threshold_kind == "random":
            return float(self.threshold_value)
        return max(1.0, math.ceil(self.threshold_value * n_samples))

    def with_subsequent(self, policy: str) -> "Heuristic":
        """Variant with a different subsequent-threshold policy (ablations)."""
        return replace(self, subsequent=policy)


def _table2() -> Dict[str, Heuristic]:
    entries: Tuple[Tuple[str, str, float, str, str], ...] = (
        # name,        kind,         value, recon,    class
        ("original", "none", 0.0, "none", "none"),
        ("single2", "random", 2, "single", AGGRESSIVE),
        ("single500", "random", 500, "single", AGGRESSIVE),
        ("single1000", "random", 1000, "single", AVERAGE),
        ("single5pc", "numsamples", 0.05, "single", AGGRESSIVE),
        ("single10pc", "numsamples", 0.10, "single", AVERAGE),
        ("single50pc", "numsamples", 0.50, "single", CONSERVATIVE),
        ("multi2", "random", 2, "multi", AGGRESSIVE),
        ("multi500", "random", 500, "multi", AGGRESSIVE),
        ("multi1000", "random", 1000, "multi", AVERAGE),
        ("multi5pc", "numsamples", 0.05, "multi", AGGRESSIVE),
        ("multi10pc", "numsamples", 0.10, "multi", AVERAGE),
        ("multi50pc", "numsamples", 0.50, "multi", CONSERVATIVE),
    )
    out = {}
    for name, kind, value, recon, klass in entries:
        out[name] = Heuristic(
            name=name,
            threshold_kind=kind,
            threshold_value=value,
            reconstruction=recon,
            klass=klass,
        )
    return out


#: Table II, keyed by lower-case name ("original", "single2", ..., "multi50pc")
HEURISTICS: Dict[str, Heuristic] = _table2()

#: the paper's observed best / worst heuristics across datasets (§V-D)
BEST_HEURISTIC = "multi5pc"
WORST_HEURISTIC = "single50pc"


def unsafe_variant(name_or_heuristic, name: str | None = None) -> Heuristic:
    """Permanent-elimination variant of a heuristic (no reconstruction).

    This is the design choice the paper rejects (§IV: "the algorithm may
    lose accuracy — an approach recently considered by
    Communication-Avoiding SVM") — samples are eliminated for good, the
    gradients of shrunk samples are never repaired, and the returned
    solution is only approximately optimal.  Provided for the ablation
    benches that quantify exactly what the paper's reconstruction buys.
    """
    base = get_heuristic(name_or_heuristic)
    if not base.shrinks:
        raise ValueError("the no-shrinking heuristic has no unsafe variant")
    return Heuristic(
        name=name or f"unsafe-{base.name}",
        threshold_kind=base.threshold_kind,
        threshold_value=base.threshold_value,
        reconstruction="never",
        klass=base.klass,
        subsequent=base.subsequent,
    )


def get_heuristic(name_or_heuristic) -> Heuristic:
    """Resolve a heuristic by (case-insensitive) name or pass one through."""
    if isinstance(name_or_heuristic, Heuristic):
        return name_or_heuristic
    key = str(name_or_heuristic).lower()
    try:
        return HEURISTICS[key]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name_or_heuristic!r}; "
            f"choose from {sorted(HEURISTICS)}"
        ) from None
