"""Per-rank solver state.

One :class:`LocalBlock` holds a rank's contiguous slice of the training
set and the per-sample data structures the paper co-locates with it
(§III-A): labels, Lagrange multipliers α, gradients γ and the active
(non-shrunk) mask.  The active-row CSR sub-block used by the gradient
hot path is cached and rebuilt only when the active set changes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition


class LocalBlock:
    """A rank's shard of the problem."""

    def __init__(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        global_start: int,
        gamma0: Optional[np.ndarray] = None,
    ) -> None:
        """``gamma0`` is the gradient at α = 0.  The default, −y, is the
        classification dual (Eq. 1); the ε-SVR reduction passes its own
        linear term (see :mod:`repro.core.svr`)."""
        n = X.shape[0]
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (n,):
            raise ValueError(f"{y.shape} labels for {n} local rows")
        self.X = X
        self.y = y
        self.global_start = int(global_start)
        self.n_local = n
        self.norms = X.row_norms_sq()
        self.alpha = np.zeros(n)
        if gamma0 is None:
            gamma0 = -y
        else:
            gamma0 = np.asarray(gamma0, dtype=np.float64)
            if gamma0.shape != (n,):
                raise ValueError(f"{gamma0.shape} gamma0 for {n} local rows")
        self.gamma0 = gamma0.copy()
        self.gamma = gamma0.copy()
        self.active = np.ones(n, dtype=bool)
        self._active_cache: Optional[Tuple[np.ndarray, CSRMatrix, np.ndarray]] = None

    # ------------------------------------------------------------------
    def invalidate_active(self) -> None:
        """Drop the cached active sub-block (call after (de)activation)."""
        self._active_cache = None

    def active_view(self) -> Tuple[np.ndarray, CSRMatrix, np.ndarray]:
        """``(local_indices, X_active, norms_active)`` of the active set."""
        if self._active_cache is None:
            idx = np.flatnonzero(self.active)
            self._active_cache = (idx, self.X.take_rows(idx), self.norms[idx])
        return self._active_cache

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self.active))

    @property
    def n_shrunk(self) -> int:
        return self.n_local - self.n_active

    def owns_global(self, g: int) -> bool:
        return self.global_start <= g < self.global_start + self.n_local

    def to_local(self, g: int) -> int:
        if not self.owns_global(g):
            raise IndexError(
                f"global index {g} not in local range "
                f"[{self.global_start}, {self.global_start + self.n_local})"
            )
        return g - self.global_start

    def sample_payload(self, local_i: int) -> tuple:
        """The tuple shipped when this rank's sample joins the working set:
        ``(indices, values, ||x||², y, α)``."""
        idx, vals = self.X.row(local_i)
        return (
            idx.copy(),
            vals.copy(),
            float(self.norms[local_i]),
            float(self.y[local_i]),
            float(self.alpha[local_i]),
        )


def make_blocks(
    X: CSRMatrix,
    y: np.ndarray,
    part: BlockPartition,
    gamma0: Optional[np.ndarray] = None,
) -> list:
    """Split a full problem into per-rank :class:`LocalBlock` shards."""
    y = np.asarray(y, dtype=np.float64)
    blocks = []
    for rank in range(part.p):
        lo, hi = part.bounds(rank)
        blocks.append(
            LocalBlock(
                X.row_slice(lo, hi),
                y[lo:hi],
                lo,
                gamma0=None if gamma0 is None else gamma0[lo:hi],
            )
        )
    return blocks
