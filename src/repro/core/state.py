"""Per-rank solver state.

One :class:`LocalBlock` holds a rank's contiguous slice of the training
set and the per-sample data structures the paper co-locates with it
(§III-A): labels, Lagrange multipliers α, gradients γ and the active
(non-shrunk) mask.  The active-row CSR sub-block used by the gradient
hot path is cached and rebuilt only when the active set changes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition


class LocalBlock:
    """A rank's shard of the problem."""

    def __init__(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        global_start: int,
        gamma0: Optional[np.ndarray] = None,
    ) -> None:
        """``gamma0`` is the gradient at α = 0.  The default, −y, is the
        classification dual (Eq. 1); the ε-SVR reduction passes its own
        linear term (see :mod:`repro.core.svr`)."""
        n = X.shape[0]
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (n,):
            raise ValueError(f"{y.shape} labels for {n} local rows")
        self.X = X
        self.y = y
        self.global_start = int(global_start)
        self.n_local = n
        self.norms = X.row_norms_sq()
        self.alpha = np.zeros(n)
        if gamma0 is None:
            gamma0 = -y
        else:
            gamma0 = np.asarray(gamma0, dtype=np.float64)
            if gamma0.shape != (n,):
                raise ValueError(f"{gamma0.shape} gamma0 for {n} local rows")
        self.gamma0 = gamma0.copy()
        self.gamma = gamma0.copy()
        self.active = np.ones(n, dtype=bool)
        self._active_cache: Optional[Tuple[np.ndarray, CSRMatrix, np.ndarray]] = None
        #: immutable ring-block descriptor keyed by the support set:
        #: (contrib indices, CSR wire blob, contrib norms).  The blob and
        #: norms depend only on *which* samples have α > 0, so repeated
        #: reconstructions with an unchanged support set skip the CSR
        #: re-serialization (see repro.core.reconstruction._pack_contrib).
        self._descriptor_cache: Optional[Tuple[np.ndarray, bytes, np.ndarray]] = None

    # ------------------------------------------------------------------
    def invalidate_active(self) -> None:
        """Drop the cached active sub-block (call after (de)activation)."""
        self._active_cache = None

    def active_view(self) -> Tuple[np.ndarray, CSRMatrix, np.ndarray]:
        """``(local_indices, X_active, norms_active)`` of the active set."""
        if self._active_cache is None:
            idx = np.flatnonzero(self.active)
            self._active_cache = (idx, self.X.take_rows(idx), self.norms[idx])
        return self._active_cache

    @property
    def n_active(self) -> int:
        return int(np.count_nonzero(self.active))

    @property
    def n_shrunk(self) -> int:
        return self.n_local - self.n_active

    def owns_global(self, g: int) -> bool:
        return self.global_start <= g < self.global_start + self.n_local

    def to_local(self, g: int) -> int:
        if not self.owns_global(g):
            raise IndexError(
                f"global index {g} not in local range "
                f"[{self.global_start}, {self.global_start + self.n_local})"
            )
        return g - self.global_start

    def sample_payload(self, local_i: int, copy: bool = True) -> tuple:
        """The tuple shipped when this rank's sample joins the working set:
        ``(indices, values, ||x||², y, α)``.

        ``copy=False`` returns views into the CSR storage — safe (and
        cheaper) when the payload is consumed on the owning rank without
        serialization; keep the default on any send path.
        """
        idx, vals = self.X.row(local_i)
        if copy:
            idx, vals = idx.copy(), vals.copy()
        return (
            idx,
            vals,
            float(self.norms[local_i]),
            float(self.y[local_i]),
            float(self.alpha[local_i]),
        )


class CompactActiveSet:
    """Packed structure-of-arrays mirror of a rank's active samples.

    The per-iteration hot path (violator scan, γ update, shrink-mask
    evaluation, O(1) active count) reads and writes these contiguous
    arrays directly — no ``flatnonzero`` and no fancy-index gathers per
    iteration.  The structure is recompacted only at the rare events
    that change the active set (shrink elimination, reconstruction);
    :meth:`flush` scatters the working α/γ back into the
    :class:`LocalBlock`'s full-length arrays at those same events.

    Entries keep the block's local-index order, so elementwise scans
    over the packed arrays visit samples in exactly the order the
    uncompacted engine's ``active_view`` gathers produce — argmin/argmax
    tie-breaking, and therefore the iteration sequence, is unchanged.
    ``epoch`` increments on every rebuild; callers use it to invalidate
    anything derived from the active rows (e.g. cached kernel columns).
    """

    def __init__(self, blk: LocalBlock, box) -> None:
        self._blk = blk
        self._box = np.broadcast_to(
            np.asarray(box, dtype=np.float64), (blk.n_local,)
        )
        self.epoch = 0
        self.rebuild()

    def rebuild(self) -> None:
        """Recompact from the block's current active mask."""
        blk = self._blk
        lidx = np.flatnonzero(blk.active)
        self.lidx = lidx
        self.gidx = lidx + blk.global_start
        self.alpha = blk.alpha[lidx].copy()
        self.y = blk.y[lidx].copy()
        self.gamma = blk.gamma[lidx].copy()
        self.C = self._box[lidx].copy()
        self.norms = blk.norms[lidx].copy()
        self.Xa = blk.X.take_rows(lidx)
        self.epoch += 1

    def flush(self) -> None:
        """Scatter the working α/γ back into the block's full arrays."""
        blk = self._blk
        blk.alpha[self.lidx] = self.alpha
        blk.gamma[self.lidx] = self.gamma

    @property
    def n_active(self) -> int:
        return int(self.lidx.size)

    def position_of_global(self, g: int) -> int:
        """Packed position of global sample ``g`` (must be active here)."""
        k = int(np.searchsorted(self.gidx, g))
        if k >= self.gidx.size or self.gidx[k] != g:
            raise IndexError(f"global index {g} is not active on this rank")
        return k


def make_blocks(
    X: CSRMatrix,
    y: np.ndarray,
    part: BlockPartition,
    gamma0: Optional[np.ndarray] = None,
) -> list:
    """Split a full problem into per-rank :class:`LocalBlock` shards."""
    y = np.asarray(y, dtype=np.float64)
    blocks = []
    for rank in range(part.p):
        lo, hi = part.bounds(rank)
        blocks.append(
            LocalBlock(
                X.row_slice(lo, hi),
                y[lo:hi],
                lo,
                gamma0=None if gamma0 is None else gamma0[lo:hi],
            )
        )
    return blocks
