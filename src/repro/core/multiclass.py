"""One-vs-one multiclass classification.

The paper's MNIST/USPS experiments treat binary sub-problems; real
deployments of those datasets are 10-class.  This wrapper implements
libsvm's multiclass strategy on top of the distributed binary solver:
k(k−1)/2 pairwise classifiers and majority voting, ties broken toward
the class appearing first (libsvm's convention).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from .svc import SVC, NotFittedError


class MultiClassSVC:
    """One-vs-one multiclass SVM; accepts the same parameters as
    :class:`~repro.core.svc.SVC` and trains one binary machine per
    class pair."""

    def __init__(self, **svc_params) -> None:
        # validate the parameter set eagerly by constructing a probe SVC
        SVC(**svc_params)
        self.svc_params = svc_params
        self.classes_: Optional[np.ndarray] = None
        self.machines_: Dict[Tuple[int, int], SVC] = {}

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "MultiClassSVC":
        y = np.asarray(y)
        X = self._as_csr(X)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"{y.shape[0]} labels for {X.shape[0]} rows")
        self.classes_ = np.unique(y)
        k = self.classes_.size
        if k < 2:
            raise ValueError(f"need at least two classes, got {k}")
        self.machines_ = {}
        for i, j in combinations(range(k), 2):
            ci, cj = self.classes_[i], self.classes_[j]
            rows = np.flatnonzero((y == ci) | (y == cj))
            clf = SVC(**self.svc_params)
            clf.fit(X.take_rows(rows), y[rows])
            self.machines_[(i, j)] = clf
        return self

    def _check_fitted(self) -> None:
        if not self.machines_:
            raise NotFittedError("call fit() before predict/score")

    @staticmethod
    def _as_csr(X) -> CSRMatrix:
        if isinstance(X, CSRMatrix):
            return X
        return CSRMatrix.from_dense(np.asarray(X, dtype=np.float64))

    # ------------------------------------------------------------------
    def votes(self, X) -> np.ndarray:
        """(n_samples, n_classes) pairwise-vote counts."""
        self._check_fitted()
        X = self._as_csr(X)
        k = self.classes_.size
        tally = np.zeros((X.shape[0], k), dtype=np.int64)
        for (i, j), clf in self.machines_.items():
            pred = clf.predict(X)
            tally[:, i] += pred == self.classes_[i]
            tally[:, j] += pred == self.classes_[j]
        return tally

    def predict(self, X) -> np.ndarray:
        """Majority-vote labels (ties -> first class, as in libsvm)."""
        tally = self.votes(X)
        return self.classes_[np.argmax(tally, axis=1)]

    def score(self, X, y) -> float:
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the fitted multiclass ensemble to a JSON file.

        Stores the class vector (with dtype) plus every pairwise binary
        machine in the bit-exact :meth:`SVC.save <repro.core.svc.SVC.save>`
        format, so :meth:`load` reproduces ``predict`` bitwise in the
        original label space.  Run-time knobs (``machine``, ``faults``,
        ``config``) are not persisted.
        """
        import json
        from pathlib import Path

        self._check_fitted()
        doc = {
            "format": "repro-multiclass-svc",
            "version": 1,
            "classes": {
                "values": self.classes_.tolist(),
                "dtype": str(self.classes_.dtype),
            },
            "machines": [
                {"i": i, "j": j, "svc": clf._to_jsonable()}
                for (i, j), clf in sorted(self.machines_.items())
            ],
        }
        Path(path).write_text(json.dumps(doc), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "MultiClassSVC":
        """Load an ensemble written by :meth:`save` (fitted, ready to
        predict)."""
        import json
        from pathlib import Path

        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        if doc.get("format") != "repro-multiclass-svc":
            raise ValueError(
                f"not a repro-multiclass-svc document "
                f"(format={doc.get('format')!r})"
            )
        obj = cls()
        obj.classes_ = np.asarray(
            doc["classes"]["values"], dtype=np.dtype(doc["classes"]["dtype"])
        )
        obj.machines_ = {
            (int(m["i"]), int(m["j"])): SVC._from_jsonable(m["svc"])
            for m in doc["machines"]
        }
        return obj

    # ------------------------------------------------------------------
    @property
    def n_machines_(self) -> int:
        self._check_fitted()
        return len(self.machines_)

    @property
    def total_iterations_(self) -> int:
        """Sum of binary solver iterations across all pairs."""
        self._check_fitted()
        return sum(m.n_iter_ for m in self.machines_.values())

    @property
    def total_support_(self) -> int:
        self._check_fitted()
        return sum(m.n_support_ for m in self.machines_.values())
