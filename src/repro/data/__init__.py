"""``repro.data`` — dataset substrate.

Synthetic stand-ins for the paper's public datasets (see DESIGN.md §2
for the substitution rationale), the registry with Table III's
hyperparameters, and feature scaling.
"""

from .registry import (
    DATASETS,
    LARGE_DATASETS,
    TABLE4_DATASETS,
    TABLE5_DATASETS,
    DatasetEntry,
    PaperFacts,
    get_entry,
    load_dataset,
    load_dataset_from_files,
)
from .scaling import MinMaxScaler
from .synthetic import (
    Dataset,
    DriftStreamSpec,
    SyntheticSpec,
    drift_stream,
    generate,
    two_gaussians,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "DatasetEntry",
    "DriftStreamSpec",
    "LARGE_DATASETS",
    "MinMaxScaler",
    "PaperFacts",
    "SyntheticSpec",
    "TABLE4_DATASETS",
    "TABLE5_DATASETS",
    "drift_stream",
    "generate",
    "get_entry",
    "load_dataset",
    "load_dataset_from_files",
    "two_gaussians",
]
