"""Feature scaling, in the libsvm ``svm-scale`` style.

Scaling to [0, 1] (or [-1, 1]) per feature is standard practice for the
paper's datasets.  The scaler learns column ranges on the training set
and applies the same affine map to test data.  CSR-friendly: with
``lower=0`` zero entries stay zero, so sparsity is preserved whenever
the column minimum is 0 (true for nonnegative data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparse.csr import CSRMatrix


@dataclass
class MinMaxScaler:
    """Per-column affine map to a target interval."""

    lower: float = 0.0
    upper: float = 1.0
    col_min_: Optional[np.ndarray] = None
    col_max_: Optional[np.ndarray] = None

    def fit(self, X: CSRMatrix) -> "MinMaxScaler":
        if self.upper <= self.lower:
            raise ValueError(
                f"upper ({self.upper}) must exceed lower ({self.lower})"
            )
        d = X.shape[1]
        # column extrema over *all* cells: zeros count unless a column is
        # fully dense, mirroring svm-scale's treatment of sparse data
        col_min = np.zeros(d)
        col_max = np.zeros(d)
        np.minimum.at(col_min, X.indices, X.data)
        np.maximum.at(col_max, X.indices, X.data)
        counts = np.zeros(d, dtype=np.int64)
        np.add.at(counts, X.indices, 1)
        dense_cols = counts == X.shape[0]
        if dense_cols.any():
            # fully dense columns: zero is not implicitly present
            true_min = np.full(d, np.inf)
            true_max = np.full(d, -np.inf)
            np.minimum.at(true_min, X.indices, X.data)
            np.maximum.at(true_max, X.indices, X.data)
            col_min[dense_cols] = true_min[dense_cols]
            col_max[dense_cols] = true_max[dense_cols]
        self.col_min_ = col_min
        self.col_max_ = col_max
        return self

    def transform(self, X: CSRMatrix) -> CSRMatrix:
        if self.col_min_ is None:
            raise RuntimeError("fit() must be called before transform()")
        if X.shape[1] != self.col_min_.shape[0]:
            raise ValueError(
                f"{X.shape[1]} columns, scaler fitted on {self.col_min_.shape[0]}"
            )
        span = self.col_max_ - self.col_min_
        safe = np.where(span > 0, span, 1.0)
        scale = (self.upper - self.lower) / safe
        shift = self.lower - self.col_min_ * scale
        data = X.data * scale[X.indices] + shift[X.indices]
        # constant columns map to `lower`; keep their entries
        return CSRMatrix(data, X.indices, X.indptr, X.shape, check=False)

    def fit_transform(self, X: CSRMatrix) -> CSRMatrix:
        return self.fit(X).transform(X)
