"""Synthetic dataset generators.

The paper's datasets are public but unavailable offline, so each one is
replaced by a generator matched on the statistics that drive solver
behaviour (DESIGN.md §2): sample count, dimensionality, density, class
balance and — most importantly — *margin overlap*, which controls the
support-vector fraction and thereby how much shrinking can win.

Two generation paths:

- **dense/moderate-d** (``gaussian``/``nonneg``/``binary`` with modest
  d): each class is a mixture of Gaussian clusters in a latent space
  embedded into d dimensions, sparsified by a Bernoulli mask;
- **high-d sparse** (text-like datasets: url, rcv1, real-sim): rows are
  generated directly in CSR form, drawing column indices from
  class-specific and shared column pools — no dense intermediate, so
  million-column shapes stay cheap.

When a spec carries ``target_dist_sq`` (the registry sets it to the
dataset's Table III σ²), feature values are rescaled so the mean
pairwise squared distance matches it — placing the paper's Gaussian
kernel width in the same operating regime it had on the real data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix

#: switch to the direct-sparse path above this column count
_SPARSE_PATH_MIN_D = 2048


@dataclass(frozen=True)
class Dataset:
    """A generated (or loaded) train/test problem."""

    name: str
    X_train: CSRMatrix
    y_train: np.ndarray
    X_test: Optional[CSRMatrix] = None
    y_test: Optional[np.ndarray] = None

    @property
    def n_train(self) -> int:
        return self.X_train.shape[0]

    @property
    def n_test(self) -> int:
        return self.X_test.shape[0] if self.X_test is not None else 0

    @property
    def n_features(self) -> int:
        return self.X_train.shape[1]

    @property
    def density(self) -> float:
        return self.X_train.density

    def describe(self) -> str:
        return (
            f"{self.name}: train={self.n_train} test={self.n_test} "
            f"d={self.n_features} density={self.density:.4f}"
        )


@dataclass(frozen=True)
class SyntheticSpec:
    """Generator parameters for one dataset."""

    name: str
    n_train: int
    n_features: int
    n_test: int = 0
    density: float = 1.0
    overlap: float = 0.5  # 0 = separated, 1 = classes nearly coincide
    label_noise: float = 0.02  # fraction of labels flipped
    clusters_per_class: int = 2
    latent_dim: int = 0  # 0 = min(n_features, 8)
    class_balance: float = 0.5  # fraction of +1 samples
    feature_style: str = "gaussian"  # "gaussian" | "binary" | "nonneg"
    target_dist_sq: Optional[float] = None  # rescale to this mean pair dist²
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_train < 2:
            raise ValueError(f"need at least 2 training samples, got {self.n_train}")
        if not 0 < self.density <= 1:
            raise ValueError(f"density must be in (0, 1], got {self.density}")
        if not 0 <= self.overlap <= 1:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")
        if not 0 <= self.label_noise < 0.5:
            raise ValueError(f"label_noise must be in [0, 0.5), got {self.label_noise}")
        if not 0.05 <= self.class_balance <= 0.95:
            raise ValueError(
                f"class_balance must be in [0.05, 0.95], got {self.class_balance}"
            )
        if self.feature_style not in ("gaussian", "binary", "nonneg"):
            raise ValueError(f"unknown feature_style {self.feature_style!r}")
        if self.target_dist_sq is not None and self.target_dist_sq <= 0:
            raise ValueError(
                f"target_dist_sq must be positive, got {self.target_dist_sq}"
            )

    def scaled(self, scale: float) -> "SyntheticSpec":
        """Shrink (or grow) the sample counts; features scale sub-linearly.

        Dimensionality shrinks with sqrt(scale), never below 8 and never
        above 64·avg_nnz for sparse data (keeping the nnz budget sane).
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        d = max(8, int(round(self.n_features * min(1.0, scale**0.5))))
        avg_nnz = self.density * self.n_features
        if avg_nnz < d / 64.0:
            # keep very sparse datasets very sparse but bounded in d
            d = max(8, int(round(avg_nnz * 64.0)))
        new_density = min(1.0, avg_nnz / d) if d else 1.0
        return replace(
            self,
            n_train=max(16, int(round(self.n_train * scale))),
            n_test=int(round(self.n_test * scale)),
            n_features=d,
            density=new_density,
        )


# ----------------------------------------------------------------------
# generation paths
# ----------------------------------------------------------------------
def _labels(spec: SyntheticSpec, rng: np.random.Generator, n: int) -> np.ndarray:
    n_pos = min(max(int(round(n * spec.class_balance)), 1), n - 1)
    y = np.concatenate([np.ones(n_pos), -np.ones(n - n_pos)])
    rng.shuffle(y)
    return y


def _dense_path(
    spec: SyntheticSpec, rng: np.random.Generator, n: int, y: np.ndarray
) -> np.ndarray:
    d = spec.n_features
    latent = spec.latent_dim or min(d, 8)
    sep = 4.0 * (1.0 - spec.overlap) + 0.4
    centers_pos = rng.normal(0.0, 1.0, (spec.clusters_per_class, latent)) + sep / 2.0
    centers_neg = rng.normal(0.0, 1.0, (spec.clusters_per_class, latent)) - sep / 2.0

    # heterogeneous cluster radii: tight clusters create dense regions
    # whose samples' gradients leave the [β_up, β_low] band early — the
    # behaviour that makes early (aggressive) shrinking pay off on the
    # paper's real datasets
    radii_pos = rng.lognormal(-0.35, 0.6, spec.clusters_per_class)
    radii_neg = rng.lognormal(-0.35, 0.6, spec.clusters_per_class)
    Z = np.empty((n, latent))
    for sign, centers, radii in (
        (1.0, centers_pos, radii_pos),
        (-1.0, centers_neg, radii_neg),
    ):
        idx = np.flatnonzero(y == sign)
        which = rng.integers(0, spec.clusters_per_class, idx.size)
        Z[idx] = centers[which] + radii[which, None] * rng.normal(
            0.0, 1.0, (idx.size, latent)
        )

    if d == latent:
        Xd = Z.copy()
    else:
        proj = rng.normal(0.0, 1.0 / np.sqrt(latent), (latent, d))
        Xd = Z @ proj
    Xd += rng.normal(0.0, 0.3, Xd.shape)

    if spec.feature_style == "binary":
        thresh = np.quantile(Xd, 1.0 - spec.density)
        Xd = (Xd > thresh).astype(np.float64)
    else:
        # "nonneg" and "gaussian" both end up nonnegative through the
        # min-max scaling below (svm-scale practice); class structure
        # lives in the latent geometry either way
        lo, hi = Xd.min(axis=0), Xd.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        Xd = (Xd - lo) / span
        if spec.density < 1.0:
            Xd = Xd * (rng.random(Xd.shape) < spec.density)
    return Xd


def _sparse_path(
    spec: SyntheticSpec, rng: np.random.Generator, n: int, y: np.ndarray
) -> CSRMatrix:
    """High-dimensional sparse rows: dense informative core + sparse tail.

    Mirrors the structure of the paper's sparse datasets (URL, real-sim,
    RCV1): a modest block of features present in *every* row carries the
    class signal (URL's lexical/host statistics, a corpus' ubiquitous
    terms), while the long tail of idiosyncratic tokens contributes
    sparsity but little signal.  Purely iid high-d sparsity would make
    all rows near-orthogonal (distance concentration), turning almost
    every sample into a support vector — which the real datasets do not.
    """
    d = spec.n_features
    avg_nnz = max(4.0, spec.density * d)
    d_core = max(8, min(int(avg_nnz * 0.6), d // 4))
    core_spec = replace(
        spec,
        n_features=d_core,
        density=1.0,
        feature_style="gaussian",
        n_train=n,
        n_test=0,
    )
    core = _dense_path(core_spec, rng, n, y)

    tail_cols = np.arange(d_core, d)
    tail_nnz = max(1.0, avg_nnz - d_core)
    # mild class propensity in the tail: thirds as in real token pools
    third = tail_cols.size // 3
    pool_pos, pool_neg, pool_shared = (
        tail_cols[:third],
        tail_cols[third : 2 * third],
        tail_cols[2 * third :],
    )
    share = 0.3 + 0.6 * spec.overlap
    tail_value = 0.25  # tail is low-amplitude relative to the core
    rows = []
    for i in range(n):
        k = min(max(1, int(rng.poisson(tail_nnz))), max(1, tail_cols.size))
        n_shared = rng.binomial(k, share)
        own = pool_pos if y[i] > 0 else pool_neg
        picked = np.concatenate(
            [
                rng.choice(pool_shared, size=n_shared),
                rng.choice(own if own.size else pool_shared, size=k - n_shared),
            ]
        )
        t_idx = np.unique(picked)
        if spec.feature_style == "binary":
            t_vals = np.full(t_idx.size, tail_value)
        else:
            t_vals = tail_value * np.abs(rng.normal(1.0, 0.3, t_idx.size))
        c_idx = np.flatnonzero(core[i])
        idx = np.concatenate([c_idx, t_idx])
        vals = np.concatenate([core[i][c_idx], t_vals])
        rows.append((idx, vals))
    return CSRMatrix.from_rows(rows, d)


def _rescale_to_target(X: CSRMatrix, target: float, rng) -> CSRMatrix:
    """Scale values so the mean pairwise squared distance ≈ ``target``."""
    n = X.shape[0]
    m = min(n, 128)
    sample = rng.choice(n, size=m, replace=False)
    Xs = X.take_rows(sample)
    norms = Xs.row_norms_sq()
    dots = np.empty((m, m))
    for i in range(m):
        xi, xv = Xs.row(i)
        dots[i] = Xs.dot_sparse_vec(xi, xv)
    dist_sq = norms[:, None] + norms[None, :] - 2.0 * dots
    mean = float(dist_sq[np.triu_indices(m, k=1)].mean())
    if mean <= 0:
        return X
    factor = np.sqrt(target / mean)
    return CSRMatrix(
        X.data * factor, X.indices, X.indptr, X.shape, check=False
    )


def generate(spec: SyntheticSpec) -> Dataset:
    """Materialize a :class:`Dataset` from a spec (deterministic per seed)."""
    rng = np.random.default_rng(spec.seed)
    n = spec.n_train + spec.n_test
    y = _labels(spec, rng, n)

    if spec.n_features >= _SPARSE_PATH_MIN_D and spec.density < 0.05:
        X = _sparse_path(spec, rng, n, y)
    else:
        Xd = _dense_path(spec, rng, n, y)
        X = CSRMatrix.from_dense(Xd)

    if spec.label_noise > 0:
        k = int(round(spec.label_noise * n))
        if k:
            flip = rng.choice(n, size=k, replace=False)
            y[flip] = -y[flip]

    if spec.target_dist_sq is not None:
        X = _rescale_to_target(X, spec.target_dist_sq, rng)

    tr = np.arange(spec.n_train)
    te = np.arange(spec.n_train, n)
    return Dataset(
        name=spec.name,
        X_train=X.take_rows(tr),
        y_train=y[tr],
        X_test=X.take_rows(te) if spec.n_test else None,
        y_test=y[te] if spec.n_test else None,
    )


# ----------------------------------------------------------------------
# streaming / concept drift (repro.stream)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DriftStreamSpec:
    """A seeded stream of labeled batches with controllable concept drift.

    Samples are standard-Gaussian rows; the label is the sign of the
    margin against a separating direction ``w_t`` living in the first
    two coordinates, blurred by ``noise`` (overlap near the boundary,
    so a realistic support-vector fraction).  Two drift schedules:

    - ``"rotate"``: ``w_t`` rotates by ``rotate_per_batch`` radians per
      batch — the decision boundary turns under the learner, so old
      samples gradually contradict the current concept;
    - ``"label_flip"``: the boundary stays put, but from batch
      ``flip_start`` onward each new label flips with probability
      ``flip_fraction`` — abrupt label corruption;
    - ``"none"``: a stationary stream (the control).

    Generation is deterministic per ``seed``: the same spec always
    yields bitwise-identical batches.
    """

    n_batches: int = 12
    batch_size: int = 40
    n_features: int = 3
    drift: str = "rotate"  # "rotate" | "label_flip" | "none"
    rotate_per_batch: float = math.pi / 24.0
    flip_fraction: float = 0.15
    flip_start: int = 4
    noise: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_batches < 1:
            raise ValueError(f"need at least 1 batch, got {self.n_batches}")
        if self.batch_size < 2:
            raise ValueError(
                f"batch_size must be >= 2, got {self.batch_size}"
            )
        if self.n_features < 2:
            raise ValueError(
                f"need at least 2 features (the drift plane), got "
                f"{self.n_features}"
            )
        if self.drift not in ("rotate", "label_flip", "none"):
            raise ValueError(
                f"unknown drift {self.drift!r} (rotate | label_flip | none)"
            )
        if not 0.0 <= self.flip_fraction < 0.5:
            raise ValueError(
                f"flip_fraction must be in [0, 0.5), got {self.flip_fraction}"
            )
        if self.noise < 0:
            raise ValueError(f"noise must be >= 0, got {self.noise}")


def drift_stream(
    spec: DriftStreamSpec,
) -> List[Tuple[CSRMatrix, np.ndarray]]:
    """Materialize the stream: a list of ``(X_batch, y_batch)`` with
    labels in ±1.  Every batch is guaranteed to contain both classes
    (the minority label is planted on the least-confident sample if a
    draw comes out single-class), so the accumulated problem is always
    solvable."""
    rng = np.random.default_rng(spec.seed)
    batches: List[Tuple[CSRMatrix, np.ndarray]] = []
    for t in range(spec.n_batches):
        theta = spec.rotate_per_batch * t if spec.drift == "rotate" else 0.0
        w = np.zeros(spec.n_features)
        w[0], w[1] = math.cos(theta), math.sin(theta)
        Xd = rng.normal(0.0, 1.0, (spec.batch_size, spec.n_features))
        margin = Xd @ w + spec.noise * rng.standard_normal(spec.batch_size)
        y = np.where(margin >= 0.0, 1.0, -1.0)
        if spec.drift == "label_flip" and t >= spec.flip_start:
            flip = rng.random(spec.batch_size) < spec.flip_fraction
            y[flip] = -y[flip]
        if np.all(y == y[0]):
            y[int(np.argmin(np.abs(margin)))] = -y[0]
        batches.append((CSRMatrix.from_dense(Xd), y))
    return batches


def two_gaussians(
    n: int = 200,
    d: int = 2,
    overlap: float = 0.3,
    seed: int = 0,
    n_test: int = 0,
) -> Dataset:
    """The Figure 1 toy problem: a two-class Gaussian dataset where only
    a small fraction of samples end up as support vectors."""
    spec = SyntheticSpec(
        name="two-gaussians",
        n_train=n,
        n_test=n_test,
        n_features=d,
        overlap=overlap,
        clusters_per_class=1,
        latent_dim=min(d, 2),
        label_noise=0.0,
        seed=seed,
    )
    return generate(spec)
