"""Dataset registry mirroring the paper's Tables III-V.

Each entry records the *paper-scale* characteristics (training/testing
size, dimensionality, C and σ² from Table III) together with a synthetic
generator spec shaped like the real dataset, and the paper-reported
numbers the benchmarks compare against (iteration counts, best/worst
heuristics, headline speedups from §V-D).

``load_dataset(name, scale=...)`` materializes the synthetic stand-in at
a fraction of the paper's size so experiments finish offline; analytic
projections use the paper-scale sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .synthetic import Dataset, SyntheticSpec, generate


@dataclass(frozen=True)
class PaperFacts:
    """Numbers the paper reports for a dataset (None = not reported)."""

    iterations: Optional[int] = None
    best_heuristic: str = "multi5pc"
    worst_heuristic: str = "single50pc"
    max_procs: int = 16
    #: headline relative speedup (vs libsvm-enhanced for the figures,
    #: vs libsvm-sequential for Table IV) and the comparison target
    speedup_best: Optional[float] = None
    speedup_reference: str = "libsvm-enhanced"
    test_accuracy: Optional[float] = None  # ours, Table V
    test_accuracy_libsvm: Optional[float] = None
    figure: Optional[str] = None  # which figure/table carries it


@dataclass(frozen=True)
class DatasetEntry:
    """One dataset in the registry."""

    name: str
    paper_train: int
    paper_test: int
    n_features: int
    C: float
    sigma_sq: float
    spec: SyntheticSpec
    facts: PaperFacts = field(default_factory=PaperFacts)
    #: default shrink-to size for offline runs (fraction of paper_train)
    default_scale: float = 1e-3

    @property
    def gamma(self) -> float:
        return 1.0 / self.sigma_sq


def _entry(
    name: str,
    paper_train: int,
    paper_test: int,
    n_features: int,
    C: float,
    sigma_sq: float,
    *,
    density: float,
    overlap: float,
    label_noise: float = 0.02,
    feature_style: str = "gaussian",
    default_scale: float = 1e-3,
    clusters: int = 2,
    facts: PaperFacts = PaperFacts(),
    seed: int = 1234,
) -> DatasetEntry:
    spec = SyntheticSpec(
        name=name,
        n_train=paper_train,
        n_test=paper_test,
        n_features=n_features,
        density=density,
        overlap=overlap,
        label_noise=label_noise,
        clusters_per_class=clusters,
        feature_style=feature_style,
        # put the paper's kernel width σ² in its working regime (see
        # repro.data.synthetic._rescale_to_target)
        target_dist_sq=sigma_sq,
        seed=seed,
    )
    return DatasetEntry(
        name=name,
        paper_train=paper_train,
        paper_test=paper_test,
        n_features=n_features,
        C=C,
        sigma_sq=sigma_sq,
        spec=spec,
        facts=facts,
        default_scale=default_scale,
    )


def _build() -> Dict[str, DatasetEntry]:
    e = {}
    # ------------------------------------------------------ Table III
    e["higgs"] = _entry(
        "higgs", 2_600_000, 0, 28, C=32, sigma_sq=64,
        density=0.95, overlap=0.85, label_noise=0.08, default_scale=4e-4,
        facts=PaperFacts(
            iterations=34_000_000, max_procs=4096,
            speedup_best=1.56, speedup_reference="original@4096",
            figure="fig3",
        ),
        seed=101,
    )
    e["url"] = _entry(
        "url", 2_300_000, 0, 3_200_000, C=10, sigma_sq=4,
        density=4e-5, overlap=0.25, label_noise=0.01,
        feature_style="binary", default_scale=4e-4,
        facts=PaperFacts(
            max_procs=4096, speedup_best=250.0, figure="fig4",
        ),
        seed=102,
    )
    e["forest"] = _entry(
        "forest", 581_012, 0, 54, C=10, sigma_sq=4,
        density=0.35, overlap=0.6, label_noise=0.04,
        feature_style="nonneg", default_scale=2e-3,
        facts=PaperFacts(
            iterations=2_070_000, max_procs=1024,
            speedup_best=19.8, figure="fig5",
        ),
        seed=103,
    )
    e["real-sim"] = _entry(
        "real-sim", 72_309, 0, 20_958, C=10, sigma_sq=4,
        density=0.0024, overlap=0.3, label_noise=0.015,
        feature_style="nonneg", default_scale=0.012,
        facts=PaperFacts(
            iterations=47_000, max_procs=256,
            speedup_best=6.6, figure="fig7",
        ),
        seed=104,
    )
    e["mnist"] = _entry(
        "mnist", 60_000, 10_000, 780, C=10, sigma_sq=25,
        density=0.19, overlap=0.35, label_noise=0.01,
        feature_style="nonneg", default_scale=0.012,
        facts=PaperFacts(
            iterations=21_000, max_procs=512,
            speedup_best=15.0, figure="fig6",
            test_accuracy=98.9, test_accuracy_libsvm=98.62,
        ),
        seed=105,
    )
    e["cod-rna"] = _entry(
        "cod-rna", 59_535, 271_617, 8, C=32, sigma_sq=64,
        density=1.0, overlap=0.7, label_noise=0.03,
        default_scale=0.012,
        facts=PaperFacts(
            test_accuracy=92.33, test_accuracy_libsvm=92.1, figure="table5",
        ),
        seed=106,
    )
    e["a9a"] = _entry(
        "a9a", 32_561, 16_281, 123, C=32, sigma_sq=64,
        density=0.11, overlap=0.55, label_noise=0.04,
        feature_style="binary", default_scale=0.02, clusters=3,
        facts=PaperFacts(
            max_procs=16, speedup_best=3.2,
            speedup_reference="libsvm-sequential",
            test_accuracy=85.18, test_accuracy_libsvm=83.12,
            figure="table4",
        ),
        seed=107,
    )
    e["w7a"] = _entry(
        "w7a", 24_692, 25_057, 300, C=32, sigma_sq=64,
        density=0.04, overlap=0.35, label_noise=0.01,
        feature_style="binary", default_scale=0.03,
        facts=PaperFacts(
            max_procs=16, speedup_best=3.1,
            speedup_reference="libsvm-sequential",
            test_accuracy=98.82, test_accuracy_libsvm=98.9,
            figure="table4",
        ),
        seed=108,
    )
    # ------------------------------------------- Table IV extras
    e["rcv1"] = _entry(
        "rcv1", 20_242, 0, 47_236, C=10, sigma_sq=4,
        density=0.0016, overlap=0.3, label_noise=0.01,
        feature_style="nonneg", default_scale=0.04,
        facts=PaperFacts(
            max_procs=64, speedup_best=39.0,
            speedup_reference="libsvm-sequential", figure="table4",
        ),
        seed=109,
    )
    e["usps"] = _entry(
        "usps", 7_291, 2_007, 256, C=10, sigma_sq=25,
        density=1.0, overlap=0.4, label_noise=0.01,
        feature_style="nonneg", default_scale=0.08,
        facts=PaperFacts(
            max_procs=4, speedup_best=1.3,
            speedup_reference="libsvm-sequential",
            test_accuracy=97.6, test_accuracy_libsvm=97.75,
            figure="table4",
        ),
        seed=110,
    )
    e["mushrooms"] = _entry(
        "mushrooms", 8_124, 0, 112, C=10, sigma_sq=4,
        density=0.19, overlap=0.1, label_noise=0.0,
        feature_style="binary", default_scale=0.08,
        facts=PaperFacts(
            max_procs=4, speedup_best=1.9,
            speedup_reference="libsvm-sequential", figure="table4",
        ),
        seed=111,
    )
    return e


#: all datasets, keyed by name
DATASETS: Dict[str, DatasetEntry] = _build()

#: the "large datasets" of §V-D1-6 (Figures 3-8)
LARGE_DATASETS: Tuple[str, ...] = ("higgs", "url", "forest", "real-sim", "mnist")

#: Table IV's small-dataset rows
TABLE4_DATASETS: Tuple[str, ...] = ("a9a", "rcv1", "usps", "mushrooms", "w7a")

#: Table V's accuracy rows
TABLE5_DATASETS: Tuple[str, ...] = ("a9a", "usps", "mnist", "cod-rna", "w7a")


def get_entry(name: str) -> DatasetEntry:
    try:
        return DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None


def load_dataset(
    name: str, *, scale: Optional[float] = None, seed: Optional[int] = None
) -> Dataset:
    """Generate the synthetic stand-in for a paper dataset.

    ``scale`` multiplies the paper's sample count (default: the entry's
    offline-friendly ``default_scale``).  Feature count shrinks with
    sqrt(scale); see :meth:`SyntheticSpec.scaled`.
    """
    entry = get_entry(name)
    spec = entry.spec.scaled(scale if scale is not None else entry.default_scale)
    if seed is not None:
        spec = type(spec)(**{**spec.__dict__, "seed": seed})
    return generate(spec)


def load_dataset_from_files(
    name: str,
    train_path,
    test_path=None,
    *,
    n_features: Optional[int] = None,
) -> Dataset:
    """Load the *real* dataset from libsvm-format files under a registry
    entry's identity.

    For users who download the actual data from the libsvm page: the
    returned :class:`Dataset` carries the registry name so the paper's
    Table III hyper-parameters (``get_entry(name).C`` / ``.sigma_sq``)
    apply directly.  Labels are coerced to ±1 (the files use {0,1} or
    {1,2} on some datasets).
    """
    import numpy as np

    from ..sparse.io import load_libsvm

    get_entry(name)  # validate the name
    X_train, y_train = load_libsvm(train_path, n_features=n_features)
    d = X_train.shape[1]
    X_test = y_test = None
    if test_path is not None:
        X_test, y_test = load_libsvm(test_path, n_features=d)

    def signed(labels):
        vals = np.unique(labels)
        if vals.size != 2:
            raise ValueError(
                f"{name}: expected two label values, found {vals.size}"
            )
        return np.where(labels == vals.max(), 1.0, -1.0)

    return Dataset(
        name=name,
        X_train=X_train,
        y_train=signed(y_train),
        X_test=X_test,
        y_test=None if y_test is None else signed(y_test),
    )
