"""repro — reproduction of *Fast and Accurate Support Vector Machines on
Large Scale Systems* (Vishnu et al., CLUSTER 2015).

Public API highlights:

- :class:`repro.core.SVC` — high-level classifier (fit / predict / score)
  with ``heuristic=`` selecting the paper's Table II shrinking variants
  and ``nprocs=`` selecting the simulated process count.
- :func:`repro.mpi.run_spmd` — the SPMD runtime the solvers execute on.
- :mod:`repro.data` — synthetic stand-ins for the paper's datasets.
- :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper's evaluation section.
"""

__version__ = "1.0.0"

from . import mpi  # noqa: F401  (re-exported subsystem)

__all__ = ["mpi", "__version__"]
