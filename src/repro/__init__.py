"""repro — reproduction of *Fast and Accurate Support Vector Machines on
Large Scale Systems* (Vishnu et al., CLUSTER 2015).

This module is the stable public facade — the canonical spelling for
everything user-facing::

    import repro

    clf = repro.train(X, y, C=10.0, config=repro.RunConfig(nprocs=8))
    clf.save("model.json")

    clf = repro.SVC.load("model.json")
    result = repro.serve_requests(clf.model_, X_requests,
                                  policy=repro.BatchPolicy(max_batch=64))

Training / classification: :class:`SVC`, :class:`MultiClassSVC`,
:func:`train`, :func:`fit_parallel`.  Prediction:
:func:`decision_function_parallel`, :func:`predict_parallel`.
Persistence: :func:`save_model` / :func:`load_model` (bare models) and
``SVC.save`` / ``SVC.load`` / ``MultiClassSVC.save`` /
``MultiClassSVC.load`` (fitted classifiers).  Serving:
:func:`serve_requests` with :class:`BatchPolicy` (see :mod:`repro.serve`).
Streaming: :class:`IncrementalSVC` (``partial_fit`` / ``forget``),
:class:`StreamScenario` and :func:`run_stream` (see :mod:`repro.stream`).
Run-time knobs travel in one :class:`RunConfig`; the per-call keyword
shims still work but emit :class:`DeprecationWarning`.

Deep imports (``repro.core.svc.SVC`` etc.) keep working — the facade
re-exports, it does not move anything.
"""

__version__ = "1.2.0"

from . import mpi  # noqa: F401  (re-exported subsystem)
from .config import RunConfig
from .core import (
    SVC,
    DCConfig,
    MultiClassSVC,
    SVMModel,
    decision_function_parallel,
    fit_dc,
    fit_parallel,
    load_model,
    predict_parallel,
    save_model,
    train,
)
from . import serve  # noqa: F401  (re-exported subsystem)
from . import stream  # noqa: F401  (re-exported subsystem)
from .serve import (
    BatchPolicy,
    FleetResult,
    KillReplica,
    ModelRegistry,
    ServeResult,
    ServeStats,
    SwapModel,
    TenantQuota,
    serve_fleet,
    serve_requests,
)
from .stream import IncrementalSVC, StreamScenario, run_stream

__all__ = [
    "BatchPolicy",
    "DCConfig",
    "FleetResult",
    "IncrementalSVC",
    "KillReplica",
    "ModelRegistry",
    "MultiClassSVC",
    "RunConfig",
    "SVC",
    "SVMModel",
    "ServeResult",
    "ServeStats",
    "StreamScenario",
    "SwapModel",
    "TenantQuota",
    "__version__",
    "decision_function_parallel",
    "fit_dc",
    "fit_parallel",
    "load_model",
    "mpi",
    "predict_parallel",
    "run_stream",
    "save_model",
    "serve",
    "serve_fleet",
    "serve_requests",
    "stream",
    "train",
]
