"""Reduction operators for reduce/allreduce.

Operators work element-wise on numpy arrays (typed path) and on Python
scalars / tuples (object path).  ``MINLOC``/``MAXLOC`` reduce ``(value,
location)`` pairs, which the SVM solver uses to find the global worst
KKT violators together with their owning sample index in one allreduce.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


class ReduceOp:
    """A named, associative, commutative binary reduction operator."""

    def __init__(self, name: str, array_fn: Callable, object_fn: Callable):
        self.name = name
        self._array_fn = array_fn
        self._object_fn = object_fn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"

    def combine(self, a: Any, b: Any) -> Any:
        """Combine two partial results (object path)."""
        return self._object_fn(a, b)

    def combine_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise combine for the typed path. Returns a new array."""
        return self._array_fn(a, b)


def _pair_minloc(a, b):
    (av, ai), (bv, bi) = a, b
    if bv < av or (bv == av and bi < ai):
        return (bv, bi)
    return (av, ai)


def _pair_maxloc(a, b):
    (av, ai), (bv, bi) = a, b
    if bv > av or (bv == av and bi < ai):
        return (bv, bi)
    return (av, ai)


def _arr_minloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # value/location pairs packed as [..., 2] or flat [v0, i0, v1, i1, ...]
    a2 = a.reshape(-1, 2)
    b2 = b.reshape(-1, 2)
    take_b = (b2[:, 0] < a2[:, 0]) | ((b2[:, 0] == a2[:, 0]) & (b2[:, 1] < a2[:, 1]))
    out = np.where(take_b[:, None], b2, a2)
    return out.reshape(a.shape)


def _arr_maxloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a2 = a.reshape(-1, 2)
    b2 = b.reshape(-1, 2)
    take_b = (b2[:, 0] > a2[:, 0]) | ((b2[:, 0] == a2[:, 0]) & (b2[:, 1] < a2[:, 1]))
    out = np.where(take_b[:, None], b2, a2)
    return out.reshape(a.shape)


#: number of leading slots in a MINLOC_MAXLOC buffer that hold the two
#: (value, location) pairs; any trailing slots are summed
ELECTION_SLOTS = 4


def _fused_minloc_maxloc(a, b):
    """Combine two election buffers: slots [0:2] MINLOC, [2:4] MAXLOC,
    the rest (if any) element-wise SUM.

    The comparisons are exactly ``_pair_minloc``/``_pair_maxloc`` — value
    first, smallest location on ties — so a fused reduction elects the
    same winners, in the same reduction-tree order, as two separate
    MINLOC/MAXLOC reductions over the same operands.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    out = a.copy()
    if b[0] < a[0] or (b[0] == a[0] and b[1] < a[1]):
        out[0], out[1] = b[0], b[1]
    if b[2] > a[2] or (b[2] == a[2] and b[3] < a[3]):
        out[2], out[3] = b[2], b[3]
    if a.shape[0] > ELECTION_SLOTS:
        out[ELECTION_SLOTS:] = a[ELECTION_SLOTS:] + b[ELECTION_SLOTS:]
    return out


def _maxloc_payload(a, b):
    """Combine two MAXLOC-with-payload buffers.

    Slot [0] is the value, slot [1] the location; any trailing slots are
    opaque payload that travels with the winning (value, location) pair.
    The comparison is exactly ``_pair_maxloc`` — value first, smallest
    location on ties — so each combine picks one whole operand, which
    keeps the op associative and commutative regardless of payload
    contents.  The second-order working-set election uses it to carry
    the winning candidate's γ alongside its gain and global index.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if b[0] > a[0] or (b[0] == a[0] and b[1] < a[1]):
        return b.copy()
    return a.copy()


def _tuple_maxloc_payload(a, b):
    if b[0] > a[0] or (b[0] == a[0] and b[1] < a[1]):
        return b
    return a


SUM = ReduceOp("SUM", lambda a, b: a + b, lambda a, b: a + b)
PROD = ReduceOp("PROD", lambda a, b: a * b, lambda a, b: a * b)
MAX = ReduceOp("MAX", np.maximum, max)
MIN = ReduceOp("MIN", np.minimum, min)
LAND = ReduceOp("LAND", np.logical_and, lambda a, b: bool(a) and bool(b))
LOR = ReduceOp("LOR", np.logical_or, lambda a, b: bool(a) or bool(b))
BAND = ReduceOp("BAND", np.bitwise_and, lambda a, b: a & b)
BOR = ReduceOp("BOR", np.bitwise_or, lambda a, b: a | b)
MINLOC = ReduceOp("MINLOC", _arr_minloc, _pair_minloc)
MAXLOC = ReduceOp("MAXLOC", _arr_maxloc, _pair_maxloc)
#: fused violator election: one buffer carries a MINLOC pair, a MAXLOC
#: pair and optional SUM tail slots (the solver's shrunk-count piggyback)
MINLOC_MAXLOC = ReduceOp(
    "MINLOC_MAXLOC", _fused_minloc_maxloc, _fused_minloc_maxloc
)
#: MAXLOC whose buffer carries extra payload slots that follow the
#: winner (the second phase of the second-order violator election)
MAXLOC_PAYLOAD = ReduceOp(
    "MAXLOC_PAYLOAD", _maxloc_payload, _tuple_maxloc_payload
)

ALL_OPS = {
    op.name: op
    for op in (
        SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR, MINLOC, MAXLOC,
        MINLOC_MAXLOC, MAXLOC_PAYLOAD,
    )
}
