"""Nonblocking request objects.

Sends use the buffered-eager protocol: the payload is snapshotted at post
time, so an ``Isend`` is complete immediately and its ``wait`` never
blocks.  Receives complete when a matching envelope is taken from the
mailbox; completion synchronizes the rank's virtual clock with the modeled
arrival time of the message.

Under fault injection a blocked ``wait`` follows the mailbox's bounded
retry/backoff schedule (see :class:`repro.mpi.faults.RetryPolicy`): it
re-requests withheld envelopes from the fault-engine ledger and raises
:class:`~repro.mpi.errors.MessageLostError` when the budget is
exhausted, instead of hanging into the job watchdog.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .errors import CommError, TruncationError
from .status import Status


class Request:
    """Base class; also the completed-send request."""

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None

    def test(self) -> bool:
        """Return True when the operation has completed (non-blocking)."""
        return self._done

    def wait(self, status: Optional[Status] = None) -> Any:
        """Block until complete; return the received object (if any)."""
        return self._result

    # mpi4py-style aliases
    Test = test
    Wait = wait

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> List[Any]:
        """Complete every request, in order; return their results."""
        return [req.wait() for req in requests]

    Waitall = waitall


class SendRequest(Request):
    """An eager send: complete at creation."""

    def __init__(self) -> None:
        super().__init__()
        self._done = True


class RecvRequest(Request):
    """A posted receive bound to a communicator's mailbox."""

    def __init__(
        self,
        comm: "Comm",  # noqa: F821 - circular import avoided
        source: int,
        tag: int,
        buf: Optional[np.ndarray],
    ) -> None:
        super().__init__()
        self._comm = comm
        self._source = source
        self._tag = tag
        self._buf = buf  # None => object receive

    def test(self) -> bool:
        if self._done:
            return True
        env = self._comm._mailbox.probe(
            self._source, self._tag, self._comm._context
        )
        if env is None:
            return False
        self.wait()
        return True

    def wait(self, status: Optional[Status] = None) -> Any:
        if self._done:
            if status is not None and isinstance(self._result_status, Status):
                status.__dict__.update(self._result_status.__dict__)
            return self._result
        env = self._comm._mailbox.take(
            self._source, self._tag, self._comm._context, block=True
        )
        self._comm._complete_recv(env)
        st = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        if self._buf is not None:
            if not env.typed:
                raise CommError(
                    "typed Irecv matched an object message; "
                    "mixed-protocol matching is not supported"
                )
            data = env.payload.reshape(-1)
            if data.size > self._buf.size:
                raise TruncationError(
                    f"message of {data.size} elements truncates "
                    f"receive buffer of {self._buf.size}"
                )
            view = self._buf.reshape(-1)
            view[: data.size] = data.astype(self._buf.dtype, copy=False)
            st.count = int(data.size)
            self._result = None
        else:
            # typed sends decode to the array value; frames are
            # CRC-checked with bounded retransmission recovery
            env, self._result = self._comm._decode_with_recovery(env)
            st = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
            st.count = env.nbytes
        self._result_status = st
        if status is not None:
            status.__dict__.update(st.__dict__)
        self._done = True
        return self._result
