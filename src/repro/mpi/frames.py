"""Typed-buffer wire frames: the pickle-free payload protocol.

A *frame* is a self-describing byte string carrying numpy arrays, raw
byte blocks (CSR blobs travel as their ``header+indptr+indices+data``
serialization) and the handful of scalar types the solver's hot-path
payloads are built from.  Framing replaces pickling on every path that
moves numerical data — collectives, the owner-rooted sample broadcast,
the reconstruction ring — so that

- traced byte counts are honest: ``Envelope.nbytes`` is exactly the
  number of payload bytes a real MPI implementation would move for the
  same typed buffers, with a fixed, inspectable per-section overhead
  instead of pickle's opaque framing;
- corruption is detectable: every frame embeds a CRC32 over its body,
  so a tampered byte surfaces as a structured
  :class:`~repro.mpi.errors.CorruptMessageError` at decode time and
  feeds the receiver-driven retransmission protocol (exactly like the
  reconstruction ring's chunk checksums);
- round-trips are exact: arrays come back with the same dtype, shape
  and bits; Python floats are carried as their IEEE-754 image.

Wire format (all integers little-endian)::

    frame   := magic(4) crc32(u4) body
    body    := node
    node    := 'A' u1:len(dtype.str) dtype.str u1:ndim i8*ndim raw
             | 'S' u1:len(dtype.str) dtype.str raw          (numpy scalar)
             | 'B' i8:len raw                               (bytes)
             | 'F' f8                                       (python float)
             | 'I' i8                                       (python int)
             | 'b' u1                                       (python bool)
             | 'N'                                          (None)
             | 'T' i8:count node*                           (tuple)
             | 'L' i8:count node*                           (list)

:func:`encode` returns ``None`` for objects outside this vocabulary
(or containing no array/bytes section at all — tiny all-scalar
payloads such as the legacy engine's ``(value, index)`` election pairs
stay on the pickle path, whose modeled size
:data:`repro.perfmodel.costs.PICKLED_PAIR_BYTES` prices).  The sender
falls back to pickle transparently; the envelope records which
protocol a message used.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, List, Optional

import numpy as np

#: frame magic: "repro frame, revision 1"
MAGIC = b"RFR1"

#: bytes of fixed per-frame overhead (magic + CRC32)
HEADER_BYTES = 8

_HEAD = struct.Struct("<4sI")
_I8 = struct.Struct("<q")
_F8 = struct.Struct("<d")

#: numpy dtype kinds a frame may carry (no object/str/void payloads)
_ARRAY_KINDS = frozenset("biufc")


class _Unframeable(Exception):
    """Internal: the object is outside the frame vocabulary."""


def _encode_node(obj: Any, out: List[bytes]) -> bool:
    """Append the wire image of ``obj``; returns True when any section
    is an array/bytes buffer (the "worth framing" criterion)."""
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind not in _ARRAY_KINDS:
            raise _Unframeable(f"array dtype {obj.dtype} not frameable")
        ds = obj.dtype.str.encode("ascii")
        out.append(b"A")
        out.append(struct.pack("<B", len(ds)))
        out.append(ds)
        # record obj's own geometry: ascontiguousarray promotes 0-d to 1-d
        out.append(struct.pack("<B", obj.ndim))
        for dim in obj.shape:
            out.append(_I8.pack(dim))
        out.append(np.ascontiguousarray(obj).tobytes())
        return True
    if isinstance(obj, np.generic):
        # before float/int: np.float64 subclasses float, and the 'S'
        # image is what keeps its dtype identity across the wire
        dt = obj.dtype
        if dt.kind not in _ARRAY_KINDS:
            raise _Unframeable(f"scalar dtype {dt} not frameable")
        ds = dt.str.encode("ascii")
        out.append(b"S")
        out.append(struct.pack("<B", len(ds)))
        out.append(ds)
        out.append(obj.tobytes())
        return False
    if isinstance(obj, bool):  # before int: bool is an int subclass
        out.append(b"b" + struct.pack("<B", int(obj)))
        return False
    if isinstance(obj, bytes):
        out.append(b"B" + _I8.pack(len(obj)))
        out.append(obj)
        return True
    if isinstance(obj, float):
        out.append(b"F" + _F8.pack(obj))
        return False
    if isinstance(obj, int):
        if not -(2**63) <= obj < 2**63:
            raise _Unframeable("int out of i64 range")
        out.append(b"I" + _I8.pack(obj))
        return False
    if obj is None:
        out.append(b"N")
        return False
    if isinstance(obj, (tuple, list)):
        out.append((b"T" if isinstance(obj, tuple) else b"L") + _I8.pack(len(obj)))
        buffered = False
        for item in obj:
            buffered |= _encode_node(item, out)
        return buffered
    raise _Unframeable(f"type {type(obj).__name__} not frameable")


def encode(obj: Any) -> Optional[bytes]:
    """The wire frame for ``obj``, or ``None`` when it cannot (or is
    not worth) framing — the caller falls back to pickle."""
    out: List[bytes] = []
    try:
        has_buffer = _encode_node(obj, out)
    except _Unframeable:
        return None
    if not has_buffer:
        return None
    body = b"".join(out)
    return _HEAD.pack(MAGIC, zlib.crc32(body) & 0xFFFFFFFF) + body


def frame_nbytes(obj: Any) -> Optional[int]:
    """Exact wire size of ``obj``'s frame (``None`` if unframeable)."""
    blob = encode(obj)
    return None if blob is None else len(blob)


class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise ValueError("frame truncated")
        chunk = self.buf[self.pos : end]
        self.pos = end
        return chunk


def _decode_node(r: _Reader) -> Any:
    tag = r.take(1)
    if tag == b"A":
        (dlen,) = struct.unpack("<B", r.take(1))
        dtype = np.dtype(r.take(dlen).decode("ascii"))
        (ndim,) = struct.unpack("<B", r.take(1))
        shape = tuple(_I8.unpack(r.take(8))[0] for _ in range(ndim))
        count = int(np.prod(shape)) if shape else 1
        raw = r.take(count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag == b"S":
        (dlen,) = struct.unpack("<B", r.take(1))
        dtype = np.dtype(r.take(dlen).decode("ascii"))
        return np.frombuffer(r.take(dtype.itemsize), dtype=dtype)[0]
    if tag == b"B":
        (n,) = _I8.unpack(r.take(8))
        return r.take(n)
    if tag == b"F":
        return _F8.unpack(r.take(8))[0]
    if tag == b"I":
        return _I8.unpack(r.take(8))[0]
    if tag == b"b":
        return bool(struct.unpack("<B", r.take(1))[0])
    if tag == b"N":
        return None
    if tag in (b"T", b"L"):
        (n,) = _I8.unpack(r.take(8))
        items = [_decode_node(r) for _ in range(n)]
        return tuple(items) if tag == b"T" else items
    raise ValueError(f"unknown frame tag {tag!r}")


def decode(blob: Any) -> Any:
    """Decode one frame; raises
    :class:`~repro.mpi.errors.CorruptMessageError` on any integrity or
    structure failure (CRC mismatch, truncation, unknown tag)."""
    from .errors import CorruptMessageError

    data = bytes(blob)
    try:
        if len(data) < HEADER_BYTES:
            raise ValueError("frame shorter than header")
        magic, crc = _HEAD.unpack_from(data, 0)
        if magic != MAGIC:
            raise ValueError(f"bad frame magic {magic!r}")
        body = data[HEADER_BYTES:]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise ValueError("frame CRC32 mismatch")
        r = _Reader(body)
        obj = _decode_node(r)
        if r.pos != len(body):
            raise ValueError("trailing bytes after frame body")
        return obj
    except ValueError as exc:
        raise CorruptMessageError(f"typed frame failed to decode: {exc}") from exc
