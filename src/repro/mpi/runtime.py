"""The SPMD job runner.

:func:`run_spmd` launches ``nprocs`` rank functions on OS threads, each
holding a private :class:`~repro.mpi.communicator.Comm` (the job's
``COMM_WORLD``), per-rank mailbox and virtual clock.  Ranks communicate
only through the message layer, so per-rank virtual times are a faithful
conservative simulation of the modeled machine regardless of how the host
schedules the threads.

A watchdog aborts the job when no message progress happens for
``deadlock_timeout`` host seconds while threads are still alive — turning
an MPI deadlock into a :class:`~repro.mpi.errors.DeadlockError` (carrying
per-rank blocked-state diagnostics) instead of a hung test suite.

Jobs can run under an adversarial delivery schedule: pass ``faults`` (a
:class:`~repro.mpi.faults.FaultPlan` or its spec string) to
:func:`run_spmd` and the runtime installs a
:class:`~repro.mpi.faults.FaultEngine` on the delivery path.  Receives
then follow a bounded retry/backoff policy instead of blocking
indefinitely, and the job result carries the engine's fault report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..perfmodel.machine import MachineSpec
from .clock import ClockStats, VirtualClock
from .communicator import Comm
from .errors import DeadlockError, SpmdAborted, SpmdJobError
from .faults import FaultEngine, RetryPolicy, as_plan
from .mailbox import Mailbox
from .message import Envelope
from .topology import create_communicator
from .tracing import Tracer

_WATCHDOG_POLL = 0.25


@dataclass
class RankStats:
    """Per-rank summary published in the job result."""

    rank: int
    vtime: float
    stats: ClockStats


@dataclass
class SpmdResult:
    """Outcome of a completed SPMD job."""

    results: List[Any]
    rank_stats: List[RankStats]
    tracer: Tracer
    machine: MachineSpec
    #: fault-engine report (counters + fired schedule); None when the
    #: job ran without fault injection
    fault_stats: Optional[Dict[str, Any]] = None

    @property
    def vtime(self) -> float:
        """Job virtual makespan: the max over ranks (seconds)."""
        return max((r.vtime for r in self.rank_stats), default=0.0)

    @property
    def total_bytes_sent(self) -> int:
        return sum(r.stats.bytes_sent for r in self.rank_stats)

    @property
    def total_messages(self) -> int:
        return sum(r.stats.messages_sent for r in self.rank_stats)

    def stats_table(self) -> str:
        """Human-readable per-rank accounting (for examples/reports)."""
        lines = [
            f"{'rank':>4} {'vtime(s)':>12} {'compute(s)':>12} "
            f"{'comm(s)':>10} {'msgs':>8} {'MB sent':>10}"
        ]
        for r in self.rank_stats:
            lines.append(
                f"{r.rank:>4} {r.vtime:>12.6f} {r.stats.compute_seconds:>12.6f} "
                f"{r.stats.comm_seconds:>10.6f} {r.stats.messages_sent:>8} "
                f"{r.stats.bytes_sent / 1e6:>10.3f}"
            )
        return "\n".join(lines)


class SpmdRuntime:
    """Owns the shared state of one SPMD job."""

    def __init__(
        self,
        nprocs: int,
        machine: Optional[MachineSpec] = None,
        trace: bool = False,
        faults=None,
        retry: Optional[RetryPolicy] = None,
        comm: Optional[str] = None,
        on_kill=None,
    ) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine or MachineSpec.cascade()
        #: the job's collective suite (flat / hierarchical); shared by
        #: every communicator the job creates
        self.collectives = create_communicator(comm)
        self.abort_event = threading.Event()
        self.tracer = Tracer(enabled=trace)
        plan = as_plan(faults)
        if plan is not None and retry is not None:
            plan = type(plan)(faults=plan.faults, seed=plan.seed, retry=retry)
        self.faults: Optional[FaultEngine] = (
            FaultEngine(plan, nprocs, tracer=self.tracer, on_kill=on_kill)
            if plan is not None
            else None
        )
        self.mailboxes = [
            Mailbox(r, self.abort_event, engine=self.faults)
            for r in range(nprocs)
        ]
        self.clocks = [VirtualClock() for _ in range(nprocs)]
        self._context_lock = threading.Lock()
        self._contexts: Dict[Any, int] = {}
        self._next_context = 1  # 0 is COMM_WORLD

    def allocate_context(self, key: Any) -> int:
        """Deterministically map a split/dup key to a fresh context id."""
        with self._context_lock:
            ctx = self._contexts.get(key)
            if ctx is None:
                ctx = self._next_context
                self._next_context += 1
                self._contexts[key] = ctx
            return ctx

    def world(self, rank: int) -> Comm:
        return Comm(self, tuple(range(self.nprocs)), rank, context=0)

    def deliver(self, env: Envelope) -> None:
        """Route one envelope to its destination, via the fault engine
        when one is installed (which may drop, delay, duplicate or
        corrupt it per the plan)."""
        if self.faults is None:
            self.mailboxes[env.dest].put(env)
            return
        for out in self.faults.route(env):
            self.mailboxes[out.dest].put(out)

    def abort(self) -> None:
        self.abort_event.set()
        for mb in self.mailboxes:
            mb.wake()

    def progress_mark(self) -> int:
        """A counter that changes whenever any message is delivered."""
        return sum(mb.delivered for mb in self.mailboxes)

    def blocked_states(self) -> Dict[int, str]:
        """Per-rank blocked-receive descriptions (watchdog diagnostics)."""
        out: Dict[int, str] = {}
        for mb in self.mailboxes:
            state = mb.wait_state()
            if state is not None:
                out[mb.rank] = state
        return out


def run_spmd(
    fn: Callable[..., Any],
    nprocs: int,
    *,
    machine: Optional[MachineSpec] = None,
    trace: bool = False,
    args: Sequence[Any] = (),
    kwargs: Optional[dict] = None,
    deadlock_timeout: float = 60.0,
    faults=None,
    retry: Optional[RetryPolicy] = None,
    comm: Optional[str] = None,
    on_kill=None,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    Returns an :class:`SpmdResult` with every rank's return value (indexed
    by rank), virtual-time statistics and the (optional) event trace.

    ``faults`` enables deterministic fault injection: a
    :class:`~repro.mpi.faults.FaultPlan`, a spec string (see
    :meth:`FaultPlan.parse`), or a sequence of
    :class:`~repro.mpi.faults.Fault`.  ``retry`` overrides the plan's
    receive retry/backoff policy.  ``on_kill(rank, ordinal)`` is invoked
    when a ``kill`` fault fires, before the job aborts — the
    notification hook the serving router uses to drive failover.  A job
    that completes under injection is bitwise identical to the
    fault-free job.

    Raises :class:`SpmdJobError` if any rank raised, and
    :class:`DeadlockError` if the job stopped making progress while ranks
    were blocked in communication.
    """
    kwargs = kwargs or {}
    runtime = SpmdRuntime(
        nprocs, machine=machine, trace=trace, faults=faults, retry=retry,
        comm=comm, on_kill=on_kill,
    )
    results: List[Any] = [None] * nprocs
    failures: Dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def entry(rank: int) -> None:
        comm = runtime.world(rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except SpmdAborted:
            pass  # cancelled because a peer failed; peer's error is reported
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            with failures_lock:
                failures[rank] = exc
            runtime.abort()

    if nprocs == 1:
        # fast path: run rank 0 inline (no thread), common in tests
        entry(0)
    else:
        threads = [
            threading.Thread(
                target=entry, args=(rank,), name=f"spmd-rank-{rank}", daemon=True
            )
            for rank in range(nprocs)
        ]
        for t in threads:
            t.start()
        last_mark = runtime.progress_mark()
        stalled = 0.0
        while any(t.is_alive() for t in threads):
            for t in threads:
                t.join(timeout=_WATCHDOG_POLL)
                if t.is_alive():
                    break
            mark = runtime.progress_mark()
            if mark == last_mark:
                stalled += _WATCHDOG_POLL
            else:
                stalled = 0.0
                last_mark = mark
            if stalled >= deadlock_timeout and any(t.is_alive() for t in threads):
                diagnostics = runtime.blocked_states()
                runtime.abort()
                for t in threads:
                    t.join(timeout=5.0)
                if not failures:
                    raise DeadlockError(
                        f"no message progress for {deadlock_timeout:.0f}s with "
                        f"{sum(t.is_alive() for t in threads)} rank(s) blocked",
                        diagnostics=diagnostics,
                    )
                break

    if failures:
        raise SpmdJobError(failures)

    rank_stats = [
        RankStats(rank=r, vtime=runtime.clocks[r].now, stats=runtime.clocks[r].stats)
        for r in range(nprocs)
    ]
    return SpmdResult(
        results=results,
        rank_stats=rank_stats,
        tracer=runtime.tracer,
        machine=runtime.machine,
        fault_stats=runtime.faults.report() if runtime.faults else None,
    )
