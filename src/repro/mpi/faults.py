"""Deterministic fault injection for the simulated MPI runtime.

A :class:`FaultPlan` describes an adversarial delivery schedule: which
messages to delay, drop, duplicate or corrupt (matched by source /
destination / tag / per-stream ordinal), and which ranks to stall or
kill at a chosen progress mark (their n-th posted send).  The plan is
seeded and all decisions are functions of deterministic per-fault
counters, so the same plan reproduces the same schedule run after run.

The :class:`FaultEngine` is the runtime-side interpreter.  It sits on
the delivery path (``SpmdRuntime.deliver``) and on receive timeouts
(:meth:`Mailbox.take`):

- *delay* shifts an envelope's virtual departure time (the modeled
  machine was slow) — virtual time changes, payloads do not;
- *drop* diverts the envelope to a per-destination ledger instead of
  the mailbox.  The receiver's bounded retry/backoff loop re-requests
  it (``re_request``), modeling receiver-driven retransmission.  A
  re-injected envelope keeps its original departure stamp, so a run
  that completes under drops is bitwise identical — virtual times
  included — to the fault-free run;
- *dup* delivers the same envelope twice; the mailbox discards the
  duplicate by sequence number;
- *corrupt* delivers a tampered copy and stashes the pristine envelope
  in the ledger, so integrity-checking receivers (the reconstruction
  ring verifies a per-chunk checksum) can recover it via
  :meth:`re_request`;
- *stall* blocks the rank's thread in host time before its n-th send
  (exercising peers' retry paths and the watchdog); *kill* raises
  :class:`~repro.mpi.errors.InjectedFault` inside the rank, aborting
  the job with a structured :class:`~repro.mpi.errors.SpmdJobError`.

Invariant (asserted by the fault-matrix tests): any run that
*completes* under fault injection produces bitwise-identical results
to the fault-free run.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .errors import InjectedFault
from .message import Envelope, next_seq

#: fault kinds understood by the engine
KINDS = ("delay", "drop", "dup", "corrupt", "stall", "kill")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry/backoff schedule for blocked receives.

    A receive waits ``timeout`` host seconds, re-requests, then waits
    ``timeout * backoff``, and so on, up to ``max_retries`` re-request
    attempts before raising
    :class:`~repro.mpi.errors.MessageLostError`.  Only active while a
    fault engine is installed; fault-free jobs keep the plain blocking
    behaviour (the watchdog covers genuine deadlocks).
    """

    timeout: float = 0.25
    backoff: float = 2.0
    max_retries: int = 6

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"retry timeout must be positive, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"retry backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 1:
            raise ValueError(f"need at least one retry, got {self.max_retries}")

    def budget(self, attempt: int) -> float:
        """Host-seconds to wait before re-request number ``attempt`` (1-based)."""
        return self.timeout * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    Message faults (``delay``/``drop``/``dup``/``corrupt``) match
    envelopes by ``src``/``dest``/``tag`` (``None`` = wildcard) and
    fire on the ``nth`` matching message (1-based; ``None`` = every
    match, subject to ``prob``).  ``count`` is how many delivery
    attempts a ``drop`` suppresses (1 = the eager send only; the first
    re-request succeeds).  Rank faults (``stall``/``kill``) trigger
    when ``rank`` posts its ``after``-th send.
    """

    kind: str
    src: Optional[int] = None
    dest: Optional[int] = None
    tag: Optional[int] = None
    #: 1-based ordinal *within each (src, dest) stream*.  Streams are
    #: counted separately because only the per-stream order (the
    #: sender's program order) is deterministic — a global ordinal
    #: would depend on how the host scheduler interleaves sender
    #: threads, breaking same-seed-same-schedule reproducibility.
    nth: Optional[int] = None
    count: int = 1
    seconds: float = 0.0
    prob: float = 1.0
    rank: Optional[int] = None
    after: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.kind in ("stall", "kill") and self.rank is None:
            raise ValueError(f"{self.kind} fault requires rank=")
        if self.count < 1:
            raise ValueError(f"drop count must be >= 1, got {self.count}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches_message(self, env: Envelope) -> bool:
        if self.kind in ("stall", "kill"):
            return False
        if self.src is not None and env.src != self.src:
            return False
        if self.dest is not None and env.dest != self.dest:
            return False
        if self.tag is not None and env.tag != self.tag:
            return False
        return True


def _parse_int(v: str) -> Optional[int]:
    return None if v in ("*", "any") else int(v)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of faults plus the retry policy.

    Build programmatically::

        FaultPlan(faults=(Fault("drop", src=0, dest=1, tag=3, nth=1),),
                  seed=7)

    or parse the CLI/bench spec grammar — semicolon-separated clauses,
    each ``kind:key=value,...``::

        "seed=7;retry:timeout=0.1,max=4;drop:src=0,dest=1,tag=3,nth=1"
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        seed = 0
        retry_kwargs: Dict[str, Any] = {}
        faults: List[Fault] = []
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[5:])
                continue
            if ":" not in clause:
                raise ValueError(
                    f"bad fault clause {clause!r}: expected 'kind:key=val,...'"
                )
            kind, _, body = clause.partition(":")
            kind = kind.strip()
            kv: Dict[str, str] = {}
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                k, _, v = item.partition("=")
                kv[k.strip()] = v.strip()
            if kind == "retry":
                if "timeout" in kv:
                    retry_kwargs["timeout"] = float(kv["timeout"])
                if "backoff" in kv:
                    retry_kwargs["backoff"] = float(kv["backoff"])
                if "max" in kv:
                    retry_kwargs["max_retries"] = int(kv["max"])
                continue
            fault = Fault(
                kind=kind,
                src=_parse_int(kv["src"]) if "src" in kv else None,
                dest=_parse_int(kv["dest"]) if "dest" in kv else None,
                tag=_parse_int(kv["tag"]) if "tag" in kv else None,
                nth=int(kv["nth"]) if "nth" in kv else None,
                count=int(kv["count"]) if "count" in kv else 1,
                seconds=float(kv["seconds"]) if "seconds" in kv else 0.0,
                prob=float(kv["prob"]) if "prob" in kv else 1.0,
                rank=int(kv["rank"]) if "rank" in kv else None,
                after=int(kv["after"]) if "after" in kv else 1,
            )
            faults.append(fault)
        return cls(
            faults=tuple(faults), seed=seed, retry=RetryPolicy(**retry_kwargs)
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for f in self.faults:
            keys = ("src", "dest", "tag", "nth", "count", "seconds", "prob",
                    "rank", "after")
            defaults = Fault(kind=f.kind, rank=f.rank)
            kv = ",".join(
                f"{k}={getattr(f, k)}"
                for k in keys
                if getattr(f, k) != getattr(defaults, k)
            )
            parts.append(f"{f.kind}:{kv}" if kv else f.kind)
        return ";".join(parts)


def _tamper(obj: Any, rng: np.random.Generator) -> Tuple[Any, bool]:
    """Deterministically corrupt the first tamper-able element of a
    payload; returns ``(tampered, changed)``.  Containers are walked
    recursively so a pickled ``(bytes, ndarray, ndarray, crc)`` ring
    chunk gets one flipped byte, not an invalid pickle."""
    if isinstance(obj, np.ndarray) and obj.size:
        out = obj.copy()
        flat = out.reshape(-1).view(np.uint8)
        flat[int(rng.integers(flat.size))] ^= 0xFF
        return out, True
    if isinstance(obj, (bytes, bytearray)) and len(obj):
        out = bytearray(obj)
        out[int(rng.integers(len(out)))] ^= 0xFF
        return bytes(out), True
    if isinstance(obj, (tuple, list)):
        items = list(obj)
        for i, item in enumerate(items):
            tampered, changed = _tamper(item, rng)
            if changed:
                items[i] = tampered
                return (tuple(items) if isinstance(obj, tuple) else items), True
    return obj, False


class _FaultState:
    """Mutable per-fault bookkeeping (the Fault itself stays frozen).

    Match counters and RNG draws are keyed by (src, dest) stream: the
    order of envelopes *within* a stream is the sender's program order
    and therefore deterministic, while the interleaving *across*
    streams is host-scheduler noise that must not influence decisions.
    """

    __slots__ = ("fault", "matched", "fired", "_seed", "_index", "_rngs")

    def __init__(self, fault: Fault, seed: int, index: int):
        self.fault = fault
        self.matched: Dict[Tuple[int, int], int] = {}  # stream -> count
        self.fired = 0  # times the fault actually triggered
        self._seed = seed
        self._index = index
        self._rngs: Dict[Tuple[int, int], np.random.Generator] = {}

    def stream_rng(self, env: Envelope) -> np.random.Generator:
        key = (env.src, env.dest)
        rng = self._rngs.get(key)
        if rng is None:
            rng = np.random.default_rng(
                (self._seed, self._index, env.src, env.dest)
            )
            self._rngs[key] = rng
        return rng

    def ordinal(self, env: Envelope) -> int:
        return self.matched.get((env.src, env.dest), 0)

    def should_fire(self, env: Envelope) -> bool:
        f = self.fault
        key = (env.src, env.dest)
        count = self.matched.get(key, 0) + 1
        self.matched[key] = count
        if f.nth is not None and count != f.nth:
            return False
        if f.prob < 1.0 and float(self.stream_rng(env).random()) >= f.prob:
            return False
        self.fired += 1
        return True


class _LedgerEntry:
    """A withheld envelope awaiting receiver-driven retransmission."""

    __slots__ = ("env", "remaining")

    def __init__(self, env: Envelope, remaining: int):
        self.env = env
        self.remaining = remaining  # re-requests still to suppress


class FaultEngine:
    """Thread-safe interpreter of one :class:`FaultPlan` for one job.

    Locking discipline: the engine lock is *never* held while calling
    into a mailbox (delivery decisions are computed under the lock,
    applied outside), so the mailbox-lock -> engine-lock order taken by
    retrying receivers cannot deadlock against the send path.
    """

    def __init__(self, plan: FaultPlan, nprocs: int, tracer=None, on_kill=None):
        self.plan = plan
        self.policy = plan.retry
        self.nprocs = nprocs
        self._tracer = tracer
        #: ``on_kill(rank, ordinal)`` fires when a kill fault triggers,
        #: *before* the InjectedFault propagates — the notification hook a
        #: serving router uses to learn which rank died and start failover
        self._on_kill = on_kill
        self._lock = threading.Lock()
        self._states = [
            _FaultState(f, plan.seed, i) for i, f in enumerate(plan.faults)
        ]
        self._message_states = [
            st for st in self._states if st.fault.kind not in ("stall", "kill")
        ]
        self._rank_states = [
            st for st in self._states if st.fault.kind in ("stall", "kill")
        ]
        #: True when the plan can ever withhold or re-deliver a message;
        #: mailboxes skip duplicate tracking otherwise
        self.needs_dedup = any(
            st.fault.kind in ("drop", "dup", "corrupt")
            for st in self._message_states
        )
        self._ledger: Dict[int, List[_LedgerEntry]] = {
            r: [] for r in range(nprocs)
        }
        self._sends: Dict[int, int] = {r: 0 for r in range(nprocs)}
        #: counters published in SpmdResult.fault_stats
        self.stats: Dict[str, int] = {
            "delayed": 0, "dropped": 0, "duplicated": 0, "corrupted": 0,
            "stalled": 0, "killed": 0, "retransmitted": 0,
            "retries": 0, "dup_discarded": 0,
        }
        #: deterministic record of fired message faults, for the
        #: same-seed-same-schedule tests: (kind, src, dest, tag, ordinal)
        self.schedule: List[Tuple[str, int, int, int, int]] = []

    # ------------------------------------------------------------------
    # send-side hooks
    # ------------------------------------------------------------------
    def before_send(self, rank: int) -> None:
        """Stall/kill hook: called by the communicator before a send."""
        if not self._rank_states:  # fast path: no rank faults scheduled
            return
        stall_for = 0.0
        kill_ordinal = None
        with self._lock:
            self._sends[rank] += 1
            ordinal = self._sends[rank]
            for st in self._rank_states:
                f = st.fault
                if f.rank != rank:
                    continue
                if ordinal != f.after:
                    continue
                st.fired += 1
                if f.kind == "kill":
                    self.stats["killed"] += 1
                    kill_ordinal = ordinal
                    break
                self.stats["stalled"] += 1
                stall_for = max(stall_for, f.seconds)
        if kill_ordinal is not None:
            # notify outside the lock: the listener (a serving router's
            # failover machinery) may do arbitrary bookkeeping
            if self._on_kill is not None:
                self._on_kill(rank, kill_ordinal)
            raise InjectedFault(rank, kill_ordinal)
        if stall_for > 0.0:
            time.sleep(stall_for)  # host time only; virtual clock untouched

    # ------------------------------------------------------------------
    # delivery-side hook
    # ------------------------------------------------------------------
    def route(self, env: Envelope) -> List[Envelope]:
        """Decide the fate of one envelope; returns what to deliver now."""
        if not self._message_states:  # fast path: no message faults
            return [env]
        with self._lock:
            for st in self._message_states:
                f = st.fault
                if not f.matches_message(env):
                    continue
                if not st.should_fire(env):
                    continue
                self.schedule.append((f.kind, env.src, env.dest, env.tag,
                                      st.ordinal(env)))
                self._trace(f.kind, env)
                if f.kind == "delay":
                    self.stats["delayed"] += 1
                    return [replace(env, depart_time=env.depart_time + f.seconds)]
                if f.kind == "drop":
                    self.stats["dropped"] += 1
                    self._ledger[env.dest].append(
                        _LedgerEntry(env, remaining=f.count - 1)
                    )
                    return []
                if f.kind == "dup":
                    self.stats["duplicated"] += 1
                    return [env, env]
                if f.kind == "corrupt":
                    self.stats["corrupted"] += 1
                    self._ledger[env.dest].append(_LedgerEntry(env, remaining=0))
                    return [self._corrupted(env, st.stream_rng(env))]
        return [env]

    def _corrupted(self, env: Envelope, rng: np.random.Generator) -> Envelope:
        # the tampered copy gets its own sequence number: it must not
        # shadow the pristine original in the duplicate-discard layer
        if env.typed:
            tampered, _ = _tamper(env.payload, rng)
            return replace(env, payload=tampered, seq=next_seq())
        try:
            obj = pickle.loads(env.payload)
            tampered, changed = _tamper(obj, rng)
            if changed:
                blob = pickle.dumps(tampered, protocol=pickle.HIGHEST_PROTOCOL)
                if len(blob) == len(env.payload):
                    return replace(env, payload=blob, seq=next_seq())
        except Exception:  # pragma: no cover - defensive
            pass
        # fallback: flip a raw byte of the pickle stream (the receiver
        # sees CorruptMessageError from unpickle instead of a checksum
        # mismatch — both feed the same recovery path)
        blob, _ = _tamper(bytes(env.payload), rng)
        return replace(env, payload=blob, seq=next_seq())

    # ------------------------------------------------------------------
    # receiver-driven recovery
    # ------------------------------------------------------------------
    def re_request(
        self,
        dest: int,
        src: Optional[int],
        tag: Optional[int],
        context: int,
    ) -> Optional[Envelope]:
        """A timed-out receiver asks for a withheld matching envelope.

        Returns the pristine envelope when one is due for
        retransmission (the caller delivers it), ``None`` when nothing
        matching is ledgered or the fault still suppresses it.
        """
        with self._lock:
            self.stats["retries"] += 1
            entries = self._ledger[dest]
            for i, entry in enumerate(entries):
                if not entry.env.matches(src, tag, context):
                    continue
                if entry.remaining > 0:
                    entry.remaining -= 1
                    return None
                del entries[i]
                self.stats["retransmitted"] += 1
                self._trace("retransmit", entry.env)
                # original depart stamp: retransmission is a host-level
                # artifact, invisible to the modeled machine
                return entry.env
        return None

    def note_duplicate(self, env: Envelope) -> None:
        with self._lock:
            self.stats["dup_discarded"] += 1
            self._trace("dup_discard", env)

    def _trace(self, op: str, env: Envelope) -> None:
        if self._tracer is not None:
            self._tracer.record(
                env.src, "fault", op, env.dest, env.nbytes,
                env.depart_time, env.depart_time,
            )

    def report(self) -> Dict[str, Any]:
        """Snapshot of counters + the deterministic fired-fault schedule."""
        with self._lock:
            return {
                "plan": self.plan.describe(),
                "stats": dict(self.stats),
                "schedule": sorted(self.schedule),
            }


def as_plan(faults) -> Optional[FaultPlan]:
    """Coerce ``None`` | spec-string | :class:`FaultPlan` to a plan."""
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, str):
        return FaultPlan.parse(faults)
    if isinstance(faults, Sequence):
        return FaultPlan(faults=tuple(faults))
    raise TypeError(
        f"faults must be a FaultPlan, spec string or fault sequence, "
        f"got {type(faults).__name__}"
    )
