"""The communicator: point-to-point primitives plus collective entry points.

API shape mirrors mpi4py: lower-case methods move pickled Python objects,
upper-case methods move numpy buffers in place.  All communication is
matched through per-rank mailboxes owned by the :class:`SpmdRuntime`;
virtual time advances according to the runtime's :class:`MachineSpec`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from . import frames
from .clock import VirtualClock
from .datatypes import ANY_SOURCE, ANY_TAG, TAG_UB, as_array, check_tag
from .errors import CommError, CorruptMessageError, RankError, TruncationError
from .message import Envelope
from .reduceops import SUM, ReduceOp
from .request import RecvRequest, Request, SendRequest
from .status import Status

#: first tag reserved for internal collective traffic
_COLL_TAG_BASE = TAG_UB + 1
_COLL_TAG_SPAN = 2**20

#: bounded retransmission attempts when a received frame fails its CRC
_RECV_MAX_RETRIES = 3


class Comm:
    """A communicator over a subset of the job's ranks."""

    def __init__(
        self,
        runtime: "SpmdRuntime",  # noqa: F821
        group: Tuple[int, ...],
        rank: int,
        context: int,
    ) -> None:
        self._runtime = runtime
        self._group = group  # local rank -> global rank
        self._rank = rank
        self._context = context
        self._coll_seq = 0
        self._split_seq = 0
        self._clock: VirtualClock = runtime.clocks[group[rank]]
        self._mailbox = runtime.mailboxes[group[rank]]
        self._machine = runtime.machine
        self._tracer = runtime.tracer
        self._suite = runtime.collectives

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._group)

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self.size

    @property
    def vtime(self) -> float:
        """This rank's current virtual time in seconds."""
        return self._clock.now

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    @property
    def machine(self):
        return self._machine

    def advance(self, seconds: float) -> float:
        """Charge ``seconds`` of local compute to the virtual clock."""
        t0 = self._clock.now
        t1 = self._clock.advance(seconds, kind="compute")
        self._tracer.record(self._rank, "compute", "advance", -1, 0, t0, t1)
        return t1

    def charge_kernel_evals(self, n_evals: float, avg_nnz: float) -> float:
        """Charge the modeled time of ``n_evals`` kernel evaluations."""
        return self.advance(self._machine.time_kernel_evals(n_evals, avg_nnz))

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int, *, allow_any: bool = False) -> int:
        if peer == ANY_SOURCE and allow_any:
            return peer
        if not 0 <= peer < self.size:
            raise RankError(
                f"rank {peer} out of range for communicator of size {self.size}"
            )
        return peer

    def _global(self, local_rank: int) -> int:
        return self._group[local_rank]

    # ------------------------------------------------------------------
    # point-to-point: internal
    # ------------------------------------------------------------------
    def _deliver(self, env: Envelope) -> None:
        self._runtime.deliver(env)

    def _before_send(self) -> None:
        """Fault-engine send hook (stall/kill progress marks)."""
        engine = self._runtime.faults
        if engine is not None:
            engine.before_send(self._global(self._rank))

    def _post_send_typed(self, arr: np.ndarray, dest: int, tag: int) -> None:
        self._before_send()
        t0 = self._clock.now
        self._clock.advance(self._machine.send_overhead, kind="comm")
        env = Envelope.from_array(
            self._rank, self._global(dest), tag, self._context, arr, self._clock.now
        )
        self._clock.record_send(env.nbytes)
        self._deliver(env)
        self._tracer.record(
            self._rank, "send", "Send", dest, env.nbytes, t0, self._clock.now
        )

    def _post_send_object(
        self, obj: Any, dest: int, tag: int, wire: Optional[str] = None
    ) -> None:
        """Send a Python object, framing it when the typed-frame protocol
        covers it.

        ``wire`` selects the payload protocol: ``None`` (default) frames
        when possible and falls back to pickle; ``"frames"`` requires a
        frameable object (raises :class:`CommError` otherwise);
        ``"pickle"`` forces the legacy pickled path.
        """
        self._before_send()
        t0 = self._clock.now
        self._clock.advance(self._machine.send_overhead, kind="comm")
        blob = None if wire == "pickle" else frames.encode(obj)
        if blob is not None:
            env = Envelope.from_frame(
                self._rank, self._global(dest), tag, self._context,
                blob, self._clock.now,
            )
        elif wire == "frames":
            raise CommError(
                f"wire='frames' requires a frameable payload; "
                f"{type(obj).__name__} is outside the frame vocabulary"
            )
        else:
            env = Envelope.from_object(
                self._rank, self._global(dest), tag, self._context,
                obj, self._clock.now,
            )
        self._clock.record_send(env.nbytes)
        self._deliver(env)
        self._tracer.record(
            self._rank, "send", "send", dest, env.nbytes, t0, self._clock.now
        )

    def _complete_recv(self, env: Envelope) -> None:
        """Clock/statistics bookkeeping once an envelope is matched."""
        t0 = self._clock.now
        intra = self._machine.same_node(
            self._group[env.src], self._group[self._rank]
        )
        arrival = env.depart_time + self._machine.p2p_time(env.nbytes, intra=intra)
        self._clock.sync_to(arrival, kind="comm")
        self._clock.record_recv(env.nbytes)
        self._tracer.record(
            self._rank, "recv", "recv", env.src, env.nbytes, t0, self._clock.now
        )

    def _decode_with_recovery(self, env: Envelope) -> Tuple[Envelope, Any]:
        """Decode a matched envelope's payload, re-requesting pristine
        retransmissions of corrupt frames from the fault ledger (bounded
        attempts) before surfacing :class:`CorruptMessageError`."""
        attempts = 0
        while True:
            try:
                return env, env.decode()
            except CorruptMessageError:
                attempts += 1
                if attempts > _RECV_MAX_RETRIES or not self.rerequest(
                    env.src, env.tag
                ):
                    raise
                env = self._mailbox.take(
                    env.src, env.tag, self._context, block=True
                )
                self._complete_recv(env)

    # ------------------------------------------------------------------
    # point-to-point: typed (numpy buffers)
    # ------------------------------------------------------------------
    def Send(self, buf: Any, dest: int, tag: int = 0) -> None:
        self._check_peer(dest)
        check_tag(tag)
        self._post_send_typed(as_array(buf), dest, tag)

    def Recv(
        self,
        buf: Any,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> None:
        self._check_peer(source, allow_any=True)
        check_tag(tag, allow_any=True)
        arr = as_array(buf)
        env = self._mailbox.take(source, tag, self._context, block=True)
        self._complete_recv(env)
        if not env.typed:
            raise CommError("typed Recv matched an object message")
        data = env.payload.reshape(-1)
        if data.size > arr.size:
            raise TruncationError(
                f"message of {data.size} elements truncates buffer of {arr.size}"
            )
        arr[: data.size] = data.astype(arr.dtype, copy=False)
        if status is not None:
            status.source, status.tag = env.src, env.tag
            status.count, status.nbytes = int(data.size), env.nbytes

    def Isend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        self.Send(buf, dest, tag)
        return SendRequest()

    def Irecv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        self._check_peer(source, allow_any=True)
        check_tag(tag, allow_any=True)
        return RecvRequest(self, source, tag, as_array(buf))

    def Sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> None:
        req = self.Irecv(recvbuf, source, recvtag)
        self.Send(sendbuf, dest, sendtag)
        req.wait(status)

    # ------------------------------------------------------------------
    # point-to-point: pickled objects
    # ------------------------------------------------------------------
    def send(
        self, obj: Any, dest: int, tag: int = 0, wire: Optional[str] = None
    ) -> None:
        self._check_peer(dest)
        check_tag(tag)
        self._post_send_object(obj, dest, tag, wire=wire)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        self._check_peer(source, allow_any=True)
        check_tag(tag, allow_any=True)
        env = self._mailbox.take(source, tag, self._context, block=True)
        self._complete_recv(env)
        env, obj = self._decode_with_recovery(env)
        if status is not None:
            status.source, status.tag = env.src, env.tag
            status.count = status.nbytes = env.nbytes
        return obj

    def isend(
        self, obj: Any, dest: int, tag: int = 0, wire: Optional[str] = None
    ) -> Request:
        self.send(obj, dest, tag, wire=wire)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        self._check_peer(source, allow_any=True)
        check_tag(tag, allow_any=True)
        return RecvRequest(self, source, tag, None)

    def sendrecv(
        self, sendobj: Any, dest: int, sendtag: int = 0,
        source: int = ANY_SOURCE, recvtag: int = ANY_TAG,
    ) -> Any:
        req = self.irecv(source, recvtag)
        self.send(sendobj, dest, sendtag)
        return req.wait()

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe for a matching pending message."""
        return (
            self._mailbox.probe(source, tag, self._context) is not None
        )

    def rerequest(self, source: int, tag: int) -> bool:
        """Ask the fault engine to retransmit a withheld message.

        Integrity-checking protocols (the reconstruction ring) call this
        after detecting a corrupt payload; the pristine envelope — if the
        engine ledgered one — is re-injected into this rank's mailbox.
        Returns False when no fault engine is installed or nothing
        matching is recoverable.
        """
        engine = self._runtime.faults
        if engine is None:
            return False
        env = engine.re_request(
            self._global(self._rank), source, tag, self._context
        )
        if env is None:
            return False
        self._mailbox.put(env)
        return True

    # ------------------------------------------------------------------
    # internal tag allocation for collectives
    # ------------------------------------------------------------------
    def _next_coll_tag(self) -> int:
        tag = _COLL_TAG_BASE + (self._coll_seq % _COLL_TAG_SPAN)
        self._coll_seq += 1
        return tag

    def _coll_send(
        self, obj: Any, dest: int, tag: int, typed: bool = False
    ) -> None:
        if typed:
            self._post_send_typed(obj, dest, tag)
        else:
            self._post_send_object(obj, dest, tag)

    def _coll_recv(self, source: int, tag: int) -> Any:
        env = self._mailbox.take(source, tag, self._context, block=True)
        self._complete_recv(env)
        return self._decode_with_recovery(env)[1]

    def _trace_collective(self, op: str, t0: float, b0: int) -> None:
        """Record a finished collective with this rank's *exact* wire
        contribution: the delta of bytes sent since entry (``b0``)."""
        self._tracer.record(
            self._rank,
            "collective",
            op,
            -1,
            self._clock.stats.bytes_sent - b0,
            t0,
            self._clock.now,
        )

    def _coll_entry(self) -> Tuple[float, int]:
        """Snapshot (vtime, bytes-sent) at collective entry for tracing."""
        return self._clock.now, self._clock.stats.bytes_sent

    # ------------------------------------------------------------------
    # collectives (object path; typed wrappers below)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        t0, b0 = self._coll_entry()
        self._suite.barrier(self)
        self._trace_collective("Barrier", t0, b0)

    Barrier = barrier

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        self._check_peer(root)
        t0, b0 = self._coll_entry()
        out = self._suite.bcast(self, obj, root)
        self._trace_collective("Bcast", t0, b0)
        return out

    def reduce(self, obj: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        self._check_peer(root)
        t0, b0 = self._coll_entry()
        out = self._suite.reduce(self, obj, op, root)
        self._trace_collective("Reduce", t0, b0)
        return out

    def allreduce(self, obj: Any, op: ReduceOp = SUM) -> Any:
        t0, b0 = self._coll_entry()
        out = self._suite.allreduce(self, obj, op)
        self._trace_collective("Allreduce", t0, b0)
        return out

    def allreduce_buffer(self, arr: Any, op: ReduceOp = SUM) -> np.ndarray:
        """Allreduce a small numpy buffer over the typed envelope path.

        Unlike :meth:`allreduce` the operands move as raw buffers (no
        pickling) and are combined with the op's array path; unlike
        :meth:`Allreduce` the result is returned rather than written
        in place.  Reduction tree and combine order are identical to
        :meth:`allreduce`, so (value, location) elections produce the
        same winners on either path.
        """
        src = as_array(arr)
        t0, b0 = self._coll_entry()
        out = self._suite.allreduce(self, src.copy(), op, arrays=True, typed=True)
        self._trace_collective("Allreduce", t0, b0)
        return np.asarray(out)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        self._check_peer(root)
        t0, b0 = self._coll_entry()
        out = self._suite.gather(self, obj, root)
        self._trace_collective("Gather", t0, b0)
        return out

    def allgather(self, obj: Any) -> List[Any]:
        t0, b0 = self._coll_entry()
        out = self._suite.allgather(self, obj)
        self._trace_collective("Allgather", t0, b0)
        return out

    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        self._check_peer(root)
        t0, b0 = self._coll_entry()
        out = self._suite.scatter(self, objs, root)
        self._trace_collective("Scatter", t0, b0)
        return out

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        t0, b0 = self._coll_entry()
        out = self._suite.alltoall(self, objs)
        self._trace_collective("Alltoall", t0, b0)
        return out

    def scan(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction (MPI_Scan)."""
        t0, b0 = self._coll_entry()
        out = self._suite.scan(self, obj, op)
        self._trace_collective("Scan", t0, b0)
        return out

    def exscan(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction (MPI_Exscan; None on rank 0)."""
        t0, b0 = self._coll_entry()
        out = self._suite.exscan(self, obj, op)
        self._trace_collective("Exscan", t0, b0)
        return out

    def reduce_scatter(self, objs: Sequence[Any], op: ReduceOp = SUM) -> Any:
        """Reduce slot i across ranks; rank i receives result i
        (MPI_Reduce_scatter_block with one item per rank)."""
        t0, b0 = self._coll_entry()
        out = self._suite.reduce_scatter(self, objs, op)
        self._trace_collective("Reduce_scatter", t0, b0)
        return out

    # ------------------------------------------------------------------
    # collectives: typed wrappers (in-place numpy buffers)
    # ------------------------------------------------------------------
    def Bcast(self, buf: Any, root: int = 0) -> None:
        arr = as_array(buf)
        if self._rank == root:
            self.bcast(arr.copy(), root=root)
        else:
            data = self.bcast(None, root=root)
            if data.size != arr.size:
                raise TruncationError(
                    f"Bcast of {data.size} elements into buffer of {arr.size}"
                )
            arr[:] = data.astype(arr.dtype, copy=False)

    def Allreduce(self, sendbuf: Any, recvbuf: Any, op: ReduceOp = SUM) -> None:
        if sendbuf is IN_PLACE:
            out = as_array(recvbuf)
            result = self._suite.allreduce(self, out.copy(), op, arrays=True)
        else:
            src = as_array(sendbuf)
            out = as_array(recvbuf)
            if src.size != out.size:
                raise CommError("Allreduce send/recv buffer size mismatch")
            result = self._suite.allreduce(self, src.copy(), op, arrays=True)
        out[:] = result.astype(out.dtype, copy=False)

    def Reduce(
        self, sendbuf: Any, recvbuf: Any, op: ReduceOp = SUM, root: int = 0
    ) -> None:
        src = as_array(sendbuf).copy()
        result = self._suite.reduce(self, src, op, root, arrays=True)
        if self._rank == root:
            out = as_array(recvbuf)
            out[:] = result.astype(out.dtype, copy=False)

    def Gather(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        src = as_array(sendbuf).copy()
        parts = self._suite.gather(self, src, root)
        if self._rank == root:
            out = as_array(recvbuf)
            flat = np.concatenate([np.asarray(p).reshape(-1) for p in parts])
            if flat.size != out.size:
                raise TruncationError("Gather buffer size mismatch")
            out[:] = flat.astype(out.dtype, copy=False)

    def Allgather(self, sendbuf: Any, recvbuf: Any) -> None:
        src = as_array(sendbuf).copy()
        parts = self._suite.allgather(self, src)
        out = as_array(recvbuf)
        flat = np.concatenate([np.asarray(p).reshape(-1) for p in parts])
        if flat.size != out.size:
            raise TruncationError("Allgather buffer size mismatch")
        out[:] = flat.astype(out.dtype, copy=False)

    def Allgatherv(self, sendbuf: Any, recvbuf: Any) -> None:
        # identical to Allgather with per-rank counts inferred from payloads
        self.Allgather(sendbuf, recvbuf)

    def Scatter(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        out = as_array(recvbuf)
        if self._rank == root:
            src = as_array(sendbuf)
            if src.size != out.size * self.size:
                raise CommError("Scatter buffer size mismatch")
            chunks = [
                src[i * out.size : (i + 1) * out.size].copy()
                for i in range(self.size)
            ]
        else:
            chunks = None
        part = self._suite.scatter(self, chunks, root)
        out[:] = np.asarray(part).reshape(-1).astype(out.dtype, copy=False)

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def Split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """Partition the communicator by ``color``, order by ``(key, rank)``."""
        triples = self.allgather((color, key, self._rank))
        self._split_seq += 1
        if color is None or color < 0:
            return None
        members = sorted(
            (k, r) for (c, k, r) in triples if c == color
        )
        group = tuple(self._global(r) for (_, r) in members)
        new_rank = [r for (_, r) in members].index(self._rank)
        ctx = self._runtime.allocate_context(
            (self._context, self._split_seq, color)
        )
        return Comm(self._runtime, group, new_rank, ctx)

    def Dup(self) -> "Comm":
        self._split_seq += 1
        ctx = self._runtime.allocate_context(
            (self._context, self._split_seq, "dup")
        )
        # Dup is collective: synchronize so all ranks agree on the sequence.
        self.barrier()
        return Comm(self._runtime, self._group, self._rank, ctx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(rank={self._rank}, size={self.size}, ctx={self._context})"


class _InPlace:
    """Sentinel mirroring ``MPI.IN_PLACE``."""

    def __repr__(self) -> str:  # pragma: no cover
        return "IN_PLACE"


IN_PLACE = _InPlace()
