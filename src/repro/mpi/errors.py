"""Exception hierarchy for the simulated MPI runtime.

The runtime mirrors MPI error semantics: errors raised inside one rank
abort the whole SPMD job (``MPI_Abort``-like behaviour); ranks blocked in
communication calls are woken with :class:`SpmdAborted`.
"""

from __future__ import annotations


class MpiError(Exception):
    """Base class for all errors raised by :mod:`repro.mpi`."""


class CommError(MpiError):
    """Malformed communication call (bad rank, tag, buffer, or count)."""


class TruncationError(CommError):
    """A received message is larger than the posted receive buffer.

    Mirrors ``MPI_ERR_TRUNCATE``: MPI does not silently drop bytes.
    """


class RankError(CommError):
    """Peer rank out of range for the communicator."""


class TagError(CommError):
    """Tag outside the valid range ``[0, TAG_UB]`` (wildcards excepted)."""


class DeadlockError(MpiError):
    """The runtime watchdog detected no progress while ranks are blocked."""


class SpmdAborted(MpiError):
    """Raised inside ranks that were cancelled because a peer rank failed."""


class SpmdJobError(MpiError):
    """Raised by :func:`repro.mpi.run_spmd` when one or more ranks failed.

    Attributes
    ----------
    failures:
        Mapping ``rank -> exception`` of the original per-rank errors.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"SPMD job failed in rank(s) {ranks}: "
            f"{type(first).__name__}: {first}"
        )
