"""Exception hierarchy for the simulated MPI runtime.

The runtime mirrors MPI error semantics: errors raised inside one rank
abort the whole SPMD job (``MPI_Abort``-like behaviour); ranks blocked in
communication calls are woken with :class:`SpmdAborted`.
"""

from __future__ import annotations


class MpiError(Exception):
    """Base class for all errors raised by :mod:`repro.mpi`."""


class CommError(MpiError):
    """Malformed communication call (bad rank, tag, buffer, or count)."""


class TruncationError(CommError):
    """A received message is larger than the posted receive buffer.

    Mirrors ``MPI_ERR_TRUNCATE``: MPI does not silently drop bytes.
    """


class RankError(CommError):
    """Peer rank out of range for the communicator."""


class TagError(CommError):
    """Tag outside the valid range ``[0, TAG_UB]`` (wildcards excepted)."""


class DeadlockError(MpiError):
    """The runtime watchdog detected no progress while ranks are blocked.

    Attributes
    ----------
    diagnostics:
        Optional mapping ``rank -> human-readable blocked-state line``
        (what each live rank was waiting for when the watchdog fired).
    """

    def __init__(self, message: str, diagnostics: dict | None = None):
        self.diagnostics = dict(diagnostics or {})
        if self.diagnostics:
            detail = "; ".join(
                f"rank {r}: {s}" for r, s in sorted(self.diagnostics.items())
            )
            message = f"{message} [{detail}]"
        super().__init__(message)


class CorruptMessageError(CommError):
    """A received payload failed integrity verification (bad pickle or
    checksum mismatch).  Recoverable when a fault engine holds the
    pristine copy — see :meth:`repro.mpi.communicator.Comm.rerequest`."""


class FaultInjectionError(MpiError):
    """Base class for errors originating in the fault-injection layer."""


class InjectedFault(FaultInjectionError):
    """A ``kill`` fault fired inside a rank (simulated process death).

    Attributes: ``rank`` (the killed rank), ``after`` (the send ordinal
    at which the fault triggered).
    """

    def __init__(self, rank: int, after: int):
        self.rank = rank
        self.after = after
        super().__init__(
            f"injected fault: rank {rank} killed after {after} send(s)"
        )


class MessageLostError(FaultInjectionError):
    """A receive exhausted its retry budget without a matching message.

    Carries the structured context the ISSUE requires: the waiting rank,
    the expected source and tag, and the number of re-request attempts.
    """

    def __init__(
        self, rank: int, source: int | None, tag: int | None, attempts: int
    ):
        self.rank = rank
        self.source = source
        self.tag = tag
        self.attempts = attempts
        src = "ANY" if source is None or source < 0 else source
        tg = "ANY" if tag is None or tag < 0 else tag
        super().__init__(
            f"rank {rank}: message from src={src} tag={tg} lost after "
            f"{attempts} retry attempt(s)"
        )


class RingRecoveryError(FaultInjectionError):
    """Gradient-reconstruction ring recovery gave up on a visiting block.

    Attributes: ``rank``, ``tag``, ``step`` (ring step), ``attempts``.
    """

    def __init__(
        self, rank: int, tag: int, step: int, attempts: int,
        cause: BaseException | None = None,
    ):
        self.rank = rank
        self.tag = tag
        self.step = step
        self.attempts = attempts
        self.cause = cause
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"rank {rank}: ring recovery failed at step {step} "
            f"(tag {tag}) after {attempts} attempt(s){detail}"
        )


class SpmdAborted(MpiError):
    """Raised inside ranks that were cancelled because a peer rank failed."""


class SpmdJobError(MpiError):
    """Raised by :func:`repro.mpi.run_spmd` when one or more ranks failed.

    Attributes
    ----------
    failures:
        Mapping ``rank -> exception`` of the original per-rank errors.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"SPMD job failed in rank(s) {ranks}: "
            f"{type(first).__name__}: {first}"
        )
