"""Per-rank mailboxes: the synchronization core of the simulated runtime.

Each rank owns one :class:`Mailbox`.  Senders deposit envelopes; receivers
block until a matching envelope is available.  Matching follows MPI
non-overtaking order: among envelopes from the same (source, tag, context),
the earliest deposited one is matched first.

Mailbox waits poll an abort event so that when any rank raises, peers
blocked in communication are promptly woken with :class:`SpmdAborted`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from .errors import SpmdAborted
from .message import Envelope

#: How often blocked receivers re-check the job abort flag (host seconds).
_POLL_INTERVAL = 0.05


class Mailbox:
    """Thread-safe matched queue of in-flight messages for one rank."""

    def __init__(self, rank: int, abort_event: threading.Event):
        self.rank = rank
        self._abort = abort_event
        self._cond = threading.Condition()
        self._queue: Deque[Envelope] = deque()
        #: total envelopes ever delivered; the watchdog uses this to
        #: distinguish deadlock from slow progress.
        self.delivered = 0

    def put(self, env: Envelope) -> None:
        with self._cond:
            self._queue.append(env)
            self.delivered += 1
            self._cond.notify_all()

    def _find(self, src: Optional[int], tag: Optional[int], context: int):
        for i, env in enumerate(self._queue):
            if env.matches(src, tag, context):
                return i
        return None

    def probe(self, src: Optional[int], tag: Optional[int], context: int):
        """Non-blocking match test; returns the envelope without removing."""
        with self._cond:
            i = self._find(src, tag, context)
            return None if i is None else self._queue[i]

    def take(
        self,
        src: Optional[int],
        tag: Optional[int],
        context: int,
        *,
        block: bool = True,
    ) -> Optional[Envelope]:
        """Remove and return the first matching envelope.

        Blocks until one arrives when ``block`` is true.  Raises
        :class:`SpmdAborted` if the job was cancelled while waiting.
        """
        with self._cond:
            while True:
                if self._abort.is_set():
                    raise SpmdAborted(
                        f"rank {self.rank}: job aborted while waiting for a message"
                    )
                i = self._find(src, tag, context)
                if i is not None:
                    env = self._queue[i]
                    del self._queue[i]
                    return env
                if not block:
                    return None
                self._cond.wait(timeout=_POLL_INTERVAL)

    def wake(self) -> None:
        """Wake any blocked waiters (used on abort)."""
        with self._cond:
            self._cond.notify_all()

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        with self._cond:
            return len(self._queue)
