"""Per-rank mailboxes: the synchronization core of the simulated runtime.

Each rank owns one :class:`Mailbox`.  Senders deposit envelopes; receivers
block until a matching envelope is available.  Matching follows MPI
non-overtaking order: among envelopes from the same (source, tag, context),
the earliest deposited one is matched first.

Mailbox waits poll an abort event so that when any rank raises, peers
blocked in communication are promptly woken with :class:`SpmdAborted`.

When a fault engine is installed (see :mod:`repro.mpi.faults`) the
mailbox grows two responsibilities:

- *bounded retry/backoff*: a blocked ``take`` waits the engine policy's
  timeout, re-requests a withheld envelope from the engine's ledger
  (receiver-driven retransmission), doubles the wait, and after
  ``max_retries`` attempts raises a structured
  :class:`~repro.mpi.errors.MessageLostError` instead of hanging into
  the 60 s job watchdog;
- *duplicate discard*: envelopes are tracked by sequence number and a
  re-delivery of an already-seen envelope (the ``dup`` fault) is
  dropped, preserving exactly-once matching.

Both are dormant on fault-free jobs — no seen-set is kept and waits
block indefinitely, exactly the pre-fault-layer behaviour.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Optional, Set, Tuple

from .errors import MessageLostError, SpmdAborted
from .message import Envelope

#: How often blocked receivers re-check the job abort flag (host seconds).
_POLL_INTERVAL = 0.05


class Mailbox:
    """Thread-safe matched queue of in-flight messages for one rank."""

    def __init__(self, rank: int, abort_event: threading.Event, engine=None):
        self.rank = rank
        self._abort = abort_event
        self._engine = engine
        self._cond = threading.Condition()
        self._queue: Deque[Envelope] = deque()
        #: total envelopes ever delivered; the watchdog uses this to
        #: distinguish deadlock from slow progress.
        self.delivered = 0
        #: sequence numbers already delivered (duplicate discard); only
        #: maintained when the fault plan can withhold or re-deliver
        #: messages, keeping the fault-free hot path allocation-free.
        self._seen: Optional[Set[int]] = (
            set() if engine is not None and engine.needs_dedup else None
        )
        #: (src, tag, context, host-monotonic start) of the receive this
        #: rank is currently blocked in, for watchdog diagnostics.
        self._waiting: Optional[Tuple[Optional[int], Optional[int], int, float]] = None

    def put(self, env: Envelope) -> None:
        with self._cond:
            if self._seen is not None:
                if env.seq in self._seen:
                    self._engine.note_duplicate(env)
                    return
                self._seen.add(env.seq)
            self._queue.append(env)
            self.delivered += 1
            self._cond.notify_all()

    def _find(self, src: Optional[int], tag: Optional[int], context: int):
        for i, env in enumerate(self._queue):
            if env.matches(src, tag, context):
                return i
        return None

    def probe(self, src: Optional[int], tag: Optional[int], context: int):
        """Non-blocking match test; returns the envelope without removing."""
        with self._cond:
            i = self._find(src, tag, context)
            return None if i is None else self._queue[i]

    def take(
        self,
        src: Optional[int],
        tag: Optional[int],
        context: int,
        *,
        block: bool = True,
        policy=None,
    ) -> Optional[Envelope]:
        """Remove and return the first matching envelope.

        Blocks until one arrives when ``block`` is true.  Raises
        :class:`SpmdAborted` if the job was cancelled while waiting.
        Under fault injection, waits follow the bounded retry/backoff
        schedule of ``policy`` (default: the engine's policy) and raise
        :class:`MessageLostError` once the budget is exhausted.
        """
        engine = self._engine
        if engine is not None and policy is None:
            policy = engine.policy
        attempt = 0
        started = time.monotonic()
        budget = policy.budget(1) if policy is not None else None
        try:
            while True:
                with self._cond:
                    if self._waiting is None and block:
                        self._waiting = (src, tag, context, started)
                    if self._abort.is_set():
                        raise SpmdAborted(
                            f"rank {self.rank}: job aborted while waiting "
                            f"for a message"
                        )
                    i = self._find(src, tag, context)
                    if i is not None:
                        env = self._queue[i]
                        del self._queue[i]
                        return env
                    if not block:
                        return None
                    self._cond.wait(timeout=_POLL_INTERVAL)
                    if engine is None:
                        continue
                    waited = time.monotonic() - started
                    if waited < budget:
                        continue
                # timed out: re-request outside the mailbox lock (the
                # engine must never be entered while a mailbox lock is
                # held by another path — see FaultEngine locking notes)
                attempt += 1
                if attempt > policy.max_retries:
                    raise MessageLostError(self.rank, src, tag, attempt - 1)
                recovered = engine.re_request(self.rank, src, tag, context)
                if recovered is not None:
                    self.put(recovered)
                started = time.monotonic()
                budget = policy.budget(attempt + 1)
        finally:
            with self._cond:
                self._waiting = None

    def wake(self) -> None:
        """Wake any blocked waiters (used on abort)."""
        with self._cond:
            self._cond.notify_all()

    def wait_state(self) -> Optional[str]:
        """Human-readable description of the receive this rank is
        blocked in, or ``None`` when it is not blocked (diagnostics)."""
        with self._cond:
            if self._waiting is None:
                return None
            src, tag, context, since = self._waiting
            fmt = lambda v: "ANY" if v is None or v < 0 else str(v)  # noqa: E731
            return (
                f"blocked in recv(src={fmt(src)}, tag={fmt(tag)}, "
                f"ctx={context}) for {time.monotonic() - since:.1f}s "
                f"({len(self._queue)} unmatched queued)"
            )

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        with self._cond:
            return len(self._queue)
