"""Collective algorithms, built on the point-to-point layer.

Implementing collectives over p2p (rather than as magic synchronization)
means virtual time *emerges* from the algorithmic structure: a binomial
bcast costs ~log2(p) message latencies on the critical path, a ring
allgather costs (p-1) bandwidth terms, exactly as the paper's complexity
analysis assumes (O(l + m*G) * log p for Bcast, Theta(l * log p) for the
scalar Allreduce, Theta(|X| * G) for the ring exchange).

Every rank of a communicator must enter each collective in the same
order; a per-communicator sequence number keyed into a reserved tag space
keeps concurrent collectives from cross-matching.

Floating-point determinism: reduction operands are always combined in a
fixed rank order, so results are bitwise identical run to run.

Fault behaviour: collective steps ride the same p2p paths as user
messages, so they inherit the fault layer transparently — a dropped
collective message is re-requested by the mailbox's retry/backoff loop,
and an unrecoverable loss surfaces as a structured
:class:`~repro.mpi.errors.MessageLostError` on the blocked rank (the
job watchdog then reports every other rank's blocked state via
:class:`~repro.mpi.errors.DeadlockError` diagnostics if they hang).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .reduceops import ReduceOp


def _combine(op: ReduceOp, lo: Any, hi: Any, arrays: bool) -> Any:
    """Combine with the lower-rank operand first (deterministic)."""
    if arrays:
        return op.combine_arrays(lo, hi)
    return op.combine(lo, hi)


def barrier_dissemination(comm) -> None:
    """Dissemination barrier: ceil(log2(p)) rounds."""
    p = comm.size
    if p == 1:
        comm._next_coll_tag()
        return
    tag = comm._next_coll_tag()
    rank = comm.rank
    dist = 1
    while dist < p:
        dest = (rank + dist) % p
        src = (rank - dist) % p
        comm._coll_send(None, dest, tag)
        comm._coll_recv(src, tag)
        dist <<= 1


def bcast_binomial(comm, obj: Any, root: int, typed: bool = False) -> Any:
    """Binomial-tree broadcast; returns the object on every rank."""
    p = comm.size
    tag = comm._next_coll_tag()
    if p == 1:
        return obj
    rank = comm.rank
    vrank = (rank - root) % p

    # receive phase: find the bit where this rank hangs off the tree
    mask = 1
    while mask < p:
        if vrank & mask:
            src = ((vrank ^ mask) + root) % p
            obj = comm._coll_recv(src, tag)
            break
        mask <<= 1
    # send phase: forward to children below the receive bit
    mask >>= 1
    while mask > 0:
        child = vrank | mask
        if child != vrank and child < p:
            comm._coll_send(obj, (child + root) % p, tag, typed=typed)
        mask >>= 1
    return obj


def reduce_binomial(
    comm,
    obj: Any,
    op: ReduceOp,
    root: int,
    arrays: bool = False,
    typed: bool = False,
) -> Optional[Any]:
    """Binomial-tree reduce; only ``root`` gets the result (others: None)."""
    p = comm.size
    tag = comm._next_coll_tag()
    if p == 1:
        return obj
    rank = comm.rank
    vrank = (rank - root) % p
    val = obj
    mask = 1
    while mask < p:
        if vrank & mask:
            dest = ((vrank ^ mask) + root) % p
            comm._coll_send(val, dest, tag, typed=typed)
            break
        partner = vrank | mask
        if partner < p:
            other = comm._coll_recv((partner + root) % p, tag)
            # partner has the higher virtual rank: combine (self, other)
            val = _combine(op, val, other, arrays)
        mask <<= 1
    return val if rank == root else None


def allreduce_recursive_doubling(
    comm, obj: Any, op: ReduceOp, arrays: bool = False, typed: bool = False
) -> Any:
    """Recursive-doubling allreduce with the standard non-power-of-2 fold.

    With ``typed=True`` the operands travel as raw numpy buffers (the
    communicator's typed envelope path) instead of pickled objects —
    same reduction tree, same low-rank-first combine order, smaller and
    cheaper messages.  The caller must pass numpy arrays and an op whose
    array path accepts them.
    """
    p = comm.size
    tag = comm._next_coll_tag()
    if p == 1:
        return obj
    rank = comm.rank
    val = obj

    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    rem = p - pof2

    # pre-fold: the first 2*rem ranks pair up, evens donate to odds
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm._coll_send(val, rank + 1, tag, typed=typed)
            newrank = -1
        else:
            other = comm._coll_recv(rank - 1, tag)
            val = _combine(op, other, val, arrays)  # lower rank first
            newrank = rank // 2
    else:
        newrank = rank - rem

    def real_of(nr: int) -> int:
        return nr * 2 + 1 if nr < rem else nr + rem

    if newrank >= 0:
        mask = 1
        while mask < pof2:
            partner = newrank ^ mask
            peer = real_of(partner)
            comm._coll_send(val, peer, tag, typed=typed)
            other = comm._coll_recv(peer, tag)
            if newrank < partner:
                val = _combine(op, val, other, arrays)
            else:
                val = _combine(op, other, val, arrays)
            mask <<= 1

    # post-fold: odds return the result to their even partner
    if rank < 2 * rem:
        if rank % 2 == 1:
            comm._coll_send(val, rank - 1, tag, typed=typed)
        else:
            val = comm._coll_recv(rank + 1, tag)
    return val


def gather_flat(comm, obj: Any, root: int) -> Optional[List[Any]]:
    """Linear gather: fine for small payloads and modest p."""
    p = comm.size
    tag = comm._next_coll_tag()
    rank = comm.rank
    if rank == root:
        out: List[Any] = [None] * p
        out[root] = obj
        for src in range(p):
            if src != root:
                out[src] = comm._coll_recv(src, tag)
        return out
    comm._coll_send(obj, root, tag)
    return None


def allgather_ring(comm, obj: Any) -> List[Any]:
    """Ring allgather: p-1 steps, each forwarding the previous block."""
    p = comm.size
    tag = comm._next_coll_tag()
    rank = comm.rank
    out: List[Any] = [None] * p
    out[rank] = obj
    cur = obj
    right = (rank + 1) % p
    left = (rank - 1) % p
    for step in range(1, p):
        comm._coll_send(cur, right, tag)
        cur = comm._coll_recv(left, tag)
        out[(rank - step) % p] = cur
    return out


def scatter_flat(comm, objs: Optional[Sequence[Any]], root: int) -> Any:
    p = comm.size
    tag = comm._next_coll_tag()
    rank = comm.rank
    if rank == root:
        if objs is None or len(objs) != p:
            from .errors import CommError

            raise CommError(
                f"scatter at root requires a sequence of exactly {p} items"
            )
        for dest in range(p):
            if dest != root:
                comm._coll_send(objs[dest], dest, tag)
        return objs[root]
    return comm._coll_recv(root, tag)


def scan_linear(comm, obj: Any, op: ReduceOp, arrays: bool = False) -> Any:
    """Inclusive prefix reduction: rank r gets op(x_0, ..., x_r).

    Linear chain (rank r−1 -> rank r): log-depth scans exist, but the
    chain keeps the deterministic low-to-high combine order.
    """
    p = comm.size
    tag = comm._next_coll_tag()
    rank = comm.rank
    val = obj
    if rank > 0:
        prefix = comm._coll_recv(rank - 1, tag)
        val = _combine(op, prefix, val, arrays)
    if rank < p - 1:
        comm._coll_send(val, rank + 1, tag)
    return val


def exscan_linear(comm, obj: Any, op: ReduceOp, arrays: bool = False) -> Any:
    """Exclusive prefix reduction: rank r gets op(x_0, ..., x_{r-1});
    rank 0 gets ``None`` (mirroring MPI_Exscan's undefined rank-0)."""
    p = comm.size
    tag = comm._next_coll_tag()
    rank = comm.rank
    prefix = None
    if rank > 0:
        prefix = comm._coll_recv(rank - 1, tag)
    if rank < p - 1:
        inclusive = (
            obj if prefix is None else _combine(op, prefix, obj, arrays)
        )
        comm._coll_send(inclusive, rank + 1, tag)
    return prefix


def reduce_scatter_block(
    comm, objs: Sequence[Any], op: ReduceOp, arrays: bool = False
) -> Any:
    """Reduce element i over all ranks, deliver result i to rank i.

    Implemented as pairwise exchange + local combine (each rank sends
    its contribution for slot j directly to rank j), the standard
    latency-optimal layout for short vectors.
    """
    p = comm.size
    tag = comm._next_coll_tag()
    rank = comm.rank
    if len(objs) != p:
        from .errors import CommError

        raise CommError(
            f"reduce_scatter requires exactly {p} items, got {len(objs)}"
        )
    acc = objs[rank]
    # gather contributions for my slot while sending mine out, in a
    # fixed source order for float determinism
    incoming: List[Any] = [None] * p
    incoming[rank] = acc
    for step in range(1, p):
        dest = (rank + step) % p
        src = (rank - step) % p
        comm._coll_send(objs[dest], dest, tag)
        incoming[src] = comm._coll_recv(src, tag)
    out = incoming[0]
    for s in range(1, p):
        out = _combine(op, out, incoming[s], arrays)
    return out


def alltoall_pairwise(comm, objs: Sequence[Any]) -> List[Any]:
    p = comm.size
    tag = comm._next_coll_tag()
    rank = comm.rank
    if len(objs) != p:
        from .errors import CommError

        raise CommError(f"alltoall requires exactly {p} items, got {len(objs)}")
    out: List[Any] = [None] * p
    out[rank] = objs[rank]
    for step in range(1, p):
        dest = (rank + step) % p
        src = (rank - step) % p
        comm._coll_send(objs[dest], dest, tag)
        out[src] = comm._coll_recv(src, tag)
    return out
