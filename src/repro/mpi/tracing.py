"""Optional communication/computation event tracing.

When enabled on the runtime, every point-to-point completion, collective
and compute charge appends one :class:`TraceEvent`.  Traces feed the
performance analysis in :mod:`repro.perfmodel` and are handy in tests to
assert that an algorithm used the expected communication structure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced event on one rank."""

    rank: int
    kind: str  # "send" | "recv" | "collective" | "compute" | "fault"
    op: str  # e.g. "Send", "Allreduce", "kernel_eval"; for kind
    #: "fault": the fault kind fired ("drop", "delay", ...) or the
    #: recovery action ("retransmit", "dup_discard")
    peer: int  # peer rank for p2p, -1 otherwise
    nbytes: int
    t_start: float  # virtual seconds
    t_end: float


class Tracer:
    """Thread-safe append-only event log shared by all ranks of a job."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []

    def record(
        self,
        rank: int,
        kind: str,
        op: str,
        peer: int,
        nbytes: int,
        t_start: float,
        t_end: float,
    ) -> None:
        if not self.enabled:
            return
        ev = TraceEvent(rank, kind, op, peer, nbytes, t_start, t_end)
        with self._lock:
            self._events.append(ev)

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def events_for(self, rank: int) -> List[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def count(self, op: Optional[str] = None, kind: Optional[str] = None) -> int:
        return sum(
            1
            for e in self.events
            if (op is None or e.op == op) and (kind is None or e.kind == kind)
        )

    def total_bytes(self, kind: str = "send") -> int:
        return sum(e.nbytes for e in self.events if e.kind == kind)

    def collective_bytes(self) -> "dict[str, int]":
        """Exact wire bytes per collective operation, summed over ranks.

        Each collective event carries the *delta* of the rank's
        bytes-sent counter across the call, so these totals are the
        honest per-algorithm wire volume (framed/typed payload sizes,
        not pickled-object estimates) with no double counting against
        the underlying send events.
        """
        out: dict = {}
        for e in self.events:
            if e.kind == "collective":
                out[e.op] = out.get(e.op, 0) + e.nbytes
        return out

    def summary(self) -> str:
        """Per-operation aggregate table: count, bytes, virtual seconds."""
        agg: dict = {}
        for e in self.events:
            key = (e.kind, e.op)
            cnt, nbytes, secs = agg.get(key, (0, 0, 0.0))
            agg[key] = (cnt + 1, nbytes + e.nbytes, secs + (e.t_end - e.t_start))
        lines = [
            f"{'kind':>12} {'op':>12} {'count':>8} {'MB':>10} {'vtime(s)':>11}"
        ]
        for (kind, op), (cnt, nbytes, secs) in sorted(agg.items()):
            lines.append(
                f"{kind:>12} {op:>12} {cnt:>8} {nbytes / 1e6:>10.3f} "
                f"{secs:>11.6f}"
            )
        return "\n".join(lines)
