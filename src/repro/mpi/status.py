"""Receive status objects, mirroring ``MPI_Status``."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Status:
    """Outcome of a completed receive."""

    source: int = -1
    tag: int = -1
    count: int = 0  # elements for typed receives, bytes for object receives
    nbytes: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> int:
        return self.count
