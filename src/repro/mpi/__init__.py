"""``repro.mpi`` — an in-process MPI-like SPMD runtime with virtual time.

This package stands in for MPI + mpi4py on the paper's cluster (see
DESIGN.md §2): ranks run as threads inside one process, point-to-point
messages rendezvous through per-rank mailboxes, and collectives are built
from point-to-point using the textbook algorithms (binomial tree,
recursive doubling, ring, dissemination).  Per-rank virtual clocks track
the time the job would take on a modeled machine
(:class:`repro.perfmodel.MachineSpec`).

Quick example::

    from repro.mpi import run_spmd

    def hello(comm):
        token = comm.allreduce(comm.rank)      # sum of ranks
        return (comm.rank, token)

    result = run_spmd(hello, nprocs=4)
    assert [r[1] for r in result.results] == [6, 6, 6, 6]
"""

from .clock import ClockStats, VirtualClock
from .communicator import IN_PLACE, Comm
from .datatypes import ANY_SOURCE, ANY_TAG, TAG_UB
from .errors import (
    CommError,
    CorruptMessageError,
    DeadlockError,
    FaultInjectionError,
    InjectedFault,
    MessageLostError,
    MpiError,
    RankError,
    RingRecoveryError,
    SpmdAborted,
    SpmdJobError,
    TruncationError,
)
from .faults import Fault, FaultEngine, FaultPlan, RetryPolicy
from .reduceops import (
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
    ReduceOp,
)
from .request import Request
from .runtime import RankStats, SpmdResult, SpmdRuntime, run_spmd
from .status import Status
from .topology import (
    COMM_ENV,
    COMMUNICATORS,
    FlatCollectives,
    HierarchicalCollectives,
    create_communicator,
    resolve_comm,
)
from .tracing import TraceEvent, Tracer

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOR",
    "COMM_ENV",
    "COMMUNICATORS",
    "ClockStats",
    "Comm",
    "CommError",
    "CorruptMessageError",
    "DeadlockError",
    "Fault",
    "FaultEngine",
    "FaultInjectionError",
    "FaultPlan",
    "FlatCollectives",
    "HierarchicalCollectives",
    "IN_PLACE",
    "InjectedFault",
    "LAND",
    "LOR",
    "MAX",
    "MAXLOC",
    "MessageLostError",
    "MIN",
    "MINLOC",
    "MpiError",
    "PROD",
    "RankError",
    "RankStats",
    "RetryPolicy",
    "RingRecoveryError",
    "ReduceOp",
    "Request",
    "SpmdAborted",
    "SpmdJobError",
    "SpmdResult",
    "SpmdRuntime",
    "Status",
    "SUM",
    "TAG_UB",
    "TraceEvent",
    "Tracer",
    "TruncationError",
    "VirtualClock",
    "create_communicator",
    "resolve_comm",
    "run_spmd",
]
