"""Topology-aware collective suites and the communicator registry.

A *collective suite* is the pluggable object behind a
:class:`~repro.mpi.communicator.Comm`'s collective entry points.  The
registry maps a name to a suite, mirroring chainermn's
``create_communicator(name)`` dispatch:

- ``"flat"`` (default): the textbook single-level algorithms of
  :mod:`repro.mpi.collectives` — binomial trees, recursive doubling
  and rings over the whole communicator, oblivious to node placement.
- ``"hierarchical"``: two-level variants exploiting the machine's node
  geometry (:attr:`MachineSpec.node_size` block placement).  Allreduce
  runs intra-node reduce → inter-node recursive doubling over one
  leader per node → intra-node broadcast; bcast and allgather and the
  barrier follow the same leader pattern.  The remaining collectives
  (gather, scatter, scan, exscan, reduce-scatter, alltoall) delegate
  to the flat algorithms.

Selection: an explicit name beats the ``REPRO_SVM_COMM`` environment
variable beats ``"flat"`` — the same resolution idiom as
``REPRO_SVM_ENGINE``.

Determinism: the hierarchical algorithms combine reduction operands in
exactly the binomial/recursive-doubling order of the flat suite.  For
the power-of-two contiguous layouts the solver's bitwise-identity tests
pin, the two suites produce *bitwise identical* reductions (the combine
tree is the same); on a machine without a described hierarchy — or a
communicator that fits on one node — the hierarchical suite delegates
to the flat algorithms outright, so results are trivially identical.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

from . import collectives as _coll
from .reduceops import MIN, ReduceOp

#: environment override for the collective suite ("flat" / "hierarchical")
COMM_ENV = "REPRO_SVM_COMM"


def node_layout(comm) -> Tuple[List[List[int]], List[int], List[int]]:
    """Node structure of a communicator, in local-rank terms.

    Returns ``(members_by_node, leaders, node_idx_by_rank)`` where
    ``members_by_node[n]`` lists the local ranks placed on the n-th
    occupied node (ascending), ``leaders[n]`` is that node's lowest
    local rank, and ``node_idx_by_rank[r]`` maps a local rank to its
    node's index.  Placement follows the machine's block layout over
    *global* ranks, so a Split sub-communicator keeps its physical
    node structure.  Cached on the communicator (the group is
    immutable).
    """
    cached = getattr(comm, "_node_layout_cache", None)
    if cached is not None:
        return cached
    m = comm.machine
    by_node: dict = {}
    for lr in range(comm.size):
        by_node.setdefault(m.node_of(comm._group[lr]), []).append(lr)
    members_by_node = [by_node[nid] for nid in sorted(by_node)]
    leaders = [mem[0] for mem in members_by_node]
    node_idx_by_rank = [0] * comm.size
    for ni, mem in enumerate(members_by_node):
        for lr in mem:
            node_idx_by_rank[lr] = ni
    layout = (members_by_node, leaders, node_idx_by_rank)
    comm._node_layout_cache = layout
    return layout


class _SubView:
    """A rank-remapped window onto a communicator.

    Presents an ordered subset of a communicator's ranks as a
    self-contained communicator for the flat algorithms: virtual rank
    i is ``members[i]``, and every collective phase runs under one
    pre-allocated tag (phases are sequential per rank, and each
    directed edge carries at most one message per phase, so a single
    tag cannot cross-match).
    """

    __slots__ = ("_comm", "_members", "_tag", "rank", "size")

    def __init__(self, comm, members: Sequence[int], tag: int):
        self._comm = comm
        self._members = members
        self._tag = tag
        self.rank = members.index(comm.rank)
        self.size = len(members)

    def _next_coll_tag(self) -> int:
        return self._tag

    def _coll_send(self, obj: Any, dest: int, tag: int, typed: bool = False) -> None:
        self._comm._coll_send(obj, self._members[dest], tag, typed=typed)

    def _coll_recv(self, source: int, tag: int) -> Any:
        return self._comm._coll_recv(self._members[source], tag)


class FlatCollectives:
    """The single-level textbook algorithms (historical default)."""

    name = "flat"

    def barrier(self, comm) -> None:
        _coll.barrier_dissemination(comm)

    def bcast(self, comm, obj: Any, root: int) -> Any:
        return _coll.bcast_binomial(comm, obj, root)

    def reduce(
        self, comm, obj: Any, op: ReduceOp, root: int, arrays: bool = False
    ) -> Any:
        return _coll.reduce_binomial(comm, obj, op, root, arrays)

    def allreduce(
        self,
        comm,
        obj: Any,
        op: ReduceOp,
        arrays: bool = False,
        typed: bool = False,
    ) -> Any:
        return _coll.allreduce_recursive_doubling(comm, obj, op, arrays, typed)

    def allgather(self, comm, obj: Any) -> List[Any]:
        return _coll.allgather_ring(comm, obj)

    def gather(self, comm, obj: Any, root: int) -> Optional[List[Any]]:
        return _coll.gather_flat(comm, obj, root)

    def scatter(self, comm, objs: Optional[Sequence[Any]], root: int) -> Any:
        return _coll.scatter_flat(comm, objs, root)

    def alltoall(self, comm, objs: Sequence[Any]) -> List[Any]:
        return _coll.alltoall_pairwise(comm, objs)

    def scan(self, comm, obj: Any, op: ReduceOp) -> Any:
        return _coll.scan_linear(comm, obj, op)

    def exscan(self, comm, obj: Any, op: ReduceOp) -> Any:
        return _coll.exscan_linear(comm, obj, op)

    def reduce_scatter(self, comm, objs: Sequence[Any], op: ReduceOp) -> Any:
        return _coll.reduce_scatter_block(comm, objs, op)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class HierarchicalCollectives(FlatCollectives):
    """Two-level collectives: intra-node phase, leader phase, fan-out.

    Every hierarchical collective allocates its phase tags on *all*
    ranks (three ``_next_coll_tag`` calls), keeping the communicator's
    tag sequence aligned across ranks regardless of each rank's role.
    """

    name = "hierarchical"

    @staticmethod
    def _two_level(comm):
        """``(members_of_my_node, leaders, node_idx)`` when a two-level
        schedule applies, else ``None`` (delegate to flat)."""
        members, leaders, node_idx = node_layout(comm)
        if len(leaders) <= 1 or len(leaders) == comm.size:
            return None
        return members, leaders, node_idx

    def barrier(self, comm) -> None:
        lay = self._two_level(comm)
        if lay is None:
            _coll.barrier_dissemination(comm)
            return
        members, leaders, node_idx = lay
        t_up = comm._next_coll_tag()
        t_x = comm._next_coll_tag()
        t_dn = comm._next_coll_tag()
        mine = members[node_idx[comm.rank]]
        if len(mine) > 1:
            _coll.reduce_binomial(_SubView(comm, mine, t_up), 0, MIN, 0)
        if comm.rank == mine[0]:
            _coll.barrier_dissemination(_SubView(comm, leaders, t_x))
        if len(mine) > 1:
            _coll.bcast_binomial(_SubView(comm, mine, t_dn), None, 0)

    def bcast(self, comm, obj: Any, root: int) -> Any:
        lay = self._two_level(comm)
        if lay is None:
            return _coll.bcast_binomial(comm, obj, root)
        members, leaders, node_idx = lay
        t_hop = comm._next_coll_tag()
        t_x = comm._next_coll_tag()
        t_dn = comm._next_coll_tag()
        mine = members[node_idx[comm.rank]]
        root_leader = members[node_idx[root]][0]
        if root != root_leader:
            # the root is not its node's leader: one intra-node hop
            if comm.rank == root:
                comm._coll_send(obj, root_leader, t_hop)
            elif comm.rank == root_leader:
                obj = comm._coll_recv(root, t_hop)
        if comm.rank == mine[0]:
            obj = _coll.bcast_binomial(
                _SubView(comm, leaders, t_x), obj, leaders.index(root_leader)
            )
        if len(mine) > 1:
            obj = _coll.bcast_binomial(_SubView(comm, mine, t_dn), obj, 0)
        return obj

    def allreduce(
        self,
        comm,
        obj: Any,
        op: ReduceOp,
        arrays: bool = False,
        typed: bool = False,
    ) -> Any:
        lay = self._two_level(comm)
        if lay is None:
            return _coll.allreduce_recursive_doubling(comm, obj, op, arrays, typed)
        members, leaders, node_idx = lay
        t_up = comm._next_coll_tag()
        t_x = comm._next_coll_tag()
        t_dn = comm._next_coll_tag()
        mine = members[node_idx[comm.rank]]
        val = obj
        if len(mine) > 1:
            # intra-node binomial reduce to the node leader; combine
            # order matches the first log2(k) recursive-doubling rounds
            val = _coll.reduce_binomial(
                _SubView(comm, mine, t_up), val, op, 0, arrays, typed=typed
            )
        if comm.rank == mine[0]:
            val = _coll.allreduce_recursive_doubling(
                _SubView(comm, leaders, t_x), val, op, arrays, typed
            )
        if len(mine) > 1:
            val = _coll.bcast_binomial(_SubView(comm, mine, t_dn), val, 0, typed=typed)
        return val

    def allgather(self, comm, obj: Any) -> List[Any]:
        lay = self._two_level(comm)
        if lay is None:
            return _coll.allgather_ring(comm, obj)
        members, leaders, node_idx = lay
        t_up = comm._next_coll_tag()
        t_x = comm._next_coll_tag()
        t_dn = comm._next_coll_tag()
        mine = members[node_idx[comm.rank]]
        part: Optional[List[Any]] = [obj]
        if len(mine) > 1:
            part = _coll.gather_flat(_SubView(comm, mine, t_up), obj, 0)
        out: Optional[List[Any]] = None
        if comm.rank == mine[0]:
            per_node = _coll.allgather_ring(_SubView(comm, leaders, t_x), part)
            out = [None] * comm.size
            for ni, items in enumerate(per_node):
                for pos, lr in enumerate(members[ni]):
                    out[lr] = items[pos]
        if len(mine) > 1:
            out = _coll.bcast_binomial(_SubView(comm, mine, t_dn), out, 0)
        return out


def carve(comm, members: Sequence[int]):
    """A full sub-communicator over ``members``, carved without traffic.

    Promotes the :class:`_SubView` rank-remapping idiom — virtual rank
    ``i`` is ``members[i]`` — from a per-collective window to a real
    :class:`~repro.mpi.communicator.Comm` with its own context, so the
    whole solver stack (point-to-point, collectives under either suite,
    fault injection, tag sequencing) runs unchanged inside the carved
    group.  Unlike ``Comm.Split`` there is no allgather: every member
    is required to compute the *same* ``members`` list redundantly
    (the SPMD idiom the DC outer loop uses), and the runtime's
    deterministic context allocation keyed on ``(parent ctx, group)``
    guarantees all members agree on the new context id.

    Returns ``None`` on ranks outside ``members``.
    """
    members = tuple(members)
    if len(members) == 0:
        raise ValueError("cannot carve an empty communicator")
    if len(set(members)) != len(members):
        raise ValueError(f"duplicate ranks in carve group {members}")
    for r in members:
        if not 0 <= r < comm.size:
            raise ValueError(
                f"rank {r} out of range for communicator of size {comm.size}"
            )
    if comm.rank not in members:
        return None
    from .communicator import Comm  # local import: topology <- communicator

    group = tuple(comm._global(r) for r in members)
    ctx = comm._runtime.allocate_context(("carve", comm._context, group))
    return Comm(comm._runtime, group, members.index(comm.rank), ctx)


#: the ``create_communicator(name)`` registry
COMMUNICATORS = {
    "flat": FlatCollectives,
    "hierarchical": HierarchicalCollectives,
}


def resolve_comm(name: Optional[str] = None) -> str:
    """Pick the collective suite: explicit arg > env var > "flat"."""
    if name is None:
        name = os.environ.get(COMM_ENV) or "flat"
    if name not in COMMUNICATORS:
        raise ValueError(
            f"unknown communicator {name!r}; expected one of "
            f"{sorted(COMMUNICATORS)}"
        )
    return name


def create_communicator(name: Optional[str] = None):
    """Instantiate a collective suite by registry name.

    ``None`` defers to the ``REPRO_SVM_COMM`` environment variable and
    then the flat default, mirroring the iteration-engine idiom.
    """
    return COMMUNICATORS[resolve_comm(name)]()
