"""Per-rank virtual clocks and communication statistics.

Each simulated rank owns a :class:`VirtualClock`.  Compute is charged
explicitly by the application (via :meth:`VirtualClock.advance`); the
point-to-point layer stamps messages with the sender's departure time and
the receiver synchronizes to ``max(own, depart + latency + nbytes * G)``.
Because ranks only interact through message passing, this is a conservative
parallel-discrete-event simulation: virtual times are exact for the modeled
machine regardless of host thread scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ClockStats:
    """Aggregate counters maintained alongside the virtual time."""

    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    idle_seconds: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def merge(self, other: "ClockStats") -> None:
        self.compute_seconds += other.compute_seconds
        self.comm_seconds += other.comm_seconds
        self.idle_seconds += other.idle_seconds
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received


@dataclass
class VirtualClock:
    """Monotonic per-rank virtual time in seconds."""

    now: float = 0.0
    stats: ClockStats = field(default_factory=ClockStats)

    def advance(self, seconds: float, *, kind: str = "compute") -> float:
        """Advance the clock by ``seconds`` and return the new time.

        ``kind`` selects which statistic bucket accumulates the interval:
        ``"compute"``, ``"comm"`` or ``"idle"``.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self.now += seconds
        if kind == "compute":
            self.stats.compute_seconds += seconds
        elif kind == "comm":
            self.stats.comm_seconds += seconds
        elif kind == "idle":
            self.stats.idle_seconds += seconds
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown clock interval kind {kind!r}")
        return self.now

    def sync_to(self, t: float, *, kind: str = "comm") -> float:
        """Move the clock forward to ``t`` if ``t`` is in the future.

        Used when a receive completes: the receiver may have been idle
        waiting for data that departed later than its own clock.
        """
        if t > self.now:
            self.advance(t - self.now, kind=kind)
        return self.now

    def record_send(self, nbytes: int) -> None:
        self.stats.messages_sent += 1
        self.stats.bytes_sent += int(nbytes)

    def record_recv(self, nbytes: int) -> None:
        self.stats.messages_received += 1
        self.stats.bytes_received += int(nbytes)
