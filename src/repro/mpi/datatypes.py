"""Buffer handling for the typed (upper-case) communication API.

The simulated runtime accepts the same buffer specifications as mpi4py's
upper-case methods: a contiguous numpy array, or a ``(array, count)`` /
``(array, count, datatype)`` tuple.  Datatypes are numpy dtypes; automatic
discovery reads them off the array.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .errors import CommError

#: Wildcards, mirroring MPI constants.
ANY_SOURCE: int = -1
ANY_TAG: int = -1

#: Upper bound for user tags (inclusive).  Mirrors a typical MPI_TAG_UB.
TAG_UB: int = 2**20


def check_tag(tag: int, *, allow_any: bool = False) -> int:
    if tag == ANY_TAG:
        if allow_any:
            return tag
        raise CommError("ANY_TAG is only valid on receive operations")
    if not 0 <= tag <= TAG_UB:
        raise CommError(f"tag {tag} outside valid range [0, {TAG_UB}]")
    return tag


def as_array(buf: Any) -> np.ndarray:
    """Resolve a buffer spec to a contiguous 1-D numpy view.

    Accepts an ndarray or an ``(array,)`` / ``(array, count)`` tuple/list.
    The returned view aliases the caller's memory so receives fill it
    in place.
    """
    count = None
    if isinstance(buf, (tuple, list)):
        if len(buf) == 1:
            (buf,) = buf
        elif len(buf) == 2:
            buf, count = buf
        else:
            raise CommError(
                f"buffer spec must be array or (array, count); got {len(buf)} items"
            )
    arr = np.asarray(buf)
    if arr.dtype == object:
        raise CommError("typed communication requires a non-object dtype")
    if not arr.flags.c_contiguous:
        raise CommError("typed communication requires a C-contiguous buffer")
    flat = arr.reshape(-1)
    if count is not None:
        count = int(count)
        if count < 0 or count > flat.size:
            raise CommError(
                f"count {count} invalid for buffer of {flat.size} elements"
            )
        flat = flat[:count]
    return flat


def nbytes_of(arr: np.ndarray) -> int:
    return int(arr.size) * int(arr.dtype.itemsize)


def object_nbytes(payload: bytes) -> int:
    """Size accounting for pickled-object messages."""
    return len(payload)
