"""In-flight message representation.

A message carries either a contiguous numpy payload (typed path — the
payload is a private copy taken at send time, matching MPI's buffered
eager protocol) or a pickled Python object.  Messages are stamped with
the sender's virtual departure time; the receiver uses it to compute
the modeled arrival time.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

_seq = itertools.count()


def next_seq() -> int:
    """A fresh globally-unique message sequence number.

    Used by the fault engine when it forges a tampered copy of an
    envelope: the copy needs its own identity so that the receiver's
    duplicate-discard layer does not confuse the later retransmission
    of the pristine original with a duplicate delivery.
    """
    return next(_seq)


@dataclass
class Envelope:
    """One message travelling between two ranks of a communicator."""

    src: int
    dest: int
    tag: int
    context: int  # communicator context id: isolates comms from each other
    payload: Any  # np.ndarray copy (typed) or bytes (frame / pickled object)
    typed: bool
    nbytes: int
    depart_time: float
    seq: int = field(default_factory=lambda: next(_seq))
    #: payload is a typed wire frame (see :mod:`repro.mpi.frames`) —
    #: bytes on the wire like a pickled object, but self-describing,
    #: CRC-protected and pickle-free
    frame: bool = False

    @classmethod
    def from_array(
        cls,
        src: int,
        dest: int,
        tag: int,
        context: int,
        arr: np.ndarray,
        depart_time: float,
    ) -> "Envelope":
        copy = np.array(arr, copy=True)  # snapshot: sender may reuse buffer
        return cls(
            src=src,
            dest=dest,
            tag=tag,
            context=context,
            payload=copy,
            typed=True,
            nbytes=int(copy.size) * int(copy.dtype.itemsize),
            depart_time=depart_time,
        )

    @classmethod
    def from_object(
        cls,
        src: int,
        dest: int,
        tag: int,
        context: int,
        obj: Any,
        depart_time: float,
    ) -> "Envelope":
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(
            src=src,
            dest=dest,
            tag=tag,
            context=context,
            payload=blob,
            typed=False,
            nbytes=len(blob),
            depart_time=depart_time,
        )

    @classmethod
    def from_frame(
        cls,
        src: int,
        dest: int,
        tag: int,
        context: int,
        blob: bytes,
        depart_time: float,
    ) -> "Envelope":
        return cls(
            src=src,
            dest=dest,
            tag=tag,
            context=context,
            payload=blob,
            typed=False,
            nbytes=len(blob),
            depart_time=depart_time,
            frame=True,
        )

    def unpickle(self) -> Any:
        assert not self.typed
        try:
            return pickle.loads(self.payload)
        except Exception as exc:
            from .errors import CorruptMessageError

            raise CorruptMessageError(
                f"payload from rank {self.src} (tag {self.tag}, "
                f"{self.nbytes} bytes) failed to deserialize: {exc}"
            ) from exc

    def decode(self) -> Any:
        """The carried object: typed payloads come back as the array,
        frames are decoded (CRC-checked — raises
        :class:`~repro.mpi.errors.CorruptMessageError` on a tampered
        frame), pickled payloads are unpickled."""
        if self.typed:
            return self.payload
        if self.frame:
            from . import frames

            return frames.decode(self.payload)
        return self.unpickle()

    def matches(self, src: Optional[int], tag: Optional[int], context: int) -> bool:
        """MPI matching rule with wildcard support (-1 = any)."""
        if self.context != context:
            return False
        if src is not None and src >= 0 and self.src != src:
            return False
        if tag is not None and tag >= 0 and self.tag != tag:
            return False
        return True
