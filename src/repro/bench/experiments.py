"""Canonical experiment definitions — one per table/figure of §V.

Both the ``benchmarks/`` targets and the EXPERIMENTS.md generator pull
from this registry so the reported numbers always come from the same
code path.  Every experiment returns ``(report_text, payload)`` where
the payload carries the raw numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import RunConfig
from ..core import HEURISTICS, SVMParams, fit_parallel, solve_libsvm_style
from ..data import get_entry, load_dataset
from ..kernels import RBFKernel
from ..perfmodel import MachineSpec
from . import report
from .harness import run_accuracy_experiment, run_speedup_experiment

#: per-figure process sweeps (the paper's x axes)
FIGURE_PROCS: Dict[str, List[int]] = {
    "fig3": [256, 512, 1024, 2048, 4096],
    "fig4": [16, 64, 256, 1024, 4096],
    "fig5": [16, 64, 256, 1024],
    "fig6": [16, 64, 128, 256, 512],
    "fig7": [16, 64, 128, 256],
}

FIGURE_DATASET: Dict[str, str] = {
    "fig3": "higgs",
    "fig4": "url",
    "fig5": "forest",
    "fig6": "mnist",
    "fig7": "real-sim",
}

TABLE4_PROCS: Dict[str, int] = {
    "a9a": 16,
    "rcv1": 64,
    "usps": 4,
    "mushrooms": 4,
    "w7a": 16,
}


def run_figure(fig: str, *, machine: Optional[MachineSpec] = None) -> Tuple[str, dict]:
    """Figures 3-7: speedup-vs-procs for Default / best / worst shrinking."""
    if fig not in FIGURE_DATASET:
        raise ValueError(f"unknown figure {fig!r}; choose from {sorted(FIGURE_DATASET)}")
    dataset = FIGURE_DATASET[fig]
    res = run_speedup_experiment(dataset, FIGURE_PROCS[fig], machine=machine)
    reference = "original" if fig == "fig3" else "libsvm-enhanced"
    text = report.figure_speedup_table(
        res,
        reference=reference,
        title=f"{fig.upper()} — {dataset} speedup "
        f"({'vs Default (libsvm could not finish in 2 days)' if fig == 'fig3' else 'vs libsvm-enhanced'})",
    )
    if fig == "fig3":
        # the paper quotes both; append the libsvm-reference view as context
        text += "\n\n" + report.figure_speedup_table(
            res, reference="libsvm-enhanced",
            title="(context) same runs vs modeled libsvm-enhanced",
        )
    text += "\n" + report.active_set_summary(res, "multi5pc")
    payload = {
        "result": res,
        "speedups_vs_original": {
            h: r.speedups_vs_original for h, r in res.runs.items()
        },
        "speedups_vs_enh": {h: r.speedups_enh for h, r in res.runs.items()},
    }
    return text, payload


def run_fig8(*, machine: Optional[MachineSpec] = None) -> Tuple[str, dict]:
    """Figure 8: reconstruction-time fraction for the large datasets."""
    results = {}
    for fig in ("fig3", "fig4", "fig5", "fig7"):  # higgs, url, forest, real-sim
        ds = FIGURE_DATASET[fig]
        results[ds] = run_speedup_experiment(
            ds, FIGURE_PROCS[fig], heuristics=("multi5pc",), machine=machine
        )
    text = report.recon_fraction_table(results, heuristic="multi5pc")
    fracs = {
        name: res.runs["multi5pc"].recon_fractions for name, res in results.items()
    }
    return text, {"results": results, "fractions": fracs}


def run_table2(
    dataset: str = "mnist", *, machine: Optional[MachineSpec] = None,
    nprocs: int = 2,
) -> Tuple[str, dict]:
    """All 13 Table II heuristics on one dataset: iterations, shrink
    volume, reconstructions, virtual time, accuracy parity."""
    entry = get_entry(dataset)
    data = load_dataset(dataset)
    machine = machine or MachineSpec.cascade()
    params = SVMParams(
        C=entry.C, kernel=RBFKernel(entry.gamma), eps=1e-3, max_iter=2_000_000
    )
    run_cfg = RunConfig(heuristic="original", nprocs=nprocs, machine=machine)
    reference = fit_parallel(
        data.X_train, data.y_train, params, config=run_cfg
    )
    rows = []
    for name, heur in HEURISTICS.items():
        fr = (
            reference
            if name == "original"
            else fit_parallel(
                data.X_train, data.y_train, params,
                config=run_cfg.replace(heuristic=name),
            )
        )
        acc_ok = bool(
            np.allclose(fr.alpha, reference.alpha, atol=1e-2 * params.C)
            and abs(fr.model.beta - reference.model.beta) < 50 * params.eps
        )
        rows.append(
            {
                "name": name,
                "class": heur.klass,
                "iterations": fr.iterations,
                "recons": fr.trace.n_reconstructions(),
                "shrunk": fr.trace.total_shrunk(),
                "vtime_ms": fr.vtime * 1e3,
                "speedup": reference.vtime / fr.vtime if fr.vtime > 0 else None,
                "accuracy_ok": acc_ok,
            }
        )
    text = f"dataset={dataset} (n={data.n_train}, nprocs={nprocs})\n"
    text += report.heuristics_table(rows)
    return text, {"rows": rows, "reference": reference}


def run_table4(*, machine: Optional[MachineSpec] = None) -> Tuple[str, dict]:
    """Table IV: speedups vs libsvm-sequential on the small datasets."""
    rows = []
    results = {}
    for dataset, procs in TABLE4_PROCS.items():
        entry = get_entry(dataset)
        res = run_speedup_experiment(dataset, [procs], machine=machine)
        results[dataset] = res
        best, worst = res.best_worst()
        rows.append(
            {
                "dataset": dataset,
                "procs": procs,
                "default": res.runs["original"].speedups_seq[0],
                "worst": res.runs[worst].speedups_seq[0],
                "best": res.runs[best].speedups_seq[0],
                "paper_best": entry.facts.speedup_best,
            }
        )
    return report.table4(rows), {"rows": rows, "results": results}


def run_table5(*, machine: Optional[MachineSpec] = None) -> Tuple[str, dict]:
    """Table V: test accuracy of ours vs the libsvm-style baseline."""
    from ..data.registry import TABLE5_DATASETS

    rows = [
        run_accuracy_experiment(ds, machine=machine) for ds in TABLE5_DATASETS
    ]
    return report.table5(rows), {"rows": rows}


def run_ablation_subsequent(
    dataset: str = "mnist", *, machine: Optional[MachineSpec] = None
) -> Tuple[str, dict]:
    """§IV-A2 ablation: subsequent threshold from the active-set size
    (the paper's adaptive rule) vs re-using the initial threshold."""
    entry = get_entry(dataset)
    data = load_dataset(dataset)
    machine = machine or MachineSpec.cascade()
    params = SVMParams(
        C=entry.C, kernel=RBFKernel(entry.gamma), eps=1e-3, max_iter=2_000_000
    )
    rows = []
    for policy in ("active_set", "initial"):
        heur = HEURISTICS["multi5pc"].with_subsequent(policy)
        fr = fit_parallel(
            data.X_train, data.y_train, params,
            config=RunConfig(heuristic=heur, machine=machine),
        )
        rows.append(
            {
                "policy": policy,
                "iterations": fr.iterations,
                "shrink_passes": len(fr.trace.shrink_iters),
                "shrunk": fr.trace.total_shrunk(),
                "recons": fr.trace.n_reconstructions(),
                "vtime_ms": fr.vtime * 1e3,
            }
        )
    lines = [f"subsequent-threshold ablation (multi5pc, {dataset})"]
    for r in rows:
        lines.append(
            f"  {r['policy']:>10}: iters={r['iterations']} "
            f"passes={r['shrink_passes']} shrunk={r['shrunk']} "
            f"recons={r['recons']} vtime={r['vtime_ms']:.2f}ms"
        )
    return "\n".join(lines), {"rows": rows}


def run_ablation_recon_eps(
    dataset: str = "mnist", *, machine: Optional[MachineSpec] = None
) -> Tuple[str, dict]:
    """§IV-B ablation: reconstruct at 20ε (the paper's choice) vs only
    at the final 2ε tolerance."""
    entry = get_entry(dataset)
    data = load_dataset(dataset)
    machine = machine or MachineSpec.cascade()
    rows = []
    for factor, label in ((10.0, "recon@20eps (paper)"), (1.0, "recon@2eps")):
        params = SVMParams(
            C=entry.C, kernel=RBFKernel(entry.gamma), eps=1e-3,
            max_iter=2_000_000, shrink_eps_factor=factor,
        )
        fr = fit_parallel(
            data.X_train, data.y_train, params,
            config=RunConfig(heuristic="multi5pc", machine=machine),
        )
        rows.append(
            {
                "label": label,
                "factor": factor,
                "iterations": fr.iterations,
                "recons": fr.trace.n_reconstructions(),
                "vtime_ms": fr.vtime * 1e3,
            }
        )
    lines = [f"reconstruction-point ablation (multi5pc, {dataset})"]
    for r in rows:
        lines.append(
            f"  {r['label']:>20}: iters={r['iterations']} "
            f"recons={r['recons']} vtime={r['vtime_ms']:.2f}ms"
        )
    return "\n".join(lines), {"rows": rows}


def run_ablation_cache(
    dataset: str = "mnist", *, machine: Optional[MachineSpec] = None
) -> Tuple[str, dict]:
    """§III-A ablation: baseline kernel-cache size vs hit rate / evals
    (the argument for the proposed solver avoiding a cache entirely)."""
    entry = get_entry(dataset)
    data = load_dataset(dataset)
    params = SVMParams(
        C=entry.C, kernel=RBFKernel(entry.gamma), eps=1e-3, max_iter=2_000_000
    )
    n = data.n_train
    full = 8 * n * n  # bytes to cache every row
    rows = []
    for frac, label in ((1.0, "full"), (0.25, "quarter"), (0.05, "5%"), (0.0, "none")):
        lib = solve_libsvm_style(
            data.X_train, data.y_train, params,
            cache_bytes=int(full * frac),
        )
        rows.append(
            {
                "cache": label,
                "hit_rate": lib.cache_hit_rate,
                "kernel_evals": lib.kernel_evals,
                "iterations": lib.iterations,
            }
        )
    lines = [f"kernel-cache ablation (libsvm-style baseline, {dataset}, n={n})"]
    for r in rows:
        lines.append(
            f"  cache={r['cache']:>8}: hit_rate={r['hit_rate']:.3f} "
            f"kernel_evals={r['kernel_evals']:>12} iters={r['iterations']}"
        )
    return "\n".join(lines), {"rows": rows}


@dataclass(frozen=True)
class ExperimentDef:
    id: str
    description: str
    run: Callable[..., Tuple[str, dict]]


EXPERIMENTS: Dict[str, ExperimentDef] = {
    "fig3": ExperimentDef("fig3", "HIGGS speedup up to 4096 procs", lambda **kw: run_figure("fig3", **kw)),
    "fig4": ExperimentDef("fig4", "URL speedup up to 4096 procs", lambda **kw: run_figure("fig4", **kw)),
    "fig5": ExperimentDef("fig5", "Forest speedup up to 1024 procs", lambda **kw: run_figure("fig5", **kw)),
    "fig6": ExperimentDef("fig6", "MNIST speedup up to 512 procs", lambda **kw: run_figure("fig6", **kw)),
    "fig7": ExperimentDef("fig7", "real-sim speedup up to 256 procs", lambda **kw: run_figure("fig7", **kw)),
    "fig8": ExperimentDef("fig8", "gradient-reconstruction time fraction", run_fig8),
    "table2": ExperimentDef("table2", "all 13 shrinking heuristics", run_table2),
    "table4": ExperimentDef("table4", "small-dataset speedups vs libsvm-sequential", run_table4),
    "table5": ExperimentDef("table5", "testing accuracy parity", run_table5),
    "ablation-subsequent": ExperimentDef(
        "ablation-subsequent", "subsequent-threshold policy", run_ablation_subsequent
    ),
    "ablation-recon-eps": ExperimentDef(
        "ablation-recon-eps", "reconstruction tolerance point", run_ablation_recon_eps
    ),
    "ablation-cache": ExperimentDef(
        "ablation-cache", "baseline kernel-cache sensitivity", run_ablation_cache
    ),
}
