"""Experiment harness.

One :func:`run_speedup_experiment` call reproduces the workflow behind
each of the paper's figures:

1. generate the dataset's synthetic stand-in at an offline-friendly
   scale;
2. run the distributed solver once per heuristic (instrumented, at
   ``measure_procs`` simulated ranks) and the libsvm-style baseline;
3. project each trace to the paper-scale problem at the paper's process
   counts, and model the libsvm-sequential / libsvm-enhanced reference
   times at paper scale;
4. return the speedup series (Figures 3-7), the reconstruction-time
   fractions (Figure 8) and accuracy numbers (Table V).

Paper-scale projection uses ``n_scale = N_paper / n_run`` and an
iteration-axis stretch anchored on the paper's reported iteration count
when available (HIGGS 34M, Forest 2.07M, MNIST 21K, real-sim 47K),
otherwise on ``n_scale`` (SMO iteration counts grow roughly linearly
with sample count).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import RunConfig
from ..core import SVMParams, fit_parallel, solve_libsvm_style
from ..core.solver import FitResult
from ..data import DatasetEntry, get_entry, load_dataset
from ..data.synthetic import Dataset
from ..kernels import RBFKernel
from ..perfmodel import MachineSpec, ProjectedTime, project_series, speedup_vs
from ..perfmodel.baseline import BaselineTime, baseline_time, paper_scale_baseline

#: the three bars of each figure: Default, Shrinking (best), Shrinking (worst)
DEFAULT_HEURISTICS: Tuple[str, ...] = ("original", "multi5pc", "single50pc")


@dataclass
class HeuristicRun:
    """One heuristic's measured run + paper-scale projections."""

    name: str
    fit: FitResult
    projections: List[ProjectedTime]
    speedups_enh: List[float]  # vs libsvm-enhanced (16 cores), paper scale
    speedups_seq: List[float]  # vs libsvm-sequential (1 core), paper scale
    speedups_vs_original: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return self.fit.iterations

    @property
    def recon_fractions(self) -> List[float]:
        return [t.recon_fraction for t in self.projections]


@dataclass
class ExperimentResult:
    """Everything a figure/table bench needs to print its rows."""

    dataset: str
    entry: DatasetEntry
    data: Dataset
    procs: List[int]
    runs: Dict[str, HeuristicRun]
    baseline_enh: BaselineTime  # paper-scale, 16 cores
    baseline_seq: BaselineTime  # paper-scale, 1 core
    baseline_run_enh: BaselineTime  # run-scale (measured counters)
    libsvm_iterations: int
    libsvm_accuracy: Optional[float]
    n_scale: float
    iteration_scale: float
    wall_seconds: float

    def run(self, name: str) -> HeuristicRun:
        return self.runs[name]

    def best_worst(self) -> Tuple[str, str]:
        """Heuristics with the highest / lowest projected speedup at the
        largest process count (excluding the no-shrinking Original)."""
        candidates = {
            k: v.speedups_enh[-1] for k, v in self.runs.items() if k != "original"
        }
        if not candidates:
            name = next(iter(self.runs))
            return name, name
        best = max(candidates, key=candidates.get)
        worst = min(candidates, key=candidates.get)
        return best, worst


def _paper_relative_heuristic(
    name: str, entry: DatasetEntry, run_iters: int, paper_iters: float
):
    """Re-place a Table II threshold at the same *relative run position*
    it occupies at paper scale.

    A ``numsamples: f`` heuristic fires at ``f·N_paper`` iterations,
    i.e. at fraction ``f·N_paper / paper_iterations`` of the paper run;
    the miniature must fire at that same fraction of *its* run or the
    figure's crossovers (e.g. MNIST's "Worst ≡ Default because the
    threshold never fires") cannot appear.  ``random: k`` thresholds are
    absolute iteration counts and are mapped the same way.
    """
    from ..core.shrinking import Heuristic, get_heuristic

    heur = get_heuristic(name)
    if not heur.shrinks:
        return heur
    paper_thresh = heur.initial_threshold(entry.paper_train)
    rel = paper_thresh / max(paper_iters, 1.0)
    ours = max(1.0, round(rel * run_iters))
    return Heuristic(
        name=heur.name,
        threshold_kind="random",
        threshold_value=ours,
        reconstruction=heur.reconstruction,
        klass=heur.klass,
        subsequent=heur.subsequent,
    )


def run_speedup_experiment(
    dataset: str,
    procs: Sequence[int],
    *,
    heuristics: Sequence[str] = DEFAULT_HEURISTICS,
    scale: Optional[float] = None,
    measure_procs: int = 1,
    machine: Optional[MachineSpec] = None,
    eps: float = 1e-3,
    max_iter: int = 2_000_000,
    paper_scale: bool = True,
    faults=None,
) -> ExperimentResult:
    """Run the full experiment for one dataset; see module docstring.

    ``faults`` forwards a deterministic fault-injection plan (spec
    string or :class:`~repro.mpi.faults.FaultPlan`) to every solver
    run — completing runs are bitwise identical to fault-free ones, so
    the figures are unchanged while the recovery paths get exercised.
    """
    t_start = time.perf_counter()
    entry = get_entry(dataset)
    data = load_dataset(dataset, scale=scale)
    machine = machine or MachineSpec.cascade()
    params = SVMParams(
        C=entry.C, kernel=RBFKernel(entry.gamma), eps=eps, max_iter=max_iter
    )

    # the Original run pins the iteration budget; with the deterministic
    # engine every safe-shrinking heuristic replays the same sequence
    run_cfg = RunConfig(
        heuristic="original", nprocs=measure_procs, machine=machine,
        faults=faults,
    )
    origin_fit = fit_parallel(data.X_train, data.y_train, params, config=run_cfg)
    paper_iters_est = (
        float(entry.facts.iterations)
        if entry.facts.iterations
        else origin_fit.iterations * (entry.paper_train / data.n_train)
    )

    fits: Dict[str, FitResult] = {}
    for h in heuristics:
        if h == "original":
            fits[h] = origin_fit
            continue
        heur = (
            _paper_relative_heuristic(
                h, entry, origin_fit.iterations, paper_iters_est
            )
            if paper_scale
            else h
        )
        fits[h] = fit_parallel(
            data.X_train, data.y_train, params,
            config=run_cfg.replace(heuristic=heur),
        )
    if "original" not in fits:
        fits["original"] = origin_fit

    lib = solve_libsvm_style(data.X_train, data.y_train, params)
    avg_nnz = data.X_train.avg_row_nnz
    baseline_run_enh = baseline_time(lib, data.n_train, avg_nnz, machine, ncores=16)

    if paper_scale:
        n_scale = entry.paper_train / data.n_train
        origin = fits.get("original", next(iter(fits.values())))
        if entry.facts.iterations:
            iteration_scale = entry.facts.iterations / max(origin.iterations, 1)
        else:
            iteration_scale = n_scale
        n_paper = entry.paper_train
    else:
        n_scale = 1.0
        iteration_scale = 1.0
        n_paper = data.n_train

    lib_iters_paper = lib.iterations * iteration_scale
    baseline_enh = paper_scale_baseline(
        lib_iters_paper, n_paper, avg_nnz, machine, ncores=16
    )
    baseline_seq = paper_scale_baseline(
        lib_iters_paper, n_paper, avg_nnz, machine, ncores=1
    )

    runs: Dict[str, HeuristicRun] = {}
    for h, fr in fits.items():
        proj = project_series(
            fr.trace, machine, list(procs),
            n_scale=n_scale, iteration_scale=iteration_scale,
        )
        runs[h] = HeuristicRun(
            name=h,
            fit=fr,
            projections=proj,
            speedups_enh=speedup_vs(proj, baseline_enh.total),
            speedups_seq=speedup_vs(proj, baseline_seq.total),
        )
    if "original" in runs:
        orig = runs["original"].projections
        for h, r in runs.items():
            r.speedups_vs_original = [
                o.total / t.total for o, t in zip(orig, r.projections)
            ]

    lib_acc: Optional[float] = None
    if data.X_test is not None:
        from ..core.model import SVMModel

        sv = np.flatnonzero(lib.alpha > 0)
        lib_model = SVMModel(
            sv_X=data.X_train.take_rows(sv),
            sv_coef=lib.alpha[sv] * data.y_train[sv],
            sv_indices=sv,
            beta=lib.beta,
            kernel=params.kernel,
        )
        lib_acc = lib_model.accuracy(data.X_test, data.y_test)

    return ExperimentResult(
        dataset=dataset,
        entry=entry,
        data=data,
        procs=list(procs),
        runs=runs,
        baseline_enh=baseline_enh,
        baseline_seq=baseline_seq,
        baseline_run_enh=baseline_run_enh,
        libsvm_iterations=lib.iterations,
        libsvm_accuracy=lib_acc,
        n_scale=n_scale,
        iteration_scale=iteration_scale,
        wall_seconds=time.perf_counter() - t_start,
    )


def run_accuracy_experiment(
    dataset: str,
    *,
    heuristic: str = "multi5pc",
    scale: Optional[float] = None,
    nprocs: int = 2,
    machine: Optional[MachineSpec] = None,
    eps: float = 1e-3,
    max_iter: int = 2_000_000,
    faults=None,
) -> Dict[str, float]:
    """Table V row: test accuracy of the shrinking solver vs the
    libsvm-style baseline on the same train/test split."""
    entry = get_entry(dataset)
    data = load_dataset(dataset, scale=scale)
    if data.X_test is None:
        raise ValueError(f"dataset {dataset!r} has no test split")
    params = SVMParams(
        C=entry.C, kernel=RBFKernel(entry.gamma), eps=eps, max_iter=max_iter
    )
    fr = fit_parallel(
        data.X_train, data.y_train, params,
        config=RunConfig(
            heuristic=heuristic, nprocs=nprocs, machine=machine, faults=faults
        ),
    )
    ours = fr.model.accuracy(data.X_test, data.y_test)

    lib = solve_libsvm_style(data.X_train, data.y_train, params)
    from ..core.model import SVMModel

    sv = np.flatnonzero(lib.alpha > 0)
    lib_model = SVMModel(
        sv_X=data.X_train.take_rows(sv),
        sv_coef=lib.alpha[sv] * data.y_train[sv],
        sv_indices=sv,
        beta=lib.beta,
        kernel=params.kernel,
    )
    theirs = lib_model.accuracy(data.X_test, data.y_test)
    return {
        "dataset": dataset,
        "ours": 100.0 * ours,
        "libsvm": 100.0 * theirs,
        "paper_ours": entry.facts.test_accuracy,
        "paper_libsvm": entry.facts.test_accuracy_libsvm,
    }
