"""Table/figure formatting for experiment results.

The paper's figures are bar charts of relative speedup vs process
count; in a terminal reproduction each becomes a table whose rows are
process counts and whose columns are the Default / Shrinking(best) /
Shrinking(worst) bars, printed next to the paper-reported values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .harness import ExperimentResult


def _fmt(x: Optional[float], width: int = 9, prec: int = 2) -> str:
    if x is None:
        return " " * (width - 3) + "n/a"
    return f"{x:>{width}.{prec}f}"


def hline(width: int = 78) -> str:
    return "-" * width


def figure_speedup_table(
    res: ExperimentResult,
    *,
    reference: str = "libsvm-enhanced",
    title: str = "",
) -> str:
    """Render a Figures 3-7 style table: speedup per p per heuristic."""
    ref_attr = {
        "libsvm-enhanced": "speedups_enh",
        "libsvm-sequential": "speedups_seq",
        "original": "speedups_vs_original",
    }[reference]
    names = list(res.runs)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"dataset={res.dataset}  run n={res.data.n_train} "
        f"(paper N={res.entry.paper_train}, x{res.n_scale:.0f})  "
        f"iteration axis x{res.iteration_scale:.1f}"
    )
    lines.append(
        f"baseline (paper scale): libsvm-enhanced {res.baseline_enh.total:.1f}s, "
        f"libsvm-sequential {res.baseline_seq.total:.1f}s"
    )
    lines.append(hline())
    header = f"{'procs':>6} |" + "".join(f"{n:>14}" for n in names)
    lines.append(f"speedup vs {reference}")
    lines.append(header)
    lines.append(hline())
    for i, p in enumerate(res.procs):
        row = f"{p:>6} |"
        for n in names:
            series = getattr(res.runs[n], ref_attr)
            row += _fmt(series[i] if i < len(series) else None, 14)
        lines.append(row)
    lines.append(hline())
    iters = "  ".join(f"{n}={res.runs[n].iterations}" for n in names)
    lines.append(f"iterations: {iters}  libsvm={res.libsvm_iterations}")
    best, worst = res.best_worst()
    lines.append(
        f"observed best heuristic: {best}   worst: {worst}   "
        f"(paper: best={res.entry.facts.best_heuristic}, "
        f"worst={res.entry.facts.worst_heuristic})"
    )
    if res.entry.facts.speedup_best is not None:
        lines.append(
            f"paper headline: {res.entry.facts.speedup_best}x vs "
            f"{res.entry.facts.speedup_reference} at p={res.entry.facts.max_procs}"
        )
    return "\n".join(lines)


def recon_fraction_table(
    results: Dict[str, ExperimentResult], heuristic: str = "multi5pc"
) -> str:
    """Figure 8: fraction of time in gradient reconstruction vs scale."""
    lines = [
        f"Figure 8 — fraction of total time in gradient reconstruction "
        f"({heuristic})",
        hline(),
    ]
    all_ps = sorted({p for r in results.values() for p in r.procs})
    header = f"{'dataset':>10} |" + "".join(f"{p:>9}" for p in all_ps)
    lines.append(header)
    lines.append(hline())
    for name, res in results.items():
        run = res.runs.get(heuristic)
        row = f"{name:>10} |"
        for p in all_ps:
            if run is not None and p in res.procs:
                frac = run.recon_fractions[res.procs.index(p)]
                row += f"{frac:>9.3f}"
            else:
                row += " " * 9
        lines.append(row)
    lines.append(hline())
    lines.append("paper: ratio decreases with scale; <10% at 4096 procs (HIGGS)")
    return "\n".join(lines)


def table4(rows: Sequence[dict]) -> str:
    """Table IV: relative speedup to libsvm-sequential, small datasets."""
    lines = [
        "Table IV — relative speedup to libsvm-sequential (small datasets)",
        hline(),
        f"{'dataset':>10} {'procs':>6} {'Default':>9} {'Shr(worst)':>11} "
        f"{'Shr(best)':>10} | {'paper best':>10}",
        hline(),
    ]
    for r in rows:
        lines.append(
            f"{r['dataset']:>10} {r['procs']:>6} {_fmt(r['default'])} "
            f"{_fmt(r['worst'], 11)} {_fmt(r['best'], 10)} | "
            f"{_fmt(r.get('paper_best'), 10)}"
        )
    lines.append(hline())
    return "\n".join(lines)


def table5(rows: Sequence[dict]) -> str:
    """Table V: testing accuracy, ours vs the libsvm-style baseline."""
    lines = [
        "Table V — testing accuracy (%)",
        hline(),
        f"{'dataset':>10} {'ours':>8} {'libsvm':>8} | "
        f"{'paper ours':>10} {'paper libsvm':>12}",
        hline(),
    ]
    for r in rows:
        lines.append(
            f"{r['dataset']:>10} {_fmt(r['ours'], 8)} {_fmt(r['libsvm'], 8)} | "
            f"{_fmt(r.get('paper_ours'), 10)} {_fmt(r.get('paper_libsvm'), 12)}"
        )
    lines.append(hline())
    return "\n".join(lines)


def heuristics_table(rows: Sequence[dict]) -> str:
    """Table II ablation: every heuristic on one dataset."""
    lines = [
        "Table II ablation — all 13 heuristics",
        hline(),
        f"{'heuristic':>12} {'class':>13} {'iters':>8} {'recons':>7} "
        f"{'shrunk':>7} {'vtime(ms)':>10} {'speedup':>8} {'acc_ok':>7}",
        hline(),
    ]
    for r in rows:
        lines.append(
            f"{r['name']:>12} {r['class']:>13} {r['iterations']:>8} "
            f"{r['recons']:>7} {r['shrunk']:>7} {r['vtime_ms']:>10.2f} "
            f"{_fmt(r['speedup'], 8)} {str(r['accuracy_ok']):>7}"
        )
    lines.append(hline())
    return "\n".join(lines)


def convergence_curve(
    gaps, *, width: int = 64, height: int = 12, title: str = ""
) -> str:
    """ASCII log-scale convergence plot of the optimality gap."""
    import numpy as np

    gaps = np.asarray(gaps, dtype=np.float64)
    gaps = gaps[gaps > 0]
    if gaps.size < 2:
        return "(no convergence history)"
    logs = np.log10(gaps)
    lo, hi = float(logs.min()), float(logs.max())
    span = max(hi - lo, 1e-12)
    # downsample to the plot width
    xs = np.linspace(0, logs.size - 1, width).astype(int)
    cols = logs[xs]
    grid = [[" "] * width for _ in range(height)]
    for c, v in enumerate(cols):
        r = int((hi - v) / span * (height - 1))
        grid[r][c] = "*"
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = hi - r * span / (height - 1)
        lines.append(f"1e{label:+5.1f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"iteration 0 .. {gaps.size - 1} "
        f"(gap: {gaps[0]:.3g} -> {gaps[-1]:.3g})"
    )
    return "\n".join(lines)


def active_set_summary(res: ExperimentResult, heuristic: str) -> str:
    """§V-D analysis: active-set trajectory statistics."""
    tr = res.runs[heuristic].fit.trace
    lines = [
        f"active-set analysis ({res.dataset}, {heuristic}): "
        f"iterations={tr.iterations}, total shrunk={tr.total_shrunk()}, "
        f"reconstructions={tr.n_reconstructions()}",
    ]
    for frac in (0.1, 0.2, 0.5):
        lines.append(
            f"  fraction of iterations with active set <= {int(frac * 100)}% "
            f"of N: {tr.fraction_of_iters_below(frac):.2f}"
        )
    return "\n".join(lines)
