"""``repro.bench`` — the experiment harness regenerating §V.

``python -m repro.bench <experiment-id>`` runs any experiment from
:data:`repro.bench.experiments.EXPERIMENTS` and prints its table.
"""

from . import report
from .experiments import (
    EXPERIMENTS,
    ExperimentDef,
    run_fig8,
    run_figure,
    run_table2,
    run_table4,
    run_table5,
)
from .harness import (
    DEFAULT_HEURISTICS,
    ExperimentResult,
    HeuristicRun,
    run_accuracy_experiment,
    run_speedup_experiment,
)

__all__ = [
    "DEFAULT_HEURISTICS",
    "EXPERIMENTS",
    "ExperimentDef",
    "ExperimentResult",
    "HeuristicRun",
    "report",
    "run_accuracy_experiment",
    "run_fig8",
    "run_figure",
    "run_speedup_experiment",
    "run_table2",
    "run_table4",
    "run_table5",
]
