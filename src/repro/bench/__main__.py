"""CLI: ``python -m repro.bench [experiment-id ...]`` (default: all)."""

from __future__ import annotations

import sys
import time

from .experiments import EXPERIMENTS


def main(argv: list[str]) -> int:
    ids = argv or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for i in ids:
        exp = EXPERIMENTS[i]
        print(f"\n=== {exp.id}: {exp.description} ===")
        t0 = time.perf_counter()
        text, _ = exp.run()
        print(text)
        print(f"[{exp.id} finished in {time.perf_counter() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
