"""Model calibration and cross-validation of the performance model.

Two fidelity questions deserve evidence rather than assertion:

1. **λ calibration** — what does one kernel evaluation actually cost on
   this host?  :func:`measure_lambda` times the real numpy hot path
   (CSR row vs block under the RBF kernel) and returns an effective
   flop rate usable in a :class:`MachineSpec`.
2. **Projector vs. emergent virtual time** — the analytic projector and
   the threaded runtime account the same costs through entirely
   different code paths (closed formulas vs. per-message clock
   updates).  :func:`validate_projector` runs one problem through both
   at several process counts and reports the relative error per p.

The validation report is what DESIGN.md §2 leans on when it claims the
trace-driven projection is faithful to the simulated machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .machine import MachineSpec
from .projector import project


@dataclass(frozen=True)
class LambdaMeasurement:
    """Measured kernel-evaluation throughput on this host."""

    evals_per_second: float
    avg_nnz: float
    effective_flop_rate: float  # back-solved from the MachineSpec formula

    def as_machine(self, base: Optional[MachineSpec] = None) -> MachineSpec:
        """A MachineSpec whose compute rate matches this host."""
        from dataclasses import replace

        base = base or MachineSpec.cascade()
        return replace(
            base, name="calibrated-host", flop_rate=self.effective_flop_rate
        )


def measure_lambda(
    n_rows: int = 2000,
    avg_nnz: float = 60.0,
    repeats: int = 5,
    seed: int = 0,
) -> LambdaMeasurement:
    """Time the solver's hot operation (one kernel column) on this host."""
    from ..kernels import RBFKernel
    from ..sparse.csr import CSRMatrix

    rng = np.random.default_rng(seed)
    d = max(8, int(avg_nnz * 4))
    density = avg_nnz / d
    dense = rng.random((n_rows, d)) * (rng.random((n_rows, d)) < density)
    X = CSRMatrix.from_dense(dense)
    norms = X.row_norms_sq()
    kernel = RBFKernel(0.5)
    xi, xv = X.row(0)
    n0 = float(norms[0])

    kernel.row_against_block(X, norms, xi, xv, n0)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        kernel.row_against_block(X, norms, xi, xv, n0)
        best = min(best, time.perf_counter() - t0)
    per_eval = best / n_rows
    real_nnz = X.avg_row_nnz
    spec = MachineSpec.cascade()
    flops_per_eval = spec.kernel_eval_flops(real_nnz)
    return LambdaMeasurement(
        evals_per_second=1.0 / per_eval,
        avg_nnz=real_nnz,
        effective_flop_rate=flops_per_eval / per_eval,
    )


@dataclass(frozen=True)
class ProjectorValidation:
    """Projected vs. simulated virtual time at one process count."""

    p: int
    simulated_vtime: float
    projected_total: float

    @property
    def relative_error(self) -> float:
        if self.simulated_vtime == 0:
            return 0.0
        return abs(self.projected_total - self.simulated_vtime) / self.simulated_vtime


def validate_projector(
    n: int = 200,
    ps: Sequence[int] = (1, 2, 4, 8),
    machine: Optional[MachineSpec] = None,
    seed: int = 0,
    heuristic: str = "original",
) -> List[ProjectorValidation]:
    """Run one problem through the threaded runtime at each ``p`` and
    compare the emergent virtual makespan with the analytic projection
    of the p=1 trace."""
    from ..config import RunConfig
    from ..core import SVMParams, fit_parallel
    from ..kernels import RBFKernel
    from ..sparse.csr import CSRMatrix

    machine = machine or MachineSpec.cascade()
    rng = np.random.default_rng(seed)
    half = n // 2
    dense = np.vstack(
        [rng.normal(1.0, 1.1, (half, 6)), rng.normal(-1.0, 1.1, (n - half, 6))]
    )
    y = np.concatenate([np.ones(half), -np.ones(n - half)])
    X = CSRMatrix.from_dense(dense)
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3)

    cfg = RunConfig(heuristic=heuristic, machine=machine)
    base = fit_parallel(X, y, params, config=cfg)
    out = []
    for p in ps:
        fr = (
            base
            if p == 1
            else fit_parallel(X, y, params, config=cfg.replace(nprocs=p))
        )
        proj = project(base.trace, machine, p)
        out.append(
            ProjectorValidation(
                p=p, simulated_vtime=fr.vtime, projected_total=proj.total
            )
        )
    return out


def validation_report(rows: List[ProjectorValidation]) -> str:
    lines = [
        "projector vs threaded-runtime virtual time",
        f"{'p':>5} {'simulated(s)':>14} {'projected(s)':>14} {'rel.err':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.p:>5} {r.simulated_vtime:>14.6f} "
            f"{r.projected_total:>14.6f} {r.relative_error:>9.2%}"
        )
    return "\n".join(lines)
