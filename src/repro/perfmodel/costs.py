"""Analytic costs of the communication patterns the solvers use.

These mirror the algorithms in :mod:`repro.mpi.collectives` (binomial
bcast, recursive-doubling allreduce, ring exchange, dissemination
barrier), and therefore the complexity terms the paper derives in
§III-IV: O((l + m·G)·log p) for the working-set broadcast,
Θ(l·log p) for the scalar allreduces, Θ(|X − Ȧ|·G) for the
reconstruction ring.
"""

from __future__ import annotations

import math

from .machine import MachineSpec


def log2ceil(p: int) -> int:
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return max(0, math.ceil(math.log2(p)))


def p2p_time(m: MachineSpec, nbytes: float) -> float:
    return m.latency + nbytes * m.byte_time


def bcast_time(m: MachineSpec, nbytes: float, p: int) -> float:
    """Binomial tree: log2(p) hops on the critical path."""
    return log2ceil(p) * p2p_time(m, nbytes)


def reduce_time(m: MachineSpec, nbytes: float, p: int) -> float:
    return log2ceil(p) * p2p_time(m, nbytes)


def allreduce_time(m: MachineSpec, nbytes: float, p: int) -> float:
    """Recursive doubling: log2(p) exchange rounds (plus the fold round
    for non-powers of two, folded into the ceil)."""
    return log2ceil(p) * p2p_time(m, nbytes)


def barrier_time(m: MachineSpec, p: int) -> float:
    return log2ceil(p) * m.latency


def ring_exchange_time(m: MachineSpec, chunk_bytes: float, p: int) -> float:
    """p−1 steps each moving one chunk between neighbours."""
    return max(0, p - 1) * p2p_time(m, chunk_bytes)


def allgather_ring_time(m: MachineSpec, chunk_bytes: float, p: int) -> float:
    return ring_exchange_time(m, chunk_bytes, p)


def sample_bytes(avg_nnz: float) -> float:
    """Wire size of one CSR sample row: int64 index + float64 value per
    nonzero, plus norm/label/alpha scalars and framing."""
    return 16.0 * avg_nnz + 48.0


#: wire size of the packed engine's fused violator election — a typed
#: float64 buffer [β_up, i_up, β_low, i_low] reduced with the
#: MINLOC_MAXLOC op (one Allreduce replacing the legacy pair of
#: pickled MINLOC + MAXLOC messages)
ELECTION_BYTES = 4 * 8.0

#: the same buffer with the shrink survivor-count SUM slot appended —
#: the δ Allreduce of a shrink event piggybacks on the election that
#: follows it instead of travelling as its own message
ELECTION_SHRINK_BYTES = 5 * 8.0

#: modeled wire size of one legacy pickled (value, index) Allreduce
#: payload (pickle framing dominates the two scalars)
PICKLED_PAIR_BYTES = 64.0


def election_time(m: MachineSpec, p: int, *, with_shrink: bool = False) -> float:
    """One fused violator-election Allreduce (packed engine)."""
    nbytes = ELECTION_SHRINK_BYTES if with_shrink else ELECTION_BYTES
    return allreduce_time(m, nbytes, p)
