"""Analytic costs of the communication patterns the solvers use.

These mirror the algorithms in :mod:`repro.mpi.collectives` (binomial
bcast, recursive-doubling allreduce, ring exchange, dissemination
barrier), and therefore the complexity terms the paper derives in
§III-IV: O((l + m·G)·log p) for the working-set broadcast,
Θ(l·log p) for the scalar allreduces, Θ(|X − Ȧ|·G) for the
reconstruction ring.
"""

from __future__ import annotations

import math

from .machine import MachineSpec


def log2ceil(p: int) -> int:
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return max(0, math.ceil(math.log2(p)))


def p2p_time(m: MachineSpec, nbytes: float) -> float:
    return m.latency + nbytes * m.byte_time


def bcast_time(m: MachineSpec, nbytes: float, p: int) -> float:
    """Binomial tree: log2(p) hops on the critical path."""
    return log2ceil(p) * p2p_time(m, nbytes)


def reduce_time(m: MachineSpec, nbytes: float, p: int) -> float:
    return log2ceil(p) * p2p_time(m, nbytes)


def allreduce_time(m: MachineSpec, nbytes: float, p: int) -> float:
    """Recursive doubling: log2(p) exchange rounds (plus the fold round
    for non-powers of two, folded into the ceil)."""
    return log2ceil(p) * p2p_time(m, nbytes)


def barrier_time(m: MachineSpec, p: int) -> float:
    return log2ceil(p) * m.latency


def ring_exchange_time(m: MachineSpec, chunk_bytes: float, p: int) -> float:
    """p−1 steps each moving one chunk between neighbours."""
    return max(0, p - 1) * p2p_time(m, chunk_bytes)


def allgather_ring_time(m: MachineSpec, chunk_bytes: float, p: int) -> float:
    return ring_exchange_time(m, chunk_bytes, p)


def allgather_time(m: MachineSpec, total_bytes: float, p: int) -> float:
    """Bruck/dissemination allgather: log2(p) latency steps, every rank
    ends with the full ``total_bytes`` payload.  Preferred over the ring
    for small payloads, where the ring's p-1 latency hops dominate."""
    return log2ceil(p) * m.latency + total_bytes * m.byte_time


def node_geometry(m: MachineSpec, p: int) -> "tuple[int, int]":
    """``(k, nn)``: ranks per node and node count for ``p`` block-placed
    ranks on ``m`` (the last node may be partially filled)."""
    k = min(p, m.node_size)
    nn = math.ceil(p / k)
    return k, nn


def intra_p2p_time(m: MachineSpec, nbytes: float) -> float:
    """One intra-node message (falls back to inter prices when the
    machine describes no separate intra-node fabric)."""
    return m.p2p_time(int(nbytes), intra=True)


def hier_bcast_time(m: MachineSpec, nbytes: float, p: int) -> float:
    """Two-level broadcast: worst-case intra hop to the root's node
    leader, binomial over the ``nn`` leaders, binomial inside each node.

    Mirrors :class:`repro.mpi.topology.HierarchicalCollectives.bcast`,
    including its delegation to the flat tree when only one node (or one
    rank per node) is involved.
    """
    k, nn = node_geometry(m, p)
    if nn <= 1 or k <= 1:
        return bcast_time(m, nbytes, p)
    return (
        intra_p2p_time(m, nbytes)
        + log2ceil(nn) * p2p_time(m, nbytes)
        + log2ceil(k) * intra_p2p_time(m, nbytes)
    )


def hier_allreduce_time(m: MachineSpec, nbytes: float, p: int) -> float:
    """Two-level allreduce: intra-node binomial reduce, recursive
    doubling over the leaders, intra-node binomial broadcast."""
    k, nn = node_geometry(m, p)
    if nn <= 1 or k <= 1:
        return allreduce_time(m, nbytes, p)
    return (
        2 * log2ceil(k) * intra_p2p_time(m, nbytes)
        + log2ceil(nn) * p2p_time(m, nbytes)
    )


def hier_barrier_time(m: MachineSpec, p: int) -> float:
    k, nn = node_geometry(m, p)
    if nn <= 1 or k <= 1:
        return barrier_time(m, p)
    lat = m.intra_latency if m.intra_latency is not None else m.latency
    return 2 * log2ceil(k) * lat + log2ceil(nn) * m.latency


def allreduce_messages(p: int) -> int:
    """Total messages of one recursive-doubling allreduce at ``p``."""
    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    rem = p - pof2
    return pof2 * log2ceil(pof2) + 2 * rem


def bcast_messages(p: int) -> int:
    """Total messages of one binomial broadcast (any tree shape)."""
    return max(0, p - 1)


def hier_allreduce_messages(m: MachineSpec, p: int) -> int:
    """Messages of the two-level allreduce: an up tree and a down tree
    inside every node (``p − nn`` each) plus recursive doubling over
    the ``nn`` leaders."""
    k, nn = node_geometry(m, p)
    if nn <= 1 or k <= 1:
        return allreduce_messages(p)
    return 2 * (p - nn) + allreduce_messages(nn)


def sample_bytes(avg_nnz: float) -> float:
    """Wire size of one CSR sample row: int64 index + float64 value per
    nonzero, plus norm/label/alpha scalars and framing."""
    return 16.0 * avg_nnz + 48.0


#: wire size of the packed engine's fused violator election — a typed
#: float64 buffer [β_up, i_up, β_low, i_low] reduced with the
#: MINLOC_MAXLOC op (one Allreduce replacing the legacy pair of
#: pickled MINLOC + MAXLOC messages)
ELECTION_BYTES = 4 * 8.0

#: the same buffer with the shrink survivor-count SUM slot appended —
#: the δ Allreduce of a shrink event piggybacks on the election that
#: follows it instead of travelling as its own message
ELECTION_SHRINK_BYTES = 5 * 8.0

#: modeled wire size of one legacy pickled (value, index) Allreduce
#: payload (pickle framing dominates the two scalars)
PICKLED_PAIR_BYTES = 64.0


#: wire size of the second-order phase-B combine — a typed float64
#: buffer [gain, i_low, γ_low] reduced with the MAXLOC_PAYLOAD op
WSS2_PHASE_BYTES = 3 * 8.0


def election_time(
    m: MachineSpec, p: int, *, with_shrink: bool = False, comm: str = "flat"
) -> float:
    """One fused violator-election Allreduce (packed engine).

    ``comm`` selects the modeled collective suite: the flat recursive
    doubling or the topology-aware two-level variant (the fused
    MINLOC_MAXLOC buffer rides either unchanged).
    """
    nbytes = ELECTION_SHRINK_BYTES if with_shrink else ELECTION_BYTES
    if comm == "hierarchical":
        return hier_allreduce_time(m, nbytes, p)
    return allreduce_time(m, nbytes, p)


def wss2_election_time(
    m: MachineSpec, p: int, *, with_shrink: bool = False, comm: str = "flat"
) -> float:
    """One full two-phase second-order election (packed engine).

    Phase A is the ordinary fused election (optionally carrying a
    shrink δ tail); phase B adds one typed MAXLOC_PAYLOAD Allreduce of
    the (gain, index, γ) triple.  The phase-B up-sample broadcast is
    *not* included — it is stash-aware and therefore trace-counted with
    the other pair broadcasts, not a fixed per-election cost.
    """
    t = election_time(m, p, with_shrink=with_shrink, comm=comm)
    if comm == "hierarchical":
        return t + hier_allreduce_time(m, WSS2_PHASE_BYTES, p)
    return t + allreduce_time(m, WSS2_PHASE_BYTES, p)


def wss2_election_messages(m: MachineSpec, p: int, comm: str = "flat") -> int:
    """Messages added by one phase-B combine on top of phase A."""
    if comm == "hierarchical":
        return hier_allreduce_messages(m, p)
    return allreduce_messages(p)


# ----------------------------------------------------------------------
# divide-and-conquer outer loop (repro.core.dcsvm)
# ----------------------------------------------------------------------
#: landmark candidate pool cap of the DC partitioner (kept in sync with
#: repro.core.dcsvm._LANDMARK_POOL)
DC_LANDMARK_POOL = 256


def dc_pool_time(m: MachineSpec, n: int, avg_nnz: float) -> float:
    """One-time landmark-pool setup: the pool x pool kernel block the
    per-round kernel-k-means++ rotation draws its landmarks from."""
    pool = min(n, DC_LANDMARK_POOL)
    return m.time_kernel_evals(float(pool) * pool, avg_nnz)


def dc_scatter_time(m: MachineSpec, n: int, p: int, avg_nnz: float) -> float:
    """One-time replication of the sample rows: DC re-clusters every
    round, so every rank keeps the full row set (the standard DC-SVM
    layout) -- one binomial broadcast of the whole matrix."""
    if p <= 1:
        return 0.0
    return bcast_time(m, n * sample_bytes(avg_nnz), p)


def dc_rotate_time(
    m: MachineSpec, n: int, k: int, p: int, new_cols: int, avg_nnz: float
) -> float:
    """One partition rotation.

    Landmark selection is flops over the cached pool block; the
    ``new_cols`` first-touched landmarks cost one n-row kernel column
    each (evaluated n/p per rank, then allgathered); assignment is the
    capacity-constrained greedy (a few flops per (sample, preference)
    pair, sequential on the root) plus the broadcast of the int8
    assignment vector.
    """
    pool = min(n, DC_LANDMARK_POOL)
    col_evals = math.ceil(n / p) * new_cols
    t = m.time_kernel_evals(float(col_evals), avg_nnz)
    if new_cols:
        t += allgather_time(m, new_cols * 8.0 * n, p)
    t += m.time_flops(8.0 * pool * k)  # k-means++ D2 bookkeeping
    t += m.time_flops(8.0 * n * k)  # preference sort + greedy sweep
    t += bcast_time(m, float(n), p)  # the assignment vector
    return t


def dc_sync_time(
    m: MachineSpec, n: int, p: int, changed: int, new_cols: int,
    avg_nnz: float,
) -> float:
    """One line-searched merge + gradient update.

    The blockwise step d lives on ``changed`` coordinates: allgather
    the (index, delta) pairs, evaluate kernel columns only for the
    ``new_cols`` cache misses (n/p rows per rank), apply the rank-local
    gemv slice Delta-f = K[:, changed] . (d o y), and allreduce the two
    line-search dot products plus the beta_up/beta_low convergence pair.
    """
    if changed <= 0:
        return allreduce_time(m, 4 * 8.0, p)
    t = allgather_time(m, 16.0 * changed, p)
    t += m.time_kernel_evals(float(math.ceil(n / p)) * new_cols, avg_nnz)
    t += m.time_flops(2.0 * math.ceil(n / p) * changed)  # gemv slice
    t += m.time_flops(6.0 * math.ceil(n / p))  # axpy + masks
    t += allreduce_time(m, 2 * 8.0, p)  # line-search dots
    t += allreduce_time(m, 4 * 8.0, p)  # beta_up / beta_low election
    return t


def dc_project_time(m: MachineSpec, n: int) -> float:
    """Feasibility projection of the final dual: a clip plus a handful
    of equality-correction sweeps, each O(n)."""
    return m.time_flops(6.0 * 8.0 * n)


# ----------------------------------------------------------------------
# serving fleet (repro.serve.fleet)
# ----------------------------------------------------------------------
def fleet_reshard_time(
    m: MachineSpec, n_sv: int, avg_nnz: float, p: int
) -> float:
    """Re-shard a saved model onto a p-rank shard-group.

    The loader rank deserializes the registry blob (a linear pass over
    the support-vector payload), then streams each of the other ``p-1``
    ranks its contiguous SV block plus that block's coefficients
    (chainermn ``scatter_dataset`` idiom: root-sequential sends), and a
    closing barrier puts the group in service.
    """
    per_sv = sample_bytes(avg_nnz) + 8.0  # row payload + its sv_coef
    t = m.time_flops(4.0 * n_sv * max(avg_nnz, 1.0))  # deserialize pass
    if p > 1:
        shard_bytes = math.ceil(n_sv / p) * per_sv
        t += (p - 1) * p2p_time(m, shard_bytes)
        t += barrier_time(m, p)
    return t


def stream_seed_time(
    m: MachineSpec, n_new: int, n_sv: int, avg_nnz: float, p: int
) -> float:
    """Gradient seeding for one appended streaming batch.

    The incremental trainer (:mod:`repro.stream`) extends the carried
    gradient vector with γ_new = K(X_new, SV)·sv_coef − y_new: each of
    the ``p`` ranks evaluates its ``ceil(n_new/p)``-row share of the
    kernel slab against the full support-vector set, applies the
    coefficient gemv, and an allgather of the ``n_new`` seeded doubles
    gives every rank the rows its block partition needs.
    """
    rows = math.ceil(n_new / p)
    t = m.time_kernel_evals(float(rows) * n_sv, avg_nnz)
    t += m.time_flops(2.0 * rows * n_sv)  # sv_coef gemv + the −y axpy
    if p > 1:
        t += allgather_time(m, n_new * 8.0, p)
    return t


def fleet_slab_time(
    m: MachineSpec,
    slab_rows: int,
    n_sv: int,
    avg_nnz: float,
    p: int,
    *,
    dispatch_flops: float = 1_200_000.0,
    request_flops: float = 5_000.0,
) -> float:
    """One microbatched slab end-to-end on a p-rank shard-group.

    Frontend dispatch overhead, binomial broadcast of the request rows,
    the per-rank weighted kernel sub-slab (``slab_rows × ceil(n_sv/p)``
    evaluations), the rank-ordered gather of the sub-slabs back to the
    root, and the full-width bitwise reduction.  Mirrors the virtual
    time the simulated fleet actually charges per slab.
    """
    shard = math.ceil(n_sv / p)
    t = m.time_flops(dispatch_flops + request_flops * slab_rows)
    if p > 1:
        t += bcast_time(m, slab_rows * sample_bytes(avg_nnz), p)
    t += m.time_kernel_evals(float(slab_rows) * shard, avg_nnz)
    if p > 1:
        # sub-slab gather: each non-root rank sends slab_rows × shard
        # doubles to the root, root-sequential
        t += (p - 1) * p2p_time(m, slab_rows * shard * 8.0)
    t += m.time_flops(float(slab_rows) * n_sv)  # full-width row reduction
    return t
