"""``repro.perfmodel`` — analytic performance model of the paper's testbed.

Provides the machine description used for virtual-time accounting in
:mod:`repro.mpi`, collective cost formulas, the libsvm baseline time
model, and the trace-driven projector that evaluates solver time at
arbitrary process counts (up to the paper's 4096).
"""

from . import costs
from .baseline import BaselineTime, baseline_time, paper_scale_baseline
from .calibration import (
    LambdaMeasurement,
    ProjectorValidation,
    measure_lambda,
    validate_projector,
    validation_report,
)
from .machine import MachineSpec
from .projector import (
    DCProjection,
    FleetProjection,
    ProjectedTime,
    StreamProjection,
    parallel_efficiency,
    project,
    project_dc_outer,
    project_fleet,
    project_series,
    project_stream,
    speedup_vs,
)

__all__ = [
    "BaselineTime",
    "DCProjection",
    "FleetProjection",
    "LambdaMeasurement",
    "ProjectorValidation",
    "MachineSpec",
    "ProjectedTime",
    "StreamProjection",
    "baseline_time",
    "costs",
    "measure_lambda",
    "paper_scale_baseline",
    "parallel_efficiency",
    "project",
    "project_dc_outer",
    "project_fleet",
    "project_series",
    "project_stream",
    "speedup_vs",
    "validate_projector",
    "validation_report",
]
