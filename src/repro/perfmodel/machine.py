"""Machine descriptions for virtual-time accounting.

:class:`MachineSpec` captures the handful of parameters the paper's own
complexity model uses (Table I): network latency ``l``, per-byte transfer
time ``G``, the average kernel-evaluation time ``lambda`` (derived from an
effective flop rate), and node topology (cores/node, memory/node).

The default :meth:`MachineSpec.cascade` mirrors the paper's testbed — the
PNNL Cascade supercomputer (Intel Sandy Bridge nodes, 16 cores/node,
InfiniBand FDR) — so analytic projections are run against the same machine
the paper measured.  :meth:`MachineSpec.python_host` instead calibrates the
compute rate to this Python/numpy host, for comparing model output with
measured wall time of the simulated runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the modeled machine.

    The base (``latency``, ``byte_time``) pair prices *inter-node*
    point-to-point messages.  Machines may additionally describe their
    intra-node fabric (shared memory / on-node interconnect) with an
    ``(intra_latency, intra_byte_time)`` pair plus the node geometry
    ``ranks_per_node``; the runtime and the analytic cost model then
    charge the cheaper pair for messages between ranks placed on the
    same node.  When the intra parameters are ``None`` (the default,
    and the historical behaviour) both levels cost the same.
    """

    name: str
    latency: float  # l: one-way small-message latency (s), inter-node
    byte_time: float  # G: seconds per byte (1 / effective bandwidth)
    send_overhead: float  # o: CPU time to post a send (s)
    flop_rate: float  # effective double-precision flops/s of one core
    cores_per_node: int
    mem_per_node: int  # bytes
    #: fixed per-kernel-evaluation overhead in flops (index arithmetic,
    #: exp() for the RBF kernel, loop control)
    kernel_eval_overhead_flops: float = 40.0
    #: flops per nonzero touched in one sparse kernel evaluation
    kernel_flops_per_nnz: float = 4.0
    #: intra-node small-message latency (s); ``None`` = same as inter
    intra_latency: Optional[float] = None
    #: intra-node seconds per byte; ``None`` = same as inter
    intra_byte_time: Optional[float] = None
    #: MPI ranks placed per node (block placement: rank r lives on node
    #: ``r // ranks_per_node``); ``None`` = one rank per core
    ranks_per_node: Optional[int] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def cascade(cls) -> "MachineSpec":
        """PNNL Cascade-like node: Sandy Bridge + InfiniBand FDR.

        FDR 4x delivers ~6.8 GB/s effective; small-message latency
        ~1.5 us through MVAPICH2.  An effective (not peak) per-core rate
        of 4 GFLOP/s reflects the memory-bound sparse kernel evaluations.
        """
        return cls(
            name="cascade",
            latency=1.5e-6,
            byte_time=1.0 / 6.8e9,
            send_overhead=0.3e-6,
            flop_rate=4.0e9,
            cores_per_node=16,
            mem_per_node=64 * 2**30,
        )

    @classmethod
    def python_host(cls, calibrate: bool = False) -> "MachineSpec":
        """A spec whose compute rate matches this Python host.

        With ``calibrate=True`` a short numpy dot-product benchmark sets
        the effective flop rate; otherwise a conservative default is used.
        Network parameters keep the Cascade values (the simulated network
        is modeled either way).
        """
        rate = 2.0e8
        if calibrate:
            rate = _measure_flop_rate()
        base = cls.cascade()
        return replace(base, name="python-host", flop_rate=rate)

    @classmethod
    def multinode(cls, ranks_per_node: int = 16) -> "MachineSpec":
        """Cascade with its node hierarchy made explicit.

        Inter-node parameters stay the FDR fabric's; intra-node
        messages go through shared memory — ~0.3 us latency and
        ~12 GB/s effective per-pair bandwidth, the regime MVAPICH2's
        KNEM/CMA path delivers on Sandy Bridge.  Block placement puts
        ``ranks_per_node`` consecutive ranks on each node.
        """
        if ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {ranks_per_node}"
            )
        base = cls.cascade()
        return replace(
            base,
            name=f"multinode-{ranks_per_node}",
            intra_latency=0.3e-6,
            intra_byte_time=1.0 / 12.0e9,
            ranks_per_node=ranks_per_node,
        )

    # ------------------------------------------------------------------
    # node geometry
    # ------------------------------------------------------------------
    @property
    def node_size(self) -> int:
        """Ranks placed per node (defaults to one per core)."""
        return self.ranks_per_node or self.cores_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting global ``rank`` (block placement)."""
        return rank // self.node_size

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    @property
    def has_hierarchy(self) -> bool:
        """True when intra-node messages are priced differently."""
        return self.intra_latency is not None or self.intra_byte_time is not None

    # ------------------------------------------------------------------
    # derived costs
    # ------------------------------------------------------------------
    def p2p_time(self, nbytes: int, intra: bool = False) -> float:
        """Modeled time for one point-to-point message of ``nbytes``.

        ``intra=True`` prices the message on the intra-node fabric
        (falling back to the inter-node pair when the machine does not
        describe one)."""
        if intra:
            lat = self.intra_latency if self.intra_latency is not None else self.latency
            bt = (
                self.intra_byte_time
                if self.intra_byte_time is not None
                else self.byte_time
            )
            return lat + nbytes * bt
        return self.latency + nbytes * self.byte_time

    def time_flops(self, flops: float) -> float:
        return flops / self.flop_rate

    def kernel_eval_flops(self, avg_nnz: float) -> float:
        """Flops for one kernel evaluation against a row of ``avg_nnz``."""
        return self.kernel_flops_per_nnz * avg_nnz + self.kernel_eval_overhead_flops

    def time_kernel_evals(self, n_evals: float, avg_nnz: float) -> float:
        """lambda * n_evals: modeled time for ``n_evals`` kernel evaluations."""
        return self.time_flops(n_evals * self.kernel_eval_flops(avg_nnz))

    @property
    def kernel_eval_time(self) -> float:
        """lambda for an 'average' 100-nnz sample (Table I's bare lambda)."""
        return self.time_kernel_evals(1, 100.0)


def _measure_flop_rate(n: int = 400_000, repeats: int = 5) -> float:
    """Measure effective flops/s of a numpy dot product on this host."""
    rng = np.random.default_rng(0)
    a = rng.random(n)
    b = rng.random(n)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        float(a @ b)
        best = min(best, time.perf_counter() - t0)
    return (2.0 * n) / max(best, 1e-9)
