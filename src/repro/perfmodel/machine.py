"""Machine descriptions for virtual-time accounting.

:class:`MachineSpec` captures the handful of parameters the paper's own
complexity model uses (Table I): network latency ``l``, per-byte transfer
time ``G``, the average kernel-evaluation time ``lambda`` (derived from an
effective flop rate), and node topology (cores/node, memory/node).

The default :meth:`MachineSpec.cascade` mirrors the paper's testbed — the
PNNL Cascade supercomputer (Intel Sandy Bridge nodes, 16 cores/node,
InfiniBand FDR) — so analytic projections are run against the same machine
the paper measured.  :meth:`MachineSpec.python_host` instead calibrates the
compute rate to this Python/numpy host, for comparing model output with
measured wall time of the simulated runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the modeled machine."""

    name: str
    latency: float  # l: one-way small-message latency (s)
    byte_time: float  # G: seconds per byte (1 / effective bandwidth)
    send_overhead: float  # o: CPU time to post a send (s)
    flop_rate: float  # effective double-precision flops/s of one core
    cores_per_node: int
    mem_per_node: int  # bytes
    #: fixed per-kernel-evaluation overhead in flops (index arithmetic,
    #: exp() for the RBF kernel, loop control)
    kernel_eval_overhead_flops: float = 40.0
    #: flops per nonzero touched in one sparse kernel evaluation
    kernel_flops_per_nnz: float = 4.0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def cascade(cls) -> "MachineSpec":
        """PNNL Cascade-like node: Sandy Bridge + InfiniBand FDR.

        FDR 4x delivers ~6.8 GB/s effective; small-message latency
        ~1.5 us through MVAPICH2.  An effective (not peak) per-core rate
        of 4 GFLOP/s reflects the memory-bound sparse kernel evaluations.
        """
        return cls(
            name="cascade",
            latency=1.5e-6,
            byte_time=1.0 / 6.8e9,
            send_overhead=0.3e-6,
            flop_rate=4.0e9,
            cores_per_node=16,
            mem_per_node=64 * 2**30,
        )

    @classmethod
    def python_host(cls, calibrate: bool = False) -> "MachineSpec":
        """A spec whose compute rate matches this Python host.

        With ``calibrate=True`` a short numpy dot-product benchmark sets
        the effective flop rate; otherwise a conservative default is used.
        Network parameters keep the Cascade values (the simulated network
        is modeled either way).
        """
        rate = 2.0e8
        if calibrate:
            rate = _measure_flop_rate()
        base = cls.cascade()
        return replace(base, name="python-host", flop_rate=rate)

    # ------------------------------------------------------------------
    # derived costs
    # ------------------------------------------------------------------
    def p2p_time(self, nbytes: int) -> float:
        """Modeled time for one point-to-point message of ``nbytes``."""
        return self.latency + nbytes * self.byte_time

    def time_flops(self, flops: float) -> float:
        return flops / self.flop_rate

    def kernel_eval_flops(self, avg_nnz: float) -> float:
        """Flops for one kernel evaluation against a row of ``avg_nnz``."""
        return self.kernel_flops_per_nnz * avg_nnz + self.kernel_eval_overhead_flops

    def time_kernel_evals(self, n_evals: float, avg_nnz: float) -> float:
        """lambda * n_evals: modeled time for ``n_evals`` kernel evaluations."""
        return self.time_flops(n_evals * self.kernel_eval_flops(avg_nnz))

    @property
    def kernel_eval_time(self) -> float:
        """lambda for an 'average' 100-nnz sample (Table I's bare lambda)."""
        return self.time_kernel_evals(1, 100.0)


def _measure_flop_rate(n: int = 400_000, repeats: int = 5) -> float:
    """Measure effective flops/s of a numpy dot product on this host."""
    rng = np.random.default_rng(0)
    a = rng.random(n)
    b = rng.random(n)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        float(a @ b)
        best = min(best, time.perf_counter() - t0)
    return (2.0 * n) / max(best, 1e-9)
