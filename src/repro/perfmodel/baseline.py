"""Time model for the libsvm baseline (§V-A).

The paper compares against libsvm 3.18 enhanced with OpenMP on one
16-core Sandy Bridge node.  Given the operation counters from a
:class:`repro.core.libsvm_smo.LibsvmResult`, this model evaluates the
baseline's time on the target machine:

- kernel-row evaluation (cache misses) is the OpenMP-parallel part —
  it divides by the core count;
- per-iteration selection and gradient AXPY work is serial (libsvm's
  main loop), a few flops per sample per iteration.

``ncores=1`` gives "libsvm-sequential" (the Table IV reference),
``ncores=16`` gives "libsvm-enhanced" (the Figures 3-7 reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .machine import MachineSpec

if TYPE_CHECKING:  # avoid a core <-> perfmodel import cycle at runtime
    from ..core.libsvm_smo import LibsvmResult

#: serial flops per sample per iteration (selection scan + axpy + sets)
_SERIAL_FLOPS_PER_SAMPLE = 12.0


@dataclass(frozen=True)
class BaselineTime:
    """Modeled baseline execution time, decomposed."""

    total: float
    kernel_time: float  # after dividing by ncores
    serial_time: float
    ncores: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.total:.4f}s (kernel {self.kernel_time:.4f}s on "
            f"{self.ncores} cores + serial {self.serial_time:.4f}s)"
        )


def paper_scale_baseline(
    iterations: float,
    n_samples: int,
    avg_nnz: float,
    machine: MachineSpec,
    *,
    ncores: int = 16,
    cache_bytes: float | None = None,
    rows_per_iteration: float = 2.0,
) -> BaselineTime:
    """Baseline time at an arbitrary (paper-sized) problem scale.

    Models libsvm's kernel work from first principles instead of from a
    measured run: each iteration touches ``rows_per_iteration`` kernel
    rows of length N; the LRU cache (default: the node's entire memory,
    as granted in §V-A) holds ``cache_bytes / 8N`` rows, giving a
    random-access hit-rate estimate ``min(1, capacity_rows / N)``.
    This is what makes the baseline collapse on HIGGS/URL-sized
    problems — the cache that covers 60K-sample MNIST entirely holds a
    fraction of a percent of a 2.6M-sample dataset.
    """
    if ncores < 1:
        raise ValueError(f"ncores must be >= 1, got {ncores}")
    if cache_bytes is None:
        cache_bytes = float(machine.mem_per_node)
    capacity_rows = cache_bytes / (8.0 * max(n_samples, 1))
    hit_rate = min(1.0, capacity_rows / max(n_samples, 1))
    requests = rows_per_iteration * iterations * n_samples
    # cold-miss floor: every distinct working-set row is computed at
    # least once even when the cache covers the whole matrix
    cold = min(rows_per_iteration * iterations, float(n_samples)) * n_samples
    evals = max(requests * (1.0 - hit_rate), cold)
    kernel_time = machine.time_kernel_evals(evals, avg_nnz) / ncores
    # cache hits still cost an O(N) axpy pass; fold into the serial term
    serial_flops = _SERIAL_FLOPS_PER_SAMPLE * n_samples * iterations
    serial_time = machine.time_flops(serial_flops)
    return BaselineTime(
        total=kernel_time + serial_time,
        kernel_time=kernel_time,
        serial_time=serial_time,
        ncores=ncores,
    )


def baseline_time(
    result: "LibsvmResult",
    n_samples: int,
    avg_nnz: float,
    machine: MachineSpec,
    *,
    ncores: int = 16,
) -> BaselineTime:
    """Modeled time of the libsvm-style run on ``ncores`` of the machine."""
    if ncores < 1:
        raise ValueError(f"ncores must be >= 1, got {ncores}")
    kernel_time = machine.time_kernel_evals(result.kernel_evals, avg_nnz) / ncores
    serial_flops = _SERIAL_FLOPS_PER_SAMPLE * n_samples * result.iterations
    serial_time = machine.time_flops(serial_flops)
    return BaselineTime(
        total=kernel_time + serial_time,
        kernel_time=kernel_time,
        serial_time=serial_time,
        ncores=ncores,
    )
