"""Trace-driven performance projection.

The distributed solver's iteration sequence is independent of the
process count (deterministic tie-breaking — see
:mod:`repro.core.parallel`), so one instrumented run yields a
:class:`~repro.core.trace.SolveTrace` from which the execution time at
*any* p follows analytically.  This is how the scaling figures reach the
paper's 4096 processes without 4096 host threads.

Per-iteration model (matching §III-B/§IV and the runtime's own virtual
time).  The ``engine`` argument selects the communication shape:

``"packed"`` (default, matching the runtime's default engine):

- owner-rooted pair movement: a binomial broadcast of one sample per
  resident-cache miss (the trace records the exact count), rooted at
  the owning rank — O((l + m·G)·log p), no rank-0 relay hop;
- one fused typed election Allreduce per iteration — Θ(l·log p); a
  shrink event widens the following election message by one slot
  instead of sending its own δ Allreduce;

``"legacy"``:

- working-set routing: two point-to-point sends to rank 0 plus a
  binomial broadcast of both samples — O((l + m·G)·log p);
- two pickled scalar allreduces — Θ(l·log p) — plus a third at every
  shrink event.

Both engines share the compute terms:

- three pair kernel evaluations plus the γ update over the rank's share
  of the active set — (3 + 2·ceil(A_t/p))·λ;
- selection scan — O(A_t/p) flops.

Reconstruction events add ceil(S/p)·V kernel evaluations (S shrunk
samples, V contributing α>0 samples) and the Θ(bytes·G) ring.

The projector can also re-scale a trace to the paper-size problem
(``n_scale``/``iteration_scale``) for paper-scale estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List

import numpy as np

from . import costs
from .machine import MachineSpec

if TYPE_CHECKING:  # avoid a core <-> perfmodel import cycle at runtime
    from ..core.trace import SolveTrace

#: flops per active sample per iteration for selection/bookkeeping
_SELECT_FLOPS = 8.0


@dataclass(frozen=True)
class ProjectedTime:
    """Modeled solve time at one process count."""

    p: int
    total: float
    iter_compute: float
    iter_comm: float
    recon_compute: float
    recon_comm: float

    @property
    def recon_total(self) -> float:
        return self.recon_compute + self.recon_comm

    @property
    def recon_fraction(self) -> float:
        """Fig. 8's metric: share of total time spent reconstructing."""
        return self.recon_total / self.total if self.total > 0 else 0.0

    @property
    def comm_fraction(self) -> float:
        comm = self.iter_comm + self.recon_comm
        return comm / self.total if self.total > 0 else 0.0


def project(
    trace: "SolveTrace",
    machine: MachineSpec,
    p: int,
    *,
    n_scale: float = 1.0,
    iteration_scale: float = 1.0,
    engine: str = "packed",
    comm: str = "flat",
    wss: str = "mvp",
) -> ProjectedTime:
    """Evaluate the time model at ``p`` processes.

    ``n_scale`` multiplies the per-iteration active-set sizes (projecting
    the same trajectory onto a proportionally larger dataset);
    ``iteration_scale`` stretches the iteration axis (the trajectory is
    resampled, preserving its shape).  ``engine`` selects the modeled
    per-iteration communication shape (``"packed"`` / ``"legacy"`` —
    the iteration sequence, and hence the trace, is identical for both).
    ``comm`` selects the collective suite (``"flat"`` /
    ``"hierarchical"``): the hierarchical variant prices broadcasts and
    allreduces with the machine's two-level (intra/inter) parameters,
    mirroring :mod:`repro.mpi.topology`.  The reconstruction ring is
    neighbor point-to-point traffic, identical under either suite.

    ``wss`` names the working-set-selection policy the trace ran with.
    The per-iteration communication then follows the trace's own
    counters: ``wss_elections`` iterations paid the second-order
    phase-B combine (:func:`~repro.perfmodel.costs.wss2_election_time`)
    on top of the phase-A election, and ``wss_reuses`` iterations
    elected nothing at all (planning-ahead zero-communication reuse).
    Under ``"mvp"`` both counters are zero and the model reduces to the
    historical one-election-per-iteration shape.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if n_scale <= 0 or iteration_scale <= 0:
        raise ValueError("scales must be positive")
    if engine not in ("packed", "legacy"):
        raise ValueError(f"unknown engine {engine!r} (packed | legacy)")
    if comm not in ("flat", "hierarchical"):
        raise ValueError(f"unknown comm {comm!r} (flat | hierarchical)")
    if wss not in ("mvp", "second_order", "planning_ahead"):
        raise ValueError(
            f"unknown wss {wss!r} (mvp | second_order | planning_ahead)"
        )

    active = trace.active_counts.astype(np.float64) * n_scale
    iters = trace.iterations
    if iteration_scale != 1.0 and iters > 1:
        new_iters = max(1, int(round(iters * iteration_scale)))
        xs = np.linspace(0.0, 1.0, new_iters)
        xp = np.linspace(0.0, 1.0, iters)
        active = np.interp(xs, xp, active)
        iters = new_iters

    m = machine
    avg_nnz = max(trace.avg_nnz, 1.0)
    lam = m.time_kernel_evals(1.0, avg_nnz)
    sbytes = costs.sample_bytes(avg_nnz)

    # --- iterative part ------------------------------------------------
    per_rank_active = np.ceil(active / p)
    gamma_update = (2.0 * per_rank_active + 3.0) * lam
    select = m.time_flops(_SELECT_FLOPS * per_rank_active)
    iter_compute = float(np.sum(gamma_update + select))

    hier = comm == "hierarchical"
    _bcast = costs.hier_bcast_time if hier else costs.bcast_time
    _allreduce = costs.hier_allreduce_time if hier else costs.allreduce_time

    # WSS accounting: phase-B combines and zero-communication reuse
    # iterations scale with the stretched iteration axis.  Under "mvp"
    # both trace counters are zero, so these reduce to the historical
    # one-election-per-iteration shape.
    scale_i = iters / float(trace.iterations) if trace.iterations > 0 else 1.0
    n_phase_b = float(trace.wss_elections) * scale_i
    n_reuse = float(trace.wss_reuses) * scale_i
    n_elect = max(0.0, float(iters) - n_reuse)
    if n_phase_b > 0:
        # phase-B curvature scoring over the rank's low candidates
        mean_active = float(np.mean(per_rank_active)) if iters > 0 else 0.0
        iter_compute += n_phase_b * float(m.time_flops(12.0 * mean_active))

    n_shrink_events = len(trace.shrink_iters)
    if engine == "packed":
        # owner-rooted binomial broadcasts fire only on resident-cache
        # misses; the miss sequence is fixed by the (p-independent)
        # iteration sequence, so the trace records the exact count —
        # including the phase-B up-sample fetches, which go through the
        # same stash-aware path.  Traces predating the counter — or from
        # legacy runs, which move both samples every iteration — fall
        # back to the 2-per-iteration upper bound.
        n_bcast = float(trace.pair_broadcasts or 2 * trace.iterations)
        n_bcast *= scale_i
        # one fused typed election Allreduce per electing iteration
        # (reuse iterations elect nothing); a shrink event widens the
        # following election by the piggybacked δ slot
        reduces = costs.election_time(m, p, comm=comm)
        iter_comm = n_bcast * _bcast(m, sbytes, p) + n_elect * reduces
        # phase-B typed MAXLOC_PAYLOAD combine on top of phase A
        iter_comm += n_phase_b * (
            costs.wss2_election_time(m, p, comm=comm) - reduces
        )
        iter_comm += n_shrink_events * (
            costs.election_time(m, p, with_shrink=True, comm=comm)
            - costs.election_time(m, p, comm=comm)
        )
    else:
        reduces = 2.0 * _allreduce(m, costs.PICKLED_PAIR_BYTES, p)
        if wss == "mvp":
            # owners -> rank 0 routing: with probability 1/p the owner
            # *is* rank 0 and no message is sent (exactly zero at p = 1)
            route = 2.0 * costs.p2p_time(m, sbytes) * (1.0 - 1.0 / p)
            bcast = _bcast(m, 2.0 * sbytes, p)
            iter_comm = iters * (route + bcast) + n_elect * reduces
        else:
            # non-mvp legacy moves samples one at a time through the
            # stash-aware relay; the trace counts actual movements
            n_bcast = float(trace.pair_broadcasts or 2 * trace.iterations)
            n_bcast *= scale_i
            route = costs.p2p_time(m, sbytes) * (1.0 - 1.0 / p)
            iter_comm = n_bcast * (route + _bcast(m, sbytes, p))
            iter_comm += n_elect * reduces
        # phase-B pickled MAXLOC_PAYLOAD allreduce on top of phase A
        iter_comm += n_phase_b * _allreduce(m, costs.PICKLED_PAIR_BYTES, p)
        # the δ allreduce at each shrink event
        iter_comm += n_shrink_events * _allreduce(
            m, costs.PICKLED_PAIR_BYTES, p
        )

    # --- reconstruction part -------------------------------------------
    recon_compute = 0.0
    recon_comm = 0.0
    for it, events in _events_by_round(trace).items():
        shrunk = sum(e.n_shrunk_local for e in events) * n_scale
        contrib = sum(e.n_contrib_local for e in events) * n_scale
        recon_compute += np.ceil(shrunk / p) * contrib * lam
        chunk_bytes = (contrib / p) * sbytes
        recon_comm += costs.ring_exchange_time(m, chunk_bytes, p)

    total = iter_compute + iter_comm + recon_compute + recon_comm
    return ProjectedTime(
        p=p,
        total=total,
        iter_compute=iter_compute,
        iter_comm=iter_comm,
        recon_compute=recon_compute,
        recon_comm=recon_comm,
    )


def _events_by_round(trace: "SolveTrace") -> Dict[int, List]:
    rounds: Dict[int, List] = {}
    for ev in trace.recon_events:
        rounds.setdefault(ev.iteration, []).append(ev)
    return rounds


def project_series(
    trace: "SolveTrace",
    machine: MachineSpec,
    ps: Iterable[int],
    **kwargs,
) -> List[ProjectedTime]:
    """Project the same trace at several process counts."""
    return [project(trace, machine, p, **kwargs) for p in ps]


def speedup_vs(
    times: List[ProjectedTime], reference_time: float
) -> List[float]:
    """Relative speedup of each projection against a reference time."""
    if reference_time <= 0:
        raise ValueError(f"reference time must be positive, got {reference_time}")
    return [reference_time / t.total for t in times]


def parallel_efficiency(times: List[ProjectedTime]) -> List[float]:
    """Efficiency relative to the smallest-p projection in the list."""
    if not times:
        return []
    base = times[0]
    return [
        (base.total * base.p) / (t.total * t.p) if t.total > 0 else 0.0
        for t in times
    ]


# ----------------------------------------------------------------------
# divide-and-conquer outer-loop projection (repro.core.dcsvm)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DCProjection:
    """Modeled DC outer-loop time at one process count."""

    p: int
    total: float
    sub_solve: float
    rotate: float
    sync: float
    setup: float


def project_dc_outer(
    rounds: Iterable[dict],
    machine: MachineSpec,
    p: int,
    *,
    n: int,
    avg_nnz: float,
    comm: str = "flat",
) -> DCProjection:
    """Price a recorded DC outer loop at ``p`` processes.

    ``rounds`` is the per-round record list from
    :meth:`repro.core.dcsvm.DCStats.to_dict` (each entry carries the
    cluster sizes, per-cluster iteration and kernel-evaluation counts,
    and the changed / cache-miss column counts).  The sub-solve
    iteration sequence is process-count independent (the engine
    guarantee the whole projector rests on), so the same recorded
    rounds replay at any ``p``: ranks are grouped ``min(p, k)`` ways,
    each group runs its share of the clusters back to back, and the
    round's makespan is the slowest group.  The per-iteration model
    mirrors :func:`project`, with the effective gamma-update width
    recovered from the recorded kernel evaluations (the sub-solves
    shrink, so the width is usually far below the cluster size).
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if comm not in ("flat", "hierarchical"):
        raise ValueError(f"unknown comm {comm!r} (flat | hierarchical)")
    from ..sparse.partition import BlockPartition

    m = machine
    lam = m.time_kernel_evals(1.0, avg_nnz)
    sbytes = costs.sample_bytes(avg_nnz)
    _bcast = costs.hier_bcast_time if comm == "hierarchical" else costs.bcast_time

    sub_total = rotate_total = sync_total = 0.0
    pool = 0
    for r in rounds:
        sizes = r["cluster_sizes"]
        iters = r["iterations"]
        evals = r.get("kernel_evals") or [2 * it * sz for it, sz in zip(iters, sizes)]
        bcasts = r.get("pair_broadcasts") or [2 * it for it in iters]
        k_eff = len(sizes)
        ngroups = min(p, k_eff)
        gpart = BlockPartition(p, ngroups)
        cpart = BlockPartition(k_eff, ngroups)
        group_time = [0.0] * ngroups
        for c, (sz, it, ev, nb) in enumerate(zip(sizes, iters, evals, bcasts)):
            g = cpart.owner(c)
            p_c = min(gpart.count(g), sz)
            if it <= 0:
                continue
            # effective active width per iteration, recovered from the
            # recorded kernel-eval count (3 pair evals + 2*width update)
            width = min(float(sz), max(1.0, (ev / it - 3.0) / 2.0))
            per_rank = np.ceil(width / p_c)
            compute = (2.0 * per_rank + 3.0) * lam + m.time_flops(
                _SELECT_FLOPS * per_rank
            )
            group_time[g] += it * (
                compute + costs.election_time(m, p_c, comm=comm)
            )
            # owner-rooted pair broadcasts fire only on resident-cache
            # misses; the recorded per-cluster count prices them exactly
            group_time[g] += nb * _bcast(m, sbytes, p_c)
        sub_total += max(group_time) if group_time else 0.0
        rotate_total += costs.dc_rotate_time(
            m, n, r["k"], p, r.get("new_landmark_cols", 0), avg_nnz
        )
        sync_total += costs.dc_sync_time(
            m, n, p, r.get("changed", 0), r.get("new_sync_cols", 0), avg_nnz
        )
        pool = max(pool, r["k"])
    setup = (
        costs.dc_pool_time(m, n, avg_nnz)
        + costs.dc_scatter_time(m, n, p, avg_nnz)
        + costs.dc_project_time(m, n)
    )
    return DCProjection(
        p=p,
        total=sub_total + rotate_total + sync_total + setup,
        sub_solve=sub_total,
        rotate=rotate_total,
        sync=sync_total,
        setup=setup,
    )


@dataclass(frozen=True)
class FleetProjection:
    """Modeled steady-state serving fleet at one (p, replicas) point."""

    p: int
    replicas: int
    slab_rows: int
    #: one slab end-to-end on one shard-group (seconds)
    slab_time: float
    #: steady-state fleet throughput, every group pipelining slabs
    #: back to back (requests per second)
    throughput: float
    #: replacement shard-group re-shard from the registry blob (seconds)
    reshard_time: float
    #: kill -> healthy-replacement interval: detection + re-shard
    recovery_time: float
    #: requests whose completion the failover delays: the drained slab
    #: plus everything the fleet would have served during recovery
    requests_at_risk: float

    @property
    def recovery_slabs(self) -> float:
        """Slabs' worth of fleet capacity one failover consumes."""
        return self.recovery_time / self.slab_time if self.slab_time else 0.0


@dataclass(frozen=True)
class StreamProjection:
    """Modeled incremental-refresh step at one process count."""

    p: int
    #: γ-slab seeding for the appended batch (seconds)
    seed_time: float
    #: warm refit solve, projected from its trace (seconds)
    refit_time: float
    #: re-shard of the refreshed model onto the serving group (seconds)
    reshard_time: float
    #: cold full retrain, projected from its trace (seconds)
    cold_time: float

    @property
    def warm_total(self) -> float:
        """Seed + warm refit — the training cost of one stream step."""
        return self.seed_time + self.refit_time

    @property
    def time_to_refresh(self) -> float:
        """Batch arrival → refreshed model in service."""
        return self.warm_total + self.reshard_time

    @property
    def speedup(self) -> float:
        """Cold retrain time over the warm seed+refit time."""
        return self.cold_time / self.warm_total if self.warm_total > 0 else 0.0


def project_stream(
    warm_trace: "SolveTrace",
    cold_trace: "SolveTrace",
    machine: MachineSpec,
    p: int,
    *,
    n_new: int,
    n_sv: int,
    avg_nnz: float,
    engine: str = "packed",
    comm: str = "flat",
    wss: str = "mvp",
) -> StreamProjection:
    """Price one incremental stream step against its cold baseline.

    ``warm_trace`` is the trace of the warm-started ``partial_fit``
    refit, ``cold_trace`` the trace of the certifying cold solve on the
    same accumulated set (both are process-count independent, so they
    replay at any ``p``).  On top of the projected refit the warm path
    pays the γ-seeding slab for the ``n_new`` appended rows
    (:func:`~repro.perfmodel.costs.stream_seed_time`); both paths pay
    the same fleet re-shard to put the refreshed model in service.
    """
    if n_new < 0 or n_sv < 0:
        raise ValueError(
            f"n_new and n_sv must be >= 0, got ({n_new}, {n_sv})"
        )
    kwargs = dict(engine=engine, comm=comm, wss=wss)
    refit = project(warm_trace, machine, p, **kwargs).total
    cold = project(cold_trace, machine, p, **kwargs).total
    seed = (
        costs.stream_seed_time(machine, n_new, n_sv, avg_nnz, p)
        if n_new and n_sv
        else 0.0
    )
    reshard = costs.fleet_reshard_time(machine, n_sv, avg_nnz, p)
    return StreamProjection(
        p=p,
        seed_time=seed,
        refit_time=refit,
        reshard_time=reshard,
        cold_time=cold,
    )


def project_fleet(
    machine: MachineSpec,
    *,
    n_sv: int,
    avg_nnz: float,
    p: int,
    replicas: int,
    slab_rows: int = 64,
    detect_seconds: float = 1e-3,
) -> FleetProjection:
    """Price a replicated serving fleet analytically.

    The per-slab service time mirrors the simulated fleet's virtual-time
    charges (:func:`repro.perfmodel.costs.fleet_slab_time`), so the
    projection extrapolates the measured single-replica behaviour to
    replica counts no host could thread: fleet throughput scales
    linearly in ``replicas`` (shard-groups share nothing but the
    router), while one failover costs ``detect_seconds`` plus the
    re-shard of the saved model onto ``p`` ranks.
    """
    if p < 1 or replicas < 1 or slab_rows < 1:
        raise ValueError(
            f"p, replicas and slab_rows must be >= 1, got "
            f"({p}, {replicas}, {slab_rows})"
        )
    slab_time = costs.fleet_slab_time(machine, slab_rows, n_sv, avg_nnz, p)
    throughput = replicas * slab_rows / slab_time if slab_time > 0 else 0.0
    reshard = costs.fleet_reshard_time(machine, n_sv, avg_nnz, p)
    recovery = detect_seconds + reshard
    at_risk = slab_rows + throughput * recovery / max(replicas, 1)
    return FleetProjection(
        p=p,
        replicas=replicas,
        slab_rows=slab_rows,
        slab_time=slab_time,
        throughput=throughput,
        reshard_time=reshard,
        recovery_time=recovery,
        requests_at_risk=at_risk,
    )
