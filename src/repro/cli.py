"""Command-line interface.

::

    python -m repro train   --dataset mnist --heuristic multi5pc --nprocs 8
    python -m repro train   --train-file data.libsvm --C 10 --sigma-sq 4
    python -m repro predict --model model.json --data test.libsvm
    python -m repro serve-bench [--quick] [--fleet] [--out BENCH_serve.json]
    python -m repro stream-bench [--quick] [--out BENCH_stream.json]
    python -m repro info
    python -m repro bench   fig6 table5

``train`` accepts either a registry dataset (synthetic stand-in for one
of the paper's ten datasets) or a libsvm-format file; it prints the
solver statistics the paper reports (iterations, SV count, shrink and
reconstruction activity, modeled time on the Cascade-like cluster) and
can persist the trained model as JSON.

The run-time knobs (``--nprocs``, ``--heuristic``, ``--engine``,
``--comm``, ``--wss``, ``--kernel-cache-mb``, ``--dc``, ``--faults``,
``--machine``) are registered once by :func:`add_runconfig_args` and
shared verbatim by ``train``, ``serve-bench`` and ``stream-bench``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from .config import RunConfig
from .core import HEURISTICS, SVC
from .core.model import load_model, save_model
from .data import DATASETS, load_dataset
from .perfmodel import MachineSpec
from .sparse import load_libsvm


def _machine(name: str) -> MachineSpec:
    if name == "cascade":
        return MachineSpec.cascade()
    if name == "python-host":
        return MachineSpec.python_host(calibrate=True)
    if name == "multinode" or name.startswith("multinode:"):
        # "multinode" = 16 ranks/node (the Cascade node width);
        # "multinode:<k>" places k ranks per node
        rpn = 16
        if ":" in name:
            try:
                rpn = int(name.split(":", 1)[1])
            except ValueError:
                raise SystemExit(f"bad ranks-per-node in machine {name!r}")
        return MachineSpec.multinode(ranks_per_node=rpn)
    raise SystemExit(
        f"unknown machine {name!r} (cascade | python-host | "
        f"multinode | multinode:<ranks_per_node>)"
    )


def add_runconfig_args(parser) -> None:
    """Register the shared :class:`RunConfig` flags on ``parser``.

    ``train``, ``serve-bench`` and ``stream-bench`` all call this, so
    the run-knob surface stays flag-identical across subcommands; turn
    the parsed namespace back into a config with
    :func:`runconfig_from_args`.
    """
    parser.add_argument("--nprocs", type=int, default=1)
    parser.add_argument("--machine", default="cascade",
                        help="cascade | python-host | multinode | "
                             "multinode:<ranks_per_node>")
    parser.add_argument("--heuristic", default="multi5pc",
                        choices=sorted(HEURISTICS))
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault-injection spec for the "
                             "simulated runtime, e.g. "
                             "'seed=7;drop:src=0,dest=1,tag=3,nth=1' "
                             "(kinds: delay drop dup corrupt stall kill)")
    parser.add_argument("--engine", default=None,
                        choices=("packed", "legacy"),
                        help="iteration engine (default: packed, or the "
                             "REPRO_SVM_ENGINE environment variable)")
    parser.add_argument("--comm", default=None,
                        choices=("flat", "hierarchical"),
                        help="collective suite (default: flat, or the "
                             "REPRO_SVM_COMM environment variable)")
    parser.add_argument("--wss", default=None,
                        choices=("mvp", "second_order", "planning_ahead"),
                        help="working-set selection policy (default: mvp, "
                             "or the REPRO_SVM_WSS environment variable)")
    parser.add_argument("--kernel-cache-mb", type=float, default=None,
                        metavar="MB",
                        help="per-rank kernel-column cache budget in MiB "
                             "(default: 0 = off; second_order enables a "
                             "minimal provider cache regardless)")
    parser.add_argument("--dc", default=None, metavar="SPEC",
                        help="divide-and-conquer outer loop: cluster count "
                             "('4') or knobs ('clusters=4,levels=2,seed=7'); "
                             "the sub-duals warm-start the exact solve")


def runconfig_from_args(args) -> RunConfig:
    """Build a :class:`RunConfig` from :func:`add_runconfig_args` flags."""
    return RunConfig(
        nprocs=args.nprocs,
        heuristic=args.heuristic,
        engine=args.engine,
        comm=args.comm,
        machine=_machine(args.machine),
        faults=args.faults,
        dc=args.dc,
        wss=args.wss,
        kernel_cache_mb=args.kernel_cache_mb or 0.0,
    )


def _add_train(sub) -> None:
    p = sub.add_parser("train", help="train a distributed shrinking SVM")
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", choices=sorted(DATASETS),
                     help="registry dataset (synthetic stand-in)")
    src.add_argument("--train-file", help="libsvm-format training file")
    p.add_argument("--test-file", help="libsvm-format test file")
    p.add_argument("--scale", type=float, default=None,
                   help="registry dataset size multiplier")
    p.add_argument("--C", type=float, default=None)
    p.add_argument("--gamma", type=float, default=None)
    p.add_argument("--sigma-sq", type=float, default=None)
    p.add_argument("--eps", type=float, default=1e-3)
    p.add_argument("--max-iter", type=int, default=10_000_000)
    add_runconfig_args(p)
    p.add_argument("--model-out", help="write the trained model (JSON)")


def _add_predict(sub) -> None:
    p = sub.add_parser("predict", help="apply a saved model")
    p.add_argument("--model", required=True, help="model JSON from train")
    p.add_argument("--data", required=True, help="libsvm-format input")
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--scores", action="store_true",
                   help="print decision values instead of ±1 labels")


def _add_serve_bench(sub) -> None:
    p = sub.add_parser(
        "serve-bench",
        help="run the microbatched-serving benchmark sweep",
    )
    p.add_argument("--quick", action="store_true",
                   help="small request count, skip the speedup bars "
                        "(bitwise-equality checks still run)")
    p.add_argument("--out", default=None,
                   help="report path (default: ./BENCH_serve.json, or "
                        "./BENCH_serve_fleet.json with --fleet)")
    p.add_argument("--fleet", action="store_true",
                   help="run the replicated-fleet benchmark instead "
                        "(kill-mid-traffic recovery + hot-swap under load)")
    p.add_argument("--replicas", type=int, default=None,
                   help="with --fleet: restrict the sweep to one replica "
                        "count")
    add_runconfig_args(p)


def _add_stream_bench(sub) -> None:
    p = sub.add_parser(
        "stream-bench",
        help="run the incremental-refit-vs-cold-retrain drift benchmark",
    )
    p.add_argument("--quick", action="store_true",
                   help="short stream, skip the eval-reduction bar "
                        "(every refit is still certified equivalent)")
    p.add_argument("--out", default=None,
                   help="report path (default: ./BENCH_stream.json)")
    add_runconfig_args(p)


def _add_info(sub) -> None:
    sub.add_parser("info", help="list datasets and heuristics")


def _add_bench(sub) -> None:
    p = sub.add_parser("bench", help="run paper experiments")
    p.add_argument("ids", nargs="*", help="experiment ids (default: all)")


def cmd_train(args) -> int:
    if args.dataset:
        entry = DATASETS[args.dataset]
        ds = load_dataset(args.dataset, scale=args.scale)
        X_train, y_train = ds.X_train, ds.y_train
        X_test, y_test = ds.X_test, ds.y_test
        C = args.C if args.C is not None else entry.C
        sigma_sq = args.sigma_sq if args.sigma_sq is not None else (
            None if args.gamma is not None else entry.sigma_sq
        )
        print(ds.describe())
    else:
        X_train, y_train = load_libsvm(args.train_file)
        X_test = y_test = None
        C = args.C if args.C is not None else 1.0
        sigma_sq = args.sigma_sq
        print(f"loaded {args.train_file}: n={X_train.shape[0]} "
              f"d={X_train.shape[1]} density={X_train.density:.4f}")
    if args.test_file:
        n_feat = X_train.shape[1]
        X_test, y_test = load_libsvm(args.test_file, n_features=n_feat)

    run_config = runconfig_from_args(args)
    clf = SVC(
        C=C,
        gamma=args.gamma,
        sigma_sq=sigma_sq,
        eps=args.eps,
        max_iter=args.max_iter,
        config=run_config,
    )
    t0 = time.perf_counter()
    clf.fit(X_train, y_train)
    wall = time.perf_counter() - t0

    fault_stats = clf.fit_result_.spmd.fault_stats
    if fault_stats is not None:
        fired = {k: v for k, v in fault_stats["stats"].items() if v}
        print(f"fault injection: plan [{fault_stats['plan']}] "
              f"fired {fired or 'nothing'}")
    stats = clf.fit_result_.stats
    trace = clf.fit_result_.trace
    dc_stats = clf.fit_result_.dc
    if dc_stats is not None:
        for ls in dc_stats.levels:
            sizes = (
                f"sizes {min(ls.cluster_sizes)}..{max(ls.cluster_sizes)}, "
                if ls.cluster_sizes
                else ""
            )
            print(
                f"dc level {ls.level}: {ls.n_clusters} clusters ({sizes}"
                f"{ls.n_rounds} rounds, {ls.iterations} sub-iterations), "
                f"{ls.vtime * 1e3:.2f} ms modeled makespan"
            )
        print(
            f"dc outer loop [{dc_stats.config}]: gap {dc_stats.final_gap:.2e} "
            f"after {dc_stats.n_rounds} rounds, "
            f"{dc_stats.outer_vtime * 1e3:.2f} ms modeled, "
            f"refinement below starts warm"
        )
    print(
        f"trained in {wall:.2f}s wall "
        f"({stats.vtime * 1e3:.2f} ms modeled on {args.machine} "
        f"x {args.nprocs} ranks)"
    )
    print(
        f"iterations={stats.iterations} SVs={stats.n_sv} "
        f"shrunk={trace.total_shrunk()} "
        f"reconstructions={trace.n_reconstructions()} "
        f"messages={stats.messages} MB={stats.bytes_sent / 1e6:.2f}"
    )
    if stats.wss != "mvp" or trace.cache_hits or trace.cache_misses:
        cache = ""
        if trace.cache_hits or trace.cache_misses:
            cache = (f" cache hits={trace.cache_hits} "
                     f"misses={trace.cache_misses} "
                     f"hit-rate={trace.cache_hit_rate:.2f}")
        print(f"wss={stats.wss} elections={trace.wss_elections} "
              f"reuses={trace.wss_reuses}{cache}")
    print(f"train accuracy: {clf.score(X_train, y_train):.4f}")
    if X_test is not None and y_test is not None and len(y_test):
        print(f"test accuracy:  {clf.score(X_test, y_test):.4f}")
    if args.model_out:
        save_model(clf.model_, args.model_out)
        print(f"model written to {args.model_out}")
    return 0


def cmd_predict(args) -> int:
    model = load_model(args.model)
    X, _ = load_libsvm(args.data, n_features=model.sv_X.shape[1])
    from .core import decision_function_parallel

    out = decision_function_parallel(
        model, X, config=RunConfig(nprocs=args.nprocs)
    )
    values = out.decision_values if args.scores else out.labels
    for v in values:
        print(f"{v:.6g}" if args.scores else f"{int(v):+d}")
    print(
        f"# {X.shape[0]} predictions, modeled time "
        f"{out.vtime * 1e3:.3f} ms on {args.nprocs} ranks",
        file=sys.stderr,
    )
    return 0


def cmd_info(_args) -> int:
    print("datasets (synthetic stand-ins for the paper's Table III):")
    for name, e in DATASETS.items():
        print(
            f"  {name:>10}: paper N={e.paper_train:>9,} d={e.n_features:>9,} "
            f"C={e.C:<4g} sigma^2={e.sigma_sq:<4g} "
            f"default run n={max(16, int(e.paper_train * e.default_scale))}"
        )
    print("\nshrinking heuristics (Table II):")
    for name, h in HEURISTICS.items():
        thresh = (
            "never fires"
            if not h.shrinks
            else f"{h.threshold_kind}={h.threshold_value:g}"
        )
        print(f"  {name:>12}: {thresh:<18} reconstruction={h.reconstruction}")
    return 0


def cmd_serve_bench(args) -> int:
    import json
    from pathlib import Path

    from .serve import benchmark as B

    cfg = runconfig_from_args(args)
    if args.fleet:
        report = B.run_fleet_bench(quick=args.quick, config=cfg)
        if args.replicas is not None:
            report["scenarios"] = [
                s for s in report["scenarios"]
                if s["replicas"] == args.replicas
            ]
        print(B.format_fleet_report(report))
        B.check_fleet_bars(report)
        default_out = "BENCH_serve_fleet.json"
    else:
        report = B.run_serve_bench(quick=args.quick, config=cfg)
        print(B.format_report(report))
        if not args.quick:
            B.check_bars(report)
        default_out = "BENCH_serve.json"
    out = Path(args.out if args.out is not None else default_out)
    # allow_nan=False: the report convention maps non-finite floats to
    # null, so strict JSON must round-trip (satellite bugfix guarantee)
    out.write_text(
        json.dumps(report, indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out}")
    return 0


def cmd_stream_bench(args) -> int:
    import json
    from pathlib import Path

    from .stream import benchmark as SB

    report = SB.run_stream_bench(
        quick=args.quick, config=runconfig_from_args(args)
    )
    print(SB.format_report(report))
    if not args.quick:
        SB.check_bars(report)
    out = Path(args.out if args.out is not None else "BENCH_stream.json")
    out.write_text(
        json.dumps(report, indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out}")
    return 0


def cmd_bench(args) -> int:
    from .bench.__main__ import main as bench_main

    return bench_main(args.ids)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed shrinking SVM (CLUSTER 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_train(sub)
    _add_predict(sub)
    _add_serve_bench(sub)
    _add_stream_bench(sub)
    _add_info(sub)
    _add_bench(sub)
    args = parser.parse_args(argv)
    return {
        "train": cmd_train,
        "predict": cmd_predict,
        "serve-bench": cmd_serve_bench,
        "stream-bench": cmd_stream_bench,
        "info": cmd_info,
        "bench": cmd_bench,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
