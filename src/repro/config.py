"""Unified run configuration for the simulated cluster.

Every entry point that launches a simulated job — :func:`repro.core.fit_parallel`,
:class:`repro.core.SVC`, :func:`repro.core.decision_function_parallel`, the
serving subsystem (:mod:`repro.serve`) and the CLI — historically grew its own
copy of the same knobs: process count, shrinking heuristic, iteration engine,
machine model, fault plan, tracing.  :class:`RunConfig` consolidates them into
one value that can be built once and passed everywhere::

    from repro import RunConfig, SVC

    cfg = RunConfig(nprocs=8, heuristic="multi5pc", engine="packed",
                    faults="seed=7;delay:src=0,nth=2,seconds=1e-4")
    clf = SVC(C=10.0, sigma_sq=4.0, config=cfg).fit(X, y)
    scores = repro.serve.serve_requests(clf.model_, X_req, config=cfg)

The individual keyword arguments keep working everywhere (back-compat shims):
an explicitly passed keyword overrides the corresponding ``RunConfig`` field.
The sprawling per-call keywords are **deprecated in favour of RunConfig** —
they are kept for compatibility and there is no removal planned, but new
call sites should pass ``config=``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Optional

from .perfmodel.machine import MachineSpec


@dataclass(frozen=True)
class RunConfig:
    """All fit-/serve-time knobs of the simulated cluster in one place.

    Parameters
    ----------
    nprocs:
        Simulated MPI process count.
    heuristic:
        Table II shrinking heuristic name (or a
        :class:`~repro.core.shrinking.Heuristic`); only consulted by the
        training entry points.
    engine:
        Iteration engine (``"packed"`` / ``"legacy"``); ``None`` defers to
        the ``REPRO_SVM_ENGINE`` environment variable.
    wss:
        Working-set-selection policy (``"mvp"`` / ``"second_order"`` /
        ``"planning_ahead"``); ``None`` defers to the ``REPRO_SVM_WSS``
        environment variable and then the ``mvp`` default.  Only
        consulted by the training entry points.
    kernel_cache_mb:
        Per-rank byte budget (MiB) for the training-side kernel-column
        cache; ``0`` disables it (second-order policies still keep the
        few in-flight columns in a pinned workspace).  Only consulted by
        the training entry points.
    comm:
        Collective suite (``"flat"`` / ``"hierarchical"``); ``None``
        defers to the ``REPRO_SVM_COMM`` environment variable and then
        the flat default.
    machine:
        :class:`~repro.perfmodel.machine.MachineSpec` for virtual-time
        accounting (``None`` = the paper's Cascade testbed).
    faults:
        Deterministic fault-injection plan for the simulated runtime
        (a :class:`~repro.mpi.faults.FaultPlan`, its spec string, or
        ``None`` for a fault-free run).
    deadlock_timeout:
        Host-seconds watchdog for the simulated job.
    trace:
        Record a :class:`~repro.mpi.tracing.Tracer` event log on the job.
    dc:
        Divide-and-conquer outer loop for training (a
        :class:`~repro.core.dcsvm.DCConfig`, a spec string such as
        ``"clusters=4,levels=2,seed=7"``, an int cluster count, or
        ``None`` for the plain cold start).  Only consulted by the
        training entry points.
    replicas:
        Replicated shard-group count for the serving fleet
        (:func:`repro.serve.serve_fleet`); only consulted by the fleet
        entry points.
    tenant_quota:
        Default per-tenant admission quota for the serving fleet (a
        :class:`~repro.serve.router.TenantQuota`, a spec string such as
        ``"rate=500,burst=8,max_queued=16"``, or ``None`` for unlimited
        admission).  Only consulted by the fleet entry points.
    """

    nprocs: int = 1
    heuristic: Any = "multi5pc"
    engine: Optional[str] = None
    wss: Optional[str] = None
    kernel_cache_mb: float = 0.0
    comm: Optional[str] = None
    machine: Optional[MachineSpec] = None
    faults: Any = None
    deadlock_timeout: float = 120.0
    trace: bool = False
    dc: Any = None
    replicas: int = 1
    tenant_quota: Any = None

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.deadlock_timeout <= 0:
            raise ValueError(
                f"deadlock_timeout must be positive, got {self.deadlock_timeout}"
            )
        if self.kernel_cache_mb < 0:
            raise ValueError(
                f"kernel_cache_mb must be >= 0, got {self.kernel_cache_mb}"
            )

    def replace(self, **overrides: Any) -> "RunConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def merged(self, **overrides: Any) -> "RunConfig":
        """A copy where explicitly-given (non-``None``) overrides win.

        This is the back-compat shim behind every entry point that still
        accepts the individual keywords: ``None`` means "not passed, use
        the config value".  ``trace`` merges on ``True`` (the keyword can
        only turn tracing on, never silently off).
        """
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(f"unknown RunConfig fields {sorted(unknown)}")
        updates = {}
        for name, value in overrides.items():
            if name == "trace":
                if value:
                    updates[name] = True
            elif value is not None:
                updates[name] = value
        return replace(self, **updates) if updates else self

    def to_dict(self) -> dict:
        """Plain-data summary (for reports; machine/faults stringified)."""
        return {
            "nprocs": self.nprocs,
            "heuristic": (
                self.heuristic
                if isinstance(self.heuristic, str)
                else getattr(self.heuristic, "name", str(self.heuristic))
            ),
            "engine": self.engine,
            "wss": self.wss,
            "kernel_cache_mb": self.kernel_cache_mb,
            "comm": self.comm,
            "machine": self.machine.name if self.machine is not None else None,
            "faults": str(self.faults) if self.faults is not None else None,
            "deadlock_timeout": self.deadlock_timeout,
            "trace": self.trace,
            "dc": str(self.dc) if self.dc is not None else None,
            "replicas": self.replicas,
            "tenant_quota": (
                str(self.tenant_quota) if self.tenant_quota is not None else None
            ),
        }


def resolve_config(
    config: Optional[RunConfig],
    *,
    _entry: Optional[str] = None,
    **overrides: Any,
) -> RunConfig:
    """The effective :class:`RunConfig` for one call.

    ``config=None`` starts from the defaults; explicitly passed keywords
    (non-``None``) override the config's fields.  This is the single
    resolution rule shared by ``fit_parallel``, ``SVC``,
    ``decision_function_parallel``, ``serve_requests`` and the CLI.

    ``_entry`` names the public entry point doing the resolving.  When
    set and any legacy per-call keyword is in effect, a
    :class:`DeprecationWarning` points the caller at the consolidated
    path — ``config=RunConfig(...)`` or ``config.replace(**overrides)``.
    The shims keep working (the warning is the whole migration cost);
    internal call sites pass a ready-made config and never warn.
    """
    base = config if config is not None else RunConfig()
    if _entry is not None:
        effective = sorted(
            name
            for name, value in overrides.items()
            if (bool(value) if name == "trace" else value is not None)
        )
        if effective:
            warnings.warn(
                f"{_entry}: the per-call keyword shim"
                f"{'s' if len(effective) > 1 else ''} "
                f"{', '.join(effective)} "
                f"{'are' if len(effective) > 1 else 'is'} deprecated; "
                f"pass config=RunConfig(...) or "
                f"config=cfg.replace({effective[0]}=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
    return base.merged(**overrides)
