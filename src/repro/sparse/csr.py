"""A from-scratch compressed-sparse-row matrix.

The paper (§III-A) stores the training set in CSR and co-locates the
per-sample metadata with the rows; kernel rows are recomputed on the fly
against this structure instead of being cached.  This module implements
exactly the operations the solvers need, all vectorized with numpy:

- gather of row subsets (for shrinking / ring exchange) and zero-copy
  contiguous row slices (block partitioning),
- sparse-matrix * sparse-vector products (the gradient-update hot path),
- a tiled sparse × sparseᵀ product producing a dense block of pairwise
  row inner products (the blocked kernel-evaluation engine),
- squared row norms (RBF kernel precomputation),
- compact binary (de)serialization (the ring exchange payload).
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

import numpy as np

_MAGIC = b"RCSR"
_HEADER = struct.Struct("<4sqqq")  # magic, nrows, ncols, nnz

#: default tile width for :meth:`CSRMatrix.dot_csr_t` — bounds the
#: per-tile dense scratch at roughly ``tile_rows × max(ncols, nnz)``
#: doubles while keeping the tile loop out of the Python-overhead regime
DEFAULT_TILE_ROWS = 256

#: cap on the per-tile ``(tile_rows, nnz)`` gather scratch of
#: :meth:`CSRMatrix.dot_csr_t`, in doubles (512K ≈ 4 MiB) — same-sized
#: tiles recycle through the allocator instead of page-faulting fresh
#: tens-of-MiB blocks when the left operand is large
TILE_BUDGET_ELEMS = 1 << 19


class CSRError(ValueError):
    """Structurally invalid CSR input."""


class CSRMatrix:
    """Immutable CSR matrix of float64 values.

    Parameters
    ----------
    data, indices, indptr:
        Standard CSR arrays.  ``indptr`` has ``nrows + 1`` entries;
        row ``i`` occupies ``data[indptr[i]:indptr[i+1]]``.
    shape:
        ``(nrows, ncols)``.
    check:
        Validate structural invariants (on by default; disable only on
        internally-constructed matrices).
    """

    __slots__ = ("data", "indices", "indptr", "shape")

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
        *,
        check: bool = True,
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self._validate()

    def _validate(self) -> None:
        nrows, ncols = self.shape
        if nrows < 0 or ncols < 0:
            raise CSRError(f"negative shape {self.shape}")
        if self.indptr.shape != (nrows + 1,):
            raise CSRError(
                f"indptr length {self.indptr.shape[0]} != nrows+1 ({nrows + 1})"
            )
        if nrows and self.indptr[0] != 0:
            raise CSRError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise CSRError("indptr must be nondecreasing")
        nnz = int(self.indptr[-1]) if nrows else 0
        if self.data.shape[0] != nnz or self.indices.shape[0] != nnz:
            raise CSRError(
                f"data/indices length {self.data.shape[0]}/{self.indices.shape[0]} "
                f"inconsistent with indptr nnz {nnz}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= ncols):
            raise CSRError("column index out of range")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> "CSRMatrix":
        """Build from a 2-D dense array, dropping entries with |v| <= tol."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise CSRError(f"expected 2-D array, got ndim={dense.ndim}")
        mask = np.abs(dense) > tol
        counts = mask.sum(axis=1)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(dense[rows, cols], cols, indptr, dense.shape, check=False)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Tuple[np.ndarray, np.ndarray]],
        ncols: int,
    ) -> "CSRMatrix":
        """Build from per-row ``(indices, values)`` pairs."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        idx_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        for i, (idx, val) in enumerate(rows):
            idx = np.asarray(idx, dtype=np.int64)
            val = np.asarray(val, dtype=np.float64)
            if idx.shape != val.shape:
                raise CSRError(f"row {i}: indices/values length mismatch")
            indptr[i + 1] = indptr[i] + idx.size
            idx_parts.append(idx)
            val_parts.append(val)
        indices = np.concatenate(idx_parts) if idx_parts else np.empty(0, np.int64)
        data = np.concatenate(val_parts) if val_parts else np.empty(0, np.float64)
        return cls(data, indices, indptr, (len(rows), ncols))

    @classmethod
    def empty(cls, ncols: int) -> "CSRMatrix":
        return cls(
            np.empty(0), np.empty(0, np.int64), np.zeros(1, np.int64), (0, ncols),
            check=False,
        )

    @classmethod
    def vstack(cls, blocks: Iterable["CSRMatrix"]) -> "CSRMatrix":
        """Stack row blocks (all must share ncols)."""
        blocks = list(blocks)
        if not blocks:
            raise CSRError("vstack of zero blocks")
        ncols = blocks[0].shape[1]
        for b in blocks:
            if b.shape[1] != ncols:
                raise CSRError("vstack column-count mismatch")
        data = np.concatenate([b.data for b in blocks])
        indices = np.concatenate([b.indices for b in blocks])
        nrows = sum(b.shape[0] for b in blocks)
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        pos = 0
        offset = 0
        for b in blocks:
            n = b.shape[0]
            indptr[pos + 1 : pos + n + 1] = b.indptr[1:] + offset
            offset += int(b.indptr[-1])
            pos += n
        return cls(data, indices, indptr, (nrows, ncols), check=False)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def avg_row_nnz(self) -> float:
        return self.nnz / self.shape[0] if self.shape[0] else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )

    def nbytes(self) -> int:
        """In-memory footprint of the three CSR arrays."""
        return self.data.nbytes + self.indices.nbytes + self.indptr.nbytes

    # ------------------------------------------------------------------
    # row access / gather
    # ------------------------------------------------------------------
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of (indices, values) for row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range for {self.shape[0]} rows")
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self, i: int) -> int:
        return int(self.indptr[i + 1] - self.indptr[i])

    def take_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Gather a row subset (in the given order) into a new matrix."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise IndexError("row index out of range in take_rows")
        lens = self.indptr[rows + 1] - self.indptr[rows]
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        nnz = int(indptr[-1])
        # vectorized gather of the value/index ranges
        gather = _range_gather(self.indptr[rows], lens, nnz)
        return CSRMatrix(
            self.data[gather],
            self.indices[gather],
            indptr,
            (rows.size, self.shape[1]),
            check=False,
        )

    def row_slice(self, lo: int, hi: int) -> "CSRMatrix":
        """Zero-copy view of the contiguous row range ``[lo, hi)``.

        ``data`` and ``indices`` are slices (views) of this matrix's
        arrays; only the ``hi - lo + 1`` indptr entries are newly
        allocated.  Use this instead of ``take_rows(np.arange(lo, hi))``
        wherever a block-row shard is read-only — it costs O(rows)
        instead of O(nnz).
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.shape[0]:
            raise IndexError(
                f"row slice [{lo}, {hi}) invalid for {self.shape[0]} rows"
            )
        a, b = int(self.indptr[lo]), int(self.indptr[hi])
        return CSRMatrix(
            self.data[a:b],
            self.indices[a:b],
            self.indptr[lo : hi + 1] - a,
            (hi - lo, self.shape[1]),
            check=False,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        rows = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr).astype(np.int64)
        )
        out[rows, self.indices] = self.data
        return out

    # ------------------------------------------------------------------
    # numeric kernels (the solver hot path)
    # ------------------------------------------------------------------
    def row_norms_sq(self) -> np.ndarray:
        """||x_i||^2 for every row (vectorized)."""
        return _segment_sums(self.data * self.data, self.indptr)

    def dot_sparse_vec(
        self, vec_indices: np.ndarray, vec_values: np.ndarray
    ) -> np.ndarray:
        """X @ v for a sparse vector v given as (indices, values).

        This is the gradient-update hot path: one call per working-set
        sample per iteration, producing the dot products of every local
        row with that sample.
        """
        dense = np.zeros(self.shape[1])
        dense[vec_indices] = vec_values
        return self.dot_dense_vec(dense)

    def dot_dense_vec(self, dense: np.ndarray) -> np.ndarray:
        """X @ v for a dense vector v of length ncols."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape != (self.shape[1],):
            raise CSRError(
                f"vector of shape {dense.shape} incompatible with ncols {self.shape[1]}"
            )
        prod = self.data * dense[self.indices]
        return _segment_sums(prod, self.indptr)

    def dot_csr_t(
        self, other: "CSRMatrix", *, tile_rows: int = DEFAULT_TILE_ROWS
    ) -> np.ndarray:
        """Dense ``self @ otherᵀ`` — every pairwise row inner product.

        The product is computed tile-at-a-time over ``other``'s rows:
        each tile is scattered into a dense ``(t, ncols)`` scratch, the
        nonzeros of ``self`` are gathered against it, and per-row segment
        sums produce ``t`` output columns at once.  ``tile_rows`` is an
        upper bound — the effective tile width also caps the ``(t, nnz)``
        gather scratch at :data:`TILE_BUDGET_ELEMS` doubles, so a very
        dense ``self`` shrinks the tiles instead of blowing past the
        allocator's reuse threshold (the tiling never affects the
        result, bitwise; see below).

        Column ``j`` of the result is produced by exactly the same
        scatter / gather / segment-sum sequence as
        ``self.dot_sparse_vec(*other.row(j))``, so the blocked product is
        *bitwise* identical to the row-at-a-time path — the property that
        lets the solvers batch kernel evaluations without perturbing
        their deterministic iteration sequences.
        """
        if other.shape[1] != self.shape[1]:
            raise CSRError(
                f"dot_csr_t column mismatch: {self.shape[1]} vs {other.shape[1]}"
            )
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        n, m = self.shape[0], other.shape[0]
        out = np.zeros((n, m))
        if n == 0 or m == 0 or self.nnz == 0:
            return out
        tile_rows = max(1, min(tile_rows, TILE_BUDGET_ELEMS // self.nnz))
        for lo in range(0, m, tile_rows):
            hi = min(lo + tile_rows, m)
            a, b = int(other.indptr[lo]), int(other.indptr[hi])
            dense = np.zeros((hi - lo, self.shape[1]))
            rows = np.repeat(
                np.arange(hi - lo), np.diff(other.indptr[lo : hi + 1])
            )
            dense[rows, other.indices[a:b]] = other.data[a:b]
            prod = dense.take(self.indices, axis=1)
            prod *= self.data
            out[:, lo:hi] = _segment_sums_2d(prod, self.indptr).T
        return out

    def dot_rows(self, i: int, j: int) -> float:
        """<x_i, x_j> between two rows of this matrix."""
        ai, av = self.row(i)
        bi, bv = self.row(j)
        return sparse_sparse_dot(ai, av, bi, bv)

    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """X @ D for a dense (ncols, k) matrix; returns (nrows, k)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim == 1:
            return self.dot_dense_vec(dense)
        out = np.empty((self.shape[0], dense.shape[1]))
        for k in range(dense.shape[1]):
            out[:, k] = self.dot_dense_vec(dense[:, k])
        return out

    def transpose(self) -> "CSRMatrix":
        """The transpose, as a new CSR matrix (CSC view of this one).

        §III-A notes the paper sticks to basic CSR and leaves other
        formats to future work; the transpose enables the column-wise
        operations (feature statistics, CSC-style access) that
        motivated that discussion.
        """
        nrows, ncols = self.shape
        if self.nnz == 0:
            return CSRMatrix(
                np.empty(0),
                np.empty(0, np.int64),
                np.zeros(ncols + 1, np.int64),
                (ncols, nrows),
                check=False,
            )
        rows = np.repeat(
            np.arange(nrows, dtype=np.int64), np.diff(self.indptr)
        )
        order = np.argsort(self.indices, kind="stable")
        new_indices = rows[order]
        new_data = self.data[order]
        counts = np.bincount(self.indices, minlength=ncols)
        new_indptr = np.zeros(ncols + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        return CSRMatrix(
            new_data, new_indices, new_indptr, (ncols, nrows), check=False
        )

    def col_nnz(self) -> np.ndarray:
        """Nonzero count per column."""
        return np.bincount(self.indices, minlength=self.shape[1]).astype(
            np.int64
        )

    # ------------------------------------------------------------------
    # serialization (ring-exchange payloads)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact binary encoding: header + indptr + indices + data."""
        header = _HEADER.pack(_MAGIC, self.shape[0], self.shape[1], self.nnz)
        return b"".join(
            (header, self.indptr.tobytes(), self.indices.tobytes(), self.data.tobytes())
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CSRMatrix":
        if len(blob) < _HEADER.size:
            raise CSRError("truncated CSR blob (no header)")
        magic, nrows, ncols, nnz = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise CSRError(f"bad CSR magic {magic!r}")
        off = _HEADER.size
        need = off + 8 * (nrows + 1) + 8 * nnz + 8 * nnz
        if len(blob) != need:
            raise CSRError(f"CSR blob length {len(blob)} != expected {need}")
        indptr = np.frombuffer(blob, dtype=np.int64, count=nrows + 1, offset=off)
        off += indptr.nbytes
        indices = np.frombuffer(blob, dtype=np.int64, count=nnz, offset=off)
        off += indices.nbytes
        data = np.frombuffer(blob, dtype=np.float64, count=nnz, offset=off)
        return cls(data.copy(), indices.copy(), indptr.copy(), (nrows, ncols))

    # ------------------------------------------------------------------
    # comparisons (tests)
    # ------------------------------------------------------------------
    def allclose(self, other: "CSRMatrix", rtol: float = 1e-12) -> bool:
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.data, other.data, rtol=rtol)
        )


def sparse_sparse_dot(
    ai: np.ndarray, av: np.ndarray, bi: np.ndarray, bv: np.ndarray
) -> float:
    """Dot product of two sparse vectors with *sorted* index arrays."""
    if ai.size == 0 or bi.size == 0:
        return 0.0
    # match indices via searchsorted (both sides sorted)
    pos = np.searchsorted(bi, ai)
    pos = np.minimum(pos, bi.size - 1)
    hit = bi[pos] == ai
    return float(np.dot(av[hit], bv[pos[hit]]))


def _segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sums of ``values`` segmented by ``indptr`` — vectorized.

    Uses ``np.add.reduceat`` rather than a cumsum difference so each
    row's sum depends only on that row's entries.  This keeps per-row
    results bitwise identical no matter how the matrix is partitioned
    into blocks — the property that makes the distributed solver's
    iteration sequence independent of the process count.
    """
    nrows = indptr.shape[0] - 1
    if nrows == 0:
        return np.zeros(0)
    nnz = int(indptr[-1])
    if nnz == 0:
        return np.zeros(nrows)
    starts = indptr[:-1]
    # reduceat rejects indices == len(values); those belong to trailing
    # empty rows, which the empty-row mask zeroes anyway
    valid = starts < nnz
    out = np.zeros(nrows)
    out[valid] = np.add.reduceat(values, starts[valid])
    # reduceat yields values[start] for empty segments; zero them
    empty = indptr[1:] == indptr[:-1]
    if empty.any():
        out[empty] = 0.0
    return out


def _segment_sums_2d(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Row-segmented sums of each row of a 2-D ``values`` array.

    Each row of ``values`` is one flattened ``(nnz,)`` product vector;
    the rows are summed with a *single* ``np.add.reduceat`` over the
    flattened array, replicating the per-row segment starts at offsets
    of ``nnz``.  Because ``indptr[0] == 0`` is always a valid start, the
    last valid segment of row ``j`` ends exactly at ``(j + 1) * nnz`` —
    the same extent it has in the 1-D call — so every ``(row, segment)``
    pair is reduced over the same elements with the same reduction as
    :func:`_segment_sums` on that row alone, and every output element is
    bitwise identical to the 1-D path.  (A 2-D ``reduceat`` along
    ``axis=1`` computes the same thing but pays a large per-segment
    dispatch cost; the flat form runs at the 1-D inner-loop speed.)
    """
    t = values.shape[0]
    nrows = indptr.shape[0] - 1
    if nrows == 0:
        return np.zeros((t, 0))
    nnz = int(indptr[-1])
    if nnz == 0 or t == 0:
        return np.zeros((t, nrows))
    starts = indptr[:-1]
    # reduceat rejects indices == len(values); those belong to trailing
    # empty rows, which the empty-row mask zeroes anyway
    valid = starts < nnz
    sv = starts[valid].astype(np.intp, copy=False)
    starts_flat = (sv[None, :] + (np.arange(t, dtype=np.intp) * nnz)[:, None]).ravel()
    flat = np.ascontiguousarray(values).reshape(-1)
    seg = np.add.reduceat(flat, starts_flat).reshape(t, sv.size)
    out = np.zeros((t, nrows))
    out[:, valid] = seg
    # reduceat yields values[start] for empty segments; zero them
    empty = indptr[1:] == indptr[:-1]
    if empty.any():
        out[:, empty] = 0.0
    return out


def _range_gather(starts: np.ndarray, lens: np.ndarray, total: int) -> np.ndarray:
    """Indices concatenating ranges [starts[k], starts[k]+lens[k]) — vectorized.

    Equivalent to ``np.concatenate([np.arange(s, s+n) for s, n in
    zip(starts, lens)])`` without the Python loop.
    """
    if total == 0:
        return np.empty(0, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    # output offset at which each range begins
    out_starts = np.zeros(lens.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=out_starts[1:])
    # element k of the output is: start of its range + position within it
    return np.repeat(starts, lens) + (
        np.arange(total, dtype=np.int64) - np.repeat(out_starts, lens)
    )
