"""``repro.sparse`` — the CSR storage substrate (paper §III-A).

Compressed-sparse-row matrices with the vectorized operations the SVM
solvers need, libsvm-format I/O, and the block-row partitioner used by
the distributed algorithms.
"""

from .csr import CSRError, CSRMatrix, sparse_sparse_dot
from .io import (
    FormatError,
    dumps_libsvm,
    load_libsvm,
    loads_libsvm,
    save_libsvm,
)
from .partition import BlockPartition, split_rows

__all__ = [
    "BlockPartition",
    "CSRError",
    "CSRMatrix",
    "FormatError",
    "dumps_libsvm",
    "load_libsvm",
    "loads_libsvm",
    "save_libsvm",
    "sparse_sparse_dot",
    "split_rows",
]
