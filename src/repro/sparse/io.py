"""libsvm/svmlight text-format reader and writer.

The paper's datasets come from the libsvm page in this format::

    <label> <index>:<value> <index>:<value> ...

Indices are 1-based in the file and converted to 0-based columns.  The
reader is tolerant of comments (``#``), blank lines and unsorted indices
(rows are sorted on load); the writer emits sorted 1-based indices.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Tuple, Union

import numpy as np

from .csr import CSRMatrix


class FormatError(ValueError):
    """Malformed libsvm-format input."""


def loads_libsvm(
    text: str, *, n_features: int | None = None
) -> Tuple[CSRMatrix, np.ndarray]:
    """Parse libsvm-format text into ``(X, y)``."""
    return _read(io.StringIO(text), n_features)


def load_libsvm(
    path: Union[str, Path], *, n_features: int | None = None
) -> Tuple[CSRMatrix, np.ndarray]:
    """Load a libsvm-format file into ``(X, y)``."""
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh, n_features)


def _read(fh: TextIO, n_features: int | None) -> Tuple[CSRMatrix, np.ndarray]:
    labels: List[float] = []
    idx_parts: List[np.ndarray] = []
    val_parts: List[np.ndarray] = []
    max_col = -1
    for lineno, line in enumerate(fh, start=1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        try:
            labels.append(float(fields[0]))
        except ValueError as exc:
            raise FormatError(f"line {lineno}: bad label {fields[0]!r}") from exc
        cols = np.empty(len(fields) - 1, dtype=np.int64)
        vals = np.empty(len(fields) - 1, dtype=np.float64)
        for k, tok in enumerate(fields[1:]):
            try:
                i, v = tok.split(":", 1)
                cols[k] = int(i) - 1
                vals[k] = float(v)
            except ValueError as exc:
                raise FormatError(
                    f"line {lineno}: bad feature token {tok!r}"
                ) from exc
            if cols[k] < 0:
                raise FormatError(f"line {lineno}: index must be >= 1")
        order = np.argsort(cols, kind="stable")
        cols, vals = cols[order], vals[order]
        if cols.size > 1 and np.any(np.diff(cols) == 0):
            raise FormatError(f"line {lineno}: duplicate feature index")
        if cols.size:
            max_col = max(max_col, int(cols[-1]))
        idx_parts.append(cols)
        val_parts.append(vals)
    ncols = n_features if n_features is not None else max_col + 1
    if max_col >= ncols:
        raise FormatError(
            f"feature index {max_col + 1} exceeds n_features={ncols}"
        )
    X = CSRMatrix.from_rows(list(zip(idx_parts, val_parts)), ncols)
    return X, np.asarray(labels, dtype=np.float64)


def dumps_libsvm(X: CSRMatrix, y: np.ndarray) -> str:
    """Serialize ``(X, y)`` to libsvm-format text."""
    if len(y) != X.shape[0]:
        raise FormatError(f"{len(y)} labels for {X.shape[0]} rows")
    lines: List[str] = []
    for i in range(X.shape[0]):
        cols, vals = X.row(i)
        label = y[i]
        head = (
            f"{int(label)}"
            if float(label).is_integer()
            else f"{float(label):.17g}"
        )
        toks = " ".join(f"{c + 1}:{v:.17g}" for c, v in zip(cols, vals))
        lines.append(f"{head} {toks}".rstrip())
    return "\n".join(lines) + ("\n" if lines else "")


def save_libsvm(path: Union[str, Path], X: CSRMatrix, y: np.ndarray) -> None:
    Path(path).write_text(dumps_libsvm(X, y), encoding="utf-8")
