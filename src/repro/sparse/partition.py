"""Block-row partitioning of the training set across ranks.

Algorithm 2 assigns each of the ``p`` processes a contiguous block of
``~N/p`` samples.  Global sample indices are the coin of the realm in the
distributed solver (the allreduced worst violators carry global indices),
so the partition exposes fast owner/local-index translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .csr import CSRMatrix


@dataclass(frozen=True)
class BlockPartition:
    """A balanced contiguous partition of ``n`` items over ``p`` parts.

    The first ``n % p`` parts get ``ceil(n/p)`` items, the rest
    ``floor(n/p)`` — the standard MPI block distribution.
    """

    n: int
    p: int

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"need at least one part, got p={self.p}")
        if self.n < 0:
            raise ValueError(f"negative item count {self.n}")

    # ------------------------------------------------------------------
    def count(self, rank: int) -> int:
        """Items owned by ``rank``."""
        self._check_rank(rank)
        base, extra = divmod(self.n, self.p)
        return base + (1 if rank < extra else 0)

    def start(self, rank: int) -> int:
        """Global index of the first item owned by ``rank``."""
        self._check_rank(rank)
        base, extra = divmod(self.n, self.p)
        return rank * base + min(rank, extra)

    def bounds(self, rank: int) -> Tuple[int, int]:
        """Half-open global range ``[start, end)`` for ``rank``."""
        s = self.start(rank)
        return s, s + self.count(rank)

    def owner(self, global_index: int) -> int:
        """Which rank owns a global index."""
        if not 0 <= global_index < self.n:
            raise IndexError(
                f"global index {global_index} out of range [0, {self.n})"
            )
        base, extra = divmod(self.n, self.p)
        boundary = extra * (base + 1)
        if global_index < boundary:
            return global_index // (base + 1)
        if base == 0:
            # all items live in the first `extra` ranks
            raise AssertionError("unreachable: index beyond populated ranks")
        return extra + (global_index - boundary) // base

    def to_local(self, global_index: int) -> int:
        return global_index - self.start(self.owner(global_index))

    def to_global(self, rank: int, local_index: int) -> int:
        if not 0 <= local_index < self.count(rank):
            raise IndexError(
                f"local index {local_index} out of range for rank {rank} "
                f"(count {self.count(rank)})"
            )
        return self.start(rank) + local_index

    def counts(self) -> np.ndarray:
        return np.array([self.count(r) for r in range(self.p)], dtype=np.int64)

    def displs(self) -> np.ndarray:
        return np.array([self.start(r) for r in range(self.p)], dtype=np.int64)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise IndexError(f"rank {rank} out of range for p={self.p}")


def split_rows(X: CSRMatrix, part: BlockPartition) -> List[CSRMatrix]:
    """Slice a CSR matrix into per-rank row blocks following ``part``."""
    if part.n != X.shape[0]:
        raise ValueError(
            f"partition over {part.n} items does not match {X.shape[0]} rows"
        )
    blocks = []
    for rank in range(part.p):
        lo, hi = part.bounds(rank)
        blocks.append(X.row_slice(lo, hi))
    return blocks
