"""The streaming benchmark: incremental refit vs cold retrain.

Drives an :class:`~repro.stream.IncrementalSVC` over a seeded
rotating-boundary drift stream with ``certify=True``, so every
``partial_fit`` is proven tolerance-equivalent to a cold full solve by
:func:`~repro.core.equiv.assert_model_equiv` — and the cold solve's
iteration/kernel-eval ledger becomes the baseline the incremental path
is charged against.  The headline number is the cumulative kernel-eval
reduction (cold / incremental, γ-seeding slabs included); the
acceptance bar is ≥ 2× over a ≥ 10-batch stream.

A second part replays the final stream step uncertified to harvest its
warm and cold solve traces, then prices the refresh loop at cluster
scale with :func:`~repro.perfmodel.project_stream` (seed slab + warm
refit + fleet re-shard vs cold retrain, p = 16..256).

``repro stream-bench`` and ``benchmarks/bench_stream.py`` both route
here; the report lands in ``BENCH_stream.json``.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional

from ..config import RunConfig
from ..core.solver import fit_parallel
from ..data.synthetic import DriftStreamSpec, drift_stream
from ..perfmodel import MachineSpec, project_stream
from .incremental import IncrementalSVC
from .scenario import RefreshPolicy, StreamScenario, run_stream

#: mild rotating drift: slow boundary rotation, low label noise — the
#: regime where warm-started refits repay their seeding cost the most
SPEC = DriftStreamSpec(
    n_batches=12, batch_size=40, n_features=3, drift="rotate",
    rotate_per_batch=3.1415 / 48, noise=0.1, seed=0,
)
QUICK_SPEC = DriftStreamSpec(
    n_batches=5, batch_size=32, n_features=3, drift="rotate",
    rotate_per_batch=3.1415 / 48, noise=0.1, seed=0,
)

C, GAMMA, EPS = 10.0, 0.5, 1e-3
NPROCS = 2
#: the acceptance bar: cumulative kernel evals, cold / incremental
EVAL_REDUCTION_BAR = 2.0
#: the bar only counts on streams at least this long
MIN_BATCHES = 10

#: the projected-scaling sweep (16 ranks/node multi-node machine)
SWEEP_PS = (16, 64, 256)
QUICK_PS = (16, 64)
RANKS_PER_NODE = 16


def _projection_sweep(spec: DriftStreamSpec, base: RunConfig, ps) -> dict:
    """Replay the stream uncertified, harvest the last step's warm and
    cold traces, and price one refresh step at each ``p``."""
    batches = drift_stream(spec)
    clf = IncrementalSVC(C=C, gamma=GAMMA, eps=EPS, config=base)
    for Xb, yb in batches:
        clf.partial_fit(Xb, yb)
    warm = clf.fit_result_
    n_sv = clf.model_.n_sv
    cold = fit_parallel(clf.X_, clf.y_, clf._params(), config=base)
    machine = MachineSpec.multinode(ranks_per_node=RANKS_PER_NODE)
    avg_nnz = clf.X_.avg_row_nnz

    sweep = []
    for p in ps:
        proj = project_stream(
            warm.trace, cold.trace, machine, p,
            n_new=spec.batch_size, n_sv=n_sv, avg_nnz=avg_nnz,
        )
        sweep.append({
            "p": p,
            "seed_ms": 1e3 * proj.seed_time,
            "warm_refit_ms": 1e3 * proj.refit_time,
            "reshard_ms": 1e3 * proj.reshard_time,
            "time_to_refresh_ms": 1e3 * proj.time_to_refresh,
            "cold_ms": 1e3 * proj.cold_time,
            "speedup": proj.speedup,
        })
    return {
        "machine": "multinode",
        "ranks_per_node": RANKS_PER_NODE,
        "warm_iterations": warm.iterations,
        "cold_iterations": cold.iterations,
        "n_sv": n_sv,
        "sweep": sweep,
    }


def run_stream_bench(
    quick: bool = False, config: Optional[RunConfig] = None
) -> dict:
    """Run the certified drift scenario plus the projection sweep.

    ``config`` carries run knobs shared by every solve (machine, comm,
    engine, ...); the benchmark's fixed ``nprocs`` overrides its field.
    """
    base = (config or RunConfig()).replace(nprocs=NPROCS)
    spec = QUICK_SPEC if quick else SPEC
    scenario = StreamScenario(
        spec=spec, C=C, gamma=GAMMA, eps=EPS,
        policy=RefreshPolicy(every_k=1),
        config=base, certify=True,
    )
    report = run_stream(scenario)
    uncertified = [
        r["batch"] for r in report.refits if not r["certified"]
    ]
    if uncertified:
        raise AssertionError(
            f"refits {uncertified} missed equivalence certification"
        )
    projection = _projection_sweep(
        spec, base, QUICK_PS if quick else SWEEP_PS
    )
    return {
        "bench": "stream",
        "quick": quick,
        "spec": asdict(spec),
        "scenario": {"C": C, "gamma": GAMMA, "eps": EPS, "nprocs": NPROCS,
                     "policy": report.policy},
        "eval_reduction_bar": EVAL_REDUCTION_BAR,
        "min_batches": MIN_BATCHES,
        "certified_refits": len(report.refits),
        "stream": report.to_dict(),
        "projection": projection,
    }


def check_bars(report: dict) -> None:
    """Assert the acceptance bars over a finished report."""
    stream = report["stream"]
    if stream["n_batches"] < report["min_batches"]:
        raise AssertionError(
            f"stream too short for the bar: {stream['n_batches']} batches "
            f"< {report['min_batches']}"
        )
    reduction = stream["eval_reduction"]
    if reduction is None:
        raise AssertionError(
            "no certified cold baseline — eval reduction undefined"
        )
    if reduction < report["eval_reduction_bar"]:
        raise AssertionError(
            f"kernel-eval reduction {reduction:.2f}x below the "
            f"{report['eval_reduction_bar']}x bar "
            f"(incremental {stream['cumulative_kernel_evals']:,} vs "
            f"cold {stream['cumulative_cold_kernel_evals']:,})"
        )
    for row in report["projection"]["sweep"]:
        if row["speedup"] <= 1.0:
            raise AssertionError(
                f"projected warm refresh loses to cold retrain at "
                f"p={row['p']}: {row['speedup']:.2f}x"
            )


def format_report(report: dict) -> str:
    stream = report["stream"]
    spec = report["spec"]
    lines = [
        f"incremental refit vs cold retrain "
        f"({spec['drift']} drift, {stream['n_batches']} batches x "
        f"{stream['batch_size']} rows, simulated p={report['scenario']['nprocs']}, "
        f"every refit certified):",
        f"  kernel evals: incremental {stream['cumulative_kernel_evals']:>10,} "
        f"(seeding included)",
        f"                cold        "
        f"{stream['cumulative_cold_kernel_evals'] or 0:>10,}",
        f"  eval reduction: {stream['eval_reduction']:.2f}x "
        f"(bar {report['eval_reduction_bar']}x on >= "
        f"{report['min_batches']} batches)",
        f"  refreshes: {stream['refreshes']}  final SVs: "
        f"{stream['final_n_sv']}  mean prequential accuracy: "
        f"{stream['mean_prequential_accuracy']:.3f}",
        "",
        "  accuracy over time (served model, scored before training):",
        "    " + " ".join(
            "--" if a is None else f"{a:.2f}"
            for a in stream["accuracy_over_time"]
        ),
        "",
        f"projected refresh step, {report['projection']['machine']} "
        f"({report['projection']['ranks_per_node']} ranks/node), "
        f"{report['projection']['n_sv']} SVs:",
        f"  {'p':>5} {'seed':>8} {'refit':>8} {'reshard':>8} "
        f"{'refresh':>8} {'cold':>8} {'speedup':>8}",
    ]
    for r in report["projection"]["sweep"]:
        lines.append(
            f"  {r['p']:>5} {r['seed_ms']:>6.2f}ms {r['warm_refit_ms']:>6.2f}ms "
            f"{r['reshard_ms']:>6.2f}ms {r['time_to_refresh_ms']:>6.2f}ms "
            f"{r['cold_ms']:>6.2f}ms {r['speedup']:>7.2f}x"
        )
    return "\n".join(lines)
