"""``repro.stream`` — incremental training on a labeled batch stream.

:class:`IncrementalSVC` grows (``partial_fit``) and shrinks
(``forget``) the training set without cold re-solves: each refit is
warm-started from the previous exact dual state and certified
tolerance-equivalent to a cold full solve on demand.  The scenario
harness (:class:`StreamScenario` / :func:`run_stream`) composes it
with a concept-drift stream (:mod:`repro.data`), a refresh policy and
an in-place serving-fleet refresh through the
:class:`~repro.serve.ModelRegistry` hot-swap.
"""

from .incremental import IncrementalSVC, RefitRecord
from .scenario import (
    BatchRecord,
    RefreshPolicy,
    StreamReport,
    StreamScenario,
    run_stream,
)

__all__ = [
    "BatchRecord",
    "IncrementalSVC",
    "RefitRecord",
    "RefreshPolicy",
    "StreamReport",
    "StreamScenario",
    "run_stream",
]
