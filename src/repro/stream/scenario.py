"""Drift-scenario harness: a stream, a refresh policy, a serving fleet.

:func:`run_stream` drives an :class:`~repro.stream.IncrementalSVC`
over a seeded :func:`~repro.data.drift_stream` and keeps a serving
:class:`~repro.serve.ModelRegistry` fresh through its atomic hot-swap:

- **prequential evaluation** — each incoming batch is scored against
  the *currently served* (registry-active) model before the learner
  trains on it, giving the honest accuracy-over-time curve a deployed
  fleet would observe;
- **refresh policy** — the served model refreshes every ``every_k``
  batches, or immediately when the prequential accuracy falls below
  ``accuracy_floor`` (drift-triggered refresh);
- **time-to-refresh** — each refresh is priced as the refit's modeled
  solve time plus the fleet re-shard of the new model onto the
  serving ranks (:func:`~repro.perfmodel.costs.fleet_reshard_time`),
  the same charge a replacement shard-group pays after a failover.

Everything is deterministic per seed: the stream, the refit
trajectories, the virtual times and therefore the whole report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import RunConfig, resolve_config
from ..data.synthetic import DriftStreamSpec, drift_stream
from ..perfmodel import costs
from ..perfmodel.machine import MachineSpec
from ..serve.registry import ModelRegistry
from .incremental import IncrementalSVC

__all__ = [
    "BatchRecord",
    "RefreshPolicy",
    "StreamReport",
    "StreamScenario",
    "run_stream",
]


@dataclass(frozen=True)
class RefreshPolicy:
    """When the served model is replaced by the freshly refit one.

    ``every_k``: refresh after every k-th trained batch (k=1 — always
    serve the latest model).  ``accuracy_floor``: additionally refresh
    as soon as a batch's prequential accuracy drops below the floor,
    however recent the last refresh (drift trigger).
    """

    every_k: int = 1
    accuracy_floor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_k < 1:
            raise ValueError(f"every_k must be >= 1, got {self.every_k}")
        if self.accuracy_floor is not None and not (
            0.0 <= self.accuracy_floor <= 1.0
        ):
            raise ValueError(
                f"accuracy_floor must be in [0, 1], got {self.accuracy_floor}"
            )


@dataclass(frozen=True)
class StreamScenario:
    """One reproducible streaming experiment: drift + learner + policy."""

    spec: DriftStreamSpec = field(default_factory=DriftStreamSpec)
    C: float = 10.0
    gamma: float = 0.5
    eps: float = 1e-3
    policy: RefreshPolicy = field(default_factory=RefreshPolicy)
    config: Optional[RunConfig] = None
    certify: bool = False


@dataclass
class BatchRecord:
    """One stream step: what the fleet served, what the learner paid."""

    batch: int
    n_seen: int  # dataset size after training on this batch
    prequential_accuracy: Optional[float]  # served-model acc, pre-train
    served_version: Optional[int]  # registry version that scored it
    refreshed: bool
    refresh_trigger: Optional[str]  # "every_k" | "accuracy" | None
    new_version: Optional[int]
    time_to_refresh: Optional[float]  # refit vtime + fleet re-shard
    kernel_evals: int  # incremental cost of this step's refit

    def to_dict(self) -> dict:
        return {
            "batch": self.batch,
            "n_seen": self.n_seen,
            "prequential_accuracy": self.prequential_accuracy,
            "served_version": self.served_version,
            "refreshed": self.refreshed,
            "refresh_trigger": self.refresh_trigger,
            "new_version": self.new_version,
            "time_to_refresh": self.time_to_refresh,
            "kernel_evals": self.kernel_evals,
        }


@dataclass
class StreamReport:
    """The scenario outcome: accuracy-over-time and the cost ledger."""

    n_batches: int
    batch_size: int
    drift: str
    policy: dict
    batches: List[BatchRecord]
    refits: List[dict]  # RefitRecord.to_dict() per refit
    refreshes: int
    cumulative_kernel_evals: int  # incremental path, seeding included
    cumulative_cold_kernel_evals: Optional[int]  # certify=True only
    eval_reduction: Optional[float]  # cold / incremental
    total_refit_vtime: float
    mean_time_to_refresh: Optional[float]
    max_time_to_refresh: Optional[float]
    final_n_sv: int

    @property
    def accuracy_over_time(self) -> List[Optional[float]]:
        return [b.prequential_accuracy for b in self.batches]

    @property
    def mean_prequential_accuracy(self) -> Optional[float]:
        accs = [a for a in self.accuracy_over_time if a is not None]
        return float(np.mean(accs)) if accs else None

    def to_dict(self) -> dict:
        return {
            "n_batches": self.n_batches,
            "batch_size": self.batch_size,
            "drift": self.drift,
            "policy": self.policy,
            "batches": [b.to_dict() for b in self.batches],
            "refits": self.refits,
            "refreshes": self.refreshes,
            "cumulative_kernel_evals": self.cumulative_kernel_evals,
            "cumulative_cold_kernel_evals": self.cumulative_cold_kernel_evals,
            "eval_reduction": self.eval_reduction,
            "total_refit_vtime": self.total_refit_vtime,
            "mean_time_to_refresh": self.mean_time_to_refresh,
            "max_time_to_refresh": self.max_time_to_refresh,
            "mean_prequential_accuracy": self.mean_prequential_accuracy,
            "accuracy_over_time": self.accuracy_over_time,
            "final_n_sv": self.final_n_sv,
        }


def run_stream(
    scenario: StreamScenario,
    *,
    registry: Optional[ModelRegistry] = None,
) -> StreamReport:
    """Run the drift scenario end to end; returns the report.

    Pass an existing ``registry`` to refresh a live fleet in place —
    the first trained model is published (auto-activating if the
    registry is empty) and every policy-triggered refresh goes through
    the registry's atomic :meth:`~repro.serve.ModelRegistry.hot_swap`.
    """
    cfg = resolve_config(scenario.config)
    machine = cfg.machine if cfg.machine is not None else MachineSpec.cascade()
    registry = registry if registry is not None else ModelRegistry()
    clf = IncrementalSVC(
        C=scenario.C,
        gamma=scenario.gamma,
        eps=scenario.eps,
        config=cfg,
        certify=scenario.certify,
    )
    policy = scenario.policy
    batches = drift_stream(scenario.spec)

    records: List[BatchRecord] = []
    since_refresh = 0
    ttr_list: List[float] = []
    for t, (Xb, yb) in enumerate(batches):
        # prequential: score with the *served* model before training
        acc: Optional[float] = None
        served_version = registry.active_version
        if served_version is not None and clf.classes_ is not None:
            served = registry.load(served_version)
            y_signed = np.where(yb == clf.classes_[1], 1.0, -1.0)
            acc = served.accuracy(Xb, y_signed)

        clf.partial_fit(Xb, yb)
        refit = clf.records_[-1]
        since_refresh += 1

        trigger: Optional[str] = None
        if (
            policy.accuracy_floor is not None
            and acc is not None
            and acc < policy.accuracy_floor
        ):
            trigger = "accuracy"
        elif since_refresh >= policy.every_k or served_version is None:
            trigger = "every_k"

        new_version = None
        ttr = None
        if trigger is not None:
            new_version = registry.hot_swap(
                clf.model_, label=f"stream-batch-{t}"
            )
            ttr = refit.vtime + costs.fleet_reshard_time(
                machine, clf.model_.n_sv, clf.X_.avg_row_nnz, cfg.nprocs
            )
            ttr_list.append(ttr)
            since_refresh = 0

        records.append(
            BatchRecord(
                batch=t,
                n_seen=clf.n_samples_,
                prequential_accuracy=acc,
                served_version=served_version,
                refreshed=trigger is not None,
                refresh_trigger=trigger,
                new_version=new_version,
                time_to_refresh=ttr,
                kernel_evals=refit.kernel_evals,
            )
        )

    return StreamReport(
        n_batches=scenario.spec.n_batches,
        batch_size=scenario.spec.batch_size,
        drift=scenario.spec.drift,
        policy={
            "every_k": policy.every_k,
            "accuracy_floor": policy.accuracy_floor,
        },
        batches=records,
        refits=[r.to_dict() for r in clf.records_],
        refreshes=len(ttr_list),
        cumulative_kernel_evals=clf.kernel_evals_,
        cumulative_cold_kernel_evals=clf.cold_kernel_evals_,
        eval_reduction=(
            clf.cold_kernel_evals_ / clf.kernel_evals_
            if clf.cold_kernel_evals_ is not None and clf.kernel_evals_
            else None
        ),
        total_refit_vtime=clf.refit_vtime_,
        mean_time_to_refresh=(
            float(np.mean(ttr_list)) if ttr_list else None
        ),
        max_time_to_refresh=(max(ttr_list) if ttr_list else None),
        final_n_sv=clf.model_.n_sv if clf.model_ is not None else 0,
    )
