"""Incremental training: warm-start refits on a growing/shrinking dataset.

:class:`IncrementalSVC` keeps the active dataset and the exact dual
state ``(α, γ)`` of its last solve.  ``partial_fit(X, y)`` appends a
batch and re-solves warm instead of cold:

- the previous α, padded with zeros for the new rows, is already
  feasible for the enlarged problem (box unchanged on old rows, new
  rows at the zero bound, ``Σ α·y`` preserved) — the same feasibility
  argument the DC warm start makes, with
  :func:`~repro.core.dcsvm.project_feasible` as the repair path for
  any rounding residual;
- the previous gradient γ is *exact* for the old rows (every
  reconstructing heuristic exits with all samples active and exact
  gradients), and the new rows' gradients are one kernel slab against
  the previous support vectors:
  ``γ_new = K(X_new, SV)·(α·y)[SV] − y_new`` — ``n_new × n_sv``
  evaluations, charged to the stream's cumulative account;
- the solver is seeded through ``fit_parallel(warm_start_alpha=…,
  warm_start_gamma=…)``: every sample starts active with a trusted
  gradient, so the solve goes straight to selection and pays only for
  the iterations the new batch actually induces.

``forget(indices)`` removes samples.  Forgetting exactly the last
appended batch restores the pre-append snapshot from an internal
journal — bitwise the original model.  General removal drops the rows,
redistributes the lost α mass with ``project_feasible`` (the equality
constraint ``Σ α·y = 0`` must be repaired when support vectors leave),
and re-solves warm from α alone — the gradients of the survivors
changed, so they are honestly rebuilt by the solver's reconstruction
ring rather than taken on faith.

Every refit can be certified against a cold full solve
(``certify=True``): the cold fit runs alongside and
:func:`~repro.core.equiv.assert_model_equiv` proves the warm result
tolerance-equivalent — KKT-feasible, same dual objective plateau, same
decisions on a held-out probe grid.  The cold fit's cost accumulates
separately, giving the cold-retrain baseline the benchmark's
kernel-eval-reduction bar is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..config import RunConfig, resolve_config
from ..core.dcsvm import project_feasible
from ..core.equiv import assert_model_equiv
from ..core.params import SVMParams
from ..core.shrinking import get_heuristic
from ..core.solver import FitResult, fit_parallel
from ..core.svc import NotFittedError
from ..kernels import Kernel, RBFKernel, make_kernel
from ..sparse.csr import CSRMatrix

__all__ = ["IncrementalSVC", "RefitRecord"]


@dataclass
class RefitRecord:
    """Cost accounting for one refit of the incremental dataset."""

    batch: int  # refit ordinal (0 = the initial cold fit)
    kind: str  # "cold" | "partial_fit" | "forget"
    n_total: int  # dataset size after the refit
    n_new: int  # rows appended (negative: rows removed)
    iterations: int
    solver_kernel_evals: int  # evals charged inside the solve
    seed_kernel_evals: int  # evals spent building the γ seed
    vtime: float  # modeled solve time
    certified: bool = False
    cold_iterations: Optional[int] = None
    cold_kernel_evals: Optional[int] = None

    @property
    def kernel_evals(self) -> int:
        """Total incremental cost of this refit, seeding included."""
        return self.solver_kernel_evals + self.seed_kernel_evals

    def to_dict(self) -> dict:
        return {
            "batch": self.batch,
            "kind": self.kind,
            "n_total": self.n_total,
            "n_new": self.n_new,
            "iterations": self.iterations,
            "solver_kernel_evals": self.solver_kernel_evals,
            "seed_kernel_evals": self.seed_kernel_evals,
            "kernel_evals": self.kernel_evals,
            "vtime": self.vtime,
            "certified": self.certified,
            "cold_iterations": self.cold_iterations,
            "cold_kernel_evals": self.cold_kernel_evals,
        }


@dataclass
class _Snapshot:
    """Pre-append state for the ``forget``-last-batch fast path."""

    lo: int  # first row of the appended batch
    hi: int  # one past its last row
    X: CSRMatrix
    y: np.ndarray
    alpha: np.ndarray
    gamma: Optional[np.ndarray]
    model: object
    fit_result: Optional[FitResult]


class IncrementalSVC:
    """Two-class SVM with sklearn-style ``partial_fit``/``forget``.

    Hyperparameters mirror :class:`~repro.core.SVC`; run-time knobs
    come exclusively through ``config=`` (a
    :class:`~repro.config.RunConfig`) — this class postdates the
    per-call keyword shims and never grew them.

    ``certify=True`` runs a cold full solve next to every warm refit
    and asserts tolerance-equivalence
    (:func:`~repro.core.equiv.assert_model_equiv`); the cold costs
    accumulate in :attr:`cold_kernel_evals_` as the retrain baseline.

    The divide-and-conquer outer loop is mutually exclusive with
    incremental warm starts (both produce the seed), so ``config.dc``
    must be ``None``.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: Union[str, Kernel] = "rbf",
        gamma: Optional[float] = None,
        sigma_sq: Optional[float] = None,
        eps: float = 1e-3,
        max_iter: int = 10_000_000,
        shrink_eps_factor: float = 10.0,
        *,
        config: Optional[RunConfig] = None,
        certify: bool = False,
        certify_tol: Optional[float] = None,
    ) -> None:
        if gamma is not None and sigma_sq is not None:
            raise ValueError("give either gamma or sigma_sq, not both")
        cfg = resolve_config(config)
        if cfg.dc is not None:
            raise ValueError(
                "IncrementalSVC produces its own warm starts; config.dc "
                "must be None (dc and warm_start_alpha are mutually "
                "exclusive in fit_parallel)"
            )
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.sigma_sq = sigma_sq
        self.eps = eps
        self.max_iter = max_iter
        self.shrink_eps_factor = shrink_eps_factor
        self.config = cfg
        self.certify = certify
        self.certify_tol = certify_tol

        self.classes_: Optional[np.ndarray] = None
        self.X_: Optional[CSRMatrix] = None
        self.y_: Optional[np.ndarray] = None  # signed ±1
        self.alpha_: Optional[np.ndarray] = None
        self.gamma_: Optional[np.ndarray] = None  # exact γ, or None
        self.model_ = None
        self.fit_result_: Optional[FitResult] = None
        self.records_: List[RefitRecord] = []
        self._journal: List[_Snapshot] = []

    # ------------------------------------------------------------------
    # hyperparameter plumbing (mirrors SVC)
    # ------------------------------------------------------------------
    def _build_kernel(self) -> Kernel:
        if isinstance(self.kernel, Kernel):
            return self.kernel
        name = str(self.kernel)
        if name == "rbf":
            if self.sigma_sq is not None:
                return RBFKernel.from_sigma_sq(self.sigma_sq)
            return RBFKernel(self.gamma if self.gamma is not None else 1.0)
        kwargs = {}
        if self.gamma is not None:
            kwargs["gamma"] = self.gamma
        return make_kernel(name, **kwargs)

    def _params(self) -> SVMParams:
        return SVMParams(
            C=self.C,
            kernel=self._build_kernel(),
            eps=self.eps,
            max_iter=self.max_iter,
            shrink_eps_factor=self.shrink_eps_factor,
        )

    def _carries_gamma(self) -> bool:
        """Whether the last solve's γ is exact for every sample.

        The ``"never"``-reconstruction heuristics permanently eliminate
        samples with stale gradients, so their exit γ cannot seed the
        next refit; everything else reconstructs (or never shrinks) and
        exits exact.
        """
        return get_heuristic(self.config.heuristic).reconstruction != "never"

    def _coerce_batch(self, X, y) -> "tuple[CSRMatrix, np.ndarray]":
        if not isinstance(X, CSRMatrix):
            X = CSRMatrix.from_dense(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError(f"{y.size} labels for {X.shape[0]} samples")
        if self.classes_ is None:
            classes = np.unique(y)
            if classes.size != 2:
                raise ValueError(
                    f"the first batch must contain exactly two classes, "
                    f"got {classes.size}: {classes!r}"
                )
            self.classes_ = classes
        else:
            unknown = np.setdiff1d(np.unique(y), self.classes_)
            if unknown.size:
                raise ValueError(
                    f"batch contains labels {unknown!r} outside the "
                    f"classes seen first ({self.classes_!r})"
                )
            if self.X_ is not None and X.shape[1] != self.X_.shape[1]:
                raise ValueError(
                    f"batch has {X.shape[1]} features, dataset has "
                    f"{self.X_.shape[1]}"
                )
        y_signed = np.where(y == self.classes_[1], 1.0, -1.0)
        return X, y_signed

    # ------------------------------------------------------------------
    # the refit engine
    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        n_new: int,
        result: FitResult,
        seed_evals: int,
        cold: Optional[FitResult],
    ) -> RefitRecord:
        rec = RefitRecord(
            batch=len(self.records_),
            kind=kind,
            n_total=int(self.X_.shape[0]),
            n_new=n_new,
            iterations=result.iterations,
            solver_kernel_evals=int(result.trace.kernel_evals),
            seed_kernel_evals=seed_evals,
            vtime=float(result.vtime),
            certified=cold is not None,
            cold_iterations=cold.iterations if cold is not None else None,
            cold_kernel_evals=(
                int(cold.trace.kernel_evals) if cold is not None else None
            ),
        )
        self.records_.append(rec)
        return rec

    def _certify(self, warm: FitResult) -> Optional[FitResult]:
        """Cold-solve the current dataset and certify ``warm`` against
        it; returns the cold result (the retrain baseline)."""
        if not self.certify:
            return None
        params = self._params()
        cold = fit_parallel(self.X_, self.y_, params, config=self.config)
        assert_model_equiv(
            warm, cold, self.X_, self.y_, params, tol=self.certify_tol
        )
        return cold

    def _apply(self, result: FitResult) -> None:
        self.alpha_ = result.alpha
        self.gamma_ = result.gamma if self._carries_gamma() else None
        self.model_ = result.model
        self.fit_result_ = result

    def partial_fit(self, X, y) -> "IncrementalSVC":
        """Append a labeled batch and refit warm.

        The first call is a cold fit (certified trivially — it *is* the
        cold solve).  Later calls seed the solver with the previous
        ``(α, γ)`` extended over the new rows and pay only the extra
        iterations the batch induces.
        """
        X, y_signed = self._coerce_batch(X, y)
        params = self._params()

        if self.X_ is None:
            self.X_, self.y_ = X, y_signed
            result = fit_parallel(X, y_signed, params, config=self.config)
            self._apply(result)
            rec = self._record("cold", X.shape[0], result, 0, None)
            if self.certify:
                # the initial fit is its own cold baseline
                rec.certified = True
                rec.cold_iterations = rec.iterations
                rec.cold_kernel_evals = rec.solver_kernel_evals
            return self

        self._journal.append(
            _Snapshot(
                lo=int(self.X_.shape[0]),
                hi=int(self.X_.shape[0] + X.shape[0]),
                X=self.X_,
                y=self.y_,
                alpha=self.alpha_,
                gamma=self.gamma_,
                model=self.model_,
                fit_result=self.fit_result_,
            )
        )
        n_new = X.shape[0]
        seed_alpha = np.concatenate([self.alpha_, np.zeros(n_new)])
        seed_gamma = None
        seed_active = None
        seed_evals = 0
        if self.gamma_ is not None:
            # γ for the new rows: one kernel slab against the previous
            # support vectors (sv_coef is exactly (α·y) at α>0)
            model = self.model_
            if model.n_sv:
                slab = params.kernel.block(
                    X,
                    X.row_norms_sq(),
                    model.sv_X,
                    model.sv_X.row_norms_sq(),
                )
                gamma_new = slab @ model.sv_coef - y_signed
                seed_evals = n_new * model.n_sv
            else:
                gamma_new = -y_signed
            seed_gamma = np.concatenate([self.gamma_, gamma_new])
            # active-set seed: previous support vectors + the new batch.
            # The old non-SV rows start shrunk (their seeded gradients
            # on record); the heuristic's ordinary reconstruction passes
            # re-admit and verify them, so the first phase iterates only
            # over the samples the batch can actually move.
            if get_heuristic(self.config.heuristic).reconstruction in (
                "single",
                "multi",
            ):
                seed_active = np.concatenate(
                    [self.alpha_ > 0, np.ones(n_new, dtype=bool)]
                )

        self.X_ = CSRMatrix.vstack([self.X_, X])
        self.y_ = np.concatenate([self.y_, y_signed])
        result = fit_parallel(
            self.X_,
            self.y_,
            params,
            config=self.config,
            warm_start_alpha=seed_alpha,
            warm_start_gamma=seed_gamma,
            warm_start_active=seed_active,
        )
        self._apply(result)
        cold = self._certify(result)
        self._record("partial_fit", n_new, result, seed_evals, cold)
        return self

    def forget(self, indices) -> "IncrementalSVC":
        """Remove samples by (current) row index and refit.

        Forgetting *exactly* the last appended batch pops the internal
        journal and restores the pre-append state — bitwise the
        original model, at zero solver cost.  Any other removal drops
        the rows, repairs the equality constraint by redistributing the
        removed α mass (:func:`~repro.core.dcsvm.project_feasible`),
        and re-solves warm from α alone: the survivors' gradients
        changed with the departed support vectors, so the solver
        rebuilds them honestly via its reconstruction ring.
        """
        if self.X_ is None:
            raise NotFittedError("call partial_fit() before forget()")
        indices = np.unique(np.asarray(indices, dtype=np.int64))
        n = self.X_.shape[0]
        if indices.size == 0:
            return self
        if indices[0] < 0 or indices[-1] >= n:
            raise ValueError(
                f"forget indices out of range [0, {n}): "
                f"[{indices[0]}, {indices[-1]}]"
            )

        if (
            self._journal
            and indices.size == self._journal[-1].hi - self._journal[-1].lo
            and indices[0] == self._journal[-1].lo
            and indices[-1] == self._journal[-1].hi - 1
        ):
            snap = self._journal.pop()
            self.X_, self.y_ = snap.X, snap.y
            self.alpha_, self.gamma_ = snap.alpha, snap.gamma
            self.model_, self.fit_result_ = snap.model, snap.fit_result
            return self

        keep = np.ones(n, dtype=bool)
        keep[indices] = False
        y_keep = self.y_[keep]
        if np.unique(y_keep).size < 2:
            raise ValueError(
                "forget would leave a single-class dataset; the SVM "
                "needs both classes"
            )
        alpha_keep = self.alpha_[keep].copy()
        params = self._params()
        box = params.box_for(y_keep)
        # redistribute the removed α mass: clip to the box and repair
        # Σ α·y = 0 deterministically
        alpha_keep = project_feasible(alpha_keep, y_keep, box)

        self.X_ = self.X_.take_rows(np.flatnonzero(keep))
        self.y_ = y_keep
        # row indices shifted: every journal snapshot is now misaligned
        self._journal.clear()
        result = fit_parallel(
            self.X_,
            self.y_,
            params,
            config=self.config,
            warm_start_alpha=alpha_keep,
        )
        self._apply(result)
        cold = self._certify(result)
        self._record("forget", -int(indices.size), result, 0, cold)
        return self

    # ------------------------------------------------------------------
    # prediction / reporting
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise NotFittedError("call partial_fit() before predict/score")

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        return self.model_.decision_function(X)

    def predict(self, X) -> np.ndarray:
        """Predicted labels in the original label space."""
        self._check_fitted()
        signed = self.model_.predict(X)
        return np.where(signed > 0, self.classes_[1], self.classes_[0])

    def score(self, X, y) -> float:
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    @property
    def n_samples_(self) -> int:
        return int(self.X_.shape[0]) if self.X_ is not None else 0

    @property
    def kernel_evals_(self) -> int:
        """Cumulative incremental cost: every solve plus every γ seed."""
        return sum(r.kernel_evals for r in self.records_)

    @property
    def cold_kernel_evals_(self) -> Optional[int]:
        """Cumulative cold-retrain baseline (``certify=True`` only)."""
        if not self.records_ or not all(r.certified for r in self.records_):
            return None
        return sum(r.cold_kernel_evals for r in self.records_)

    @property
    def refit_vtime_(self) -> float:
        """Cumulative modeled solve time across all refits."""
        return sum(r.vtime for r in self.records_)
