"""Self-healing replicated serving fleet.

One :func:`serve_fleet` call runs a whole multi-replica serving session:
``replicas`` independent SV-sharded shard-groups (each a ``p``-rank SPMD
scorer, exactly the :func:`~repro.serve.server.serve_requests` scoring
pipeline) behind one router frontend that does per-tenant admission
control, microbatching, replica selection, versioned hot-swap, and
fault-driven failover.

Execution model
---------------
The frontend is a deterministic discrete-event loop over the simulated
clock (the :mod:`repro.serve.batching` trigger rules, generalized from
one scorer to N).  Each dispatched slab runs as its own small SPMD job
(:meth:`ShardGroup.score_slab`): broadcast the request rows, evaluate
per-rank weighted kernel sub-slabs, gather in rank order, one full-width
``np.add.reduce``.  That is byte-for-byte the computation
``SVMModel.decision_function`` performs, so **every scored request is
bitwise equal to direct scoring by the model version that served it** —
across replica counts, shard counts, batch geometry, failovers and
hot-swaps.

Failover
--------
Kill faults use the real fault layer: a :class:`KillReplica` event
installs a ``kill`` fault on the victim slab job, and the fault engine's
kill-notification hook tells the router which rank died.  The router
then (a) drains the in-flight slab back to the front of the queue —
those requests re-dispatch to whichever replica is ready first, so none
is dropped and none double-scored (the failed attempt wrote nothing) —
and (b) replaces the dead shard-group with a fresh one **re-sharded from
the registry's saved blob** (the persistence-v2 exact round-trip), which
rejoins after the modeled re-shard interval.

Hot-swap
--------
:class:`SwapModel` atomically activates a registry version at a
simulated instant.  From that instant, cache probes run against the new
version's namespace (the retired namespace is flushed) and every
*subsequently dispatched* slab is scored by the new version — each
shard-group pays one modeled re-shard at its next dispatch boundary.
Slabs already in flight complete under the version that admitted them;
``FleetResult.versions`` records which version scored each request, so
staleness is auditable per request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import RunConfig, resolve_config
from ..core.model import SVMModel, _as_csr
from ..mpi.errors import InjectedFault, SpmdJobError
from ..mpi.faults import Fault, FaultPlan, as_plan
from ..mpi.runtime import SpmdResult, run_spmd
from ..perfmodel import costs
from ..perfmodel.machine import MachineSpec
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from .batching import (
    CACHE_HIT,
    REJECTED,
    SCORED,
    THROTTLED,
    BatchPolicy,
    Schedule,
    SlabRecord,
)
from .cache import ResultCache, request_key
from .registry import ModelRegistry
from .router import AdmissionController, FailoverEvent, Router, as_quota
from .server import DISPATCH_OVERHEAD_FLOPS, REQUEST_OVERHEAD_FLOPS
from .stats import ServeStats, build_stats, jsonable_float

#: modeled failure-detection latency (seconds of simulated time between
#: a replica dying mid-slab and the router acting on the kill
#: notification): the health-check / RPC-timeout interval of the fleet
DETECT_SECONDS = 1e-3


class ReplicaFailure(Exception):
    """A shard-group died mid-slab (a ``kill`` fault fired in a rank)."""

    def __init__(self, rank: int):
        self.rank = rank
        super().__init__(f"replica rank {rank} killed mid-slab")


@dataclass(frozen=True)
class KillReplica:
    """Kill ``rank`` of replica slot ``slot`` on its first slab
    dispatched at or after simulated time ``time``.

    ``after`` is the rank's n-th posted send within that slab job (1 =
    die at the very first message), letting tests kill mid-broadcast or
    mid-gather.
    """

    time: float
    slot: int
    rank: int = 1
    after: int = 1


@dataclass(frozen=True)
class SwapModel:
    """Atomically activate registry ``version`` at simulated ``time``."""

    time: float
    version: int


FleetEvent = Union[KillReplica, SwapModel]


class ShardGroup:
    """One replica: a model block-sharded over a ``p``-rank scorer."""

    def __init__(
        self,
        model: SVMModel,
        nprocs: int,
        *,
        machine: Optional[MachineSpec] = None,
        comm: Optional[str] = None,
        deadlock_timeout: float = 120.0,
    ):
        if nprocs > model.n_sv:
            raise ValueError(
                f"nprocs={nprocs} exceeds n_sv={model.n_sv}: "
                f"every rank needs a non-empty support-vector shard"
            )
        self.model = model
        self.nprocs = nprocs
        self.machine = machine if machine is not None else MachineSpec.cascade()
        self.comm = comm
        self.deadlock_timeout = deadlock_timeout
        self.part = BlockPartition(model.n_sv, nprocs)
        self.avg_nnz = model.sv_X.avg_row_nnz or 1.0

    def score_slab(
        self,
        rows: CSRMatrix,
        row_norms: np.ndarray,
        *,
        faults=None,
        on_kill=None,
    ) -> Tuple[np.ndarray, float, SpmdResult]:
        """Score one slab as a standalone SPMD job.

        Returns ``(values, service_vtime, spmd_result)``.  Raises
        :class:`ReplicaFailure` when a ``kill`` fault fired inside the
        job; any other rank failure propagates as
        :class:`~repro.mpi.errors.SpmdJobError`.
        """
        model, part, avg_nnz = self.model, self.part, self.avg_nnz
        out: Dict[str, object] = {}

        def entry(comm):
            payload = (rows, row_norms) if comm.rank == 0 else None
            slab_rows, slab_norms = comm.bcast(payload, root=0)
            lo, hi = part.bounds(comm.rank)
            sub = model.kernel.block(
                slab_rows, slab_norms, model.sv_X.row_slice(lo, hi),
                model._sv_norms[lo:hi],
            )
            sub *= model.sv_coef[lo:hi]
            comm.charge_kernel_evals(slab_rows.shape[0] * (hi - lo), avg_nnz)
            parts = comm.gather(sub, root=0)
            if comm.rank == 0:
                slab = np.hstack(parts)
                # full-width weighted row sum — identical array, identical
                # reduction order as SVMModel.decision_function
                values = np.add.reduce(slab, axis=1) - model.beta
                comm.advance(self.machine.time_flops(slab.size))
                out["values"] = values
                out["vtime"] = comm.vtime

        try:
            spmd = run_spmd(
                entry, self.nprocs, machine=self.machine,
                deadlock_timeout=self.deadlock_timeout, faults=faults,
                comm=self.comm, on_kill=on_kill,
            )
        except SpmdJobError as exc:
            killed = sorted(
                r for r, e in exc.failures.items()
                if isinstance(e, InjectedFault)
            )
            if killed:
                raise ReplicaFailure(killed[0]) from exc
            raise
        return out["values"], float(out["vtime"]), spmd


@dataclass
class FleetStats:
    """Fleet-level report, alongside the per-request ServeStats."""

    replicas: int
    nprocs: int
    n_failovers: int
    n_swaps: int
    n_reshards: int
    detect_seconds: float
    reshard_seconds: float
    failovers: List[FailoverEvent] = field(default_factory=list)
    swaps: List[Dict[str, object]] = field(default_factory=list)
    #: one record per *successful* slab: (slot, generation, version, size)
    slab_log: List[Dict[str, object]] = field(default_factory=list)
    per_tenant: Dict[int, Dict[str, int]] = field(default_factory=dict)
    slabs_per_slot: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Strict-JSON-safe plain data (non-finite floats -> null)."""
        return {
            "replicas": self.replicas,
            "nprocs": self.nprocs,
            "n_failovers": self.n_failovers,
            "n_swaps": self.n_swaps,
            "n_reshards": self.n_reshards,
            "detect_seconds": jsonable_float(self.detect_seconds),
            "reshard_seconds": jsonable_float(self.reshard_seconds),
            "failovers": [f.to_dict() for f in self.failovers],
            "swaps": list(self.swaps),
            "slabs_per_slot": {
                str(k): v for k, v in sorted(self.slabs_per_slot.items())
            },
            "per_tenant": {
                str(k): dict(v) for k, v in sorted(self.per_tenant.items())
            },
        }


@dataclass
class FleetResult:
    """Everything one fleet serving session produced."""

    #: decision-function value per request (NaN for rejected/throttled)
    scores: np.ndarray
    #: per-request disposition (SCORED / CACHE_HIT / REJECTED / THROTTLED)
    status: np.ndarray
    #: registry version that produced each score (-1 when unscored)
    versions: np.ndarray
    completion_times: np.ndarray
    latencies: np.ndarray
    stats: ServeStats
    fleet: FleetStats
    schedule: Schedule
    registry: ModelRegistry


def _kill_plan(base, kill: KillReplica) -> FaultPlan:
    """The slab job's fault plan: the session plan + the injected kill."""
    plan = as_plan(base) or FaultPlan()
    fault = Fault(kind="kill", rank=kill.rank, after=kill.after)
    return FaultPlan(
        faults=plan.faults + (fault,), seed=plan.seed, retry=plan.retry
    )


def serve_fleet(
    source: Union[ModelRegistry, SVMModel],
    X: Union[CSRMatrix, np.ndarray],
    arrivals: Optional[np.ndarray] = None,
    *,
    tenants: Optional[np.ndarray] = None,
    policy: Optional[BatchPolicy] = None,
    config: Optional[RunConfig] = None,
    nprocs: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
    replicas: Optional[int] = None,
    tenant_quota=None,
    per_tenant_quotas: Optional[Dict[int, object]] = None,
    cache_entries: int = 0,
    cache: Optional[ResultCache] = None,
    events: Sequence[FleetEvent] = (),
    detect_seconds: float = DETECT_SECONDS,
) -> FleetResult:
    """Serve one request stream on a replicated, self-healing fleet.

    ``source`` is a :class:`~repro.serve.registry.ModelRegistry` (for
    multi-version sessions with hot-swap) or a bare
    :class:`~repro.core.model.SVMModel` (auto-published as version 1).
    ``tenants`` assigns each request an integer tenant id (default: one
    tenant); ``tenant_quota`` (a :class:`~repro.serve.router.TenantQuota`
    or spec string, also settable via ``RunConfig.tenant_quota``) is the
    default admission quota, overridable per tenant through
    ``per_tenant_quotas``.  ``events`` schedules :class:`KillReplica` /
    :class:`SwapModel` happenings on the simulated clock.

    Every scored request is bitwise equal to
    ``registry.load(version).decision_function(row)`` for the version
    recorded in ``FleetResult.versions`` — the slab-reduction guarantee
    survives failover and hot-swap.
    """
    cfg = resolve_config(
        config, _entry="serve_fleet",
        nprocs=nprocs, machine=machine, faults=faults,
        replicas=replicas, tenant_quota=tenant_quota,
    )
    policy = policy or BatchPolicy()
    n_replicas = cfg.replicas
    if isinstance(source, ModelRegistry):
        registry = source
    else:
        registry = ModelRegistry()
        registry.publish(source)
    active = registry.active_version
    if active is None:
        raise ValueError("registry holds no published model to serve")

    machine_eff = cfg.machine if cfg.machine is not None else MachineSpec.cascade()
    first_model = registry.load(active)
    X = _as_csr(X, first_model.sv_X.shape[1])
    n = X.shape[0]
    if n == 0:
        raise ValueError("empty request stream")
    if arrivals is None:
        arrivals = np.zeros(n)
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if arrivals.shape != (n,):
        raise ValueError(
            f"{arrivals.shape[0]} arrival times for {n} request rows"
        )
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be nondecreasing")
    if arrivals.size and arrivals[0] < 0:
        raise ValueError("arrival times must be >= 0")
    if tenants is None:
        tenants = np.zeros(n, dtype=np.int64)
    tenants = np.asarray(tenants, dtype=np.int64)
    if tenants.shape != (n,):
        raise ValueError(f"{tenants.shape[0]} tenant ids for {n} requests")

    norms = X.row_norms_sq()
    cache = cache if cache is not None else ResultCache(cache_entries)
    admission = AdmissionController(
        default=as_quota(cfg.tenant_quota),
        per_tenant={
            k: as_quota(v) for k, v in (per_tenant_quotas or {}).items()
        },
    )
    router = Router(n_replicas)

    def spawn_group(version: int) -> ShardGroup:
        """A fresh shard-group re-sharded from the registry's blob."""
        return ShardGroup(
            registry.load(version), cfg.nprocs, machine=machine_eff,
            comm=cfg.comm, deadlock_timeout=cfg.deadlock_timeout,
        )

    groups: Dict[int, ShardGroup] = {}
    for slot in router.slots:
        groups[slot.slot_id] = spawn_group(active)
        slot.sharded_version = active

    reshard_seconds = costs.fleet_reshard_time(
        machine_eff, first_model.n_sv, groups[0].avg_nnz, cfg.nprocs
    )

    kills: List[KillReplica] = sorted(
        (e for e in events if isinstance(e, KillReplica)),
        key=lambda e: (e.time, e.slot),
    )
    swaps: List[SwapModel] = sorted(
        (e for e in events if isinstance(e, SwapModel)), key=lambda e: e.time
    )
    for k in kills:
        if not 0 <= k.slot < n_replicas:
            raise ValueError(f"kill event names slot {k.slot} of {n_replicas}")
    for s in swaps:
        if s.version not in registry:
            raise ValueError(f"swap event names unknown version {s.version}")
    kill_fired = [False] * len(kills)

    scores = np.full(n, np.nan)
    versions = np.full(n, -1, dtype=np.int64)
    status = np.zeros(n, dtype=np.int64)
    completion = np.full(n, np.nan)
    schedule = Schedule(status=status, completion=completion)

    fleet_stats = FleetStats(
        replicas=n_replicas,
        nprocs=cfg.nprocs,
        n_failovers=0,
        n_swaps=0,
        n_reshards=0,
        detect_seconds=detect_seconds,
        reshard_seconds=reshard_seconds,
    )
    total_bytes = 0
    total_messages = 0
    swap_idx = 0

    def apply_swaps(t: float) -> None:
        """Activate every swap event due by simulated time ``t``."""
        nonlocal swap_idx, active
        while swap_idx < len(swaps) and swaps[swap_idx].time <= t:
            ev = swaps[swap_idx]
            swap_idx += 1
            previous = registry.activate(ev.version)
            flushed = 0
            if previous is not None and previous != ev.version:
                # retire the old version's cache entries wholesale: a
                # probe can no longer hit them (namespace mismatch), so
                # they are dead capacity
                flushed = cache.flush_namespace(registry.fingerprint(previous))
            active = ev.version
            fleet_stats.n_swaps += 1
            fleet_stats.swaps.append({
                "time": ev.time,
                "from_version": previous,
                "to_version": ev.version,
                "flushed_entries": flushed,
            })

    def pending_kill(slot_id: int, t: float) -> Optional[int]:
        for idx, k in enumerate(kills):
            if not kill_fired[idx] and k.slot == slot_id and k.time <= t:
                return idx
        return None

    t0 = time.perf_counter()
    queue: List[int] = []  # ids in arrival order (drains re-prepend)
    i = 0
    import math as _math

    while i < n or queue:
        if queue:
            if len(queue) >= policy.max_batch:
                t_trigger = arrivals[queue[policy.max_batch - 1]]
            else:
                t_trigger = arrivals[queue[0]] + policy.max_delay
                if i >= n and not _math.isfinite(t_trigger):
                    t_trigger = arrivals[queue[-1]]
            t_dispatch = max(t_trigger, router.earliest_ready())
        else:
            t_dispatch = _math.inf

        if i < n and arrivals[i] <= t_dispatch:
            t = float(arrivals[i])
            apply_swaps(t)
            tenant = int(tenants[i])
            if not admission.admit(tenant, t):
                status[i] = THROTTLED
            else:
                value = cache.get(
                    request_key(X, i), registry.fingerprint(active)
                )
                if value is not None:
                    status[i] = CACHE_HIT
                    completion[i] = t
                    scores[i] = value
                    versions[i] = active
                elif (
                    policy.max_queue is not None
                    and len(queue) >= policy.max_queue
                ):
                    status[i] = REJECTED
                else:
                    queue.append(i)
                    admission.on_enqueue(tenant)
                    schedule.peak_queue_depth = max(
                        schedule.peak_queue_depth, len(queue)
                    )
            i += 1
            continue

        apply_swaps(t_dispatch)
        take = min(len(queue), policy.max_batch)
        ids = np.array(queue[:take], dtype=np.int64)
        del queue[:take]
        slot = router.acquire(t_dispatch)
        group = groups[slot.slot_id]

        t_start = t_dispatch
        if slot.sharded_version != active:
            # hot-swap pickup: this shard-group re-shards the newly
            # active version from the registry before serving
            group = groups[slot.slot_id] = spawn_group(active)
            slot.sharded_version = active
            fleet_stats.n_reshards += 1
            t_start += reshard_seconds
        overhead = machine_eff.time_flops(
            DISPATCH_OVERHEAD_FLOPS + REQUEST_OVERHEAD_FLOPS * ids.size
        )

        kill_idx = pending_kill(slot.slot_id, t_dispatch)
        plan = cfg.faults
        kill_notices: List[Tuple[int, int]] = []
        if kill_idx is not None:
            kill_fired[kill_idx] = True
            plan = _kill_plan(cfg.faults, kills[kill_idx])

        rows = X.take_rows(ids)
        row_norms = norms[ids]
        try:
            values, vtime, spmd = group.score_slab(
                rows, row_norms, faults=plan,
                on_kill=lambda rank, ordinal: kill_notices.append(
                    (rank, ordinal)
                ),
            )
        except ReplicaFailure as failure:
            # the kill-notification hook saw the dying rank; the router
            # drains the in-flight slab and spawns a replacement
            killed_rank = (
                kill_notices[0][0] if kill_notices else failure.rank
            )
            t_fail = t_start + overhead + detect_seconds
            router.fail(
                slot, t_fail, killed_rank=killed_rank,
                drained_requests=int(ids.size),
                reshard_seconds=reshard_seconds,
            )
            fleet_stats.n_failovers += 1
            groups[slot.slot_id] = spawn_group(active)
            slot.sharded_version = active
            # drain: the slab's requests return to the queue head in
            # arrival order and re-dispatch to the next ready replica
            queue[:0] = ids.tolist()
            continue

        t_done = t_start + overhead + vtime
        scores[ids] = values
        versions[ids] = slot.sharded_version
        status[ids] = SCORED
        completion[ids] = t_done
        ns = registry.fingerprint(slot.sharded_version)
        for rid, value in zip(ids, values):
            cache.put(request_key(X, int(rid)), float(value), ns)
            admission.on_dequeue(int(tenants[rid]))
        router.complete(slot, t_done)
        total_bytes += spmd.total_bytes_sent
        total_messages += spmd.total_messages
        schedule.slabs.append(SlabRecord(t_dispatch, t_done, int(ids.size)))
        fleet_stats.slab_log.append({
            "t_dispatch": t_dispatch,
            "t_done": t_done,
            "size": int(ids.size),
            "slot": slot.slot_id,
            "generation": slot.generation,
            "version": int(slot.sharded_version),
            "ids": ids.tolist(),
        })

    apply_swaps(_math.inf)  # record swaps scheduled after the last event
    wall = time.perf_counter() - t0

    fleet_stats.failovers = list(router.failovers)
    fleet_stats.per_tenant = admission.report()
    fleet_stats.slabs_per_slot = {
        s.slot_id: sum(
            1 for rec in fleet_stats.slab_log if rec["slot"] == s.slot_id
        )
        for s in router.slots
    }
    stats = build_stats(
        schedule, arrivals, cache.stats(),
        nprocs=n_replicas * cfg.nprocs,
        total_bytes_sent=total_bytes,
        total_messages=total_messages,
        wall_seconds=wall,
    )
    return FleetResult(
        scores=scores,
        status=status,
        versions=versions,
        completion_times=completion,
        latencies=schedule.latencies(arrivals),
        stats=stats,
        fleet=fleet_stats,
        schedule=schedule,
        registry=registry,
    )
