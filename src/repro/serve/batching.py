"""Microbatching: coalesce single-row requests into bounded slabs.

The scheduler is a deterministic discrete-event loop over the simulated
clock.  Requests arrive at exogenous times; admitted requests wait in a
FIFO queue; the scorer serves one slab at a time.  A slab is dispatched
at the earliest instant ``t >= t_free`` (scorer idle) at which either

- the queue holds ``max_batch`` requests (*size trigger* — the dispatch
  fires when the filling request arrives), or
- the oldest queued request has waited ``max_delay`` (*delay trigger* —
  the latency bound), or
- the stream has ended and requests remain queued (*drain*, still
  honouring the delay timer when it is finite).

Backpressure: an arrival finding ``max_queue`` requests already queued
is rejected immediately (never scored, never retried) — the bounded
queue is what keeps tail latency finite when offered load exceeds
capacity.  Cache hits are resolved at admission via the ``admit`` hook
and bypass the queue entirely.

The loop processes arrival and dispatch events in nondecreasing time
order with arrivals winning ties, so a schedule is a pure function of
``(arrivals, policy, service times)`` — independent of host thread
timing, and the set of *scored values* is independent of the batch
geometry altogether (see :mod:`repro.serve.server`).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

#: per-request disposition codes in :class:`Schedule.status`.
#: REJECTED = shed by the bounded queue (backpressure); THROTTLED =
#: denied by per-tenant admission control (fleet router only)
SCORED, CACHE_HIT, REJECTED, THROTTLED = 1, 2, 3, 4


@dataclass(frozen=True)
class BatchPolicy:
    """Microbatching policy knobs.

    Parameters
    ----------
    max_batch:
        Slab size bound; ``1`` degenerates to single-request scoring.
    max_delay:
        Longest a request may wait for its batch to fill (simulated
        seconds); ``0.0`` dispatches as soon as the scorer is free,
        ``math.inf`` waits for full batches only.
    max_queue:
        Admission bound on queued requests (``None`` = unbounded).
        Arrivals beyond it are rejected — load shedding, not blocking.
    """

    max_batch: int = 64
    max_delay: float = 500e-6
    max_queue: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1 or None, got {self.max_queue}"
            )


@dataclass
class SlabRecord:
    """One dispatched slab, for the stats report."""

    t_dispatch: float
    t_complete: float
    size: int


@dataclass
class Schedule:
    """Outcome of one scheduler run."""

    #: per-request disposition (SCORED / CACHE_HIT / REJECTED)
    status: np.ndarray
    #: simulated completion time per request (NaN for rejected)
    completion: np.ndarray
    slabs: List[SlabRecord] = field(default_factory=list)
    peak_queue_depth: int = 0

    def latencies(self, arrivals: np.ndarray) -> np.ndarray:
        """Completion − arrival per request (NaN for rejected)."""
        return self.completion - arrivals


def run_schedule(
    arrivals: np.ndarray,
    policy: BatchPolicy,
    dispatch: Callable[[np.ndarray, float], float],
    admit: Optional[Callable[[int, float], bool]] = None,
) -> Schedule:
    """Drive the microbatch event loop over one arrival stream.

    ``dispatch(request_ids, t_dispatch)`` scores one slab and returns its
    completion time (``>= t_dispatch``) — in the server this runs the
    sharded SPMD scorer and reads the frontend's virtual clock.
    ``admit(request_id, t_arrival)`` may resolve a request immediately
    (cache hit): return True and the request never queues.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    n = arrivals.shape[0]
    if n == 0:
        raise ValueError("empty arrival stream")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be nondecreasing")
    if arrivals[0] < 0:
        raise ValueError("arrival times must be >= 0")

    status = np.zeros(n, dtype=np.int64)
    completion = np.full(n, np.nan)
    sched = Schedule(status=status, completion=completion)
    queue: deque = deque()
    t_free = 0.0
    i = 0

    while i < n or queue:
        # earliest dispatch instant for the current queue state
        if queue:
            if len(queue) >= policy.max_batch:
                # time the batch filled: the max_batch-th oldest arrival
                t_trigger = arrivals[queue[policy.max_batch - 1]]
            else:
                t_trigger = arrivals[queue[0]] + policy.max_delay
                if i >= n and not math.isfinite(t_trigger):
                    # drain an infinite-delay policy: no arrival can ever
                    # fill the batch, flush at the newest queued arrival
                    t_trigger = arrivals[queue[-1]]
            t_dispatch = max(t_trigger, t_free)
        else:
            t_dispatch = math.inf

        if i < n and arrivals[i] <= t_dispatch:
            # arrival event first (ties: the arrival joins this slab)
            t = arrivals[i]
            if admit is not None and admit(i, t):
                status[i] = CACHE_HIT
                completion[i] = t
            elif (
                policy.max_queue is not None
                and len(queue) >= policy.max_queue
            ):
                status[i] = REJECTED
            else:
                queue.append(i)
                sched.peak_queue_depth = max(
                    sched.peak_queue_depth, len(queue)
                )
            i += 1
            continue

        ids = np.array(
            [queue.popleft() for _ in range(min(len(queue), policy.max_batch))],
            dtype=np.int64,
        )
        t_done = dispatch(ids, t_dispatch)
        if t_done < t_dispatch:
            raise ValueError(
                f"dispatch returned completion {t_done} before dispatch "
                f"time {t_dispatch}"
            )
        status[ids] = SCORED
        completion[ids] = t_done
        sched.slabs.append(SlabRecord(t_dispatch, t_done, int(ids.size)))
        t_free = t_done

    return sched
