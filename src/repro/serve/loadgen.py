"""Deterministic request-load generation for the serving subsystem.

A serving workload is a pair ``(X_requests, arrivals)``: one CSR row per
single-row score request plus a nondecreasing array of simulated-clock
arrival times (seconds).  Everything here is seeded and reproducible —
the arrival stream is part of the experiment definition, exactly like a
dataset.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..sparse.csr import CSRMatrix


def burst_arrivals(n: int) -> np.ndarray:
    """All ``n`` requests arrive at t=0 — the saturation workload.

    This is the load that isolates scorer throughput: the queue is full
    from the first instant, so the session makespan measures processing,
    not the arrival span.
    """
    if n < 1:
        raise ValueError(f"need at least one request, got {n}")
    return np.zeros(n)


def poisson_arrivals(n: int, rate: float, *, seed: int = 0) -> np.ndarray:
    """Open-loop Poisson arrivals: ``n`` requests at ``rate`` per second.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate``,
    drawn from a seeded generator; the stream starts at t=0.
    """
    if n < 1:
        raise ValueError(f"need at least one request, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    gaps[0] = 0.0
    return np.cumsum(gaps)


def uniform_arrivals(n: int, rate: float) -> np.ndarray:
    """Evenly spaced arrivals at ``rate`` per second, starting at t=0."""
    if n < 1:
        raise ValueError(f"need at least one request, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return np.arange(n) / rate


def sample_requests(
    pool: CSRMatrix,
    n: int,
    *,
    seed: int = 0,
    duplicate_fraction: float = 0.0,
) -> CSRMatrix:
    """Draw ``n`` request rows from a pool of candidate samples.

    ``duplicate_fraction`` of the requests (rounded down) repeat an
    earlier request's row — the repeated-query traffic that a result
    cache absorbs.  Row order is shuffled so duplicates interleave with
    first appearances.  Deterministic for a given seed.
    """
    if n < 1:
        raise ValueError(f"need at least one request, got {n}")
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ValueError(
            f"duplicate_fraction must be in [0, 1), got {duplicate_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_dup = int(n * duplicate_fraction)
    n_base = n - n_dup
    base = rng.integers(0, pool.shape[0], size=n_base)
    dup = base[rng.integers(0, n_base, size=n_dup)] if n_dup else base[:0]
    rows = np.concatenate([base, dup])
    rng.shuffle(rows)
    return pool.take_rows(rows)
