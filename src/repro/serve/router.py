"""Fleet routing: per-tenant admission control + replica selection +
the failover state machine.

The router is the frontend's pure-bookkeeping brain.  It never touches
the simulated runtime itself — the fleet event loop
(:mod:`repro.serve.fleet`) drives it with simulated-clock timestamps and
asks three questions: *may this tenant's request enter the queue?*,
*which replica serves the next slab?*, and *what happens when a replica
dies?*  All answers are deterministic functions of the call sequence, so
a fleet session is reproducible end to end.

Admission control
-----------------
Each tenant gets a :class:`TenantQuota`: an optional cap on queued
requests (``max_queued``) and an optional token bucket (``rate`` tokens
per simulated second, depth ``burst``).  A request that finds its
tenant's queue share full or its bucket empty is **throttled** —
rejected at admission, before it can displace other tenants' work in the
shared queue.  This is distinct from backpressure (``REJECTED``), which
sheds load when the *global* queue bound is hit.

Replica lifecycle
-----------------
::

    HEALTHY --kill notification--> FAILED --replacement spawn--> RESHARDING
       ^                                                              |
       +----------- re-shard from registry completes -----------------+

A ``FAILED`` replica never serves again; its slot is immediately reborn
(generation + 1) as a ``RESHARDING`` replacement that loads the
registry's saved active model and becomes ``HEALTHY`` once the modeled
re-shard (scatter of the SV blocks, chainermn ``scatter_dataset`` style)
completes.  In-flight work from the failed slab is drained back to the
front of the queue and re-dispatched to whichever replica is available
first — never double-scored, never dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

#: replica lifecycle states
HEALTHY, FAILED, RESHARDING = "healthy", "failed", "resharding"


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant (both knobs optional).

    Parameters
    ----------
    max_queued:
        Cap on the tenant's simultaneously queued requests.
    rate:
        Token-bucket refill rate (requests per simulated second).
    burst:
        Token-bucket depth (the burst a quiet tenant may submit at once).
    """

    max_queued: Optional[int] = None
    rate: Optional[float] = None
    burst: float = 16.0

    def __post_init__(self) -> None:
        if self.max_queued is not None and self.max_queued < 1:
            raise ValueError(
                f"max_queued must be >= 1 or None, got {self.max_queued}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")

    @classmethod
    def parse(cls, spec: str) -> "TenantQuota":
        """Parse ``"rate=500,burst=8,max_queued=16"`` (any subset)."""
        kwargs: Dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, _, value = item.partition("=")
            key = key.strip()
            if key == "max_queued":
                kwargs["max_queued"] = int(value)
            elif key == "rate":
                kwargs["rate"] = float(value)
            elif key == "burst":
                kwargs["burst"] = float(value)
            else:
                raise ValueError(
                    f"unknown tenant-quota key {key!r} "
                    f"(rate | burst | max_queued)"
                )
        return cls(**kwargs)  # type: ignore[arg-type]


def as_quota(quota) -> Optional[TenantQuota]:
    """Coerce ``None`` | spec-string | :class:`TenantQuota` to a quota."""
    if quota is None:
        return None
    if isinstance(quota, TenantQuota):
        return quota
    if isinstance(quota, str):
        return TenantQuota.parse(quota)
    raise TypeError(
        f"tenant quota must be a TenantQuota, spec string or None, "
        f"got {type(quota).__name__}"
    )


class _TenantState:
    __slots__ = ("tokens", "last_refill", "queued", "admitted", "throttled")

    def __init__(self, burst: float):
        self.tokens = burst
        self.last_refill = 0.0
        self.queued = 0
        self.admitted = 0
        self.throttled = 0


class AdmissionController:
    """Deterministic per-tenant admission over the simulated clock."""

    def __init__(
        self,
        default: Optional[TenantQuota] = None,
        per_tenant: Optional[Mapping[int, TenantQuota]] = None,
    ):
        self._default = default
        self._quotas = dict(per_tenant or {})
        self._states: Dict[int, _TenantState] = {}

    def _quota(self, tenant: int) -> Optional[TenantQuota]:
        return self._quotas.get(tenant, self._default)

    def _state(self, tenant: int) -> _TenantState:
        st = self._states.get(tenant)
        if st is None:
            quota = self._quota(tenant)
            st = _TenantState(quota.burst if quota else 0.0)
            self._states[tenant] = st
        return st

    def admit(self, tenant: int, t: float) -> bool:
        """May this tenant enqueue a request at simulated time ``t``?

        Consumes a token on admission.  Tenants without a quota are
        always admitted.
        """
        quota = self._quota(tenant)
        st = self._state(tenant)
        if quota is None:
            st.admitted += 1
            return True
        if quota.max_queued is not None and st.queued >= quota.max_queued:
            st.throttled += 1
            return False
        if quota.rate is not None:
            st.tokens = min(
                quota.burst, st.tokens + (t - st.last_refill) * quota.rate
            )
            st.last_refill = t
            if st.tokens < 1.0:
                st.throttled += 1
                return False
            st.tokens -= 1.0
        st.admitted += 1
        return True

    def on_enqueue(self, tenant: int) -> None:
        self._state(tenant).queued += 1

    def on_dequeue(self, tenant: int) -> None:
        self._state(tenant).queued -= 1

    def report(self) -> Dict[int, Dict[str, int]]:
        return {
            tenant: {"admitted": st.admitted, "throttled": st.throttled}
            for tenant, st in sorted(self._states.items())
        }


@dataclass
class ReplicaSlot:
    """One replica slot in the fleet (survives its replicas' deaths)."""

    slot_id: int
    state: str = HEALTHY
    #: simulated instant the current replica finishes its in-flight slab
    free_at: float = 0.0
    #: simulated instant the slot can next serve (> free_at only while a
    #: replacement is still re-sharding)
    available_at: float = 0.0
    #: how many replicas have occupied this slot (1 = the original)
    generation: int = 1
    slabs_served: int = 0
    #: registry version the resident shard-group currently holds
    sharded_version: Optional[int] = None

    def ready_at(self) -> float:
        """Earliest simulated instant this slot can accept a slab."""
        return max(self.free_at, self.available_at)


@dataclass
class FailoverEvent:
    """One kill -> drain -> re-shard transition, for the report."""

    time: float
    slot_id: int
    killed_rank: int
    generation: int
    drained_requests: int
    reshard_seconds: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "slot_id": self.slot_id,
            "killed_rank": self.killed_rank,
            "generation": self.generation,
            "drained_requests": self.drained_requests,
            "reshard_seconds": self.reshard_seconds,
        }


class Router:
    """Replica selection + failover bookkeeping for one fleet session."""

    def __init__(self, n_replicas: int):
        if n_replicas < 1:
            raise ValueError(f"need at least one replica, got {n_replicas}")
        self.slots: List[ReplicaSlot] = [
            ReplicaSlot(slot_id=i) for i in range(n_replicas)
        ]
        self.failovers: List[FailoverEvent] = []

    def earliest_ready(self) -> float:
        """The soonest any slot can accept a slab."""
        return min(slot.ready_at() for slot in self.slots)

    def acquire(self, t: float) -> ReplicaSlot:
        """Pick the slot that serves the slab dispatched at ``t``.

        Deterministic: the ready slot with the fewest served slabs,
        lowest id on ties (load balancing that is independent of host
        thread timing).  A slot still re-sharding becomes HEALTHY the
        first time it is acquired past its availability instant.
        """
        ready = [s for s in self.slots if s.ready_at() <= t]
        if not ready:
            raise RuntimeError(
                f"no replica ready at t={t} (earliest {self.earliest_ready()})"
            )
        slot = min(ready, key=lambda s: (s.slabs_served, s.slot_id))
        if slot.state == RESHARDING:
            slot.state = HEALTHY
        return slot

    def complete(self, slot: ReplicaSlot, t_done: float) -> None:
        slot.free_at = t_done
        slot.available_at = max(slot.available_at, t_done)
        slot.slabs_served += 1

    def fail(
        self,
        slot: ReplicaSlot,
        t_fail: float,
        *,
        killed_rank: int,
        drained_requests: int,
        reshard_seconds: float,
    ) -> FailoverEvent:
        """Kill notification: retire the replica, spawn the replacement.

        The slot passes through FAILED and is immediately reborn (next
        generation) in RESHARDING state; it can serve again once the
        modeled re-shard from the registry's saved model completes.
        """
        slot.state = FAILED  # the dying replica never serves again
        slot.generation += 1
        slot.state = RESHARDING
        slot.sharded_version = None  # the replacement re-loads from registry
        slot.free_at = t_fail
        slot.available_at = t_fail + reshard_seconds
        slot.slabs_served = 0
        event = FailoverEvent(
            time=t_fail,
            slot_id=slot.slot_id,
            killed_rank=killed_rank,
            generation=slot.generation,
            drained_requests=drained_requests,
            reshard_seconds=reshard_seconds,
        )
        self.failovers.append(event)
        return event
