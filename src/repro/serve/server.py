"""The serving session: microbatch frontend + sharded SPMD scorer.

One call to :func:`serve_requests` runs a whole serving session as a
single simulated-MPI job.  Rank 0 is the *frontend*: it drives the
discrete-event :func:`~repro.serve.batching.run_schedule` loop over the
arrival stream, probes the :class:`~repro.serve.cache.ResultCache` at
admission, and dispatches each coalesced slab to the scorer.  All ranks
(frontend included) are *scorer shards*: the support vectors are block-
partitioned across the communicator, each rank evaluates its kernel
sub-slab against the broadcast request rows, and rank 0 assembles the
full-width slab before the weighted row reduction.

Bitwise determinism
-------------------
The default ``reduction="slab"`` gathers the per-shard *weighted kernel
sub-slabs* and concatenates them in rank order before a single
full-width ``np.add.reduce`` on rank 0.  Kernel entries are elementwise
functions of per-row dot products (column-blocking the SV side of
``dot_csr_t`` is bitwise-stable), so the assembled slab is bitwise
identical to the one ``SVMModel.decision_function`` builds — and the
reduction then runs over the identical array.  Scores are therefore
bitwise equal to direct scoring for ANY nprocs, batch size, arrival
order, or cache state.

``reduction="sums"`` instead reduces per-shard partial row sums (the
classic allreduce pattern, nprocs× less traffic).  Floating-point
addition does not associate across shard boundaries, so this mode is
only ``allclose`` to direct scoring — it exists to measure what the
bandwidth-optimal reduction would cost, not to serve exact answers.

Fault injection rides for free: the slab broadcast/gather use the same
mailbox delivery path as training, so a ``faults=`` plan (or the CLI's
``--faults``) exercises recovery on the serving path too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..config import RunConfig, resolve_config
from ..mpi import SpmdResult, run_spmd
from ..perfmodel.machine import MachineSpec
from ..sparse.csr import CSRMatrix
from ..sparse.partition import BlockPartition
from ..core.model import SVMModel, _as_csr
from .batching import BatchPolicy, Schedule, run_schedule
from .cache import ResultCache, request_key
from .registry import model_fingerprint
from .stats import ServeStats, build_stats

#: modeled frontend cost per *dispatch* (flops): request framing, batch
#: assembly, scorer hand-off and response fan-out — the fixed RPC-ish
#: overhead that microbatching amortizes (~300 us at cascade's 4 GF/s)
DISPATCH_OVERHEAD_FLOPS = 1_200_000.0

#: modeled frontend cost per *request* inside a slab (flops): admission
#: bookkeeping, cache probe, per-response serialization (~1.25 us)
REQUEST_OVERHEAD_FLOPS = 5_000.0


@dataclass
class ServeResult:
    """Everything one serving session produced."""

    #: decision-function value per request (NaN for rejected requests)
    scores: np.ndarray
    #: per-request disposition (batching.SCORED / CACHE_HIT / REJECTED)
    status: np.ndarray
    #: simulated completion time per request (NaN for rejected)
    completion_times: np.ndarray
    #: completion − arrival (NaN for rejected)
    latencies: np.ndarray
    stats: ServeStats
    schedule: Schedule
    spmd: SpmdResult


def serve_requests(
    model: SVMModel,
    X: Union[CSRMatrix, np.ndarray],
    arrivals: Optional[np.ndarray] = None,
    *,
    policy: Optional[BatchPolicy] = None,
    config: Optional[RunConfig] = None,
    nprocs: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
    cache_entries: int = 0,
    cache: Optional[ResultCache] = None,
    reduction: str = "slab",
) -> ServeResult:
    """Serve one stream of single-row score requests against ``model``.

    ``X`` holds one request row per arrival; ``arrivals`` is the
    nondecreasing simulated arrival time of each row (default: a burst
    at t=0).  ``policy`` sets the microbatching knobs, ``cache_entries``
    the result-cache capacity (0 = no cache); pass ``cache=`` to share a
    :class:`~repro.serve.cache.ResultCache` across sessions — entries
    are namespaced by the model's persistence-v2 fingerprint, so a
    session serving a different model can never hit another model's
    cached scores.  Run-time knobs (``nprocs``, ``machine``,
    ``faults``…) ride in one :class:`~repro.config.RunConfig` via
    ``config=``, with the keywords as overriding shims, exactly like the
    fit/predict entry points.
    """
    cfg = resolve_config(
        config, _entry="serve_requests",
        nprocs=nprocs, machine=machine, faults=faults,
    )
    policy = policy or BatchPolicy()
    if reduction not in ("slab", "sums"):
        raise ValueError(
            f"reduction must be 'slab' or 'sums', got {reduction!r}"
        )
    if cfg.nprocs > model.n_sv:
        raise ValueError(
            f"nprocs={cfg.nprocs} exceeds n_sv={model.n_sv}: "
            f"every rank needs a non-empty support-vector shard"
        )

    X = _as_csr(X, model.sv_X.shape[1])
    n = X.shape[0]
    if arrivals is None:
        arrivals = np.zeros(n)
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if arrivals.shape != (n,):
        raise ValueError(
            f"{arrivals.shape[0]} arrival times for {n} request rows"
        )

    machine_eff = cfg.machine if cfg.machine is not None else MachineSpec.cascade()
    norms = X.row_norms_sq()
    part = BlockPartition(model.n_sv, cfg.nprocs)
    avg_nnz = model.sv_X.avg_row_nnz or 1.0
    cache = cache if cache is not None else ResultCache(cache_entries)
    # cache entries are keyed under the model's exact-round-trip
    # fingerprint: a shared cache can never serve another model's scores
    namespace = model_fingerprint(model)
    scores = np.full(n, np.nan)
    schedule_box = {}

    def partial_slab(comm, rows: CSRMatrix, row_norms: np.ndarray) -> np.ndarray:
        """This rank's weighted kernel sub-slab against its SV shard."""
        lo, hi = part.bounds(comm.rank)
        sub = model.kernel.block(
            rows, row_norms, model.sv_X.row_slice(lo, hi),
            model._sv_norms[lo:hi],
        )
        sub *= model.sv_coef[lo:hi]
        comm.charge_kernel_evals(rows.shape[0] * (hi - lo), avg_nnz)
        return sub

    def frontend(comm) -> None:
        def admit(i: int, t: float) -> bool:
            value = cache.get(request_key(X, i), namespace)
            if value is None:
                return False
            scores[i] = value
            return True

        def dispatch(ids: np.ndarray, t_dispatch: float) -> float:
            # the frontend was idle (or queue-waiting) until the trigger
            comm.clock.sync_to(t_dispatch, kind="idle")
            comm.advance(machine_eff.time_flops(
                DISPATCH_OVERHEAD_FLOPS
                + REQUEST_OVERHEAD_FLOPS * ids.size
            ))
            rows = X.take_rows(ids)
            row_norms = norms[ids]
            comm.bcast((rows, row_norms), root=0)
            own = partial_slab(comm, rows, row_norms)
            if reduction == "slab":
                parts = comm.gather(own, root=0)
                slab = np.hstack(parts)
                # full-width weighted row sum — identical array, identical
                # reduction order as SVMModel.decision_function
                values = np.add.reduce(slab, axis=1) - model.beta
                comm.advance(machine_eff.time_flops(slab.size))
            else:
                partial = np.add.reduce(own, axis=1)
                comm.advance(machine_eff.time_flops(own.size))
                values = comm.reduce(partial, root=0) - model.beta
            scores[ids] = values
            for i, v in zip(ids, values):
                cache.put(request_key(X, int(i)), float(v), namespace)
            return comm.vtime

        schedule_box["schedule"] = run_schedule(
            arrivals, policy, dispatch, admit=admit
        )
        comm.bcast(None, root=0)  # sentinel: session over

    def worker(comm) -> None:
        while True:
            msg = comm.bcast(None, root=0)
            if msg is None:
                return
            rows, row_norms = msg
            own = partial_slab(comm, rows, row_norms)
            if reduction == "slab":
                comm.gather(own, root=0)
            else:
                partial = np.add.reduce(own, axis=1)
                comm.advance(machine_eff.time_flops(own.size))
                comm.reduce(partial, root=0)

    def entry(comm):
        if comm.rank == 0:
            frontend(comm)
        else:
            worker(comm)

    t0 = time.perf_counter()
    spmd = run_spmd(
        entry, cfg.nprocs, machine=machine_eff, trace=cfg.trace,
        deadlock_timeout=cfg.deadlock_timeout, faults=cfg.faults,
        comm=cfg.comm,
    )
    wall = time.perf_counter() - t0

    schedule = schedule_box["schedule"]
    stats = build_stats(
        schedule, arrivals, cache.stats(),
        nprocs=cfg.nprocs,
        total_bytes_sent=spmd.total_bytes_sent,
        total_messages=spmd.total_messages,
        wall_seconds=wall,
    )
    return ServeResult(
        scores=scores,
        status=schedule.status,
        completion_times=schedule.completion,
        latencies=schedule.latencies(arrivals),
        stats=stats,
        schedule=schedule,
        spmd=spmd,
    )
