"""Serving session report: latency percentiles, throughput, cache.

Latencies and throughput come in two flavours, matching the rest of the
repo: *modeled* (the per-rank virtual clocks — what the cascade testbed
would measure) and *host* (wall seconds actually burned in-process).
Modeled numbers are deterministic; host numbers are informational.

JSON convention
---------------
``to_dict()`` output must be **strict** JSON data (``BENCH_serve*.json``
is consumed by compliant parsers that reject ``Infinity``/``NaN``
literals).  The documented convention, applied by
:func:`jsonable_float`:

- a session with **zero completed requests** reports ``throughput``
  ``0.0`` and ``makespan`` ``0.0`` — there is no rate to measure, and
  zero work per second is the honest summary;
- any remaining non-finite float (``NaN`` latency percentiles when
  nothing completed, ``inf`` throughput when every completion landed at
  the first arrival instant so the makespan is 0) serializes as
  ``null`` — "undefined", never an out-of-band literal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .batching import CACHE_HIT, REJECTED, SCORED, THROTTLED, Schedule


def jsonable_float(value: float) -> Optional[float]:
    """Strict-JSON projection of one float: non-finite -> ``None``."""
    v = float(value)
    return v if math.isfinite(v) else None


@dataclass
class ServeStats:
    """Aggregate report for one serving session."""

    n_requests: int
    n_scored: int
    n_cache_hits: int
    n_rejected: int
    n_slabs: int
    mean_slab_size: float
    peak_queue_depth: int

    # simulated-clock latency over completed (scored + hit) requests;
    # NaN in-process when nothing completed, null once serialized
    latency_p50: float
    latency_p90: float
    latency_p99: float
    latency_max: float
    latency_mean: float

    #: completed requests per simulated second (makespan = last
    #: completion − first arrival); 0.0 when nothing completed, inf
    #: in-process (null serialized) when the makespan is exactly 0
    throughput: float
    makespan: float

    cache: Dict[str, float] = field(default_factory=dict)

    #: requests denied by per-tenant admission control (fleet router)
    n_throttled: int = 0

    # communication + host-side costs of the SPMD session
    nprocs: int = 1
    total_bytes_sent: int = 0
    total_messages: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """Strict-JSON-safe plain data (see the module's JSON convention)."""
        return {
            "n_requests": self.n_requests,
            "n_scored": self.n_scored,
            "n_cache_hits": self.n_cache_hits,
            "n_rejected": self.n_rejected,
            "n_throttled": self.n_throttled,
            "n_slabs": self.n_slabs,
            "mean_slab_size": jsonable_float(self.mean_slab_size),
            "peak_queue_depth": self.peak_queue_depth,
            "latency_p50": jsonable_float(self.latency_p50),
            "latency_p90": jsonable_float(self.latency_p90),
            "latency_p99": jsonable_float(self.latency_p99),
            "latency_max": jsonable_float(self.latency_max),
            "latency_mean": jsonable_float(self.latency_mean),
            "throughput": jsonable_float(self.throughput),
            "makespan": jsonable_float(self.makespan),
            "cache": {k: jsonable_float(v) for k, v in self.cache.items()},
            "nprocs": self.nprocs,
            "total_bytes_sent": self.total_bytes_sent,
            "total_messages": self.total_messages,
            "wall_seconds": jsonable_float(self.wall_seconds),
        }


def build_stats(
    schedule: Schedule,
    arrivals: np.ndarray,
    cache_stats: Dict[str, float],
    *,
    nprocs: int = 1,
    total_bytes_sent: int = 0,
    total_messages: int = 0,
    wall_seconds: float = 0.0,
) -> ServeStats:
    """Fold one schedule + cache counters into a :class:`ServeStats`."""
    status = schedule.status
    done = (status == SCORED) | (status == CACHE_HIT)
    lat = schedule.latencies(np.asarray(arrivals, dtype=np.float64))[done]

    if lat.size:
        p50, p90, p99 = np.percentile(lat, [50, 90, 99])
        lat_max, lat_mean = float(lat.max()), float(lat.mean())
    else:
        p50 = p90 = p99 = lat_max = lat_mean = float("nan")

    n_done = int(done.sum())
    if n_done:
        makespan = float(
            schedule.completion[done].max() - arrivals[done].min()
        )
        # inf (every completion at the first arrival instant) survives
        # in-process and serializes as null; 0 completions report 0.0
        throughput = n_done / makespan if makespan > 0 else float("inf")
    else:
        makespan = 0.0
        throughput = 0.0

    sizes: List[int] = [s.size for s in schedule.slabs]
    return ServeStats(
        n_requests=int(status.size),
        n_scored=int((status == SCORED).sum()),
        n_cache_hits=int((status == CACHE_HIT).sum()),
        n_rejected=int((status == REJECTED).sum()),
        n_throttled=int((status == THROTTLED).sum()),
        n_slabs=len(sizes),
        mean_slab_size=float(np.mean(sizes)) if sizes else 0.0,
        peak_queue_depth=schedule.peak_queue_depth,
        latency_p50=float(p50),
        latency_p90=float(p90),
        latency_p99=float(p99),
        latency_max=lat_max,
        latency_mean=lat_mean,
        throughput=throughput,
        makespan=makespan,
        cache=dict(cache_stats),
        nprocs=nprocs,
        total_bytes_sent=total_bytes_sent,
        total_messages=total_messages,
        wall_seconds=wall_seconds,
    )
