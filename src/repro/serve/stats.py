"""Serving session report: latency percentiles, throughput, cache.

Latencies and throughput come in two flavours, matching the rest of the
repo: *modeled* (the per-rank virtual clocks — what the cascade testbed
would measure) and *host* (wall seconds actually burned in-process).
Modeled numbers are deterministic; host numbers are informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .batching import CACHE_HIT, REJECTED, SCORED, Schedule


@dataclass
class ServeStats:
    """Aggregate report for one serving session."""

    n_requests: int
    n_scored: int
    n_cache_hits: int
    n_rejected: int
    n_slabs: int
    mean_slab_size: float
    peak_queue_depth: int

    # simulated-clock latency over completed (scored + hit) requests
    latency_p50: float
    latency_p90: float
    latency_p99: float
    latency_max: float
    latency_mean: float

    #: completed requests per simulated second (makespan = last
    #: completion − first arrival)
    throughput: float
    makespan: float

    cache: Dict[str, float] = field(default_factory=dict)

    # communication + host-side costs of the SPMD session
    nprocs: int = 1
    total_bytes_sent: int = 0
    total_messages: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_requests": self.n_requests,
            "n_scored": self.n_scored,
            "n_cache_hits": self.n_cache_hits,
            "n_rejected": self.n_rejected,
            "n_slabs": self.n_slabs,
            "mean_slab_size": self.mean_slab_size,
            "peak_queue_depth": self.peak_queue_depth,
            "latency_p50": self.latency_p50,
            "latency_p90": self.latency_p90,
            "latency_p99": self.latency_p99,
            "latency_max": self.latency_max,
            "latency_mean": self.latency_mean,
            "throughput": self.throughput,
            "makespan": self.makespan,
            "cache": dict(self.cache),
            "nprocs": self.nprocs,
            "total_bytes_sent": self.total_bytes_sent,
            "total_messages": self.total_messages,
            "wall_seconds": self.wall_seconds,
        }


def build_stats(
    schedule: Schedule,
    arrivals: np.ndarray,
    cache_stats: Dict[str, float],
    *,
    nprocs: int = 1,
    total_bytes_sent: int = 0,
    total_messages: int = 0,
    wall_seconds: float = 0.0,
) -> ServeStats:
    """Fold one schedule + cache counters into a :class:`ServeStats`."""
    status = schedule.status
    done = (status == SCORED) | (status == CACHE_HIT)
    lat = schedule.latencies(np.asarray(arrivals, dtype=np.float64))[done]

    if lat.size:
        p50, p90, p99 = np.percentile(lat, [50, 90, 99])
        lat_max, lat_mean = float(lat.max()), float(lat.mean())
    else:
        p50 = p90 = p99 = lat_max = lat_mean = float("nan")

    n_done = int(done.sum())
    if n_done:
        makespan = float(
            schedule.completion[done].max() - arrivals[done].min()
        )
    else:
        makespan = 0.0
    throughput = n_done / makespan if makespan > 0 else float("inf")

    sizes: List[int] = [s.size for s in schedule.slabs]
    return ServeStats(
        n_requests=int(status.size),
        n_scored=int((status == SCORED).sum()),
        n_cache_hits=int((status == CACHE_HIT).sum()),
        n_rejected=int((status == REJECTED).sum()),
        n_slabs=len(sizes),
        mean_slab_size=float(np.mean(sizes)) if sizes else 0.0,
        peak_queue_depth=schedule.peak_queue_depth,
        latency_p50=float(p50),
        latency_p90=float(p90),
        latency_p99=float(p99),
        latency_max=lat_max,
        latency_mean=lat_mean,
        throughput=throughput,
        makespan=makespan,
        cache=dict(cache_stats),
        nprocs=nprocs,
        total_bytes_sent=total_bytes_sent,
        total_messages=total_messages,
        wall_seconds=wall_seconds,
    )
