"""The serving benchmark: batch policy × shard count sweep.

Trains one binary machine on the mushrooms miniature, then replays a
burst of single-row score requests through :func:`serve_requests` for
every (``max_batch``, ``nprocs``) combination, asserting on every
configuration that the served scores are **bitwise identical** to a
direct ``SVMModel.decision_function`` pass over the same rows.  Two
extra runs exercise the result cache (a duplicate-heavy workload) and
fault injection on the serving path.

The headline numbers are the batch-64 vs batch-1 speedups per shard
count, in both modeled (virtual-clock) and host (wall-second)
throughput; the acceptance bar is ≥ 3× on both at ``max_batch=64``.
``repro serve-bench`` and ``benchmarks/bench_serve.py`` both route
here; the report lands in ``BENCH_serve.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..config import RunConfig
from ..core.svc import SVC
from ..data import DATASETS, load_dataset
from ..sparse.csr import CSRMatrix
from .batching import BatchPolicy
from .loadgen import burst_arrivals, sample_requests
from .server import serve_requests

DATASET = "mushrooms"
N_REQUESTS = 512
QUICK_REQUESTS = 128
NPROCS_SWEEP = (1, 2, 4)
BATCH_SWEEP = (1, 8, 64)
#: the acceptance bar: batch-64 throughput vs single-request scoring
SPEEDUP_BAR = 3.0
BASE_BATCH, TOP_BATCH = 1, 64


def _train_model(
    scale: Optional[float] = None, config: Optional[RunConfig] = None
):
    entry = DATASETS[DATASET]
    ds = load_dataset(DATASET, scale=scale)
    clf = SVC(
        C=entry.C, sigma_sq=entry.sigma_sq,
        config=(config or RunConfig()).replace(nprocs=2),
    ).fit(ds.X_train, ds.y_train)
    return clf.model_, ds.X_train


def run_serve_bench(
    quick: bool = False, config: Optional[RunConfig] = None
) -> dict:
    """Run the sweep.  ``config`` carries run knobs shared by every
    scenario (machine, comm, ...); the swept ``nprocs`` and each
    scenario's ``faults`` override its fields."""
    base = config or RunConfig()
    n_requests = QUICK_REQUESTS if quick else N_REQUESTS
    model, pool = _train_model(scale=None, config=base)
    X_req = sample_requests(pool, n_requests, seed=7)
    arrivals = burst_arrivals(n_requests)
    direct = model.decision_function(X_req)

    configs: List[Dict] = []
    for nprocs in NPROCS_SWEEP:
        for max_batch in BATCH_SWEEP:
            res = serve_requests(
                model, X_req, arrivals,
                policy=BatchPolicy(max_batch=max_batch, max_delay=0.0),
                config=base.replace(nprocs=nprocs),
            )
            if not np.array_equal(res.scores, direct):
                raise AssertionError(
                    f"served scores diverge from direct scoring "
                    f"(nprocs={nprocs}, max_batch={max_batch})"
                )
            s = res.stats
            configs.append({
                "nprocs": nprocs,
                "max_batch": max_batch,
                "n_requests": n_requests,
                "n_slabs": s.n_slabs,
                "throughput_modeled": s.throughput,
                "throughput_host": n_requests / s.wall_seconds,
                "makespan_modeled": s.makespan,
                "wall_seconds": s.wall_seconds,
                "latency_p50": s.latency_p50,
                "latency_p99": s.latency_p99,
                "messages": s.total_messages,
                "bytes_sent": s.total_bytes_sent,
                "bitwise_identical": True,
            })

    speedups = []
    by_key = {(c["nprocs"], c["max_batch"]): c for c in configs}
    for nprocs in NPROCS_SWEEP:
        base, top = by_key[(nprocs, BASE_BATCH)], by_key[(nprocs, TOP_BATCH)]
        speedups.append({
            "nprocs": nprocs,
            "modeled_speedup": (
                top["throughput_modeled"] / base["throughput_modeled"]
            ),
            "host_speedup": top["throughput_host"] / base["throughput_host"],
        })

    # duplicate-heavy replay: two waves of the same requests, the second
    # arriving after the first has fully drained — a burst alone admits
    # every request before any slab completes, so nothing can hit
    X_wave = sample_requests(pool, n_requests, seed=11)
    X_dup = CSRMatrix.vstack([X_wave, X_wave])
    wave_arrivals = np.concatenate(
        [np.zeros(n_requests), np.full(n_requests, 1.0)]
    )
    cached = serve_requests(
        model, X_dup, wave_arrivals,
        policy=BatchPolicy(max_batch=64, max_delay=0.0),
        config=base.replace(nprocs=2), cache_entries=2 * n_requests,
    )
    if not np.array_equal(cached.scores, model.decision_function(X_dup)):
        raise AssertionError("cached serving diverges from direct scoring")

    # fault injection on the serving path: dropped slab messages are
    # retried by the runtime, scores stay bitwise exact
    faulty = serve_requests(
        model, X_req, arrivals,
        policy=BatchPolicy(max_batch=32, max_delay=0.0),
        config=base.replace(nprocs=2, faults="drop:p=0.02,seed=5"),
    )
    if not np.array_equal(faulty.scores, direct):
        raise AssertionError("serving under faults diverges from direct scoring")

    return {
        "benchmark": "serve",
        "dataset": DATASET,
        "quick": quick,
        "n_sv": model.n_sv,
        "n_requests": n_requests,
        "speedup_bar": SPEEDUP_BAR,
        "configs": configs,
        "speedups": speedups,
        "cache_replay": {
            "waves": 2,
            **{k: cached.stats.cache[k]
               for k in ("hits", "misses", "hit_rate")},
            "bitwise_identical": True,
        },
        "faulted_run": {
            "faults": "drop:p=0.02,seed=5",
            "bitwise_identical": True,
            "fault_stats": faulty.spmd.fault_stats["stats"]
            if faulty.spmd.fault_stats else None,
        },
    }


def check_bars(report: dict) -> None:
    """Assert the acceptance bars over a finished report."""
    for s in report["speedups"]:
        if s["modeled_speedup"] < report["speedup_bar"]:
            raise AssertionError(
                f"modeled batch-{TOP_BATCH} speedup {s['modeled_speedup']:.2f}x "
                f"below {report['speedup_bar']}x at nprocs={s['nprocs']}"
            )
        if s["host_speedup"] < report["speedup_bar"]:
            raise AssertionError(
                f"host batch-{TOP_BATCH} speedup {s['host_speedup']:.2f}x "
                f"below {report['speedup_bar']}x at nprocs={s['nprocs']}"
            )
    if report["cache_replay"]["hit_rate"] <= 0.0:
        raise AssertionError("duplicate-heavy replay produced no cache hits")


def format_report(report: dict) -> str:
    lines = [
        f"serve bench ({'quick' if report['quick'] else 'full'}): "
        f"{report['dataset']}, n_sv={report['n_sv']}, "
        f"{report['n_requests']} requests (burst)",
        f"{'p':>3} {'batch':>5} {'slabs':>5} {'thr model (req/s)':>18} "
        f"{'thr host (req/s)':>17} {'p50 lat':>9} {'p99 lat':>9}",
    ]
    for c in report["configs"]:
        lines.append(
            f"{c['nprocs']:>3} {c['max_batch']:>5} {c['n_slabs']:>5} "
            f"{c['throughput_modeled']:>18,.0f} "
            f"{c['throughput_host']:>17,.0f} "
            f"{c['latency_p50'] * 1e6:>7.1f}us {c['latency_p99'] * 1e6:>7.1f}us"
        )
    for s in report["speedups"]:
        lines.append(
            f"batch {TOP_BATCH} vs {BASE_BATCH} at p={s['nprocs']}: "
            f"modeled {s['modeled_speedup']:.1f}x, host {s['host_speedup']:.1f}x"
        )
    cr = report["cache_replay"]
    lines.append(
        f"cache replay ({cr['waves']} waves): "
        f"hit rate {cr['hit_rate']:.2f} ({cr['hits']} hits)"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# fleet benchmark: kill-mid-traffic recovery + hot-swap-under-load
# --------------------------------------------------------------------------

FLEET_SWEEP = ((2, 2), (2, 3), (4, 2), (4, 3))  # (nprocs, replicas)
QUICK_FLEET_SWEEP = ((2, 2),)
FLEET_REQUESTS = 256
QUICK_FLEET_REQUESTS = 96


def _fleet_scenario(model, X_req, arrivals, *, nprocs, replicas, events,
                    registry=None, cache_entries=0, base_config=None):
    """One fleet run + the invariant audit every scenario must pass."""
    from .batching import CACHE_HIT as _HIT, SCORED as _SCORED
    from .fleet import serve_fleet
    from .registry import ModelRegistry

    source = registry if registry is not None else model
    res = serve_fleet(
        source, X_req, arrivals,
        policy=BatchPolicy(max_batch=32, max_delay=200e-6),
        config=(base_config or RunConfig()).replace(
            nprocs=nprocs, replicas=replicas
        ),
        events=events, cache_entries=cache_entries,
    )
    n = X_req.shape[0]
    done = (res.status == _SCORED) | (res.status == _HIT)
    if not done.all():
        raise AssertionError(
            f"{int((~done).sum())} of {n} requests dropped "
            f"(p={nprocs}, replicas={replicas})"
        )
    # exactly-once: every SPMD-scored request sits in exactly one
    # successful slab; drained slabs from killed replicas never land
    counts = np.zeros(n, dtype=np.int64)
    for rec in res.fleet.slab_log:
        counts[rec["ids"]] += 1
    scored = res.status == _SCORED
    if not np.array_equal(counts[scored], np.ones(int(scored.sum()))):
        raise AssertionError("a request was double-scored or lost in a slab")
    if counts[~scored].any():
        raise AssertionError("a non-scored request appears in a slab log")
    # bitwise: each request matches direct scoring by the model version
    # that actually served it (cache hits included)
    stale = 0
    reg = res.registry
    for version in sorted(set(res.versions[done].tolist())):
        sel = done & (res.versions == version)
        idx = np.where(sel)[0]
        direct = reg.load(int(version)).decision_function(X_req.take_rows(idx))
        if not np.array_equal(res.scores[sel], direct):
            stale += int((res.scores[sel] != direct).sum())
    if stale:
        raise AssertionError(f"{stale} served scores diverge from their "
                             f"recorded model version (stale or corrupt)")
    return res, stale


def run_fleet_bench(
    quick: bool = False, config: Optional[RunConfig] = None
) -> dict:
    """Kill-mid-traffic recovery sweep + hot-swap-under-load scenario."""
    from .fleet import KillReplica, SwapModel
    from .loadgen import uniform_arrivals
    from .registry import ModelRegistry, model_fingerprint
    from ..perfmodel import MachineSpec, project_fleet

    base = config or RunConfig()
    n_requests = QUICK_FLEET_REQUESTS if quick else FLEET_REQUESTS
    sweep = QUICK_FLEET_SWEEP if quick else FLEET_SWEEP
    entry = DATASETS[DATASET]
    ds = load_dataset(DATASET, scale=None)
    model, pool = _train_model(scale=None, config=base)
    X_req = sample_requests(pool, n_requests, seed=7)
    horizon = 20e-3 if quick else 50e-3
    arrivals = uniform_arrivals(n_requests, n_requests / horizon)
    t_kill = float(arrivals[n_requests // 3])

    scenarios: List[Dict] = []
    for nprocs, replicas in sweep:
        res, stale = _fleet_scenario(
            model, X_req, arrivals, nprocs=nprocs, replicas=replicas,
            events=[KillReplica(time=t_kill, slot=replicas - 1)],
            base_config=base,
        )
        s = res.stats
        scenarios.append({
            "scenario": "kill_mid_traffic",
            "nprocs": nprocs,
            "replicas": replicas,
            "n_requests": n_requests,
            "n_slabs": s.n_slabs,
            "n_failovers": res.fleet.n_failovers,
            "drained_requests": sum(
                f.drained_requests for f in res.fleet.failovers
            ),
            "reshard_seconds": res.fleet.reshard_seconds,
            "throughput_modeled": s.throughput,
            "makespan_modeled": s.makespan,
            "latency_p50": s.latency_p50,
            "latency_p99": s.latency_p99,
            "slabs_per_slot": res.fleet.slabs_per_slot,
            "bitwise_identical": True,
            "stale_scores": stale,
        })

    # hot-swap under load: v2 activates mid-stream with the cache warm;
    # the retired namespace is flushed, so zero stale-version scores can
    # leak from either the scorers or the cache
    clf2 = SVC(
        C=entry.C * 0.5, sigma_sq=entry.sigma_sq * 2.0,
        config=base.replace(nprocs=2),
    ).fit(ds.X_train, ds.y_train)
    registry = ModelRegistry()
    v1 = registry.publish(model, label="v1")
    v2 = registry.publish(clf2.model_, label="v2")
    registry.activate(v1)
    t_swap = float(arrivals[n_requests // 2])
    nprocs_hs, replicas_hs = sweep[0]
    res_hs, stale_hs = _fleet_scenario(
        model, X_req, arrivals, nprocs=nprocs_hs, replicas=replicas_hs,
        events=[SwapModel(time=t_swap, version=v2)],
        registry=registry, cache_entries=2 * n_requests,
        base_config=base,
    )
    served_versions = {
        int(v): int((res_hs.versions == v).sum())
        for v in sorted(set(res_hs.versions.tolist())) if v >= 0
    }
    hot_swap = {
        "scenario": "hot_swap_under_load",
        "nprocs": nprocs_hs,
        "replicas": replicas_hs,
        "n_requests": n_requests,
        "n_swaps": res_hs.fleet.n_swaps,
        "n_reshards": res_hs.fleet.n_reshards,
        "flushed_entries": sum(
            s["flushed_entries"] for s in res_hs.fleet.swaps
        ),
        "served_per_version": served_versions,
        "cache": {k: res_hs.stats.cache.get(k)
                  for k in ("hits", "misses", "hit_rate", "flushed")},
        "bitwise_identical": True,
        "stale_scores": stale_hs,
    }

    machine = MachineSpec.cascade()
    avg_nnz = model.sv_X.avg_row_nnz or 1.0
    projections = []
    for p, r in sweep:
        proj = project_fleet(
            machine, n_sv=model.n_sv, avg_nnz=avg_nnz,
            p=p, replicas=r, slab_rows=32,
        )
        projections.append({
            "p": proj.p,
            "replicas": proj.replicas,
            "slab_rows": proj.slab_rows,
            "slab_time": proj.slab_time,
            "throughput": proj.throughput,
            "reshard_time": proj.reshard_time,
            "recovery_time": proj.recovery_time,
            "requests_at_risk": proj.requests_at_risk,
            "recovery_slabs": proj.recovery_slabs,
        })

    return {
        "benchmark": "serve_fleet",
        "dataset": DATASET,
        "quick": quick,
        "n_sv": model.n_sv,
        "n_requests": n_requests,
        "kill_time": t_kill,
        "swap_time": t_swap,
        "scenarios": scenarios,
        "hot_swap": hot_swap,
        "projections": projections,
    }


def check_fleet_bars(report: dict) -> None:
    """Assert the fleet acceptance bars over a finished report."""
    for sc in report["scenarios"]:
        if sc["n_failovers"] < 1:
            raise AssertionError(
                f"kill scenario at p={sc['nprocs']} replicas={sc['replicas']} "
                f"recorded no failover"
            )
        if not sc["bitwise_identical"] or sc["stale_scores"]:
            raise AssertionError("kill scenario served non-exact scores")
        if sc["drained_requests"] < 1:
            raise AssertionError("failover drained no in-flight requests")
    hs = report["hot_swap"]
    if hs["n_swaps"] < 1:
        raise AssertionError("hot-swap scenario recorded no swap")
    if hs["stale_scores"]:
        raise AssertionError(
            f"hot-swap leaked {hs['stale_scores']} stale-version scores"
        )
    if len(hs["served_per_version"]) < 2:
        raise AssertionError(
            "hot-swap scenario served only one model version "
            "(swap landed outside the traffic window)"
        )


def format_fleet_report(report: dict) -> str:
    lines = [
        f"serve fleet bench ({'quick' if report['quick'] else 'full'}): "
        f"{report['dataset']}, n_sv={report['n_sv']}, "
        f"{report['n_requests']} requests, kill at "
        f"t={report['kill_time'] * 1e3:.1f}ms",
        f"{'p':>3} {'rep':>3} {'slabs':>5} {'fails':>5} {'drain':>5} "
        f"{'thr model (req/s)':>18} {'p99 lat':>9}",
    ]
    for sc in report["scenarios"]:
        lines.append(
            f"{sc['nprocs']:>3} {sc['replicas']:>3} {sc['n_slabs']:>5} "
            f"{sc['n_failovers']:>5} {sc['drained_requests']:>5} "
            f"{sc['throughput_modeled']:>18,.0f} "
            f"{sc['latency_p99'] * 1e3:>7.2f}ms"
        )
    hs = report["hot_swap"]
    lines.append(
        f"hot swap at t={report['swap_time'] * 1e3:.1f}ms: "
        f"{hs['n_swaps']} swap(s), {hs['n_reshards']} reshard(s), "
        f"versions {hs['served_per_version']}, "
        f"{hs['flushed_entries']} cache entries flushed, 0 stale"
    )
    return "\n".join(lines)
