"""The serving benchmark: batch policy × shard count sweep.

Trains one binary machine on the mushrooms miniature, then replays a
burst of single-row score requests through :func:`serve_requests` for
every (``max_batch``, ``nprocs``) combination, asserting on every
configuration that the served scores are **bitwise identical** to a
direct ``SVMModel.decision_function`` pass over the same rows.  Two
extra runs exercise the result cache (a duplicate-heavy workload) and
fault injection on the serving path.

The headline numbers are the batch-64 vs batch-1 speedups per shard
count, in both modeled (virtual-clock) and host (wall-second)
throughput; the acceptance bar is ≥ 3× on both at ``max_batch=64``.
``repro serve-bench`` and ``benchmarks/bench_serve.py`` both route
here; the report lands in ``BENCH_serve.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..config import RunConfig
from ..core.svc import SVC
from ..data import DATASETS, load_dataset
from ..sparse.csr import CSRMatrix
from .batching import BatchPolicy
from .loadgen import burst_arrivals, sample_requests
from .server import serve_requests

DATASET = "mushrooms"
N_REQUESTS = 512
QUICK_REQUESTS = 128
NPROCS_SWEEP = (1, 2, 4)
BATCH_SWEEP = (1, 8, 64)
#: the acceptance bar: batch-64 throughput vs single-request scoring
SPEEDUP_BAR = 3.0
BASE_BATCH, TOP_BATCH = 1, 64


def _train_model(scale: Optional[float] = None):
    entry = DATASETS[DATASET]
    ds = load_dataset(DATASET, scale=scale)
    clf = SVC(
        C=entry.C, sigma_sq=entry.sigma_sq,
        config=RunConfig(nprocs=2),
    ).fit(ds.X_train, ds.y_train)
    return clf.model_, ds.X_train


def run_serve_bench(quick: bool = False) -> dict:
    n_requests = QUICK_REQUESTS if quick else N_REQUESTS
    model, pool = _train_model(scale=None)
    X_req = sample_requests(pool, n_requests, seed=7)
    arrivals = burst_arrivals(n_requests)
    direct = model.decision_function(X_req)

    configs: List[Dict] = []
    for nprocs in NPROCS_SWEEP:
        for max_batch in BATCH_SWEEP:
            res = serve_requests(
                model, X_req, arrivals,
                policy=BatchPolicy(max_batch=max_batch, max_delay=0.0),
                config=RunConfig(nprocs=nprocs),
            )
            if not np.array_equal(res.scores, direct):
                raise AssertionError(
                    f"served scores diverge from direct scoring "
                    f"(nprocs={nprocs}, max_batch={max_batch})"
                )
            s = res.stats
            configs.append({
                "nprocs": nprocs,
                "max_batch": max_batch,
                "n_requests": n_requests,
                "n_slabs": s.n_slabs,
                "throughput_modeled": s.throughput,
                "throughput_host": n_requests / s.wall_seconds,
                "makespan_modeled": s.makespan,
                "wall_seconds": s.wall_seconds,
                "latency_p50": s.latency_p50,
                "latency_p99": s.latency_p99,
                "messages": s.total_messages,
                "bytes_sent": s.total_bytes_sent,
                "bitwise_identical": True,
            })

    speedups = []
    by_key = {(c["nprocs"], c["max_batch"]): c for c in configs}
    for nprocs in NPROCS_SWEEP:
        base, top = by_key[(nprocs, BASE_BATCH)], by_key[(nprocs, TOP_BATCH)]
        speedups.append({
            "nprocs": nprocs,
            "modeled_speedup": (
                top["throughput_modeled"] / base["throughput_modeled"]
            ),
            "host_speedup": top["throughput_host"] / base["throughput_host"],
        })

    # duplicate-heavy replay: two waves of the same requests, the second
    # arriving after the first has fully drained — a burst alone admits
    # every request before any slab completes, so nothing can hit
    X_wave = sample_requests(pool, n_requests, seed=11)
    X_dup = CSRMatrix.vstack([X_wave, X_wave])
    wave_arrivals = np.concatenate(
        [np.zeros(n_requests), np.full(n_requests, 1.0)]
    )
    cached = serve_requests(
        model, X_dup, wave_arrivals,
        policy=BatchPolicy(max_batch=64, max_delay=0.0),
        config=RunConfig(nprocs=2), cache_entries=2 * n_requests,
    )
    if not np.array_equal(cached.scores, model.decision_function(X_dup)):
        raise AssertionError("cached serving diverges from direct scoring")

    # fault injection on the serving path: dropped slab messages are
    # retried by the runtime, scores stay bitwise exact
    faulty = serve_requests(
        model, X_req, arrivals,
        policy=BatchPolicy(max_batch=32, max_delay=0.0),
        config=RunConfig(nprocs=2, faults="drop:p=0.02,seed=5"),
    )
    if not np.array_equal(faulty.scores, direct):
        raise AssertionError("serving under faults diverges from direct scoring")

    return {
        "benchmark": "serve",
        "dataset": DATASET,
        "quick": quick,
        "n_sv": model.n_sv,
        "n_requests": n_requests,
        "speedup_bar": SPEEDUP_BAR,
        "configs": configs,
        "speedups": speedups,
        "cache_replay": {
            "waves": 2,
            **{k: cached.stats.cache[k]
               for k in ("hits", "misses", "hit_rate")},
            "bitwise_identical": True,
        },
        "faulted_run": {
            "faults": "drop:p=0.02,seed=5",
            "bitwise_identical": True,
            "fault_stats": faulty.spmd.fault_stats["stats"]
            if faulty.spmd.fault_stats else None,
        },
    }


def check_bars(report: dict) -> None:
    """Assert the acceptance bars over a finished report."""
    for s in report["speedups"]:
        if s["modeled_speedup"] < report["speedup_bar"]:
            raise AssertionError(
                f"modeled batch-{TOP_BATCH} speedup {s['modeled_speedup']:.2f}x "
                f"below {report['speedup_bar']}x at nprocs={s['nprocs']}"
            )
        if s["host_speedup"] < report["speedup_bar"]:
            raise AssertionError(
                f"host batch-{TOP_BATCH} speedup {s['host_speedup']:.2f}x "
                f"below {report['speedup_bar']}x at nprocs={s['nprocs']}"
            )
    if report["cache_replay"]["hit_rate"] <= 0.0:
        raise AssertionError("duplicate-heavy replay produced no cache hits")


def format_report(report: dict) -> str:
    lines = [
        f"serve bench ({'quick' if report['quick'] else 'full'}): "
        f"{report['dataset']}, n_sv={report['n_sv']}, "
        f"{report['n_requests']} requests (burst)",
        f"{'p':>3} {'batch':>5} {'slabs':>5} {'thr model (req/s)':>18} "
        f"{'thr host (req/s)':>17} {'p50 lat':>9} {'p99 lat':>9}",
    ]
    for c in report["configs"]:
        lines.append(
            f"{c['nprocs']:>3} {c['max_batch']:>5} {c['n_slabs']:>5} "
            f"{c['throughput_modeled']:>18,.0f} "
            f"{c['throughput_host']:>17,.0f} "
            f"{c['latency_p50'] * 1e6:>7.1f}us {c['latency_p99'] * 1e6:>7.1f}us"
        )
    for s in report["speedups"]:
        lines.append(
            f"batch {TOP_BATCH} vs {BASE_BATCH} at p={s['nprocs']}: "
            f"modeled {s['modeled_speedup']:.1f}x, host {s['host_speedup']:.1f}x"
        )
    cr = report["cache_replay"]
    lines.append(
        f"cache replay ({cr['waves']} waves): "
        f"hit rate {cr['hit_rate']:.2f} ({cr['hits']} hits)"
    )
    return "\n".join(lines)
