"""LRU result cache for the serving path.

Keyed by ``(namespace, request-row content)``.  The namespace carries
*model identity* (a registry version tag or a content fingerprint — see
:func:`repro.serve.registry.model_fingerprint`), the row key carries the
exact CSR content of the request row.  Both parts matter:

- the row key is **injective**: every variable-length section is
  length-prefixed and tagged with its dtype, so no two distinct
  ``(indices, data)`` pairs can serialize to the same byte string.  (An
  earlier format joined ``indices.tobytes() + b"|" + data.tobytes()``;
  the delimiter byte can occur *inside* the payload, so two different
  rows could alias one entry and serve a wrong score — see
  ``tests/serve/test_cache.py::test_request_key_no_delimiter_collision``.)
- the namespace makes hot-swap safe: scores cached under one model
  version can never satisfy a probe against another, and
  :meth:`ResultCache.flush_namespace` drops a retired version's entries
  wholesale at swap time.

Values are the finished decision-function scores — a hit skips kernel
evaluation, sharded reduction, and the queue entirely, and because every
cached value was produced by the same bitwise-deterministic scoring
pipeline, replaying from cache cannot change a score.

Entry-bounded LRU on an ``OrderedDict``, same discipline as the
fit-time :class:`~repro.kernels.cache.KernelRowCache`; capacity 0
disables caching (every probe is a miss, nothing is stored).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix

#: the default (anonymous) model namespace, for callers that manage a
#: single model and no hot-swap
DEFAULT_NAMESPACE = b""


def _section(arr: np.ndarray) -> bytes:
    """One self-delimiting key section: dtype tag + length prefix + payload."""
    tag = arr.dtype.str.encode("ascii")
    payload = arr.tobytes()
    return struct.pack("<B", len(tag)) + tag + struct.pack("<Q", len(payload)) + payload


def request_key(X: CSRMatrix, row: int) -> bytes:
    """Injective content key for one request row.

    Each section (indices, data) is dtype-tagged and length-prefixed, so
    the encoding is prefix-free: distinct rows always produce distinct
    keys, regardless of what bytes the payloads contain.
    """
    lo, hi = X.indptr[row], X.indptr[row + 1]
    return _section(X.indices[lo:hi]) + _section(X.data[lo:hi])


class ResultCache:
    """Bounded LRU mapping (namespace, request-row content) -> decision value.

    ``namespace`` identifies the model that produced (or would produce)
    the score; probes and inserts under different namespaces never
    interact.  The LRU order and the capacity bound are global across
    namespaces — a hot new version naturally evicts a cold old one.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._store: "OrderedDict[Tuple[bytes, bytes], float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushed = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(
        self, key: bytes, namespace: bytes = DEFAULT_NAMESPACE
    ) -> Optional[float]:
        """Probe; counts a hit or miss and refreshes recency on hit."""
        if self.capacity == 0:
            self.misses += 1
            return None
        full = (namespace, key)
        value = self._store.get(full)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(full)
        self.hits += 1
        return value

    def put(
        self, key: bytes, value: float, namespace: bytes = DEFAULT_NAMESPACE
    ) -> None:
        """Insert a finished score, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        full = (namespace, key)
        if full in self._store:
            self._store.move_to_end(full)
            self._store[full] = value
            return
        if len(self._store) >= self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1
        self._store[full] = value

    def flush_namespace(self, namespace: bytes) -> int:
        """Drop every entry cached under ``namespace`` (hot-swap retire).

        Returns the number of entries removed.  Hit/miss counters are
        untouched — a flush is a capacity event, not a probe.
        """
        stale = [k for k in self._store if k[0] == namespace]
        for k in stale:
            del self._store[k]
        self.flushed += len(stale)
        return len(stale)

    def namespaces(self) -> Dict[bytes, int]:
        """Live entry count per namespace (diagnostics)."""
        out: Dict[bytes, int] = {}
        for ns, _ in self._store:
            out[ns] = out.get(ns, 0) + 1
        return out

    def stats(self) -> Dict[str, float]:
        probes = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._store),
            "namespaces": len(self.namespaces()),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "flushed": self.flushed,
            "hit_rate": self.hits / probes if probes else 0.0,
        }
