"""LRU result cache for the serving path.

Keyed by request-row *content* (the CSR indices+values byte strings), so
two requests carrying the same feature vector hit regardless of where
the rows came from.  Values are the finished decision-function scores —
a hit skips kernel evaluation, sharded reduction, and the queue
entirely, and because every cached value was produced by the same
bitwise-deterministic scoring pipeline, replaying from cache cannot
change a score.

Entry-bounded LRU on an ``OrderedDict``, same discipline as the
fit-time :class:`~repro.kernels.cache.KernelRowCache`; capacity 0
disables caching (every probe is a miss, nothing is stored).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..sparse.csr import CSRMatrix


def request_key(X: CSRMatrix, row: int) -> bytes:
    """Content hash key for one request row (exact, not lossy)."""
    lo, hi = X.indptr[row], X.indptr[row + 1]
    return X.indices[lo:hi].tobytes() + b"|" + X.data[lo:hi].tobytes()


class ResultCache:
    """Bounded LRU mapping request-row content -> decision value."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._store: "OrderedDict[bytes, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: bytes) -> Optional[float]:
        """Probe; counts a hit or miss and refreshes recency on hit."""
        if self.capacity == 0:
            self.misses += 1
            return None
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: bytes, value: float) -> None:
        """Insert a finished score, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        if key in self._store:
            self._store.move_to_end(key)
            self._store[key] = value
            return
        if len(self._store) >= self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1
        self._store[key] = value

    def stats(self) -> Dict[str, float]:
        probes = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / probes if probes else 0.0,
        }
