"""Versioned model registry: the fleet's source of truth.

Every published model is immediately round-tripped through the exact
persistence-v2 JSON format (:func:`repro.core.model.model_to_jsonable`)
and stored as the *serialized* blob.  Two consequences:

- what a replacement shard-group re-shards from after a failover is
  bit-for-bit what ``save_model``/``load_model`` would restore — the
  registry cannot drift from the on-disk format;
- every version has a stable content *fingerprint* (a digest of the
  canonical blob) that namespaces the result cache, so a hot-swap can
  never serve a stale score out of cache (see
  :mod:`repro.serve.cache`).

Activation (:meth:`ModelRegistry.activate`) is an atomic pointer flip
under a lock: a router reading :attr:`active_version` mid-swap sees
either the old version or the new one, never a torn state.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Dict, List, Optional

from ..core.model import SVMModel, model_from_jsonable, model_to_jsonable


def model_fingerprint(model: SVMModel) -> bytes:
    """Content digest of a model's exact v2 serialized form.

    Equal models (bitwise-equal SVs, coefficients, beta, kernel
    hyperparameters) fingerprint equal; any bit of difference changes
    the digest.  Used as the cache namespace for callers serving a bare
    model without a registry.
    """
    blob = json.dumps(model_to_jsonable(model), sort_keys=True)
    return hashlib.sha256(blob.encode("ascii")).digest()


class ModelRegistry:
    """Thread-safe store of versioned models with one *active* version."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blobs: Dict[int, str] = {}
        self._labels: Dict[int, Optional[str]] = {}
        self._fingerprints: Dict[int, bytes] = {}
        self._active: Optional[int] = None
        self._next = 1

    def publish(self, model: SVMModel, *, label: Optional[str] = None) -> int:
        """Store a model; returns its new version number.

        The first published version auto-activates (a fleet must always
        have a servable model); later versions wait for an explicit
        :meth:`activate` — publish-then-activate is the hot-swap.
        """
        blob = json.dumps(model_to_jsonable(model), sort_keys=True)
        with self._lock:
            version = self._next
            self._next += 1
            self._blobs[version] = blob
            self._labels[version] = label
            self._fingerprints[version] = hashlib.sha256(
                blob.encode("ascii")
            ).digest()
            if self._active is None:
                self._active = version
        return version

    def hot_swap(self, model: SVMModel, *, label: Optional[str] = None) -> int:
        """Publish ``model`` and atomically make it the active version.

        The publish-then-activate sequence is exactly what a manual
        hot-swap does; bundling it gives the streaming refresh policy a
        one-call path.  Returns the new (now active) version number.
        """
        version = self.publish(model, label=label)
        self.activate(version)
        return version

    def load(self, version: int) -> SVMModel:
        """Materialize a fresh model object from the saved blob.

        Every call deserializes anew — exactly the path a replacement
        shard-group takes when it re-shards after a failover.
        """
        with self._lock:
            blob = self._blobs.get(version)
        if blob is None:
            raise KeyError(f"no model version {version} in registry")
        return model_from_jsonable(json.loads(blob))

    def activate(self, version: int) -> int:
        """Atomically make ``version`` the active one; returns the
        previously active version."""
        with self._lock:
            if version not in self._blobs:
                raise KeyError(f"cannot activate unknown version {version}")
            previous, self._active = self._active, version
        return previous

    @property
    def active_version(self) -> Optional[int]:
        with self._lock:
            return self._active

    def fingerprint(self, version: int) -> bytes:
        """The version's content digest (the cache namespace)."""
        with self._lock:
            fp = self._fingerprints.get(version)
        if fp is None:
            raise KeyError(f"no model version {version} in registry")
        return fp

    def versions(self) -> List[int]:
        with self._lock:
            return sorted(self._blobs)

    def label(self, version: int) -> Optional[str]:
        with self._lock:
            return self._labels.get(version)

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def __contains__(self, version: object) -> bool:
        with self._lock:
            return version in self._blobs
