"""``repro.serve`` — deterministic microbatched model serving.

The serving subsystem scores streams of single-row requests against a
trained :class:`~repro.core.model.SVMModel` on the simulated runtime:

- :mod:`batching` — the microbatch scheduler (max-batch / max-delay /
  bounded-queue policy over a discrete-event simulated clock);
- :mod:`cache` — LRU result cache keyed by request-row content;
- :mod:`server` — :func:`serve_requests`, the SPMD session pairing a
  rank-0 frontend with support-vector-sharded scorer ranks;
- :mod:`stats` — latency percentiles / throughput / cache report;
- :mod:`loadgen` — seeded arrival streams and request sampling.

Scores from the default ``reduction="slab"`` path are bitwise identical
to ``SVMModel.decision_function`` for every batch policy, arrival
order, shard count and cache state — serving is an optimization, never
a numerics change.
"""

from .batching import (
    CACHE_HIT,
    REJECTED,
    SCORED,
    BatchPolicy,
    Schedule,
    SlabRecord,
    run_schedule,
)
from .cache import ResultCache, request_key
from .loadgen import (
    burst_arrivals,
    poisson_arrivals,
    sample_requests,
    uniform_arrivals,
)
from .server import (
    DISPATCH_OVERHEAD_FLOPS,
    REQUEST_OVERHEAD_FLOPS,
    ServeResult,
    serve_requests,
)
from .stats import ServeStats, build_stats

__all__ = [
    "BatchPolicy",
    "CACHE_HIT",
    "DISPATCH_OVERHEAD_FLOPS",
    "REJECTED",
    "REQUEST_OVERHEAD_FLOPS",
    "ResultCache",
    "SCORED",
    "Schedule",
    "ServeResult",
    "ServeStats",
    "SlabRecord",
    "build_stats",
    "burst_arrivals",
    "poisson_arrivals",
    "request_key",
    "run_schedule",
    "sample_requests",
    "serve_requests",
    "uniform_arrivals",
]
