"""``repro.serve`` — deterministic microbatched model serving.

The serving subsystem scores streams of single-row requests against a
trained :class:`~repro.core.model.SVMModel` on the simulated runtime:

- :mod:`batching` — the microbatch scheduler (max-batch / max-delay /
  bounded-queue policy over a discrete-event simulated clock);
- :mod:`cache` — LRU result cache keyed by request-row content,
  namespaced by model version;
- :mod:`server` — :func:`serve_requests`, the SPMD session pairing a
  rank-0 frontend with support-vector-sharded scorer ranks;
- :mod:`registry` — :class:`ModelRegistry`, versioned models via the
  persistence-v2 exact round-trip, with atomic activation;
- :mod:`router` — per-tenant admission control + replica selection +
  the failover state machine;
- :mod:`fleet` — :func:`serve_fleet`, the self-healing replicated
  fleet (N shard-group replicas, fault-driven failover, hot-swap);
- :mod:`stats` — latency percentiles / throughput / cache report;
- :mod:`loadgen` — seeded arrival streams and request sampling.

Scores from the default ``reduction="slab"`` path are bitwise identical
to ``SVMModel.decision_function`` for every batch policy, arrival
order, shard count, replica count, failover and hot-swap history —
serving is an optimization, never a numerics change.
"""

from .batching import (
    CACHE_HIT,
    REJECTED,
    SCORED,
    THROTTLED,
    BatchPolicy,
    Schedule,
    SlabRecord,
    run_schedule,
)
from .cache import DEFAULT_NAMESPACE, ResultCache, request_key
from .fleet import (
    DETECT_SECONDS,
    FleetResult,
    FleetStats,
    KillReplica,
    ReplicaFailure,
    ShardGroup,
    SwapModel,
    serve_fleet,
)
from .loadgen import (
    burst_arrivals,
    poisson_arrivals,
    sample_requests,
    uniform_arrivals,
)
from .registry import ModelRegistry, model_fingerprint
from .router import (
    AdmissionController,
    FailoverEvent,
    Router,
    TenantQuota,
    as_quota,
)
from .server import (
    DISPATCH_OVERHEAD_FLOPS,
    REQUEST_OVERHEAD_FLOPS,
    ServeResult,
    serve_requests,
)
from .stats import ServeStats, build_stats, jsonable_float

__all__ = [
    "AdmissionController",
    "BatchPolicy",
    "CACHE_HIT",
    "DEFAULT_NAMESPACE",
    "DETECT_SECONDS",
    "DISPATCH_OVERHEAD_FLOPS",
    "FailoverEvent",
    "FleetResult",
    "FleetStats",
    "KillReplica",
    "ModelRegistry",
    "REJECTED",
    "REQUEST_OVERHEAD_FLOPS",
    "ReplicaFailure",
    "ResultCache",
    "Router",
    "SCORED",
    "Schedule",
    "ServeResult",
    "ServeStats",
    "ShardGroup",
    "SlabRecord",
    "SwapModel",
    "THROTTLED",
    "TenantQuota",
    "as_quota",
    "build_stats",
    "burst_arrivals",
    "jsonable_float",
    "model_fingerprint",
    "poisson_arrivals",
    "request_key",
    "run_schedule",
    "sample_requests",
    "serve_fleet",
    "serve_requests",
    "uniform_arrivals",
]
