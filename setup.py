"""Legacy setup shim: lets ``pip install -e .`` work on hosts without the
``wheel`` package (pip falls back to ``setup.py develop``).  All project
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
