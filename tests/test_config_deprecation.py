"""The per-call keyword shims: still functional, now DeprecationWarning.

Run-time knobs travel in one :class:`repro.RunConfig`; the legacy
per-call keywords (``nprocs=`` / ``heuristic=`` / ``engine=`` ...) keep
working but warn, and the warning names the entry point, the offending
keywords, and the ``config=`` replacement.  The config path itself must
stay silent — these tests run it under ``error::DeprecationWarning``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import RunConfig, resolve_config
from repro.core import SVC, fit_parallel
from repro.core.predict import decision_function_parallel
from repro.serve import serve_requests

from .conftest import make_blobs


@pytest.fixture
def problem():
    return make_blobs(n=60, seed=2)


def test_fit_parallel_shim_warns_and_matches_config(problem, rbf_params):
    X, y = problem
    with pytest.warns(DeprecationWarning, match=r"fit_parallel: .*nprocs"):
        shim = fit_parallel(X, y, rbf_params, nprocs=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cfg = fit_parallel(X, y, rbf_params, config=RunConfig(nprocs=2))
    # deprecated, not broken: bitwise the same solve
    assert np.array_equal(shim.alpha, cfg.alpha)
    assert shim.iterations == cfg.iterations


def test_svc_shim_warns_and_matches_config(problem):
    X, y = problem
    with pytest.warns(DeprecationWarning, match=r"SVC: .*heuristic.*nprocs"):
        shim = SVC(C=5.0, gamma=0.5, heuristic="single5pc", nprocs=2)
    shim.fit(X, y)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        clf = SVC(
            C=5.0, gamma=0.5,
            config=RunConfig(heuristic="single5pc", nprocs=2),
        )
        clf.fit(X, y)
    assert np.array_equal(
        shim.decision_function(X), clf.decision_function(X)
    )


def test_predict_shim_warns(problem, rbf_params):
    X, y = problem
    model = fit_parallel(X, y, rbf_params, config=RunConfig()).model
    with pytest.warns(
        DeprecationWarning, match=r"decision_function_parallel: .*nprocs"
    ):
        shim = decision_function_parallel(model, X, nprocs=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cfg = decision_function_parallel(
            model, X, config=RunConfig(nprocs=2)
        )
    assert np.array_equal(shim.decision_values, cfg.decision_values)


def test_serve_requests_shim_warns(problem, rbf_params):
    X, y = problem
    model = fit_parallel(X, y, rbf_params, config=RunConfig()).model
    X_req = X.take_rows(np.arange(8))
    with pytest.warns(DeprecationWarning, match=r"serve_requests: .*nprocs"):
        shim = serve_requests(model, X_req, nprocs=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cfg = serve_requests(model, X_req, config=RunConfig(nprocs=2))
    assert np.array_equal(shim.scores, cfg.scores)


def test_warning_spells_out_the_replacement():
    with pytest.warns(DeprecationWarning) as rec:
        resolve_config(None, _entry="fit_parallel", nprocs=4, engine="legacy")
    (msg,) = {str(w.message) for w in rec}
    assert "engine, nprocs are deprecated" in msg
    assert "config=RunConfig(...)" in msg
    assert "cfg.replace(engine=...)" in msg


def test_none_overrides_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cfg = resolve_config(
            RunConfig(nprocs=3), _entry="fit_parallel",
            nprocs=None, heuristic=None, trace=False,
        )
    assert cfg.nprocs == 3


def test_config_path_is_silent_end_to_end(problem):
    X, y = problem
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        clf = SVC(C=5.0, gamma=0.5, config=RunConfig(nprocs=2))
        clf.fit(X, y)
        assert clf.score(X, y) > 0.9
