"""Result-cache unit tests: LRU discipline and hit accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.serve import BatchPolicy, ResultCache, request_key, serve_requests
from repro.sparse import CSRMatrix


def test_lru_eviction_order():
    c = ResultCache(2)
    c.put(b"a", 1.0)
    c.put(b"b", 2.0)
    assert c.get(b"a") == 1.0  # refreshes a
    c.put(b"c", 3.0)  # evicts b (LRU)
    assert c.get(b"b") is None
    assert c.get(b"a") == 1.0 and c.get(b"c") == 3.0
    assert c.evictions == 1


def test_hit_miss_accounting():
    c = ResultCache(4)
    assert c.get(b"x") is None
    c.put(b"x", 7.0)
    assert c.get(b"x") == 7.0
    assert (c.hits, c.misses) == (1, 1)
    assert c.stats()["hit_rate"] == 0.5


def test_capacity_zero_disables():
    c = ResultCache(0)
    c.put(b"x", 1.0)
    assert c.get(b"x") is None
    assert len(c) == 0 and c.misses == 1  # the probe misses


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1)


def test_request_key_is_content_based():
    X = CSRMatrix.from_dense(
        np.array([[1.0, 0.0, 2.0], [1.0, 0.0, 2.0], [1.0, 0.0, 3.0]])
    )
    assert request_key(X, 0) == request_key(X, 1)
    assert request_key(X, 0) != request_key(X, 2)


def test_serve_hit_accounting_exact(served_model, requests_60):
    """Second wave of an identical request stream hits entirely."""
    model, _ = served_model
    X2 = CSRMatrix.vstack([requests_60, requests_60])
    arrivals = np.concatenate([np.zeros(60), np.full(60, 5.0)])
    res = serve_requests(
        model, X2, arrivals,
        policy=BatchPolicy(max_batch=64, max_delay=0.0),
        config=RunConfig(nprocs=1), cache_entries=256,
    )
    # wave 1 contains duplicates (duplicate_fraction=0.25 in the pool
    # sample) but they all miss — the burst admits everything before the
    # first slab completes.  Wave 2 arrives after the drain: all 60 hit.
    assert res.stats.n_cache_hits == 60
    assert np.all(res.status[60:] == 2)  # CACHE_HIT
    assert res.stats.cache["hits"] == 60
    assert res.stats.cache["hit_rate"] == pytest.approx(0.5)
    # hits complete at their arrival instant: zero queueing latency
    assert np.all(res.latencies[60:] == 0.0)


def test_serve_cache_disabled_by_default(served_model, requests_60):
    model, _ = served_model
    res = serve_requests(
        model, requests_60, None,
        policy=BatchPolicy(max_batch=16),
        config=RunConfig(nprocs=1),
    )
    assert res.stats.n_cache_hits == 0
    assert res.stats.cache["capacity"] == 0


# -------------------------------------------------------------------------
# request_key encoding regression (delimiter-collision satellite fix)
# -------------------------------------------------------------------------

def _adversarial_rows():
    """Rows whose payload bytes are built to confuse a delimiter-based
    encoding: values containing the legacy ``|`` (0x7c) delimiter byte,
    an index whose bytes equal another row's data bytes, and an empty
    row."""
    pipe_float = float(np.frombuffer(b"|" * 8, "<f8")[0])
    mimic = float(np.frombuffer(np.array([5], dtype="<i8").tobytes(), "<f8")[0])
    dense = np.zeros((5, 400))
    dense[0, 5] = pipe_float       # data bytes are eight '|' bytes
    dense[1, 5] = mimic            # data bytes == row 0's index bytes
    dense[2, 5] = pipe_float
    dense[2, 124] = 1.0            # 124 == 0x7c: index bytes contain '|'
    dense[3, 124] = 1.0
    # row 4 stays empty
    return CSRMatrix.from_dense(dense)


def test_request_key_distinct_on_delimiter_adversaries():
    """Distinct rows -> distinct keys even when payloads embed the old
    delimiter byte.  The legacy ``idx + b"|" + data`` concatenation had
    no structural guarantee here — injectivity hinged on the accident
    that both sections share an element count and width, and broke the
    moment keys were composed with anything else (exactly what the
    version-namespace refactor needs)."""
    X = _adversarial_rows()
    keys = [request_key(X, i) for i in range(X.shape[0])]
    assert len(set(keys)) == len(keys)


def test_request_key_is_prefix_free():
    """No key is a prefix of another, so concatenating a key with ANY
    suffix (composed lookup structures, serialized stores) can never
    alias a different row.  Length-prefixed dtype-tagged sections give
    this structurally; a bare ``|`` delimiter cannot, because 0x7c is a
    legal payload byte."""
    X = _adversarial_rows()
    keys = [request_key(X, i) for i in range(X.shape[0])]
    for i, a in enumerate(keys):
        for j, b in enumerate(keys):
            if i != j:
                assert not b.startswith(a)


def test_request_key_tags_dtype_and_length():
    """The key binds dtype tags and section lengths, not just raw bytes."""
    X = CSRMatrix.from_dense(np.array([[0.0, 3.5, 0.0, 1.25]]))
    key = request_key(X, 0)
    assert np.array([1, 3], dtype=np.int64).dtype.str.encode() in key
    assert np.array([3.5], dtype=np.float64).dtype.str.encode() in key
    assert np.array([1, 3], dtype=np.int64).tobytes() in key
    assert np.array([3.5, 1.25]).tobytes() in key


# -------------------------------------------------------------------------
# model-version namespaces (stale-hit satellite fix)
# -------------------------------------------------------------------------

def test_namespaces_isolate_same_key():
    c = ResultCache(8)
    c.put(b"k", 1.0, b"model-a")
    c.put(b"k", 2.0, b"model-b")
    assert c.get(b"k", b"model-a") == 1.0
    assert c.get(b"k", b"model-b") == 2.0
    assert c.get(b"k", b"model-c") is None
    assert c.namespaces() == {b"model-a": 1, b"model-b": 1}


def test_flush_namespace_retires_one_model():
    c = ResultCache(8)
    c.put(b"k1", 1.0, b"old")
    c.put(b"k2", 2.0, b"old")
    c.put(b"k1", 3.0, b"new")
    assert c.flush_namespace(b"old") == 2
    assert c.get(b"k1", b"old") is None
    assert c.get(b"k1", b"new") == 3.0
    assert c.flushed == 2
    assert c.stats()["flushed"] == 2


def test_stale_model_hit_regression(served_model, requests_60):
    """A shared cache serving two different models must never replay one
    model's scores for the other.  Before the namespace fix the second
    session hit on row content alone and served version-1 values."""
    from repro.core import SVC
    from tests.conftest import make_blobs

    model1, pool = served_model
    X, y = make_blobs(n=120, sep=1.2, noise=1.3, seed=3)
    model2 = SVC(C=1.0, sigma_sq=8.0).fit(X, y).model_

    shared = ResultCache(512)
    first = serve_requests(
        model1, requests_60, None,
        policy=BatchPolicy(max_batch=16), config=RunConfig(nprocs=1),
        cache=shared,
    )
    assert np.array_equal(first.scores, model1.decision_function(requests_60))

    second = serve_requests(
        model2, requests_60, None,
        policy=BatchPolicy(max_batch=16), config=RunConfig(nprocs=1),
        cache=shared,
    )
    # every row was already cached under model1's namespace; a stale hit
    # would replay model1's values
    assert second.stats.n_cache_hits == 0
    assert np.array_equal(second.scores, model2.decision_function(requests_60))
    assert not np.array_equal(second.scores, first.scores)

    # control: re-serving model1 against the warm shared cache hits fully
    again = serve_requests(
        model1, requests_60, None,
        policy=BatchPolicy(max_batch=16), config=RunConfig(nprocs=1),
        cache=shared,
    )
    assert again.stats.n_cache_hits == 60
    assert np.array_equal(again.scores, first.scores)
