"""Result-cache unit tests: LRU discipline and hit accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.serve import BatchPolicy, ResultCache, request_key, serve_requests
from repro.sparse import CSRMatrix


def test_lru_eviction_order():
    c = ResultCache(2)
    c.put(b"a", 1.0)
    c.put(b"b", 2.0)
    assert c.get(b"a") == 1.0  # refreshes a
    c.put(b"c", 3.0)  # evicts b (LRU)
    assert c.get(b"b") is None
    assert c.get(b"a") == 1.0 and c.get(b"c") == 3.0
    assert c.evictions == 1


def test_hit_miss_accounting():
    c = ResultCache(4)
    assert c.get(b"x") is None
    c.put(b"x", 7.0)
    assert c.get(b"x") == 7.0
    assert (c.hits, c.misses) == (1, 1)
    assert c.stats()["hit_rate"] == 0.5


def test_capacity_zero_disables():
    c = ResultCache(0)
    c.put(b"x", 1.0)
    assert c.get(b"x") is None
    assert len(c) == 0 and c.misses == 1  # the probe misses


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1)


def test_request_key_is_content_based():
    X = CSRMatrix.from_dense(
        np.array([[1.0, 0.0, 2.0], [1.0, 0.0, 2.0], [1.0, 0.0, 3.0]])
    )
    assert request_key(X, 0) == request_key(X, 1)
    assert request_key(X, 0) != request_key(X, 2)


def test_serve_hit_accounting_exact(served_model, requests_60):
    """Second wave of an identical request stream hits entirely."""
    model, _ = served_model
    X2 = CSRMatrix.vstack([requests_60, requests_60])
    arrivals = np.concatenate([np.zeros(60), np.full(60, 5.0)])
    res = serve_requests(
        model, X2, arrivals,
        policy=BatchPolicy(max_batch=64, max_delay=0.0),
        config=RunConfig(nprocs=1), cache_entries=256,
    )
    # wave 1 contains duplicates (duplicate_fraction=0.25 in the pool
    # sample) but they all miss — the burst admits everything before the
    # first slab completes.  Wave 2 arrives after the drain: all 60 hit.
    assert res.stats.n_cache_hits == 60
    assert np.all(res.status[60:] == 2)  # CACHE_HIT
    assert res.stats.cache["hits"] == 60
    assert res.stats.cache["hit_rate"] == pytest.approx(0.5)
    # hits complete at their arrival instant: zero queueing latency
    assert np.all(res.latencies[60:] == 0.0)


def test_serve_cache_disabled_by_default(served_model, requests_60):
    model, _ = served_model
    res = serve_requests(
        model, requests_60, None,
        policy=BatchPolicy(max_batch=16),
        config=RunConfig(nprocs=1),
    )
    assert res.stats.n_cache_hits == 0
    assert res.stats.cache["capacity"] == 0
