"""Scheduler unit tests: pure discrete-event logic, no SPMD job."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serve import BatchPolicy, REJECTED, SCORED, run_schedule
from repro.serve.batching import CACHE_HIT


def fixed_service(duration):
    """A dispatch stub taking ``duration`` simulated seconds per slab."""
    calls = []

    def dispatch(ids, t):
        calls.append((list(ids), t))
        return t + duration

    dispatch.calls = calls
    return dispatch


def test_size_trigger_full_batches():
    # 8 requests at t=0, max_batch 4 -> two slabs of 4, back to back
    d = fixed_service(1.0)
    sched = run_schedule(np.zeros(8), BatchPolicy(max_batch=4, max_delay=0.0), d)
    assert [ids for ids, _ in d.calls] == [[0, 1, 2, 3], [4, 5, 6, 7]]
    assert [t for _, t in d.calls] == [0.0, 1.0]
    assert np.all(sched.status == SCORED)
    assert np.array_equal(sched.completion, [1.0] * 4 + [2.0] * 4)


def test_delay_trigger_waits_for_stragglers():
    # second request lands inside the delay window and joins the slab
    arrivals = np.array([0.0, 0.3, 5.0])
    d = fixed_service(0.1)
    run_schedule(arrivals, BatchPolicy(max_batch=4, max_delay=0.5), d)
    assert [ids for ids, _ in d.calls] == [[0, 1], [2]]
    assert d.calls[0][1] == pytest.approx(0.5)  # 0.0 + max_delay
    assert d.calls[1][1] == pytest.approx(5.5)


def test_zero_delay_dispatches_immediately():
    arrivals = np.array([0.0, 0.0, 0.05])
    d = fixed_service(0.1)
    run_schedule(arrivals, BatchPolicy(max_batch=8, max_delay=0.0), d)
    # first slab fires at t=0 with both queued requests; the third
    # arrives mid-service and goes out alone once the scorer frees up
    assert [ids for ids, _ in d.calls] == [[0, 1], [2]]
    assert d.calls[1][1] == pytest.approx(0.1)


def test_infinite_delay_drains_leftovers():
    # 6 requests, max_batch 4, never a delay trigger: the trailing 2
    # must still flush once the stream is exhausted
    d = fixed_service(1.0)
    sched = run_schedule(
        np.zeros(6), BatchPolicy(max_batch=4, max_delay=math.inf), d
    )
    assert [len(ids) for ids, _ in d.calls] == [4, 2]
    assert np.all(sched.status == SCORED)


def test_backpressure_rejects_excess_burst():
    d = fixed_service(1.0)
    sched = run_schedule(
        np.zeros(10), BatchPolicy(max_batch=4, max_delay=0.0, max_queue=4), d
    )
    assert int((sched.status == REJECTED).sum()) == 6
    assert int((sched.status == SCORED).sum()) == 4
    assert np.all(np.isnan(sched.completion[sched.status == REJECTED]))
    assert sched.peak_queue_depth == 4


def test_queue_frees_up_after_dispatch():
    # queue bound 2: burst of 3 drops one, but a later arrival (after
    # the first slab drained the queue) is admitted again
    arrivals = np.array([0.0, 0.0, 0.0, 5.0])
    d = fixed_service(1.0)
    sched = run_schedule(
        arrivals, BatchPolicy(max_batch=2, max_delay=0.0, max_queue=2), d
    )
    assert sched.status.tolist() == [SCORED, SCORED, REJECTED, SCORED]


def test_admit_hook_bypasses_queue():
    hits = {1, 3}
    d = fixed_service(1.0)
    sched = run_schedule(
        np.zeros(5),
        BatchPolicy(max_batch=8, max_delay=0.0),
        d,
        admit=lambda i, t: i in hits,
    )
    assert sched.status.tolist() == [
        SCORED, CACHE_HIT, SCORED, CACHE_HIT, SCORED,
    ]
    # hits complete instantly at their arrival time
    assert sched.completion[1] == 0.0 and sched.completion[3] == 0.0
    assert [ids for ids, _ in d.calls] == [[0, 2, 4]]


def test_rejects_unsorted_and_negative_arrivals():
    d = fixed_service(1.0)
    with pytest.raises(ValueError, match="nondecreasing"):
        run_schedule(np.array([1.0, 0.5]), BatchPolicy(), d)
    with pytest.raises(ValueError, match=">= 0"):
        run_schedule(np.array([-1.0, 0.5]), BatchPolicy(), d)
    with pytest.raises(ValueError, match="empty"):
        run_schedule(np.array([]), BatchPolicy(), d)


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_delay=-1.0)
    with pytest.raises(ValueError):
        BatchPolicy(max_queue=0)


def test_dispatch_must_not_travel_back_in_time():
    def bad(ids, t):
        return t - 0.5

    with pytest.raises(ValueError, match="before dispatch"):
        run_schedule(np.zeros(2), BatchPolicy(max_batch=2), bad)
