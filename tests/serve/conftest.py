"""Serving fixtures: one trained model + a request pool, reused
across the serve test modules (training is the slow part)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVC
from repro.serve import sample_requests
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def served_model():
    """(model, request_pool) — hard blobs so the SV set is non-trivial."""
    X, y = make_blobs(n=120, sep=1.2, noise=1.3, seed=3)
    clf = SVC(C=10.0, sigma_sq=2.0).fit(X, y)
    return clf.model_, X


@pytest.fixture(scope="module")
def requests_60(served_model):
    _, pool = served_model
    return sample_requests(pool, 60, seed=1, duplicate_fraction=0.25)
