"""Serving stats: the strict-JSON convention for non-finite values.

``BENCH_serve*.json`` must parse under compliant JSON readers, so
``to_dict()`` may never leak ``Infinity``/``NaN`` literals (the
satellite bugfix: zero-completion sessions used to emit
``"throughput": Infinity`` and NaN percentiles straight through
``json.dump``).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.serve import (
    REJECTED,
    SCORED,
    Schedule,
    SlabRecord,
    build_stats,
    jsonable_float,
)


def _raise_on_constant(name):
    raise AssertionError(f"non-strict JSON literal leaked: {name}")


def strict_roundtrip(payload: dict) -> dict:
    """json round-trip that rejects Infinity/NaN on BOTH directions."""
    text = json.dumps(payload, allow_nan=False)
    return json.loads(text, parse_constant=_raise_on_constant)


def test_jsonable_float():
    assert jsonable_float(1.5) == 1.5
    assert jsonable_float(0.0) == 0.0
    assert jsonable_float(float("inf")) is None
    assert jsonable_float(float("-inf")) is None
    assert jsonable_float(float("nan")) is None


def test_zero_completions_report_zero_not_infinity():
    """All-rejected session: throughput/makespan 0.0, percentiles null."""
    n = 4
    sched = Schedule(
        status=np.full(n, REJECTED, dtype=np.int64),
        completion=np.full(n, np.nan),
    )
    stats = build_stats(sched, np.zeros(n), {})
    assert stats.throughput == 0.0
    assert stats.makespan == 0.0
    assert math.isnan(stats.latency_p50)  # in-process NaN is fine

    d = strict_roundtrip(stats.to_dict())
    assert d["throughput"] == 0.0
    assert d["makespan"] == 0.0
    assert d["latency_p50"] is None
    assert d["latency_p99"] is None
    assert d["latency_mean"] is None


def test_zero_makespan_serializes_null_not_infinity():
    """Completions all at the first arrival instant: modeled throughput
    is infinite in-process but must serialize as null."""
    n = 3
    sched = Schedule(
        status=np.full(n, SCORED, dtype=np.int64),
        completion=np.zeros(n),
        slabs=[SlabRecord(0.0, 0.0, n)],
    )
    stats = build_stats(sched, np.zeros(n), {})
    assert math.isinf(stats.throughput)

    d = strict_roundtrip(stats.to_dict())
    assert d["throughput"] is None
    assert d["makespan"] == 0.0
    assert d["n_scored"] == n


def test_nonfinite_cache_values_sanitized():
    sched = Schedule(
        status=np.array([SCORED], dtype=np.int64),
        completion=np.array([1.0]),
        slabs=[SlabRecord(0.5, 1.0, 1)],
    )
    stats = build_stats(
        sched, np.zeros(1), {"hits": 0, "hit_rate": float("nan")}
    )
    d = strict_roundtrip(stats.to_dict())
    assert d["cache"]["hit_rate"] is None
    assert d["cache"]["hits"] == 0
    assert d["throughput"] == pytest.approx(1.0)


def test_serve_stats_to_dict_always_strict(served_model, requests_60):
    """End-to-end: a real session's report survives strict round-trip."""
    from repro.config import RunConfig
    from repro.serve import BatchPolicy, serve_requests

    res = serve_requests(
        served_model[0], requests_60, None,
        policy=BatchPolicy(max_batch=16), config=RunConfig(nprocs=2),
        cache_entries=32,
    )
    d = strict_roundtrip(res.stats.to_dict())
    assert d["n_requests"] == 60
    assert d["n_throttled"] == 0
