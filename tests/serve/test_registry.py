"""ModelRegistry: versioned persistence-v2 round-trips + atomic swap."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import ModelRegistry, model_fingerprint


@pytest.fixture()
def second_model(served_model):
    from repro.core import SVC
    from tests.conftest import make_blobs

    X, y = make_blobs(n=120, sep=1.2, noise=1.3, seed=3)
    return SVC(C=1.0, sigma_sq=8.0).fit(X, y).model_


def test_publish_load_exact_roundtrip(served_model):
    model, pool = served_model
    reg = ModelRegistry()
    v = reg.publish(model, label="prod")
    loaded = reg.load(v)
    assert loaded is not model  # a fresh deserialization, not an alias
    assert np.array_equal(
        loaded.decision_function(pool), model.decision_function(pool)
    )
    assert reg.label(v) == "prod"
    assert v in reg and len(reg) == 1


def test_first_publish_auto_activates(served_model, second_model):
    model, _ = served_model
    reg = ModelRegistry()
    assert reg.active_version is None
    v1 = reg.publish(model)
    assert reg.active_version == v1
    v2 = reg.publish(second_model)
    assert reg.active_version == v1  # later publishes do NOT auto-activate
    assert reg.versions() == [v1, v2]


def test_activate_flips_atomically_and_returns_previous(
    served_model, second_model
):
    model, _ = served_model
    reg = ModelRegistry()
    v1, v2 = reg.publish(model), reg.publish(second_model)
    assert reg.activate(v2) == v1
    assert reg.active_version == v2
    with pytest.raises(KeyError):
        reg.activate(99)
    assert reg.active_version == v2  # failed activation changed nothing


def test_fingerprint_identifies_exact_weights(served_model, second_model):
    model, _ = served_model
    reg = ModelRegistry()
    v1, v2 = reg.publish(model), reg.publish(second_model)
    assert reg.fingerprint(v1) == model_fingerprint(model)
    assert reg.fingerprint(v1) != reg.fingerprint(v2)
    # the fingerprint survives the round trip: it names the weights, not
    # the object identity
    assert model_fingerprint(reg.load(v1)) == reg.fingerprint(v1)


def test_load_unknown_version(served_model):
    reg = ModelRegistry()
    with pytest.raises(KeyError):
        reg.load(1)


def test_concurrent_publish_activate(served_model, second_model):
    """Hot-swap under load: concurrent publishers and an activator never
    corrupt the version sequence or the active pointer."""
    model, _ = served_model
    reg = ModelRegistry()
    base = reg.publish(model)
    errors = []

    def worker():
        try:
            v = reg.publish(second_model)
            reg.activate(v)
            reg.activate(base)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(reg) == 9
    assert reg.versions() == sorted(reg.versions())
    assert reg.active_version in reg
