"""Fleet invariants: failover exactness, hot-swap freshness, admission.

The load-bearing guarantee: **every request the fleet scores is bitwise
equal to ``decision_function`` of the model version that served it**,
no request is dropped, and none is scored twice — through replica
kills, drains, re-shards from the registry, and atomic hot-swaps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.serve import (
    CACHE_HIT,
    SCORED,
    THROTTLED,
    BatchPolicy,
    KillReplica,
    ModelRegistry,
    ResultCache,
    SwapModel,
    TenantQuota,
    serve_fleet,
)

POLICY = BatchPolicy(max_batch=8, max_delay=200e-6)


@pytest.fixture(scope="module")
def fleet_requests(served_model):
    from repro.serve import sample_requests

    _, pool = served_model
    X_req = sample_requests(pool, 48, seed=5)
    arrivals = np.arange(48) * 250e-6  # steady traffic over ~12ms
    return X_req, arrivals


def _audit_exactness(res, X_req):
    """Completion + exactly-once + bitwise-per-version, for any run.

    Every request reaches a terminal disposition (throttle/reject are
    terminal — "dropped" means left pending with status 0)."""
    assert (res.status != 0).all(), "a request was dropped"
    done = (res.status == SCORED) | (res.status == CACHE_HIT)
    counts = np.zeros(X_req.shape[0], dtype=np.int64)
    for rec in res.fleet.slab_log:
        counts[rec["ids"]] += 1
    scored = res.status == SCORED
    assert np.array_equal(counts[scored], np.ones(int(scored.sum()))), (
        "a request was double-scored or lost in a slab"
    )
    assert not counts[~scored].any()
    for version in sorted(set(res.versions[done].tolist())):
        sel = done & (res.versions == version)
        idx = np.where(sel)[0]
        direct = res.registry.load(int(version)).decision_function(
            X_req.take_rows(idx)
        )
        assert np.array_equal(res.scores[sel], direct), (
            f"scores diverge from the version {version} that served them"
        )


@pytest.mark.parametrize("nprocs", [2, 4])
@pytest.mark.parametrize("replicas", [2, 3])
def test_kill_mid_traffic_failover(served_model, fleet_requests,
                                   nprocs, replicas):
    model, _ = served_model
    X_req, arrivals = fleet_requests
    t_kill = float(arrivals[len(arrivals) // 3])
    res = serve_fleet(
        model, X_req, arrivals, policy=POLICY,
        config=RunConfig(nprocs=nprocs, replicas=replicas),
        events=[KillReplica(time=t_kill, slot=replicas - 1)],
    )
    _audit_exactness(res, X_req)
    assert res.fleet.n_failovers == 1
    failover = res.fleet.failovers[0]
    assert failover.slot_id == replicas - 1
    assert failover.generation == 2  # the replacement replica
    assert failover.drained_requests >= 1
    assert failover.reshard_seconds > 0
    # the drained slab really was re-served by a healthy replica
    assert np.all(res.status == SCORED)
    # the failed attempt is not in the stats' slab accounting
    assert res.stats.n_slabs == len(res.fleet.slab_log)


def test_kill_every_rank_position(served_model, fleet_requests):
    """The kill may land on any rank of the group, frontend included."""
    model, _ = served_model
    X_req, arrivals = fleet_requests
    for rank in (0, 1, 2):
        res = serve_fleet(
            model, X_req, arrivals, policy=POLICY,
            config=RunConfig(nprocs=3, replicas=2),
            events=[KillReplica(time=float(arrivals[10]), slot=0, rank=rank)],
        )
        _audit_exactness(res, X_req)
        assert res.fleet.n_failovers == 1
        assert res.fleet.failovers[0].killed_rank == rank


def test_hot_swap_serves_zero_stale(served_model, fleet_requests):
    """Mid-stream activation: scorers AND cache switch versions; no
    request is served a retired version's score after its swap."""
    from repro.core import SVC
    from tests.conftest import make_blobs

    model, _ = served_model
    X, y = make_blobs(n=120, sep=1.2, noise=1.3, seed=3)
    model2 = SVC(C=1.0, sigma_sq=8.0).fit(X, y).model_
    X_req, arrivals = fleet_requests

    registry = ModelRegistry()
    v1 = registry.publish(model, label="v1")
    v2 = registry.publish(model2, label="v2")
    registry.activate(v1)
    t_swap = float(arrivals[len(arrivals) // 2])
    res = serve_fleet(
        registry, X_req, arrivals, policy=POLICY,
        config=RunConfig(nprocs=2, replicas=2),
        cache_entries=256,
        events=[SwapModel(time=t_swap, version=v2)],
    )
    _audit_exactness(res, X_req)
    assert res.fleet.n_swaps == 1
    assert set(res.versions.tolist()) == {v1, v2}
    done = (res.status == SCORED) | (res.status == CACHE_HIT)
    # no v1 score completes after the swap has taken effect on dispatch:
    # a request admitted pre-swap may complete under v1, but everything
    # ADMITTED at or after the swap is served by v2
    admitted_after = arrivals >= t_swap
    assert np.all(res.versions[done & admitted_after] == v2)
    # the registry's active pointer ends on v2 and the v1 cache
    # namespace was flushed at the swap
    assert registry.active_version == v2
    assert res.fleet.swaps[0]["from_version"] == v1
    assert res.fleet.swaps[0]["flushed_entries"] >= 0


def test_hot_swap_cache_cannot_replay_old_version(served_model):
    """Duplicate rows straddling the swap: the pre-swap cached score for
    identical content must NOT be replayed post-swap."""
    from repro.core import SVC
    from tests.conftest import make_blobs
    from repro.serve import sample_requests
    from repro.sparse import CSRMatrix

    model, pool = served_model
    X, y = make_blobs(n=120, sep=1.2, noise=1.3, seed=3)
    model2 = SVC(C=1.0, sigma_sq=8.0).fit(X, y).model_

    wave = sample_requests(pool, 16, seed=9)
    X_req = CSRMatrix.vstack([wave, wave])  # identical content twice
    arrivals = np.concatenate([np.arange(16) * 100e-6,
                               5.0 + np.arange(16) * 100e-6])
    registry = ModelRegistry()
    v1 = registry.publish(model)
    v2 = registry.publish(model2)
    registry.activate(v1)
    res = serve_fleet(
        registry, X_req, arrivals, policy=POLICY,
        config=RunConfig(nprocs=2, replicas=2),
        cache_entries=256,
        events=[SwapModel(time=2.0, version=v2)],
    )
    _audit_exactness(res, X_req)
    # wave 2 re-sends wave 1's rows AFTER the swap: none may hit wave
    # 1's v1-namespace entries (flushed/segregated) — every wave-2 value
    # is v2's, bitwise.  (Hits between duplicate rows WITHIN wave 2 are
    # fine: they replay a v2 score.)
    assert np.all(res.versions[16:] == v2)
    assert np.array_equal(
        res.scores[16:], model2.decision_function(wave)
    )
    hits2 = res.status[16:] == CACHE_HIT
    assert int(hits2.sum()) < 16  # pre-fix: all 16 replayed stale v1 scores


def test_tenant_throttling_isolates_noisy_neighbor(served_model,
                                                   fleet_requests):
    model, _ = served_model
    X_req, arrivals = fleet_requests
    tenants = np.where(np.arange(48) % 2 == 0, 0, 1)
    res = serve_fleet(
        model, X_req, arrivals, policy=POLICY,
        config=RunConfig(nprocs=2, replicas=2),
        tenants=tenants,
        per_tenant_quotas={1: TenantQuota(rate=400.0, burst=2.0)},
    )
    # tenant 0 is untouched; tenant 1 exceeds 400 req/s and sheds load
    throttled = res.status == THROTTLED
    assert throttled.any()
    assert np.all(tenants[throttled] == 1)
    assert res.stats.n_throttled == int(throttled.sum())
    report = res.fleet.per_tenant
    assert report[0]["throttled"] == 0
    assert report[1]["throttled"] == int(throttled.sum())
    # everything admitted still completes bitwise-exactly
    _audit_exactness(res, X_req)
    done = (res.status == SCORED) | (res.status == CACHE_HIT)
    assert np.array_equal(done, ~throttled)


def test_tenant_quota_spec_string_via_config(served_model, fleet_requests):
    model, _ = served_model
    X_req, arrivals = fleet_requests
    res = serve_fleet(
        model, X_req, arrivals, policy=POLICY,
        config=RunConfig(
            nprocs=2, replicas=2, tenant_quota="rate=400,burst=2",
        ),
    )
    assert (res.status == THROTTLED).any()
    _audit_exactness(res, X_req)


def test_single_replica_matches_direct(served_model, fleet_requests):
    """replicas=1, no events: the fleet is just a sharded scorer."""
    model, _ = served_model
    X_req, arrivals = fleet_requests
    res = serve_fleet(
        model, X_req, arrivals, policy=POLICY, config=RunConfig(nprocs=2),
    )
    assert np.all(res.status == SCORED)
    assert np.array_equal(res.scores, model.decision_function(X_req))
    assert res.fleet.n_failovers == 0 and res.fleet.n_swaps == 0


def test_external_cache_and_stats_strict_json(served_model, fleet_requests):
    model, _ = served_model
    X_req, arrivals = fleet_requests
    shared = ResultCache(128)
    res = serve_fleet(
        model, X_req, arrivals, policy=POLICY,
        config=RunConfig(nprocs=2, replicas=2), cache=shared,
        events=[KillReplica(time=float(arrivals[5]), slot=0)],
    )
    _audit_exactness(res, X_req)
    assert len(shared) > 0
    import json

    def no_constants(name):
        raise AssertionError(f"non-strict JSON literal leaked: {name}")

    payload = {"stats": res.stats.to_dict(), "fleet": res.fleet.to_dict()}
    json.loads(json.dumps(payload, allow_nan=False),
               parse_constant=no_constants)


def test_event_validation(served_model, fleet_requests):
    model, _ = served_model
    X_req, arrivals = fleet_requests
    with pytest.raises(ValueError, match="slot"):
        serve_fleet(model, X_req, arrivals,
                    config=RunConfig(nprocs=2, replicas=2),
                    events=[KillReplica(time=0.0, slot=5)])
    with pytest.raises(ValueError, match="version"):
        serve_fleet(model, X_req, arrivals,
                    config=RunConfig(nprocs=2, replicas=2),
                    events=[SwapModel(time=0.0, version=7)])
    with pytest.raises(ValueError, match="replicas"):
        RunConfig(replicas=0)
