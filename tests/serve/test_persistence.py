"""Model round-trip equality: binary and multiclass, bit-exact."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import SVC, MultiClassSVC, load_model, save_model
from repro.sparse import CSRMatrix
from tests.conftest import make_blobs


def _multiclass_problem(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[3.0, 0.0], [-3.0, 0.0], [0.0, 3.0]])
    X = np.vstack([rng.normal(c, 1.0, (30, 2)) for c in centers])
    y = np.repeat([2, 5, 9], 30)
    perm = rng.permutation(90)
    return CSRMatrix.from_dense(X[perm]), y[perm]


def test_bare_model_roundtrip_bitwise(served_model, tmp_path):
    model, pool = served_model
    path = tmp_path / "model.json"
    save_model(model, path)
    loaded = load_model(path)

    assert np.array_equal(loaded.sv_coef, model.sv_coef)
    assert loaded.beta == model.beta
    assert np.array_equal(loaded.sv_indices, model.sv_indices)
    assert loaded.sv_X.allclose(model.sv_X, rtol=0.0)
    assert loaded.kernel.name == model.kernel.name
    assert loaded.kernel.params() == model.kernel.params()
    # the payoff: decision values over fresh data are bitwise equal
    assert np.array_equal(
        loaded.decision_function(pool), model.decision_function(pool)
    )


def test_model_json_is_pure_json(served_model, tmp_path):
    model, _ = served_model
    path = tmp_path / "model.json"
    save_model(model, path)
    doc = json.loads(path.read_text())
    assert doc["version"] == 2
    # floats travel as hex strings / base64 bytes, never lossy literals
    assert isinstance(doc["beta"], str)
    assert isinstance(doc["sv_coef"], str)


def test_awkward_floats_roundtrip_exactly(tmp_path):
    """Subnormals, signed zero, and non-representable decimals survive."""
    from repro.core.model import SVMModel
    from repro.kernels import RBFKernel

    sv = CSRMatrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
    model = SVMModel(
        sv_X=sv,
        sv_coef=np.array([5e-324, -0.1]),  # smallest subnormal + 0.1
        sv_indices=np.array([0, 1]),
        beta=-0.0,
        kernel=RBFKernel(gamma=0.1 + 0.2),  # 0.30000000000000004
    )
    path = tmp_path / "m.json"
    save_model(model, path)
    loaded = load_model(path)
    assert np.array_equal(
        loaded.sv_coef.view(np.uint64), model.sv_coef.view(np.uint64)
    )
    assert np.copysign(1.0, loaded.beta) == -1.0
    assert loaded.kernel.params() == model.kernel.params()


def test_svc_roundtrip(tmp_path):
    X, y = make_blobs(n=80, seed=5)
    y_labels = np.where(y > 0, 3, 8)  # non-±1 label space
    clf = SVC(C=5.0, sigma_sq=2.0).fit(X, y_labels)
    path = tmp_path / "svc.json"
    clf.save(path)
    loaded = SVC.load(path)

    assert np.array_equal(loaded.classes_, clf.classes_)
    assert loaded.classes_.dtype == clf.classes_.dtype
    assert loaded.C == clf.C and loaded.sigma_sq == clf.sigma_sq
    assert np.array_equal(loaded.model_.sv_coef, clf.model_.sv_coef)
    assert loaded.model_.beta == clf.model_.beta
    # predictions in the original label space, bitwise-equal decisions
    assert np.array_equal(loaded.predict(X), clf.predict(X))
    assert np.array_equal(
        loaded.decision_function(X), clf.decision_function(X)
    )


def test_svc_load_rejects_foreign_documents(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="repro-svc"):
        SVC.load(path)


def test_unfitted_svc_save_raises(tmp_path):
    from repro.core import NotFittedError

    with pytest.raises(NotFittedError):
        SVC().save(tmp_path / "x.json")


def test_multiclass_roundtrip(tmp_path):
    X, y = _multiclass_problem()
    clf = MultiClassSVC(C=5.0, sigma_sq=2.0).fit(X, y)
    path = tmp_path / "mc.json"
    clf.save(path)
    loaded = MultiClassSVC.load(path)

    assert np.array_equal(loaded.classes_, clf.classes_)
    assert loaded.n_machines_ == clf.n_machines_ == 3
    for key, machine in clf.machines_.items():
        other = loaded.machines_[key]
        assert np.array_equal(
            other.model_.sv_coef, machine.model_.sv_coef
        )
        assert other.model_.beta == machine.model_.beta
    assert np.array_equal(loaded.predict(X), clf.predict(X))
    assert np.array_equal(loaded.votes(X), clf.votes(X))


def test_class_weight_survives_roundtrip(tmp_path):
    X, y = make_blobs(n=80, seed=6)
    clf = SVC(C=2.0, sigma_sq=2.0, class_weight={1.0: 2.0, -1.0: 1.0})
    clf.fit(X, y)
    path = tmp_path / "w.json"
    clf.save(path)
    loaded = SVC.load(path)
    assert loaded.class_weight == {1.0: 2.0, -1.0: 1.0}
    assert np.array_equal(loaded.predict(X), clf.predict(X))
