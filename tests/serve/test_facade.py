"""The public facade: top-level re-exports and the RunConfig shims."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from tests.conftest import make_blobs


def test_facade_exports_exist():
    for name in (
        "SVC", "MultiClassSVC", "SVMModel", "RunConfig", "train",
        "save_model", "load_model", "fit_parallel",
        "decision_function_parallel", "predict_parallel",
        "serve_requests", "BatchPolicy", "ServeResult", "ServeStats",
        "serve", "mpi",
    ):
        assert hasattr(repro, name), f"repro.{name} missing from facade"
        assert name in repro.__all__


def test_facade_and_deep_imports_are_same_objects():
    from repro.core.svc import SVC as deep_svc
    from repro.serve.server import serve_requests as deep_serve
    from repro.config import RunConfig as deep_config

    assert repro.SVC is deep_svc
    assert repro.serve_requests is deep_serve
    assert repro.RunConfig is deep_config
    assert repro.serve.serve_requests is deep_serve


def test_train_dispatches_on_class_count():
    X, y = make_blobs(n=60, seed=7)
    clf = repro.train(X, y, C=5.0, sigma_sq=2.0)
    assert isinstance(clf, repro.SVC)

    y3 = y.copy()
    y3[:20] = 2.0
    clf3 = repro.train(X, y3, C=5.0, sigma_sq=2.0)
    assert isinstance(clf3, repro.MultiClassSVC)

    with pytest.raises(ValueError, match="two classes"):
        repro.train(X, np.ones(60))


def test_runconfig_validation_and_merge():
    cfg = repro.RunConfig(nprocs=4, heuristic="single5pc")
    assert cfg.merged(nprocs=2).nprocs == 2
    assert cfg.merged(nprocs=None).nprocs == 4  # None = unset
    assert cfg.merged().heuristic == "single5pc"
    assert cfg.replace(trace=True).trace is True
    with pytest.raises(ValueError):
        repro.RunConfig(nprocs=0)
    with pytest.raises(TypeError):
        cfg.merged(bogus=1)


def test_runconfig_equivalent_to_keyword_shims():
    """config= and the legacy keywords produce identical fits."""
    X, y = make_blobs(n=60, seed=8)
    via_kw = repro.SVC(C=5.0, sigma_sq=2.0, nprocs=2,
                       heuristic="multi5pc").fit(X, y)
    via_cfg = repro.SVC(
        C=5.0, sigma_sq=2.0,
        config=repro.RunConfig(nprocs=2, heuristic="multi5pc"),
    ).fit(X, y)
    assert np.array_equal(
        via_kw.model_.sv_coef, via_cfg.model_.sv_coef
    )
    assert via_kw.model_.beta == via_cfg.model_.beta

    # explicit keywords override the config
    clf = repro.SVC(config=repro.RunConfig(nprocs=4), nprocs=1)
    assert clf.nprocs == 1


def test_runconfig_threads_through_functional_api():
    X, y = make_blobs(n=60, seed=9)
    clf = repro.train(X, y, C=5.0, sigma_sq=2.0)
    direct = clf.model_.decision_function(X)
    out = repro.decision_function_parallel(
        clf.model_, X, config=repro.RunConfig(nprocs=3)
    )
    assert np.array_equal(out.decision_values, direct)
    labels = repro.predict_parallel(
        clf.model_, X, config=repro.RunConfig(nprocs=2)
    )
    assert np.array_equal(labels, np.sign(direct))
