"""Serving determinism: batched/sharded/cached scores are bitwise
identical to a direct ``SVMModel.decision_function`` pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.serve import (
    BatchPolicy,
    SCORED,
    burst_arrivals,
    poisson_arrivals,
    serve_requests,
)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
@pytest.mark.parametrize("max_batch", [1, 7, 64])
def test_bitwise_identity_across_batch_and_shards(
    served_model, requests_60, nprocs, max_batch
):
    model, _ = served_model
    direct = model.decision_function(requests_60)
    res = serve_requests(
        model, requests_60, burst_arrivals(60),
        policy=BatchPolicy(max_batch=max_batch, max_delay=0.0),
        config=RunConfig(nprocs=nprocs),
    )
    assert np.array_equal(res.scores, direct)
    assert np.all(res.status == SCORED)


def test_bitwise_identity_across_arrival_orders(served_model, requests_60):
    """The slab geometry changes with the arrival stream; scores don't."""
    model, _ = served_model
    direct = model.decision_function(requests_60)
    streams = [
        burst_arrivals(60),
        poisson_arrivals(60, rate=2000.0, seed=4),
        poisson_arrivals(60, rate=200_000.0, seed=5),
    ]
    geometries = set()
    for arrivals in streams:
        res = serve_requests(
            model, requests_60, arrivals,
            policy=BatchPolicy(max_batch=16, max_delay=300e-6),
            config=RunConfig(nprocs=2),
        )
        assert np.array_equal(res.scores, direct)
        geometries.add(tuple(s.size for s in res.schedule.slabs))
    # the check is only meaningful if the streams actually batched
    # differently
    assert len(geometries) > 1


def test_cached_scores_bitwise_equal(served_model, requests_60):
    model, _ = served_model
    from repro.sparse import CSRMatrix

    X2 = CSRMatrix.vstack([requests_60, requests_60])
    arrivals = np.concatenate([np.zeros(60), np.full(60, 10.0)])
    res = serve_requests(
        model, X2, arrivals,
        policy=BatchPolicy(max_batch=16, max_delay=0.0),
        config=RunConfig(nprocs=2), cache_entries=256,
    )
    assert np.array_equal(res.scores, model.decision_function(X2))
    assert res.stats.n_cache_hits > 0


def test_sums_reduction_close_not_guaranteed_bitwise(served_model, requests_60):
    model, _ = served_model
    direct = model.decision_function(requests_60)
    res = serve_requests(
        model, requests_60, None,
        policy=BatchPolicy(max_batch=16),
        config=RunConfig(nprocs=4), reduction="sums",
    )
    assert np.allclose(res.scores, direct, rtol=1e-12, atol=1e-12)


def test_faults_on_serving_path(served_model, requests_60):
    """Dropped slab messages are retried; scores stay bitwise exact and
    the fault engine reports activity."""
    model, _ = served_model
    direct = model.decision_function(requests_60)
    res = serve_requests(
        model, requests_60, burst_arrivals(60),
        policy=BatchPolicy(max_batch=8, max_delay=0.0),
        config=RunConfig(nprocs=2, faults="drop:p=0.05,seed=9"),
    )
    assert np.array_equal(res.scores, direct)
    assert res.spmd.fault_stats is not None


def test_backpressure_under_overload(served_model, requests_60):
    model, _ = served_model
    direct = model.decision_function(requests_60)
    res = serve_requests(
        model, requests_60, burst_arrivals(60),
        policy=BatchPolicy(max_batch=4, max_delay=0.0, max_queue=8),
        config=RunConfig(nprocs=1),
    )
    assert res.stats.n_rejected > 0
    rejected = res.status == 3
    assert np.all(np.isnan(res.scores[rejected]))
    assert np.all(np.isnan(res.latencies[rejected]))
    scored = res.status == SCORED
    assert np.array_equal(res.scores[scored], direct[scored])


def test_stats_report_consistency(served_model, requests_60):
    model, _ = served_model
    res = serve_requests(
        model, requests_60, poisson_arrivals(60, rate=5000.0, seed=6),
        policy=BatchPolicy(max_batch=8, max_delay=400e-6),
        config=RunConfig(nprocs=2), cache_entries=64,
    )
    s = res.stats
    assert s.n_requests == 60
    assert s.n_scored + s.n_cache_hits + s.n_rejected == 60
    assert s.n_slabs == len(res.schedule.slabs)
    assert s.mean_slab_size == pytest.approx(
        np.mean([sl.size for sl in res.schedule.slabs])
    )
    assert 0.0 < s.latency_p50 <= s.latency_p99 <= s.latency_max
    assert s.throughput > 0 and s.makespan > 0
    assert s.nprocs == 2 and s.total_messages > 0
    assert set(s.to_dict()) >= {
        "latency_p50", "throughput", "cache", "n_rejected",
    }


def test_nprocs_cannot_exceed_sv_count(served_model, requests_60):
    model, _ = served_model
    with pytest.raises(ValueError, match="exceeds n_sv"):
        serve_requests(
            model, requests_60,
            config=RunConfig(nprocs=model.n_sv + 1),
        )


def test_modeled_batching_speedup(served_model, requests_60):
    """The modeled-throughput win that BENCH_serve.json quantifies."""
    model, _ = served_model

    def throughput(mb):
        res = serve_requests(
            model, requests_60, burst_arrivals(60),
            policy=BatchPolicy(max_batch=mb, max_delay=0.0),
            config=RunConfig(nprocs=1),
        )
        return res.stats.throughput

    assert throughput(60) >= 3.0 * throughput(1)
