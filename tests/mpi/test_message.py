"""Envelope construction and matching rules."""

import numpy as np

from repro.mpi.message import Envelope


def test_from_array_snapshots():
    a = np.arange(4.0)
    env = Envelope.from_array(0, 1, 5, 0, a, depart_time=1.5)
    a[:] = -1.0
    assert np.array_equal(env.payload, np.arange(4.0))
    assert env.nbytes == 32
    assert env.typed
    assert env.depart_time == 1.5


def test_from_object_pickles():
    env = Envelope.from_object(0, 1, 5, 0, {"k": [1, 2]}, depart_time=0.0)
    assert not env.typed
    assert env.nbytes > 0
    assert env.unpickle() == {"k": [1, 2]}


def test_matching_exact():
    env = Envelope.from_object(src=2, dest=0, tag=7, context=3, obj=1,
                               depart_time=0.0)
    assert env.matches(2, 7, 3)
    assert not env.matches(1, 7, 3)  # wrong source
    assert not env.matches(2, 8, 3)  # wrong tag
    assert not env.matches(2, 7, 4)  # wrong context


def test_matching_wildcards():
    env = Envelope.from_object(2, 0, 7, 3, 1, 0.0)
    assert env.matches(-1, 7, 3)  # ANY_SOURCE
    assert env.matches(2, -1, 3)  # ANY_TAG
    assert env.matches(-1, -1, 3)
    assert env.matches(None, None, 3)
    assert not env.matches(-1, -1, 0)  # context never wildcards


def test_sequence_numbers_increase():
    a = Envelope.from_object(0, 1, 0, 0, "a", 0.0)
    b = Envelope.from_object(0, 1, 0, 0, "b", 0.0)
    assert b.seq > a.seq
