"""Every collective against a naive reference, across rank counts
(including non-powers of two) and payload kinds."""

import numpy as np
import pytest

from repro.mpi import IN_PLACE, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, run_spmd

PS = [1, 2, 3, 4, 5, 7, 8, 13]


@pytest.mark.parametrize("p", PS)
def test_bcast_object(p):
    root = p - 1

    def prog(comm):
        obj = {"v": 42, "rank": comm.rank} if comm.rank == root else None
        return comm.bcast(obj, root=root)

    for out in run_spmd(prog, p).results:
        assert out == {"v": 42, "rank": root}


@pytest.mark.parametrize("p", PS)
def test_bcast_typed_inplace(p):
    def prog(comm):
        buf = np.arange(6.0) if comm.rank == 0 else np.zeros(6)
        comm.Bcast(buf, root=0)
        return buf

    for out in run_spmd(prog, p).results:
        assert np.array_equal(out, np.arange(6.0))


@pytest.mark.parametrize("p", PS)
@pytest.mark.parametrize(
    "op,ref",
    [
        (SUM, lambda xs: sum(xs)),
        (MAX, max),
        (MIN, min),
        (PROD, lambda xs: np.prod(xs)),
    ],
)
def test_allreduce_scalar_ops(p, op, ref):
    def prog(comm):
        return comm.allreduce(comm.rank + 1, op)

    expect = ref([r + 1 for r in range(p)])
    assert all(v == expect for v in run_spmd(prog, p).results)


@pytest.mark.parametrize("p", PS)
def test_allreduce_array_sum(p):
    def prog(comm):
        return comm.allreduce(np.full(4, float(comm.rank)), SUM)

    expect = np.full(4, p * (p - 1) / 2)
    for out in run_spmd(prog, p).results:
        assert np.allclose(out, expect)


@pytest.mark.parametrize("p", PS)
def test_allreduce_minloc_maxloc(p):
    vals = [((r * 7) % p, r) for r in range(p)]

    def prog(comm):
        v = (float((comm.rank * 7) % p), comm.rank)
        return comm.allreduce(v, MINLOC), comm.allreduce(v, MAXLOC)

    lo = min(vals)
    hi = max(v[0] for v in vals)
    hi_idx = min(r for (v, r) in vals if v == hi)
    for got_lo, got_hi in run_spmd(prog, p).results:
        assert got_lo == (float(lo[0]), lo[1])
        assert got_hi == (float(hi), hi_idx)


def test_minloc_tie_breaks_to_lowest_rank():
    def prog(comm):
        return comm.allreduce((1.0, comm.rank), MINLOC)

    for out in run_spmd(prog, 6).results:
        assert out == (1.0, 0)


@pytest.mark.parametrize("p", PS)
def test_allreduce_buffer_fused_election(p):
    """The typed fused election elects the same winners as the two
    object-path MINLOC/MAXLOC allreduces, and sums the tail slot."""
    from repro.mpi.reduceops import MINLOC_MAXLOC

    def prog(comm):
        v = float((comm.rank * 7) % p)
        buf = np.array(
            [v, comm.rank, v, comm.rank, comm.rank + 1.0], dtype=np.float64
        )
        fused = comm.allreduce_buffer(buf, MINLOC_MAXLOC)
        lo = comm.allreduce((v, comm.rank), MINLOC)
        hi = comm.allreduce((v, comm.rank), MAXLOC)
        tot = comm.allreduce(comm.rank + 1.0, SUM)
        return fused, lo, hi, tot

    for fused, lo, hi, tot in run_spmd(prog, p).results:
        assert fused.dtype == np.float64
        assert (fused[0], int(fused[1])) == lo
        assert (fused[2], int(fused[3])) == hi
        assert fused[4] == tot


@pytest.mark.parametrize("p", PS)
def test_allreduce_buffer_cheaper_than_two_object_allreduces(p):
    """One 40-byte typed message per tree edge beats two pickled ones."""
    if p == 1:
        pytest.skip("no traffic at p=1")
    from repro.mpi.reduceops import MINLOC_MAXLOC

    def fused(comm):
        buf = np.array([1.0, comm.rank, 1.0, comm.rank, 1.0])
        comm.allreduce_buffer(buf, MINLOC_MAXLOC)
        return comm.vtime

    def legacy(comm):
        comm.allreduce((1.0, comm.rank), MINLOC)
        comm.allreduce((1.0, comm.rank), MAXLOC)
        return comm.vtime

    t_fused = max(run_spmd(fused, p).results)
    t_legacy = max(run_spmd(legacy, p).results)
    assert t_fused < t_legacy


@pytest.mark.parametrize("p", PS)
def test_typed_allreduce_inplace(p):
    def prog(comm):
        buf = np.full(3, float(comm.rank + 1))
        comm.Allreduce(IN_PLACE, buf, SUM)
        return buf

    expect = np.full(3, p * (p + 1) / 2)
    for out in run_spmd(prog, p).results:
        assert np.allclose(out, expect)


@pytest.mark.parametrize("p", PS)
def test_reduce_to_root(p):
    root = p // 2

    def prog(comm):
        return comm.reduce(comm.rank, SUM, root=root)

    res = run_spmd(prog, p).results
    for r, out in enumerate(res):
        if r == root:
            assert out == p * (p - 1) // 2
        else:
            assert out is None


@pytest.mark.parametrize("p", PS)
def test_gather_scatter(p):
    def prog(comm):
        gathered = comm.gather(comm.rank ** 2, root=0)
        objs = [i * 3 for i in range(comm.size)] if comm.rank == 0 else None
        part = comm.scatter(objs, root=0)
        return gathered, part

    res = run_spmd(prog, p).results
    assert res[0][0] == [r ** 2 for r in range(p)]
    for r in range(1, p):
        assert res[r][0] is None
    assert [res[r][1] for r in range(p)] == [r * 3 for r in range(p)]


@pytest.mark.parametrize("p", PS)
def test_allgather(p):
    def prog(comm):
        return comm.allgather((comm.rank, "x"))

    expect = [(r, "x") for r in range(p)]
    for out in run_spmd(prog, p).results:
        assert out == expect


@pytest.mark.parametrize("p", PS)
def test_alltoall(p):
    def prog(comm):
        return comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])

    res = run_spmd(prog, p).results
    for r in range(p):
        assert res[r] == [f"{s}->{r}" for s in range(p)]


@pytest.mark.parametrize("p", PS)
def test_barrier_runs(p):
    def prog(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(run_spmd(prog, p).results)


@pytest.mark.parametrize("p", PS)
def test_typed_gather_allgather_scatter(p):
    def prog(comm):
        send = np.full(2, float(comm.rank))
        ag = np.zeros(2 * comm.size)
        comm.Allgather(send, ag)
        if comm.rank == 0:
            g = np.zeros(2 * comm.size)
        else:
            g = np.zeros(0)
        comm.Gather(send, g if comm.rank == 0 else np.zeros(2 * comm.size), root=0)
        sc_src = np.repeat(np.arange(float(comm.size)), 2) if comm.rank == 0 else None
        sc_out = np.zeros(2)
        comm.Scatter(sc_src if comm.rank == 0 else np.zeros(0), sc_out, root=0)
        return ag, sc_out

    res = run_spmd(prog, p).results
    expect_ag = np.repeat(np.arange(float(p)), 2)
    for r, (ag, sc) in enumerate(res):
        assert np.array_equal(ag, expect_ag)
        assert np.array_equal(sc, np.full(2, float(r)))


def test_float_reduction_determinism():
    """Same inputs at same p -> bitwise identical allreduce results."""

    def prog(comm):
        rng = np.random.default_rng(comm.rank)
        return comm.allreduce(rng.random(16), SUM)

    a = run_spmd(prog, 7).results
    b = run_spmd(prog, 7).results
    for x, y in zip(a, b):
        assert np.array_equal(x, y)
    # and all ranks agree exactly
    for x in a[1:]:
        assert np.array_equal(a[0], x)


def test_concurrent_collectives_do_not_cross_match():
    """Back-to-back collectives with different shapes stay separated."""

    def prog(comm):
        a = comm.allreduce(comm.rank, SUM)
        b = comm.bcast("z" if comm.rank == 1 else None, root=1)
        c = comm.allgather(comm.rank)
        return a, b, c

    p = 6
    for a, b, c in run_spmd(prog, p).results:
        assert a == p * (p - 1) // 2
        assert b == "z"
        assert c == list(range(p))


def test_split_subcommunicators():
    def prog(comm):
        color = comm.rank % 2
        sub = comm.Split(color, key=comm.rank)
        s = sub.allreduce(comm.rank, SUM)
        return color, sub.size, s

    p = 7
    res = run_spmd(prog, p).results
    evens = [r for r in range(p) if r % 2 == 0]
    odds = [r for r in range(p) if r % 2 == 1]
    for r, (color, size, s) in enumerate(res):
        group = evens if color == 0 else odds
        assert size == len(group)
        assert s == sum(group)


def test_split_none_color_returns_none():
    def prog(comm):
        sub = comm.Split(None if comm.rank == 0 else 1, key=comm.rank)
        if comm.rank == 0:
            return sub is None
        return sub.size

    res = run_spmd(prog, 4).results
    assert res[0] is True
    assert res[1:] == [3, 3, 3]


def test_dup_isolates_traffic():
    def prog(comm):
        dup = comm.Dup()
        # traffic on dup must not interfere with comm
        if comm.rank == 0:
            dup.send("on-dup", dest=1, tag=2)
            comm.send("on-world", dest=1, tag=2)
            return None
        world_msg = comm.recv(source=0, tag=2)
        dup_msg = dup.recv(source=0, tag=2)
        return world_msg, dup_msg

    assert run_spmd(prog, 2).results[1] == ("on-world", "on-dup")


@pytest.mark.parametrize("p", PS)
def test_allreduce_maxloc_payload(p):
    """MAXLOC with an opaque tail: the whole winning operand survives
    the combine (typed and object paths agree)."""
    from repro.mpi.reduceops import MAXLOC_PAYLOAD

    def prog(comm):
        v = float((comm.rank * 5) % p)
        buf = np.array(
            [v, float(comm.rank * 10), 100.0 + comm.rank], dtype=np.float64
        )
        typed = comm.allreduce_buffer(buf.copy(), MAXLOC_PAYLOAD)
        obj = comm.allreduce(
            (v, float(comm.rank * 10), 100.0 + comm.rank), MAXLOC_PAYLOAD
        )
        return typed, obj

    vals = [float((r * 5) % p) for r in range(p)]
    hi = max(vals)
    win = min(r for r in range(p) if vals[r] == hi)
    expect = (hi, float(win * 10), 100.0 + win)
    for typed, obj in run_spmd(prog, p).results:
        assert tuple(typed) == expect
        assert tuple(obj) == expect


def test_maxloc_payload_ties_to_smaller_loc():
    """Equal values: the smaller loc slot (a global sample index in the
    WSS2 election) wins, payload riding along."""
    from repro.mpi.reduceops import MAXLOC_PAYLOAD

    def prog(comm):
        buf = np.array(
            [7.0, float(comm.rank + 1), float(comm.rank)], dtype=np.float64
        )
        return comm.allreduce_buffer(buf, MAXLOC_PAYLOAD)

    for out in run_spmd(prog, 5).results:
        assert tuple(out) == (7.0, 1.0, 0.0)
