"""Hierarchical communicator suite: equality with flat, registry, env."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import (
    COMM_ENV,
    COMMUNICATORS,
    FlatCollectives,
    HierarchicalCollectives,
    create_communicator,
    resolve_comm,
    run_spmd,
)
from repro.mpi.reduceops import ELECTION_SLOTS, MAX, MIN, MINLOC_MAXLOC, SUM
from repro.mpi.topology import node_layout
from repro.perfmodel import MachineSpec


def _multinode(rpn):
    return MachineSpec.multinode(ranks_per_node=rpn)


def _run_both(prog, p, rpn):
    """Run the same SPMD program under flat and hierarchical suites."""
    out = {}
    for comm in ("flat", "hierarchical"):
        out[comm] = run_spmd(
            prog, p, machine=_multinode(rpn), comm=comm, trace=True
        )
    return out["flat"], out["hierarchical"]


class TestNodeLayout:
    def test_geometry_multinode(self):
        def prog(comm):
            members, leaders, node_idx = node_layout(comm)
            return [list(m) for m in members], list(leaders), list(node_idx)

        out = run_spmd(prog, 6, machine=_multinode(2)).results
        members, leaders, node_idx = out[0]
        assert members == [[0, 1], [2, 3], [4, 5]]
        assert leaders == [0, 2, 4]
        assert node_idx == [0, 0, 1, 1, 2, 2]
        # every rank computes the identical layout
        assert all(r == out[0] for r in out)

    def test_single_node_machine(self):
        def prog(comm):
            members, leaders, _ = node_layout(comm)
            return len(members), leaders

        n_nodes, leaders = run_spmd(prog, 4).results[0]
        assert n_nodes == 1 and leaders == [0]

    def test_ragged_last_node(self):
        def prog(comm):
            members, leaders, _ = node_layout(comm)
            return [list(m) for m in members]

        members = run_spmd(prog, 5, machine=_multinode(4)).results[0]
        assert members == [[0, 1, 2, 3], [4]]


class TestRegistry:
    def test_names(self):
        assert set(COMMUNICATORS) == {"flat", "hierarchical"}
        assert COMMUNICATORS["flat"] is FlatCollectives
        assert COMMUNICATORS["hierarchical"] is HierarchicalCollectives
        assert create_communicator().name == "flat"
        assert create_communicator("hierarchical").name == "hierarchical"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            create_communicator("torus")
        with pytest.raises(ValueError, match="unknown"):
            run_spmd(lambda c: None, 1, comm="torus")

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(COMM_ENV, "hierarchical")
        assert resolve_comm() == "hierarchical"
        # explicit beats env
        assert resolve_comm("flat") == "flat"
        monkeypatch.delenv(COMM_ENV)
        assert resolve_comm() == "flat"

    def test_env_reaches_runtime(self, monkeypatch):
        monkeypatch.setenv(COMM_ENV, "hierarchical")
        out = run_spmd(lambda c: c._suite.name, 2, machine=_multinode(1))
        assert out.results == ["hierarchical", "hierarchical"]


class TestEquality:
    """Flat and hierarchical must agree on every collective's result."""

    @settings(max_examples=20, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=8),
        rpn=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_collectives_match_flat(self, p, rpn, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((p, 6))

        def prog(comm):
            r = comm.rank
            res = {}
            res["allreduce"] = comm.allreduce(data[r].copy())
            res["buffer"] = comm.allreduce_buffer(data[r].copy())
            res["max"] = comm.allreduce(float(data[r, 0]), op=MAX)
            res["bcast"] = comm.bcast(
                data[min(p - 1, 2)].copy() if r == min(p - 1, 2) else None,
                root=min(p - 1, 2),
            )
            res["allgather"] = comm.allgather((r, data[r, :2].copy()))
            res["reduce"] = comm.reduce(data[r].copy(), root=0)
            comm.barrier()
            return res

        flat, hier = _run_both(prog, p, rpn)
        for rf, rh in zip(flat.results, hier.results):
            # SUM re-associates across the two-level tree at non-pof2
            # geometries: equal to the last few ulps, bitwise only at
            # pof2 (covered by test_sum_bitwise_identical_pof2)
            for key in ("allreduce", "buffer", "reduce"):
                if rf[key] is not None or rh[key] is not None:
                    np.testing.assert_allclose(
                        rf[key], rh[key], rtol=1e-13, err_msg=key
                    )
            # bcast and MAX involve no re-association: exact
            np.testing.assert_array_equal(rf["bcast"], rh["bcast"])
            assert rf["max"] == rh["max"]
            assert len(rf["allgather"]) == len(rh["allgather"]) == p
            for (i, a), (j, b) in zip(rf["allgather"], rh["allgather"]):
                assert i == j
                assert a.tobytes() == b.tobytes()

    def test_sum_bitwise_identical_pof2(self):
        # at power-of-two p with pof2 nodes the hierarchical combine
        # tree re-associates exactly like flat recursive doubling
        rng = np.random.default_rng(11)
        data = rng.random((8, 32)) * 1e3 - 500.0

        def prog(comm):
            return comm.allreduce_buffer(data[comm.rank].copy())

        flat, hier = _run_both(prog, 8, 2)
        for rf, rh in zip(flat.results, hier.results):
            assert rf.tobytes() == rh.tobytes()

    def test_fused_election_identical(self):
        # the packed engine's MINLOC_MAXLOC buffer must survive the
        # hierarchical path bit-for-bit
        rng = np.random.default_rng(5)
        vals = rng.random(6)

        def prog(comm):
            buf = np.empty(ELECTION_SLOTS)
            buf[0] = vals[comm.rank]
            buf[1] = comm.rank
            buf[2] = -vals[comm.rank]
            buf[3] = comm.rank
            return comm.allreduce_buffer(buf, op=MINLOC_MAXLOC)

        flat, hier = _run_both(prog, 6, 2)
        for rf, rh in zip(flat.results, hier.results):
            assert rf.tobytes() == rh.tobytes()
        best = int(np.argmin(vals))
        assert int(flat.results[0][1]) == best

    def test_min_over_object_path(self):
        def prog(comm):
            return comm.allreduce(comm.rank + 0.5, op=MIN)

        flat, hier = _run_both(prog, 5, 2)
        assert flat.results == hier.results == [0.5] * 5

    def test_scatter_alltoall_scan_delegate(self):
        # ops without a hierarchical specialization run the flat
        # algorithm under either suite
        def prog(comm):
            r = comm.rank
            res = {}
            res["scatter"] = comm.scatter(
                [f"s{i}" for i in range(comm.size)] if r == 0 else None,
                root=0,
            )
            res["alltoall"] = comm.alltoall(
                [(r, i) for i in range(comm.size)]
            )
            res["scan"] = comm.scan(r + 1, op=SUM)
            res["exscan"] = comm.exscan(r + 1, op=SUM)
            res["rs"] = comm.reduce_scatter(
                [np.full(2, float(r + i)) for i in range(comm.size)],
                op=SUM,
            )
            return res

        flat, hier = _run_both(prog, 6, 2)
        for rf, rh in zip(flat.results, hier.results):
            assert rf["scatter"] == rh["scatter"]
            assert rf["alltoall"] == rh["alltoall"]
            assert rf["scan"] == rh["scan"]
            assert rf["exscan"] == rh["exscan"]
            np.testing.assert_array_equal(rf["rs"], rh["rs"])

    def test_split_subcomm_under_hierarchical(self):
        def prog(comm):
            sub = comm.Split(color=comm.rank % 2, key=comm.rank)
            total = sub.allreduce(comm.rank)
            return total

        flat, hier = _run_both(prog, 6, 2)
        assert flat.results == hier.results
        assert flat.results[0] == 0 + 2 + 4


class TestTrafficShape:
    def test_fewer_messages_at_scale(self):
        # 8 ranks on 2-wide nodes: leader-only inter-node exchange moves
        # fewer messages than flat recursive doubling over all ranks
        def prog(comm):
            for _ in range(4):
                comm.allreduce_buffer(np.ones(64))

        flat, hier = _run_both(prog, 8, 2)
        assert hier.total_messages < flat.total_messages

    def test_single_node_delegates_to_flat(self):
        # every rank on one node: the two-level plan collapses and both
        # suites run the identical flat algorithms
        def prog(comm):
            comm.allreduce_buffer(np.arange(8.0))
            comm.bcast(np.ones(4) if comm.rank == 0 else None, root=0)

        flat, hier = _run_both(prog, 4, 16)
        assert hier.total_messages == flat.total_messages
        assert hier.total_bytes_sent == flat.total_bytes_sent

    def test_collective_byte_totals_traced(self):
        def prog(comm):
            comm.allreduce_buffer(np.ones(16))
            comm.bcast(np.ones(8) if comm.rank == 0 else None, root=0)
            comm.barrier()

        out = run_spmd(prog, 4, machine=_multinode(2), comm="hierarchical",
                       trace=True)
        per_op = out.tracer.collective_bytes()
        assert per_op["Allreduce"] > 0
        assert per_op["Bcast"] > 0
        # this program is all-collective traffic, so the per-op byte
        # overlay must account for exactly the wire total
        assert sum(per_op.values()) == out.total_bytes_sent
