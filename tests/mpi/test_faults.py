"""Fault-injection layer: plan parsing, deterministic scheduling, and
per-kind behaviour of the runtime under an adversarial delivery schedule.

Every completing job must be bitwise identical to its fault-free run —
results *and* virtual times — and every non-completing job must fail
with a structured error (never a watchdog hang: all timeouts here are
tight).
"""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.mpi.errors import (
    DeadlockError,
    InjectedFault,
    MessageLostError,
    SpmdJobError,
)
from repro.mpi.faults import Fault, FaultPlan, RetryPolicy, as_plan

pytestmark = pytest.mark.faults

#: fast-failing policy so nothing in this module waits long
FAST = RetryPolicy(timeout=0.05, backoff=1.5, max_retries=3)


def pingpong(comm):
    """rank 0 -> 1 object send, 1 -> 0 reply; returns the reply on 0."""
    if comm.rank == 0:
        comm.send({"x": np.arange(4.0)}, dest=1, tag=5)
        return comm.recv(source=1, tag=6)
    obj = comm.recv(source=0, tag=5)
    comm.send(float(obj["x"].sum()), dest=0, tag=6)
    return None


def ring_allreduce(comm):
    return comm.allreduce(float(comm.rank + 1))


class TestPlanParsing:
    def test_round_trip(self):
        spec = "seed=7;retry:timeout=0.1,max=4;drop:src=0,dest=1,tag=3,nth=1"
        plan = FaultPlan.parse(spec)
        assert plan.seed == 7
        assert plan.retry.timeout == 0.1
        assert plan.retry.max_retries == 4
        (f,) = plan.faults
        assert (f.kind, f.src, f.dest, f.tag, f.nth) == ("drop", 0, 1, 3, 1)
        assert FaultPlan.parse(plan.describe()).faults == plan.faults

    def test_wildcards(self):
        (f,) = FaultPlan.parse("delay:src=*,tag=any,seconds=0.5").faults
        assert f.src is None and f.tag is None and f.seconds == 0.5

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("teleport:src=0")

    def test_bad_clause_rejected(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("just-some-words")

    def test_rank_faults_require_rank(self):
        with pytest.raises(ValueError, match="requires rank="):
            Fault("kill")

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=0)
        assert RetryPolicy(timeout=0.1, backoff=2.0).budget(3) == pytest.approx(0.4)

    def test_as_plan_coercions(self):
        assert as_plan(None) is None
        plan = FaultPlan(faults=(Fault("dup"),))
        assert as_plan(plan) is plan
        assert as_plan("seed=3;dup:tag=5").seed == 3
        assert as_plan([Fault("dup")]).faults[0].kind == "dup"
        with pytest.raises(TypeError):
            as_plan(42)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan.parse(
            "seed=11;retry:timeout=0.05,max=3;"
            "drop:src=0,dest=1,tag=5,nth=1;dup:tag=6"
        )
        reports = [
            run_spmd(pingpong, 2, faults=plan).fault_stats for _ in range(3)
        ]
        assert reports[0]["schedule"]
        assert reports[1]["schedule"] == reports[0]["schedule"]
        assert reports[2]["schedule"] == reports[0]["schedule"]

    def test_prob_is_seeded(self):
        plan_a = FaultPlan(faults=(Fault("dup", tag=5, prob=0.5),), seed=1)
        plan_b = FaultPlan(faults=(Fault("dup", tag=5, prob=0.5),), seed=1)
        ra = run_spmd(pingpong, 2, faults=plan_a).fault_stats
        rb = run_spmd(pingpong, 2, faults=plan_b).fault_stats
        assert ra["schedule"] == rb["schedule"]


class TestMessageFaults:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_spmd(pingpong, 2)

    def _identical(self, res, baseline):
        assert res.results == baseline.results
        assert res.vtime == baseline.vtime

    def test_drop_recovered_bitwise(self, baseline):
        plan = FaultPlan(
            faults=(Fault("drop", src=0, dest=1, tag=5, nth=1),),
            seed=1, retry=FAST,
        )
        res = run_spmd(pingpong, 2, faults=plan)
        self._identical(res, baseline)
        stats = res.fault_stats["stats"]
        assert stats["dropped"] == 1
        assert stats["retransmitted"] == 1

    def test_drop_count_needs_more_retries(self, baseline):
        # two suppressed delivery attempts -> recovered on the 3rd ask
        plan = FaultPlan(
            faults=(Fault("drop", tag=5, nth=1, count=3),),
            seed=1, retry=FAST,
        )
        res = run_spmd(pingpong, 2, faults=plan)
        self._identical(res, baseline)
        assert res.fault_stats["stats"]["retries"] >= 3

    def test_dup_discarded(self, baseline):
        plan = FaultPlan(faults=(Fault("dup", src=0, dest=1, tag=5),), seed=1)
        res = run_spmd(pingpong, 2, faults=plan)
        self._identical(res, baseline)
        assert res.fault_stats["stats"]["dup_discarded"] == 1

    def test_delay_shifts_vtime_only(self, baseline):
        plan = FaultPlan(
            faults=(Fault("delay", src=0, dest=1, tag=5, seconds=0.25),),
            seed=1,
        )
        res = run_spmd(pingpong, 2, faults=plan)
        assert res.results == baseline.results
        assert res.vtime > baseline.vtime
        assert res.fault_stats["stats"]["delayed"] == 1

    def test_exhausted_retries_name_rank_and_tag(self):
        plan = FaultPlan(
            faults=(Fault("drop", src=0, dest=1, tag=5, nth=1, count=99),),
            seed=1, retry=FAST,
        )
        with pytest.raises(SpmdJobError) as ei:
            run_spmd(pingpong, 2, faults=plan, deadlock_timeout=20.0)
        lost = [
            e for e in ei.value.failures.values()
            if isinstance(e, MessageLostError)
        ]
        assert lost, f"expected a MessageLostError, got {ei.value.failures}"
        # rank 1 loses the dropped tag-5 message; rank 0 — starved of the
        # reply — may exhaust its own budget on tag 6 first (host-timing
        # race).  Either way the error names the blocked rank, source
        # and tag.
        msgs = {str(e) for e in lost}
        assert any(
            ("rank 1" in m and "src=0" in m and "tag=5" in m)
            or ("rank 0" in m and "src=1" in m and "tag=6" in m)
            for m in msgs
        ), msgs

    def test_faults_on_collectives_recovered(self):
        baseline = run_spmd(ring_allreduce, 4)
        plan = FaultPlan(
            faults=(Fault("drop", dest=2, nth=1),), seed=2, retry=FAST
        )
        res = run_spmd(ring_allreduce, 4, faults=plan)
        assert res.results == baseline.results == [10.0] * 4
        assert res.vtime == baseline.vtime
        # nth counts per (src, dest) stream: every sender's first
        # message into rank 2 is dropped, and each one is recovered
        assert res.fault_stats["stats"]["retransmitted"] >= 1
        assert (
            res.fault_stats["stats"]["retransmitted"]
            == res.fault_stats["stats"]["dropped"]
        )


class TestRankFaults:
    def test_stall_is_host_time_only(self):
        baseline = run_spmd(pingpong, 2)
        plan = FaultPlan(
            faults=(Fault("stall", rank=0, after=1, seconds=0.2),),
            seed=1, retry=RetryPolicy(timeout=0.5, max_retries=4),
        )
        res = run_spmd(pingpong, 2, faults=plan)
        assert res.results == baseline.results
        assert res.vtime == baseline.vtime  # virtual clock never stalls
        assert res.fault_stats["stats"]["stalled"] == 1

    def test_kill_raises_structured_job_error(self):
        plan = FaultPlan(faults=(Fault("kill", rank=0, after=1),), seed=1,
                         retry=FAST)
        with pytest.raises(SpmdJobError) as ei:
            run_spmd(pingpong, 2, faults=plan, deadlock_timeout=20.0)
        assert any(
            isinstance(e, InjectedFault) for e in ei.value.failures.values()
        )


class TestDeadlockDiagnostics:
    def test_blocked_state_reported_per_rank(self):
        def deadlock(comm):
            # both ranks wait on a message nobody sends
            return comm.recv(source=(comm.rank + 1) % 2, tag=9)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(deadlock, 2, deadlock_timeout=1.0)
        msg = str(ei.value)
        assert "rank 0" in msg and "rank 1" in msg
        assert "blocked in recv" in msg and "tag=9" in msg

    def test_fault_free_runs_have_no_report(self):
        assert run_spmd(pingpong, 2).fault_stats is None
