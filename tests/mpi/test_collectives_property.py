"""Property-based collective correctness over random payloads/op/p."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, SUM, run_spmd

OPS = {"SUM": (SUM, np.sum), "MAX": (MAX, np.max), "MIN": (MIN, np.min)}


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=6),
    vals=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=6, max_size=6
    ),
    opname=st.sampled_from(sorted(OPS)),
)
def test_allreduce_matches_reference(p, vals, opname):
    op, ref = OPS[opname]

    def prog(comm):
        return comm.allreduce(vals[comm.rank], op)

    expect = ref(np.asarray(vals[:p]))
    assert all(v == expect for v in run_spmd(prog, p).results)


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=6),
    root=st.integers(min_value=0, max_value=5),
    payload=st.one_of(
        st.integers(),
        st.text(max_size=12),
        st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=5),
        st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
    ),
)
def test_bcast_delivers_any_picklable(p, root, payload):
    root = root % p

    def prog(comm):
        return comm.bcast(payload if comm.rank == root else None, root=root)

    assert all(out == payload for out in run_spmd(prog, p).results)


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_allgather_order_and_content(p, seed):
    rng = np.random.default_rng(seed)
    items = [rng.integers(0, 100, size=3).tolist() for _ in range(p)]

    def prog(comm):
        return comm.allgather(items[comm.rank])

    for out in run_spmd(prog, p).results:
        assert out == items[:p]


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_ring_shift_invariant(p, seed):
    """Passing a token around the full ring returns it to its origin."""
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, 10**6, size=p).tolist()

    def prog(comm):
        cur = tokens[comm.rank]
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for _ in range(comm.size):
            req = comm.irecv(source=left, tag=1)
            comm.isend(cur, dest=right, tag=1)
            cur = req.wait()
        return cur

    res = run_spmd(prog, p).results
    assert res == tokens[:p]
