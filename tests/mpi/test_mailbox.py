"""Mailbox matching semantics and abort behaviour."""

import threading

import pytest

from repro.mpi.errors import SpmdAborted
from repro.mpi.mailbox import Mailbox
from repro.mpi.message import Envelope


def env(src=0, tag=0, ctx=0, payload=b"x"):
    return Envelope(
        src=src, dest=1, tag=tag, context=ctx, payload=payload,
        typed=False, nbytes=len(payload), depart_time=0.0,
    )


def test_fifo_per_source_tag():
    mb = Mailbox(1, threading.Event())
    e1, e2 = env(payload=b"1"), env(payload=b"2")
    mb.put(e1)
    mb.put(e2)
    assert mb.take(0, 0, 0) is e1
    assert mb.take(0, 0, 0) is e2


def test_match_by_source_and_tag():
    mb = Mailbox(1, threading.Event())
    a = env(src=0, tag=1)
    b = env(src=2, tag=1)
    c = env(src=0, tag=5)
    for e in (a, b, c):
        mb.put(e)
    assert mb.take(2, 1, 0) is b
    assert mb.take(0, 5, 0) is c
    assert mb.take(0, 1, 0) is a


def test_wildcards():
    mb = Mailbox(1, threading.Event())
    a = env(src=3, tag=9)
    mb.put(a)
    assert mb.take(-1, -1, 0) is a


def test_context_isolation():
    mb = Mailbox(1, threading.Event())
    a = env(ctx=0)
    b = env(ctx=7)
    mb.put(a)
    mb.put(b)
    assert mb.take(0, 0, 7, block=False) is b
    assert mb.take(0, 0, 0, block=False) is a


def test_nonblocking_take_returns_none():
    mb = Mailbox(1, threading.Event())
    assert mb.take(0, 0, 0, block=False) is None


def test_probe_does_not_remove():
    mb = Mailbox(1, threading.Event())
    a = env()
    mb.put(a)
    assert mb.probe(0, 0, 0) is a
    assert mb.probe(0, 0, 0) is a
    assert mb.take(0, 0, 0) is a


def test_abort_wakes_blocked_take():
    abort = threading.Event()
    mb = Mailbox(1, abort)
    errors = []

    def waiter():
        try:
            mb.take(0, 0, 0)
        except SpmdAborted as exc:
            errors.append(exc)

    t = threading.Thread(target=waiter)
    t.start()
    abort.set()
    mb.wake()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert len(errors) == 1


def test_delivered_counter():
    mb = Mailbox(1, threading.Event())
    assert mb.delivered == 0
    mb.put(env())
    mb.put(env())
    assert mb.delivered == 2
