"""SPMD runtime: job lifecycle, failures, deadlock detection, stats."""

import numpy as np
import pytest

from repro.mpi import (
    DeadlockError,
    SpmdJobError,
    SpmdRuntime,
    run_spmd,
)


def test_results_indexed_by_rank():
    res = run_spmd(lambda c: c.rank * 2, 5)
    assert res.results == [0, 2, 4, 6, 8]


def test_nprocs_one_fast_path():
    res = run_spmd(lambda c: (c.rank, c.size), 1)
    assert res.results == [(0, 1)]


def test_args_kwargs_passed():
    def prog(comm, a, b=0):
        return a + b + comm.rank

    res = run_spmd(prog, 3, args=(10,), kwargs={"b": 5})
    assert res.results == [15, 16, 17]


def test_invalid_nprocs():
    with pytest.raises(ValueError):
        run_spmd(lambda c: None, 0)


def test_rank_exception_propagates_with_rank():
    def prog(comm):
        if comm.rank == 2:
            raise ValueError("boom on 2")
        comm.barrier()

    with pytest.raises(SpmdJobError) as ei:
        run_spmd(prog, 4)
    assert 2 in ei.value.failures
    assert isinstance(ei.value.failures[2], ValueError)


def test_peer_blocked_ranks_are_cancelled_not_reported():
    """Only the originating failure appears; blocked peers are aborted."""

    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("original")
        comm.recv(source=0)  # would block forever

    with pytest.raises(SpmdJobError) as ei:
        run_spmd(prog, 3)
    assert set(ei.value.failures) == {0}


def test_deadlock_detection():
    def prog(comm):
        # everyone receives, nobody sends
        comm.recv(source=(comm.rank + 1) % comm.size)

    with pytest.raises(DeadlockError):
        run_spmd(prog, 2, deadlock_timeout=1.0)


def test_vtime_and_stats_accumulate():
    def prog(comm):
        comm.advance(1e-3)
        comm.allreduce(comm.rank)
        return comm.vtime

    res = run_spmd(prog, 4)
    assert res.vtime >= 1e-3
    assert res.total_messages > 0
    assert res.total_bytes_sent > 0
    for rs in res.rank_stats:
        assert rs.stats.compute_seconds >= 1e-3
        assert rs.vtime >= rs.stats.compute_seconds


def test_stats_table_renders():
    res = run_spmd(lambda c: c.allreduce(1), 3)
    table = res.stats_table()
    assert "rank" in table
    assert len(table.splitlines()) == 4


def test_tracer_records_events():
    def prog(comm):
        comm.advance(1e-6)
        comm.allreduce(comm.rank)
        if comm.rank == 0:
            comm.send(1, dest=1)
        elif comm.rank == 1:
            comm.recv(source=0)

    res = run_spmd(prog, 2, trace=True)
    ev = res.tracer.events
    assert res.tracer.count(op="Allreduce") == 2
    assert res.tracer.count(kind="compute") >= 2
    assert any(e.kind == "send" for e in ev)
    assert any(e.kind == "recv" for e in ev)
    for e in ev:
        assert e.t_end >= e.t_start >= 0.0


def test_tracer_disabled_by_default():
    res = run_spmd(lambda c: c.allreduce(1), 2)
    assert res.tracer.events == []


def test_context_allocation_is_deterministic():
    rt = SpmdRuntime(2)
    a = rt.allocate_context(("k", 1))
    b = rt.allocate_context(("k", 2))
    assert a != b
    assert rt.allocate_context(("k", 1)) == a


def test_machine_attached_to_result():
    from repro.perfmodel import MachineSpec

    m = MachineSpec.cascade()
    res = run_spmd(lambda c: None, 2, machine=m)
    assert res.machine is m


def test_return_values_can_be_arrays():
    res = run_spmd(lambda c: np.full(3, c.rank), 3)
    for r, out in enumerate(res.results):
        assert np.array_equal(out, np.full(3, r))
