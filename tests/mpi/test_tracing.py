"""Tracer aggregation and summary rendering."""

from repro.mpi import SUM, run_spmd


def test_summary_table():
    def prog(comm):
        comm.advance(1e-6)
        comm.allreduce(comm.rank, SUM)
        comm.barrier()
        if comm.rank == 0:
            comm.send("x", dest=1)
        elif comm.rank == 1:
            comm.recv(source=0)

    res = run_spmd(prog, 2, trace=True)
    text = res.tracer.summary()
    assert "Allreduce" in text
    assert "Barrier" in text
    assert "compute" in text
    # header + at least four aggregate rows
    assert len(text.splitlines()) >= 5


def test_summary_empty_tracer():
    res = run_spmd(lambda c: None, 2)
    assert res.tracer.summary().count("\n") == 0  # header only


def test_events_for_rank():
    res = run_spmd(lambda c: c.advance(1e-9), 3, trace=True)
    assert len(res.tracer.events_for(1)) == 1
    assert res.tracer.count(kind="compute") == 3
