"""Typed-frame codec: exact round-trips, integrity, and wire accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import frames, run_spmd
from repro.mpi.errors import CommError, CorruptMessageError
from repro.sparse.csr import CSRMatrix

DTYPES = ["<f8", "<i8", "<i4", "<f4", "<u1", "?"]


def _rt(obj):
    blob = frames.encode(obj)
    assert blob is not None
    return frames.decode(blob)


def _assert_same(a, b):
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert np.array_equal(a, b, equal_nan=True)
    elif isinstance(a, (tuple, list)):
        assert type(a) is type(b) and len(a) == len(b)
        for x, y in zip(a, b):
            _assert_same(x, y)
    elif isinstance(a, np.generic):  # before float: np.float64 is a float
        assert isinstance(b, np.generic) and a.dtype == b.dtype
        assert a == b or (np.isnan(float(a)) and np.isnan(float(b)))
    elif isinstance(a, float):
        assert type(b) is float
        assert a == b or (np.isnan(a) and np.isnan(b))
    else:
        assert type(a) is type(b) and a == b


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        dtype=st.sampled_from(DTYPES),
        n=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_array_roundtrip_exact(self, dtype, n, seed):
        rng = np.random.default_rng(seed)
        arr = (rng.random(n) * 200 - 100).astype(np.dtype(dtype))
        out = _rt(arr)
        _assert_same(arr, out)

    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.sampled_from([(0,), (3,), (2, 3), (4, 1, 2), ()]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_ndim_shapes_preserved(self, shape, seed):
        rng = np.random.default_rng(seed)
        arr = rng.random(shape)
        _assert_same(arr, _rt(arr))

    @settings(max_examples=40, deadline=None)
    @given(
        f=st.floats(allow_nan=True, allow_infinity=True),
        i=st.integers(min_value=-(2**62), max_value=2**62),
        flag=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_nested_tuple_roundtrip(self, f, i, flag, seed):
        rng = np.random.default_rng(seed)
        obj = (
            rng.random(5),
            (f, i, flag, None),
            [b"csr-bytes", rng.integers(0, 9, 4, dtype=np.int64)],
            np.float64(f),
        )
        _assert_same(obj, _rt(obj))

    def test_sample_payload_shape(self):
        # the owner-rooted pair broadcast payload: (idx, vals, norm, y, alpha)
        obj = (
            np.array([0, 3, 7], dtype=np.int64),
            np.array([0.5, -1.25, 3.0]),
            2.5,
            -1.0,
            0.125,
        )
        _assert_same(obj, _rt(obj))

    def test_empty_csr_block_roundtrip(self):
        # a zero-support rank's ring chunk: empty CSR blob + empty arrays
        empty = CSRMatrix.from_dense(np.zeros((0, 4)))
        chunk = (empty.to_bytes(), np.empty(0), np.empty(0))
        out = _rt(chunk)
        _assert_same(chunk, out)
        rebuilt = CSRMatrix.from_bytes(out[0])
        assert rebuilt.shape[0] == 0

    def test_numpy_scalars_exact(self):
        for val in (np.float64(0.1), np.int32(-7), np.float32(1.5)):
            out = _rt((np.zeros(1), val))[1]
            assert isinstance(out, np.generic) and out.dtype == val.dtype
            assert out == val


class TestVocabulary:
    def test_unframeable_returns_none(self):
        assert frames.encode({"a": 1}) is None
        assert frames.encode("text") is None
        assert frames.encode((np.zeros(2), {"a": 1})) is None
        assert frames.encode(np.array(["s"], dtype=object)) is None

    def test_all_scalar_payloads_not_worth_framing(self):
        # the legacy engine's (value, index) election pairs stay pickled
        assert frames.encode((1.5, 3)) is None
        assert frames.encode(None) is None
        assert frames.encode((1, 2, (3.0, None))) is None

    def test_buffer_makes_it_frameable(self):
        assert frames.encode((1.5, 3, np.zeros(1))) is not None
        assert frames.encode(b"raw") is not None

    def test_huge_int_unframeable(self):
        assert frames.encode((2**80, np.zeros(1))) is None

    def test_frame_nbytes_matches_encoding(self):
        obj = (np.arange(10, dtype=np.float64), b"xyz", 1.0)
        assert frames.frame_nbytes(obj) == len(frames.encode(obj))
        assert frames.frame_nbytes("nope") is None


class TestIntegrity:
    def _frame(self):
        return frames.encode((np.arange(16, dtype=np.float64), b"block"))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_flipped_byte_detected(self, data):
        blob = bytearray(self._frame())
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[pos] ^= 1 << bit
        with pytest.raises(CorruptMessageError):
            frames.decode(bytes(blob))

    def test_truncation_detected(self):
        blob = self._frame()
        with pytest.raises(CorruptMessageError):
            frames.decode(blob[:-3])
        with pytest.raises(CorruptMessageError):
            frames.decode(blob[:4])

    def test_trailing_garbage_detected(self):
        with pytest.raises(CorruptMessageError):
            frames.decode(self._frame() + b"\x00")

    def test_bad_magic_detected(self):
        blob = bytearray(self._frame())
        blob[:4] = b"NOPE"
        with pytest.raises(CorruptMessageError):
            frames.decode(bytes(blob))


class TestWireSelection:
    """The communicator's auto-framing and the explicit wire overrides."""

    def test_send_recv_frames_numeric_payloads(self):
        payload = (np.arange(6, dtype=np.float64), b"blob", 0.5)

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=5)
                return None
            return comm.recv(source=0, tag=5)

        out = run_spmd(prog, 2, trace=True)
        _assert_same(payload, out.results[1])
        # the traced send moved exactly the frame's wire bytes — not a
        # pickle image
        sends = [e for e in out.tracer.events if e.kind == "send"]
        assert sends[0].nbytes == frames.frame_nbytes(payload)

    def test_wire_pickle_forces_legacy_size(self):
        import pickle

        payload = (np.arange(64, dtype=np.float64), b"blob")

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=5, wire="pickle")
                return None
            return comm.recv(source=0, tag=5)

        out = run_spmd(prog, 2, trace=True)
        _assert_same(payload, out.results[1])
        sends = [e for e in out.tracer.events if e.kind == "send"]
        assert sends[0].nbytes == len(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_wire_frames_rejects_unframeable(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"not": "frameable"}, dest=1, tag=5, wire="frames")
            else:
                comm.recv(source=0, tag=5)

        from repro.mpi.errors import SpmdJobError

        with pytest.raises(SpmdJobError) as ei:
            run_spmd(prog, 2)
        assert any(
            isinstance(e, CommError) for e in ei.value.failures.values()
        )

    def test_unframeable_objects_fall_back_to_pickle(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": [1, 2]}, dest=1, tag=5)
                return None
            return comm.recv(source=0, tag=5)

        assert run_spmd(prog, 2).results[1] == {"a": [1, 2]}


class TestFramedFaultRecovery:
    """Corrupt/drop faults on framed p2p messages: CRC detects, the
    ledger retransmits, and the decoded payload is pristine."""

    PAYLOAD_SEED = 7

    def _payload(self):
        rng = np.random.default_rng(self.PAYLOAD_SEED)
        return (rng.random(32), b"header", np.arange(8, dtype=np.int64))

    def _exchange(self, faults):
        payload = self._payload()

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=9)
                return None
            return comm.recv(source=0, tag=9)

        return run_spmd(
            prog, 2, faults=faults
        )

    def test_corrupted_frame_retransmitted(self):
        out = self._exchange("seed=3;retry:timeout=0.05,max=3;corrupt:tag=9,nth=1")
        _assert_same(self._payload(), out.results[1])
        assert out.fault_stats["stats"]["corrupted"] == 1
        assert out.fault_stats["stats"]["retransmitted"] >= 1

    def test_dropped_frame_retransmitted(self):
        out = self._exchange("seed=3;retry:timeout=0.05,max=5;drop:tag=9,nth=1")
        _assert_same(self._payload(), out.results[1])
        assert out.fault_stats["stats"]["dropped"] == 1
