"""Reduction operator unit tests (array and object paths)."""

import numpy as np
import pytest

from repro.mpi.reduceops import (
    ALL_OPS,
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    MINLOC_MAXLOC,
    PROD,
    SUM,
)


def test_registry_complete():
    assert set(ALL_OPS) == {
        "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR",
        "MINLOC", "MAXLOC", "MINLOC_MAXLOC", "MAXLOC_PAYLOAD",
    }


@pytest.mark.parametrize(
    "op,a,b,expect",
    [
        (SUM, 2, 3, 5),
        (PROD, 2, 3, 6),
        (MAX, 2, 3, 3),
        (MIN, 2, 3, 2),
        (LAND, True, False, False),
        (LOR, True, False, True),
        (BAND, 0b110, 0b011, 0b010),
        (BOR, 0b110, 0b011, 0b111),
    ],
)
def test_object_scalars(op, a, b, expect):
    assert op.combine(a, b) == expect


def test_array_elementwise():
    a = np.array([1.0, 5.0, -2.0])
    b = np.array([4.0, 2.0, -3.0])
    assert np.array_equal(SUM.combine_arrays(a, b), a + b)
    assert np.array_equal(MAX.combine_arrays(a, b), np.maximum(a, b))
    assert np.array_equal(MIN.combine_arrays(a, b), np.minimum(a, b))
    assert np.array_equal(PROD.combine_arrays(a, b), a * b)


def test_minloc_maxloc_pairs():
    assert MINLOC.combine((1.0, 3), (2.0, 1)) == (1.0, 3)
    assert MINLOC.combine((1.0, 3), (1.0, 1)) == (1.0, 1)  # tie -> low idx
    assert MAXLOC.combine((1.0, 3), (2.0, 1)) == (2.0, 1)
    assert MAXLOC.combine((2.0, 3), (2.0, 1)) == (2.0, 1)


def test_minloc_maxloc_arrays_packed_pairs():
    a = np.array([[1.0, 3.0], [5.0, 0.0]])  # (value, index) rows
    b = np.array([[1.0, 1.0], [4.0, 2.0]])
    lo = MINLOC.combine_arrays(a, b)
    hi = MAXLOC.combine_arrays(a, b)
    assert np.array_equal(lo, np.array([[1.0, 1.0], [4.0, 2.0]]))
    assert np.array_equal(hi, np.array([[1.0, 1.0], [5.0, 0.0]]))


def test_fused_minloc_maxloc_matches_separate_ops():
    """The fused election combines exactly like MINLOC + MAXLOC + SUM."""
    rng = np.random.default_rng(7)
    bufs = [
        np.array([v_up, i_up, v_low, i_low, s], dtype=np.float64)
        for v_up, v_low, s in rng.normal(size=(9, 3))
        for i_up, i_low in [rng.integers(0, 40, 2)]
    ]
    acc = bufs[0]
    lo, hi, tot = (
        (bufs[0][0], bufs[0][1]),
        (bufs[0][2], bufs[0][3]),
        bufs[0][4],
    )
    for b in bufs[1:]:
        acc = MINLOC_MAXLOC.combine_arrays(acc, b)
        lo = MINLOC.combine(lo, (b[0], b[1]))
        hi = MAXLOC.combine(hi, (b[2], b[3]))
        tot = SUM.combine(tot, b[4])
    assert np.array_equal(acc, np.array([lo[0], lo[1], hi[0], hi[1], tot]))


def test_fused_minloc_maxloc_tie_breaks_to_lowest_index():
    a = np.array([2.0, 9.0, 5.0, 9.0])
    b = np.array([2.0, 4.0, 5.0, 4.0])
    out = MINLOC_MAXLOC.combine_arrays(a, b)
    assert np.array_equal(out, np.array([2.0, 4.0, 5.0, 4.0]))


def test_fused_minloc_maxloc_bare_election_buffer():
    """Length-4 buffers (no SUM tail) are accepted unchanged."""
    a = np.array([1.0, 0.0, 3.0, 1.0])
    b = np.array([0.5, 2.0, 4.0, 3.0])
    out = MINLOC_MAXLOC.combine(a, b)
    assert np.array_equal(out, np.array([0.5, 2.0, 4.0, 3.0]))


def test_ops_associative_commutative_on_ints():
    rng = np.random.default_rng(0)
    xs = rng.integers(-5, 5, 7).tolist()
    for op in (SUM, MAX, MIN):
        left = xs[0]
        for x in xs[1:]:
            left = op.combine(left, x)
        right = xs[-1]
        for x in reversed(xs[:-1]):
            right = op.combine(x, right)
        assert left == right
