"""Reduction operator unit tests (array and object paths)."""

import numpy as np
import pytest

from repro.mpi.reduceops import (
    ALL_OPS,
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
)


def test_registry_complete():
    assert set(ALL_OPS) == {
        "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR",
        "MINLOC", "MAXLOC",
    }


@pytest.mark.parametrize(
    "op,a,b,expect",
    [
        (SUM, 2, 3, 5),
        (PROD, 2, 3, 6),
        (MAX, 2, 3, 3),
        (MIN, 2, 3, 2),
        (LAND, True, False, False),
        (LOR, True, False, True),
        (BAND, 0b110, 0b011, 0b010),
        (BOR, 0b110, 0b011, 0b111),
    ],
)
def test_object_scalars(op, a, b, expect):
    assert op.combine(a, b) == expect


def test_array_elementwise():
    a = np.array([1.0, 5.0, -2.0])
    b = np.array([4.0, 2.0, -3.0])
    assert np.array_equal(SUM.combine_arrays(a, b), a + b)
    assert np.array_equal(MAX.combine_arrays(a, b), np.maximum(a, b))
    assert np.array_equal(MIN.combine_arrays(a, b), np.minimum(a, b))
    assert np.array_equal(PROD.combine_arrays(a, b), a * b)


def test_minloc_maxloc_pairs():
    assert MINLOC.combine((1.0, 3), (2.0, 1)) == (1.0, 3)
    assert MINLOC.combine((1.0, 3), (1.0, 1)) == (1.0, 1)  # tie -> low idx
    assert MAXLOC.combine((1.0, 3), (2.0, 1)) == (2.0, 1)
    assert MAXLOC.combine((2.0, 3), (2.0, 1)) == (2.0, 1)


def test_minloc_maxloc_arrays_packed_pairs():
    a = np.array([[1.0, 3.0], [5.0, 0.0]])  # (value, index) rows
    b = np.array([[1.0, 1.0], [4.0, 2.0]])
    lo = MINLOC.combine_arrays(a, b)
    hi = MAXLOC.combine_arrays(a, b)
    assert np.array_equal(lo, np.array([[1.0, 1.0], [4.0, 2.0]]))
    assert np.array_equal(hi, np.array([[1.0, 1.0], [5.0, 0.0]]))


def test_ops_associative_commutative_on_ints():
    rng = np.random.default_rng(0)
    xs = rng.integers(-5, 5, 7).tolist()
    for op in (SUM, MAX, MIN):
        left = xs[0]
        for x in xs[1:]:
            left = op.combine(left, x)
        right = xs[-1]
        for x in reversed(xs[:-1]):
            right = op.combine(x, right)
        assert left == right
