"""Virtual-time semantics: the modeled costs the figures depend on."""

import math

import numpy as np
import pytest

from repro.mpi import SUM, run_spmd
from repro.mpi.clock import VirtualClock
from repro.perfmodel import MachineSpec

M = MachineSpec.cascade()


def test_clock_advance_and_kinds():
    c = VirtualClock()
    c.advance(1.0, kind="compute")
    c.advance(0.5, kind="comm")
    c.advance(0.25, kind="idle")
    assert c.now == 1.75
    assert c.stats.compute_seconds == 1.0
    assert c.stats.comm_seconds == 0.5
    assert c.stats.idle_seconds == 0.25


def test_clock_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_sync_to_only_moves_forward():
    c = VirtualClock()
    c.advance(2.0)
    c.sync_to(1.0)
    assert c.now == 2.0
    c.sync_to(3.0)
    assert c.now == 3.0


def test_recv_charges_latency_and_bandwidth():
    nbytes = 8 * 1000

    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(1000), dest=1)
        else:
            buf = np.zeros(1000)
            comm.Recv(buf, source=0)
        return comm.vtime

    res = run_spmd(prog, 2, machine=M)
    t_recv = res.results[1]
    expect = M.send_overhead + M.latency + nbytes * M.byte_time
    assert t_recv == pytest.approx(expect, rel=1e-9)


def test_receiver_waits_for_late_sender():
    """Receiver's clock jumps to the sender's departure + wire time."""

    def prog(comm):
        if comm.rank == 0:
            comm.advance(1.0)  # sender is busy for 1 virtual second
            comm.send("x", dest=1)
        else:
            comm.recv(source=0)
        return comm.vtime

    res = run_spmd(prog, 2, machine=M)
    assert res.results[1] >= 1.0  # receiver cannot finish before the send


def test_sender_not_blocked_by_receiver():
    """Eager sends complete locally: sender time is independent of the
    receiver's schedule."""

    def prog(comm):
        if comm.rank == 0:
            comm.send("x", dest=1)
            return comm.vtime
        comm.advance(5.0)
        comm.recv(source=0)
        return comm.vtime

    res = run_spmd(prog, 2, machine=M)
    assert res.results[0] == pytest.approx(M.send_overhead)
    assert res.results[1] >= 5.0


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_allreduce_critical_path_grows_logarithmically(p):
    def prog(comm):
        comm.allreduce(1.0, SUM)
        return comm.vtime

    res = run_spmd(prog, p, machine=M)
    rounds = math.ceil(math.log2(p))
    tmax = max(res.results)
    # at least log2(p) latencies on the critical path; overhead factor
    # bounded by the per-hop payload cost
    assert tmax >= rounds * M.latency
    assert tmax <= (rounds + 2) * 40 * M.latency


def test_virtual_time_deterministic_across_runs():
    def prog(comm):
        for _ in range(5):
            comm.allreduce(comm.rank)
            comm.barrier()
        return comm.vtime

    a = run_spmd(prog, 5, machine=M)
    b = run_spmd(prog, 5, machine=M)
    assert [x for x in a.results] == [x for x in b.results]


def test_ring_time_scales_with_bytes():
    def make(nelem):
        def prog(comm):
            p, r = comm.size, comm.rank
            data = np.zeros(nelem)
            for _ in range(p - 1):
                req = comm.irecv(source=(r - 1) % p, tag=0)
                comm.isend(data, dest=(r + 1) % p, tag=0)
                req.wait()
            return comm.vtime

        return prog

    small = max(run_spmd(make(10), 4, machine=M).results)
    big = max(run_spmd(make(100_000), 4, machine=M).results)
    assert big > small * 10


def test_charge_kernel_evals_matches_machine():
    def prog(comm):
        comm.charge_kernel_evals(1000, avg_nnz=50)
        return comm.vtime

    res = run_spmd(prog, 1, machine=M)
    assert res.results[0] == pytest.approx(M.time_kernel_evals(1000, 50))
