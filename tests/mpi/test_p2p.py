"""Point-to-point semantics: matching, ordering, wildcards, errors."""

import numpy as np
import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    CommError,
    RankError,
    Request,
    SpmdJobError,
    Status,
    TruncationError,
    run_spmd,
)


def spmd(fn, p, **kw):
    return run_spmd(fn, p, **kw)


def test_object_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            comm.send({"a": [1, 2, 3], "b": "x"}, dest=1, tag=5)
            return None
        return comm.recv(source=0, tag=5)

    res = spmd(prog, 2)
    assert res.results[1] == {"a": [1, 2, 3], "b": "x"}


def test_typed_send_recv_roundtrip():
    def prog(comm):
        buf = np.zeros(10)
        if comm.rank == 0:
            comm.Send(np.arange(10.0), dest=1)
        else:
            comm.Recv(buf, source=0)
        return buf

    res = spmd(prog, 2)
    assert np.array_equal(res.results[1], np.arange(10.0))


def test_typed_recv_smaller_message_ok():
    def prog(comm):
        buf = np.full(10, -1.0)
        if comm.rank == 0:
            comm.Send(np.ones(4), dest=1)
        else:
            comm.Recv(buf, source=0)
        return buf

    out = spmd(prog, 2).results[1]
    assert np.array_equal(out[:4], np.ones(4))
    assert np.array_equal(out[4:], np.full(6, -1.0))


def test_truncation_raises():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.ones(10), dest=1)
        else:
            comm.Recv(np.zeros(3), source=0)

    with pytest.raises(SpmdJobError) as ei:
        spmd(prog, 2)
    assert isinstance(ei.value.failures[1], TruncationError)


def test_message_ordering_same_source_tag():
    """Non-overtaking: messages from one source/tag arrive in order."""

    def prog(comm):
        if comm.rank == 0:
            for i in range(20):
                comm.send(i, dest=1, tag=3)
            return None
        return [comm.recv(source=0, tag=3) for _ in range(20)]

    assert spmd(prog, 2).results[1] == list(range(20))


def test_tag_selectivity():
    def prog(comm):
        if comm.rank == 0:
            comm.send("low", dest=1, tag=1)
            comm.send("high", dest=1, tag=2)
            return None
        high = comm.recv(source=0, tag=2)
        low = comm.recv(source=0, tag=1)
        return (high, low)

    assert spmd(prog, 2).results[1] == ("high", "low")


def test_any_source_any_tag():
    def prog(comm):
        if comm.rank == 0:
            got = [comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(2)]
            return sorted(got)
        comm.send(comm.rank * 10, dest=0, tag=comm.rank)
        return None

    assert spmd(prog, 3).results[0] == [10, 20]


def test_status_fields():
    def prog(comm):
        if comm.rank == 0:
            comm.send([1, 2], dest=1, tag=9)
            return None
        st = Status()
        comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st)
        return (st.Get_source(), st.Get_tag(), st.nbytes > 0)

    assert spmd(prog, 2).results[1] == (0, 9, True)


def test_isend_irecv_waitall_ring():
    def prog(comm):
        p, r = comm.size, comm.rank
        right, left = (r + 1) % p, (r - 1) % p
        rreq = comm.irecv(source=left, tag=0)
        sreq = comm.isend(r, dest=right, tag=0)
        got, _ = Request.waitall([rreq, sreq])
        return got

    res = spmd(prog, 5)
    assert res.results == [(r - 1) % 5 for r in range(5)]


def test_irecv_test_polls():
    def prog(comm):
        if comm.rank == 0:
            req = comm.irecv(source=1, tag=0)
            while not req.test():
                pass
            return req.wait()
        comm.send("ping", dest=0, tag=0)
        return None

    assert spmd(prog, 2).results[0] == "ping"


def test_sendrecv_exchange():
    def prog(comm):
        peer = 1 - comm.rank
        return comm.sendrecv(comm.rank, dest=peer, sendtag=0,
                             source=peer, recvtag=0)

    assert spmd(prog, 2).results == [1, 0]


def test_typed_sendrecv_exchange():
    def prog(comm):
        peer = 1 - comm.rank
        out = np.zeros(3)
        comm.Sendrecv(np.full(3, float(comm.rank)), dest=peer,
                      recvbuf=out, source=peer)
        return out

    res = spmd(prog, 2)
    assert np.array_equal(res.results[0], np.ones(3))
    assert np.array_equal(res.results[1], np.zeros(3))


def test_bad_rank_raises():
    def prog(comm):
        comm.send(1, dest=5)

    with pytest.raises(SpmdJobError) as ei:
        spmd(prog, 2)
    assert isinstance(list(ei.value.failures.values())[0], RankError)


def test_bad_tag_raises():
    def prog(comm):
        comm.send(1, dest=0, tag=-7)

    with pytest.raises(SpmdJobError):
        spmd(prog, 2)


def test_object_dtype_rejected_for_typed():
    def prog(comm):
        comm.Send(np.array([object()]), dest=0)

    with pytest.raises(SpmdJobError) as ei:
        spmd(prog, 2)
    assert isinstance(list(ei.value.failures.values())[0], CommError)


def test_probe():
    def prog(comm):
        if comm.rank == 0:
            comm.send(1, dest=1, tag=4)
            return None
        while not comm.probe(source=0, tag=4):
            pass
        assert not comm.probe(source=0, tag=99)
        return comm.recv(source=0, tag=4)

    assert spmd(prog, 2).results[1] == 1


def test_send_buffer_reuse_is_safe():
    """Eager sends snapshot the payload: later writes don't corrupt it."""

    def prog(comm):
        if comm.rank == 0:
            buf = np.arange(5.0)
            comm.Send(buf, dest=1)
            buf[:] = -1.0
            comm.send("done", dest=1, tag=9)
            return None
        out = np.zeros(5)
        comm.recv(source=0, tag=9)
        comm.Recv(out, source=0)
        return out

    assert np.array_equal(spmd(prog, 2).results[1], np.arange(5.0))
