"""Scan, Exscan and Reduce_scatter collectives."""

import numpy as np
import pytest

from repro.mpi import MAX, SUM, run_spmd

PS = [1, 2, 3, 5, 8]


@pytest.mark.parametrize("p", PS)
def test_scan_inclusive_prefix(p):
    def prog(comm):
        return comm.scan(comm.rank + 1, SUM)

    res = run_spmd(prog, p).results
    assert res == [sum(range(1, r + 2)) for r in range(p)]


@pytest.mark.parametrize("p", PS)
def test_scan_max(p):
    vals = [(r * 5) % p for r in range(p)]

    def prog(comm):
        return comm.scan(vals[comm.rank], MAX)

    res = run_spmd(prog, p).results
    assert res == [max(vals[: r + 1]) for r in range(p)]


@pytest.mark.parametrize("p", PS)
def test_exscan_exclusive_prefix(p):
    def prog(comm):
        return comm.exscan(comm.rank + 1, SUM)

    res = run_spmd(prog, p).results
    assert res[0] is None
    for r in range(1, p):
        assert res[r] == sum(range(1, r + 1))


@pytest.mark.parametrize("p", PS)
def test_reduce_scatter_block(p):
    def prog(comm):
        # rank r contributes (r*10 + slot) for each slot
        objs = [comm.rank * 10 + slot for slot in range(comm.size)]
        return comm.reduce_scatter(objs, SUM)

    res = run_spmd(prog, p).results
    for slot in range(p):
        expect = sum(r * 10 + slot for r in range(p))
        assert res[slot] == expect


def test_reduce_scatter_arrays_float_deterministic():
    def prog(comm):
        rng = np.random.default_rng(comm.rank)
        objs = [rng.random(4) for _ in range(comm.size)]
        return comm.reduce_scatter(objs, SUM)

    a = run_spmd(prog, 5).results
    b = run_spmd(prog, 5).results
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_reduce_scatter_wrong_length():
    from repro.mpi import SpmdJobError

    def prog(comm):
        comm.reduce_scatter([1, 2, 3], SUM)  # size is 2

    with pytest.raises(SpmdJobError):
        run_spmd(prog, 2)


def test_scan_interleaves_with_other_collectives():
    def prog(comm):
        a = comm.scan(1, SUM)
        b = comm.allreduce(comm.rank, SUM)
        c = comm.exscan(1, SUM)
        return a, b, c

    p = 4
    for r, (a, b, c) in enumerate(run_spmd(prog, p).results):
        assert a == r + 1
        assert b == p * (p - 1) // 2
        assert c == (None if r == 0 else r)
