"""Buffer-spec resolution and tag validation."""

import numpy as np
import pytest

from repro.mpi.datatypes import (
    ANY_TAG,
    TAG_UB,
    as_array,
    check_tag,
    nbytes_of,
)
from repro.mpi.errors import CommError


class TestAsArray:
    def test_plain_array_is_view(self):
        a = np.arange(6.0)
        v = as_array(a)
        v[0] = 99.0
        assert a[0] == 99.0  # aliasing: receives fill caller memory

    def test_2d_flattened(self):
        a = np.ones((2, 3))
        assert as_array(a).shape == (6,)

    def test_tuple_with_count(self):
        a = np.arange(10.0)
        v = as_array((a, 4))
        assert v.shape == (4,)
        assert np.array_equal(v, a[:4])

    def test_single_item_tuple(self):
        a = np.arange(3)
        assert as_array((a,)).shape == (3,)

    def test_count_out_of_range(self):
        a = np.arange(3.0)
        with pytest.raises(CommError):
            as_array((a, 7))
        with pytest.raises(CommError):
            as_array((a, -1))

    def test_too_many_spec_items(self):
        with pytest.raises(CommError):
            as_array((np.ones(2), 1, None, None))

    def test_object_dtype_rejected(self):
        with pytest.raises(CommError):
            as_array(np.array([{}, {}]))

    def test_non_contiguous_rejected(self):
        a = np.ones((4, 4))[:, ::2]
        with pytest.raises(CommError):
            as_array(a)

    def test_list_input_coerced(self):
        v = as_array(np.asarray([1.0, 2.0]))
        assert v.dtype == np.float64


class TestTags:
    def test_valid_range(self):
        assert check_tag(0) == 0
        assert check_tag(TAG_UB) == TAG_UB

    def test_negative_rejected(self):
        with pytest.raises(CommError):
            check_tag(-3)

    def test_above_ub_rejected(self):
        with pytest.raises(CommError):
            check_tag(TAG_UB + 1)

    def test_any_tag_only_on_receive(self):
        assert check_tag(ANY_TAG, allow_any=True) == ANY_TAG
        with pytest.raises(CommError):
            check_tag(ANY_TAG)


def test_nbytes_of():
    assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80
    assert nbytes_of(np.zeros(10, dtype=np.int32)) == 40
