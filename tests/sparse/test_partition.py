"""Block partition invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import BlockPartition, CSRMatrix, split_rows


def test_basic_counts():
    part = BlockPartition(10, 3)
    assert part.counts().tolist() == [4, 3, 3]
    assert part.displs().tolist() == [0, 4, 7]
    assert part.bounds(1) == (4, 7)


def test_exact_division():
    part = BlockPartition(8, 4)
    assert part.counts().tolist() == [2, 2, 2, 2]


def test_more_parts_than_items():
    part = BlockPartition(2, 5)
    assert part.counts().tolist() == [1, 1, 0, 0, 0]
    assert part.owner(0) == 0
    assert part.owner(1) == 1


def test_empty():
    part = BlockPartition(0, 3)
    assert part.counts().sum() == 0


def test_invalid_args():
    with pytest.raises(ValueError):
        BlockPartition(5, 0)
    with pytest.raises(ValueError):
        BlockPartition(-1, 2)


def test_owner_out_of_range():
    part = BlockPartition(5, 2)
    with pytest.raises(IndexError):
        part.owner(5)
    with pytest.raises(IndexError):
        part.owner(-1)


def test_rank_out_of_range():
    part = BlockPartition(5, 2)
    with pytest.raises(IndexError):
        part.count(2)
    with pytest.raises(IndexError):
        part.to_global(0, 3)


@settings(max_examples=80, deadline=None)
@given(n=st.integers(0, 500), p=st.integers(1, 40))
def test_partition_is_exact_cover(n, p):
    part = BlockPartition(n, p)
    assert part.counts().sum() == n
    # contiguous, ordered, disjoint
    pos = 0
    for r in range(p):
        lo, hi = part.bounds(r)
        assert lo == pos
        pos = hi
    assert pos == n
    # owner/local/global consistency
    for g in range(0, n, max(1, n // 17)):
        r = part.owner(g)
        lo, hi = part.bounds(r)
        assert lo <= g < hi
        assert part.to_global(r, part.to_local(g)) == g


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 60), p=st.integers(1, 8), seed=st.integers(0, 99))
def test_split_rows_reassembles(n, p, seed):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n, 4)) * (rng.random((n, 4)) < 0.6)
    X = CSRMatrix.from_dense(dense)
    blocks = split_rows(X, BlockPartition(n, p))
    assert np.array_equal(CSRMatrix.vstack(blocks).to_dense(), dense)


def test_split_rows_size_mismatch():
    X = CSRMatrix.from_dense(np.ones((3, 2)))
    with pytest.raises(ValueError):
        split_rows(X, BlockPartition(4, 2))
