"""libsvm format I/O tests."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    FormatError,
    dumps_libsvm,
    load_libsvm,
    loads_libsvm,
    save_libsvm,
)


def test_parse_basic():
    text = "+1 1:0.5 3:2\n-1 2:1.5\n"
    X, y = loads_libsvm(text)
    assert y.tolist() == [1.0, -1.0]
    assert np.array_equal(
        X.to_dense(), np.array([[0.5, 0.0, 2.0], [0.0, 1.5, 0.0]])
    )


def test_parse_comments_and_blanks():
    text = "# header\n\n1 1:1 # trailing\n\n-1 2:2\n"
    X, y = loads_libsvm(text)
    assert X.shape[0] == 2


def test_parse_unsorted_indices():
    X, y = loads_libsvm("1 3:3 1:1\n")
    i, v = X.row(0)
    assert i.tolist() == [0, 2]
    assert v.tolist() == [1.0, 3.0]


def test_parse_duplicate_index_rejected():
    with pytest.raises(FormatError):
        loads_libsvm("1 2:1 2:2\n")


def test_parse_bad_label():
    with pytest.raises(FormatError):
        loads_libsvm("abc 1:1\n")


def test_parse_bad_token():
    with pytest.raises(FormatError):
        loads_libsvm("1 1:1 junk\n")
    with pytest.raises(FormatError):
        loads_libsvm("1 1:xyz\n")


def test_parse_zero_index_rejected():
    with pytest.raises(FormatError):
        loads_libsvm("1 0:1\n")


def test_n_features_override_and_check():
    X, _ = loads_libsvm("1 2:1\n", n_features=10)
    assert X.shape == (1, 10)
    with pytest.raises(FormatError):
        loads_libsvm("1 12:1\n", n_features=10)


def test_roundtrip():
    rng = np.random.default_rng(0)
    dense = rng.normal(size=(6, 5)) * (rng.random((6, 5)) < 0.5)
    X = CSRMatrix.from_dense(dense)
    y = np.where(rng.random(6) > 0.5, 1.0, -1.0)
    X2, y2 = loads_libsvm(dumps_libsvm(X, y), n_features=5)
    assert np.allclose(X2.to_dense(), dense)
    assert np.array_equal(y, y2)


def test_roundtrip_float_labels():
    X = CSRMatrix.from_dense(np.array([[1.0]]))
    y = np.array([0.75])
    X2, y2 = loads_libsvm(dumps_libsvm(X, y))
    assert y2[0] == 0.75


def test_dumps_label_count_mismatch():
    X = CSRMatrix.from_dense(np.ones((2, 2)))
    with pytest.raises(FormatError):
        dumps_libsvm(X, np.ones(3))


def test_file_roundtrip(tmp_path):
    X = CSRMatrix.from_dense(np.array([[0.0, 1.25], [3.5, 0.0]]))
    y = np.array([1.0, -1.0])
    path = tmp_path / "data.libsvm"
    save_libsvm(path, X, y)
    X2, y2 = load_libsvm(path, n_features=2)
    assert np.allclose(X2.to_dense(), X.to_dense())
    assert np.array_equal(y, y2)


def test_empty_text():
    X, y = loads_libsvm("", n_features=3)
    assert X.shape == (0, 3)
    assert y.size == 0
