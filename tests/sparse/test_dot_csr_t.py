"""The tiled CSR×CSRᵀ product and zero-copy row slices.

``dot_csr_t`` is the substrate of the blocked kernel-evaluation engine;
its contract is stronger than numerical agreement: every column must be
*bitwise* identical to the row-at-a-time ``dot_sparse_vec`` path, for
any tiling, so the solvers can batch without perturbing their
deterministic iteration sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import CSRMatrix
from repro.sparse.csr import CSRError


def dense_matrices(max_n=12, max_d=8):
    return st.integers(1, max_n).flatmap(
        lambda n: st.integers(1, max_d).flatmap(
            lambda d: arrays(
                np.float64,
                (n, d),
                elements=st.floats(-100, 100, allow_nan=False).map(
                    lambda x: 0.0 if abs(x) < 30 else x  # force sparsity
                ),
            )
        )
    )


def rowwise_reference(A: CSRMatrix, B: CSRMatrix) -> np.ndarray:
    """A @ Bᵀ column-by-column through the pre-existing row path."""
    out = np.empty((A.shape[0], B.shape[0]))
    for j in range(B.shape[0]):
        bi, bv = B.row(j)
        out[:, j] = A.dot_sparse_vec(bi, bv)
    return out


@settings(max_examples=60, deadline=None)
@given(da=dense_matrices(), db=dense_matrices())
def test_matches_dense_product(da, db):
    d = min(da.shape[1], db.shape[1])
    A = CSRMatrix.from_dense(da[:, :d])
    B = CSRMatrix.from_dense(db[:, :d])
    assert np.allclose(A.dot_csr_t(B), da[:, :d] @ db[:, :d].T, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(da=dense_matrices(), db=dense_matrices(), tile=st.integers(1, 15))
def test_bitwise_equals_rowwise_for_any_tiling(da, db, tile):
    """The load-bearing property: tiled SpGEMM == per-row products, in bits."""
    d = min(da.shape[1], db.shape[1])
    A = CSRMatrix.from_dense(da[:, :d])
    B = CSRMatrix.from_dense(db[:, :d])
    out = A.dot_csr_t(B, tile_rows=tile)
    assert np.array_equal(out, rowwise_reference(A, B))


@settings(max_examples=40, deadline=None)
@given(da=dense_matrices())
def test_gram_matrix_symmetric_dots(da):
    A = CSRMatrix.from_dense(da)
    G = A.dot_csr_t(A)
    assert np.allclose(G, G.T, atol=1e-9)


def test_empty_rows_and_empty_matrices():
    d = 5
    A = CSRMatrix.from_dense(
        np.array([[0.0, 0, 0, 0, 0], [1, 0, 2, 0, 0], [0, 0, 0, 0, 0]])
    )
    B = CSRMatrix.from_dense(np.array([[0.0, 0, 0, 0, 0], [3, 0, 0, 0, 4]]))
    out = A.dot_csr_t(B)
    assert np.array_equal(out, rowwise_reference(A, B))
    assert out[0, 0] == 0.0 and out[2, 1] == 0.0 and out[1, 1] == 3.0

    empty = CSRMatrix.empty(d)
    assert A.dot_csr_t(empty).shape == (3, 0)
    assert empty.dot_csr_t(A).shape == (0, 3)
    assert np.array_equal(empty.dot_csr_t(empty), np.zeros((0, 0)))

    all_zero = CSRMatrix.from_dense(np.zeros((4, d)))
    assert np.array_equal(all_zero.dot_csr_t(B), np.zeros((4, 2)))
    assert np.array_equal(B.dot_csr_t(all_zero), np.zeros((2, 4)))


def test_single_tile_vs_many_tiles_identical():
    rng = np.random.default_rng(0)
    dense = rng.normal(size=(23, 7)) * (rng.random((23, 7)) < 0.4)
    A = CSRMatrix.from_dense(dense)
    one = A.dot_csr_t(A, tile_rows=1000)  # everything in one tile
    for tile in (1, 2, 3, 8, 23):
        assert np.array_equal(A.dot_csr_t(A, tile_rows=tile), one)


def test_validation():
    A = CSRMatrix.from_dense(np.ones((2, 3)))
    B = CSRMatrix.from_dense(np.ones((2, 4)))
    with pytest.raises(CSRError):
        A.dot_csr_t(B)
    with pytest.raises(ValueError):
        A.dot_csr_t(A, tile_rows=0)


# ----------------------------------------------------------------------
# row_slice
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(dense=dense_matrices(), lo=st.integers(0, 12), hi=st.integers(0, 12))
def test_row_slice_matches_take_rows(dense, lo, hi):
    X = CSRMatrix.from_dense(dense)
    lo = lo % (dense.shape[0] + 1)
    hi = lo + hi % (dense.shape[0] - lo + 1)
    view = X.row_slice(lo, hi)
    assert view.allclose(X.take_rows(np.arange(lo, hi)))


def test_row_slice_is_zero_copy():
    rng = np.random.default_rng(1)
    dense = rng.normal(size=(10, 6)) * (rng.random((10, 6)) < 0.5)
    X = CSRMatrix.from_dense(dense)
    view = X.row_slice(2, 8)
    assert np.shares_memory(view.data, X.data)
    assert np.shares_memory(view.indices, X.indices)
    assert view.shape == (6, 6)
    assert np.array_equal(view.to_dense(), dense[2:8])


def test_row_slice_bounds():
    X = CSRMatrix.from_dense(np.ones((4, 2)))
    assert X.row_slice(0, 0).shape == (0, 2)
    assert X.row_slice(4, 4).shape == (0, 2)
    with pytest.raises(IndexError):
        X.row_slice(-1, 2)
    with pytest.raises(IndexError):
        X.row_slice(0, 5)
    with pytest.raises(IndexError):
        X.row_slice(3, 2)
