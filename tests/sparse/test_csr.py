"""CSR matrix unit tests against dense references."""

import numpy as np
import pytest

from repro.sparse import CSRError, CSRMatrix, sparse_sparse_dot


def rand_dense(n, d, density=0.4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)) * (rng.random((n, d)) < density)


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = rand_dense(7, 5)
        X = CSRMatrix.from_dense(dense)
        assert np.array_equal(X.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(CSRError):
            CSRMatrix.from_dense(np.ones(5))

    def test_from_rows(self):
        rows = [
            (np.array([0, 3]), np.array([1.0, 2.0])),
            (np.array([], dtype=int), np.array([])),
            (np.array([1]), np.array([-1.0])),
        ]
        X = CSRMatrix.from_rows(rows, ncols=4)
        expect = np.array([[1, 0, 0, 2], [0, 0, 0, 0], [0, -1, 0, 0.0]])
        assert np.array_equal(X.to_dense(), expect)

    def test_from_rows_length_mismatch(self):
        with pytest.raises(CSRError):
            CSRMatrix.from_rows([(np.array([0, 1]), np.array([1.0]))], 4)

    def test_empty(self):
        X = CSRMatrix.empty(4)
        assert X.shape == (0, 4)
        assert X.nnz == 0

    def test_validation_bad_indptr(self):
        with pytest.raises(CSRError):
            CSRMatrix(
                np.ones(2), np.array([0, 1]), np.array([0, 2, 1]), (2, 2)
            )

    def test_validation_index_out_of_range(self):
        with pytest.raises(CSRError):
            CSRMatrix(np.ones(1), np.array([5]), np.array([0, 1]), (1, 3))

    def test_validation_nnz_mismatch(self):
        with pytest.raises(CSRError):
            CSRMatrix(np.ones(3), np.array([0, 1]), np.array([0, 2]), (1, 3))

    def test_vstack(self):
        a = rand_dense(3, 4, seed=1)
        b = rand_dense(2, 4, seed=2)
        X = CSRMatrix.vstack([CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)])
        assert np.array_equal(X.to_dense(), np.vstack([a, b]))

    def test_vstack_rejects_mismatched_cols(self):
        with pytest.raises(CSRError):
            CSRMatrix.vstack(
                [CSRMatrix.empty(3), CSRMatrix.empty(4)]
            )

    def test_vstack_empty_list(self):
        with pytest.raises(CSRError):
            CSRMatrix.vstack([])


class TestProperties:
    def test_nnz_density(self):
        X = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        assert X.nnz == 2
        assert X.density == 0.5
        assert X.avg_row_nnz == 1.0

    def test_nbytes_positive(self):
        X = CSRMatrix.from_dense(rand_dense(4, 4))
        assert X.nbytes() > 0

    def test_row_view(self):
        dense = np.array([[0.0, 3.0, 0.0, 4.0]])
        X = CSRMatrix.from_dense(dense)
        idx, vals = X.row(0)
        assert idx.tolist() == [1, 3]
        assert vals.tolist() == [3.0, 4.0]

    def test_row_out_of_range(self):
        X = CSRMatrix.from_dense(rand_dense(2, 2))
        with pytest.raises(IndexError):
            X.row(5)

    def test_row_nnz(self):
        X = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 0.0]]))
        assert X.row_nnz(0) == 2
        assert X.row_nnz(1) == 0


class TestNumeric:
    @pytest.mark.parametrize("seed", range(5))
    def test_dot_dense_vec(self, seed):
        dense = rand_dense(9, 6, seed=seed)
        X = CSRMatrix.from_dense(dense)
        v = np.random.default_rng(seed + 100).normal(size=6)
        assert np.allclose(X.dot_dense_vec(v), dense @ v)

    def test_dot_dense_vec_shape_check(self):
        X = CSRMatrix.from_dense(rand_dense(3, 4))
        with pytest.raises(CSRError):
            X.dot_dense_vec(np.ones(5))

    def test_dot_sparse_vec(self):
        dense = rand_dense(6, 5, seed=3)
        X = CSRMatrix.from_dense(dense)
        i, v = X.row(2)
        assert np.allclose(X.dot_sparse_vec(i, v), dense @ dense[2])

    def test_row_norms_sq(self):
        dense = rand_dense(8, 4, seed=4)
        X = CSRMatrix.from_dense(dense)
        assert np.allclose(X.row_norms_sq(), (dense**2).sum(axis=1))

    def test_row_norms_with_empty_rows(self):
        dense = np.array([[0.0, 0.0], [1.0, 2.0], [0.0, 0.0]])
        X = CSRMatrix.from_dense(dense)
        assert np.allclose(X.row_norms_sq(), [0.0, 5.0, 0.0])

    def test_dot_rows(self):
        dense = rand_dense(5, 5, seed=5)
        X = CSRMatrix.from_dense(dense)
        for i in range(5):
            for j in range(5):
                assert np.isclose(X.dot_rows(i, j), dense[i] @ dense[j])

    def test_matmul_dense(self):
        dense = rand_dense(5, 4, seed=6)
        X = CSRMatrix.from_dense(dense)
        D = np.random.default_rng(1).normal(size=(4, 3))
        assert np.allclose(X.matmul_dense(D), dense @ D)

    def test_partition_invariant_row_results(self):
        """The reduceat summation makes per-row results independent of
        which block the row lives in — the determinism keystone."""
        dense = rand_dense(20, 8, seed=7)
        X = CSRMatrix.from_dense(dense)
        v = np.random.default_rng(2).normal(size=8)
        whole = X.dot_dense_vec(v)
        for split in (3, 7, 13):
            top = X.take_rows(np.arange(split))
            bottom = X.take_rows(np.arange(split, 20))
            again = np.concatenate(
                [top.dot_dense_vec(v), bottom.dot_dense_vec(v)]
            )
            assert np.array_equal(whole, again)  # bitwise!


class TestGather:
    def test_take_rows_order(self):
        dense = rand_dense(6, 3, seed=8)
        X = CSRMatrix.from_dense(dense)
        rows = np.array([4, 0, 4, 2])
        assert np.array_equal(X.take_rows(rows).to_dense(), dense[rows])

    def test_take_rows_empty(self):
        X = CSRMatrix.from_dense(rand_dense(3, 3))
        sub = X.take_rows(np.array([], dtype=np.int64))
        assert sub.shape == (0, 3)

    def test_take_rows_out_of_range(self):
        X = CSRMatrix.from_dense(rand_dense(3, 3))
        with pytest.raises(IndexError):
            X.take_rows(np.array([7]))

    def test_take_rows_with_empty_rows(self):
        dense = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0], [0.0, 2.0]])
        X = CSRMatrix.from_dense(dense)
        rows = np.array([0, 2, 1, 3])
        assert np.array_equal(X.take_rows(rows).to_dense(), dense[rows])


class TestSerialization:
    def test_roundtrip(self):
        X = CSRMatrix.from_dense(rand_dense(7, 9, seed=9))
        Y = CSRMatrix.from_bytes(X.to_bytes())
        assert Y.allclose(X)
        assert Y.shape == X.shape

    def test_roundtrip_empty(self):
        X = CSRMatrix.empty(5)
        Y = CSRMatrix.from_bytes(X.to_bytes())
        assert Y.shape == (0, 5)

    def test_truncated_blob_rejected(self):
        X = CSRMatrix.from_dense(rand_dense(3, 3))
        blob = X.to_bytes()
        with pytest.raises(CSRError):
            CSRMatrix.from_bytes(blob[:10])
        with pytest.raises(CSRError):
            CSRMatrix.from_bytes(blob[:-8])

    def test_bad_magic_rejected(self):
        X = CSRMatrix.from_dense(rand_dense(2, 2))
        blob = b"XXXX" + X.to_bytes()[4:]
        with pytest.raises(CSRError):
            CSRMatrix.from_bytes(blob)


class TestSparseSparseDot:
    def test_matches_dense(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            a = rng.normal(size=10) * (rng.random(10) < 0.5)
            b = rng.normal(size=10) * (rng.random(10) < 0.5)
            ai = np.flatnonzero(a)
            bi = np.flatnonzero(b)
            got = sparse_sparse_dot(ai, a[ai], bi, b[bi])
            assert np.isclose(got, a @ b)

    def test_empty_operands(self):
        e = np.array([], dtype=np.int64)
        ev = np.array([])
        assert sparse_sparse_dot(e, ev, e, ev) == 0.0
        assert sparse_sparse_dot(np.array([1]), np.array([2.0]), e, ev) == 0.0


class TestTranspose:
    def test_matches_dense_transpose(self):
        dense = rand_dense(7, 5, seed=31)
        X = CSRMatrix.from_dense(dense)
        assert np.array_equal(X.transpose().to_dense(), dense.T)

    def test_double_transpose_identity(self):
        dense = rand_dense(6, 9, seed=32)
        X = CSRMatrix.from_dense(dense)
        assert np.array_equal(
            X.transpose().transpose().to_dense(), dense
        )

    def test_empty_matrix(self):
        X = CSRMatrix.empty(4)
        T = X.transpose()
        assert T.shape == (4, 0)
        assert T.nnz == 0

    def test_empty_rows_and_cols(self):
        dense = np.zeros((3, 4))
        dense[1, 2] = 5.0
        X = CSRMatrix.from_dense(dense)
        assert np.array_equal(X.transpose().to_dense(), dense.T)

    def test_col_nnz(self):
        dense = np.array([[1.0, 0.0, 2.0], [3.0, 0.0, 0.0]])
        X = CSRMatrix.from_dense(dense)
        assert X.col_nnz().tolist() == [2, 0, 1]
