"""Hypothesis properties for the CSR substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import CSRMatrix


def dense_matrices(max_n=12, max_d=8):
    return st.integers(1, max_n).flatmap(
        lambda n: st.integers(1, max_d).flatmap(
            lambda d: arrays(
                np.float64,
                (n, d),
                elements=st.floats(-100, 100, allow_nan=False).map(
                    lambda x: 0.0 if abs(x) < 30 else x  # force sparsity
                ),
            )
        )
    )


@settings(max_examples=60, deadline=None)
@given(dense=dense_matrices())
def test_dense_roundtrip(dense):
    X = CSRMatrix.from_dense(dense)
    assert np.array_equal(X.to_dense(), dense)


@settings(max_examples=60, deadline=None)
@given(dense=dense_matrices())
def test_serialization_roundtrip(dense):
    X = CSRMatrix.from_dense(dense)
    Y = CSRMatrix.from_bytes(X.to_bytes())
    assert np.array_equal(Y.to_dense(), dense)


@settings(max_examples=60, deadline=None)
@given(dense=dense_matrices(), seed=st.integers(0, 2**16))
def test_matvec_matches_dense(dense, seed):
    X = CSRMatrix.from_dense(dense)
    v = np.random.default_rng(seed).normal(size=dense.shape[1])
    assert np.allclose(X.dot_dense_vec(v), dense @ v, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(dense=dense_matrices(), seed=st.integers(0, 2**16))
def test_take_rows_matches_fancy_indexing(dense, seed):
    X = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, dense.shape[0], size=rng.integers(0, 15))
    assert np.array_equal(X.take_rows(rows).to_dense(), dense[rows])


@settings(max_examples=40, deadline=None)
@given(dense=dense_matrices(), split=st.integers(0, 12))
def test_vstack_inverts_split(dense, split):
    split = split % (dense.shape[0] + 1)
    X = CSRMatrix.from_dense(dense)
    top = X.take_rows(np.arange(split))
    bottom = X.take_rows(np.arange(split, dense.shape[0]))
    again = CSRMatrix.vstack([top, bottom])
    assert np.array_equal(again.to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(dense=dense_matrices())
def test_norms_nonnegative_and_exact(dense):
    X = CSRMatrix.from_dense(dense)
    norms = X.row_norms_sq()
    assert np.all(norms >= 0)
    assert np.allclose(norms, (dense**2).sum(axis=1))
