"""Collective cost formulas."""

import pytest

from repro.perfmodel import MachineSpec, costs

M = MachineSpec.cascade()


def test_log2ceil():
    assert costs.log2ceil(1) == 0
    assert costs.log2ceil(2) == 1
    assert costs.log2ceil(3) == 2
    assert costs.log2ceil(1024) == 10
    with pytest.raises(ValueError):
        costs.log2ceil(0)


def test_bcast_logarithmic():
    t16 = costs.bcast_time(M, 100, 16)
    t256 = costs.bcast_time(M, 100, 256)
    assert t256 == pytest.approx(2 * t16)  # log 256 = 2 log 16


def test_allreduce_single_rank_free():
    assert costs.allreduce_time(M, 8, 1) == 0.0


def test_ring_linear_in_p():
    t4 = costs.ring_exchange_time(M, 1000, 4)
    t8 = costs.ring_exchange_time(M, 1000, 8)
    assert t8 == pytest.approx(t4 * 7 / 3)


def test_ring_single_rank_free():
    assert costs.ring_exchange_time(M, 1000, 1) == 0.0


def test_barrier_only_latency():
    assert costs.barrier_time(M, 8) == pytest.approx(3 * M.latency)


def test_sample_bytes_grows_with_nnz():
    assert costs.sample_bytes(100) > costs.sample_bytes(10)
    assert costs.sample_bytes(0) > 0  # framing floor


def test_big_messages_bandwidth_bound():
    small = costs.p2p_time(M, 8)
    big = costs.p2p_time(M, 10**8)
    assert big > 100 * small
    assert big == pytest.approx(10**8 * M.byte_time, rel=0.01)


def test_wss2_election_adds_one_allreduce():
    from repro.perfmodel import costs
    from repro.perfmodel.machine import MachineSpec

    m = MachineSpec.cascade()
    for p in (1, 2, 8, 64):
        base = costs.election_time(m, p)
        wss2 = costs.wss2_election_time(m, p)
        extra = costs.allreduce_time(m, costs.WSS2_PHASE_BYTES, p)
        assert wss2 == pytest.approx(base + extra)
        assert costs.wss2_election_messages(m, p) == (
            costs.allreduce_messages(p)
        )
    # single rank: collectives are free
    assert costs.wss2_election_time(m, 1) == costs.election_time(m, 1)
