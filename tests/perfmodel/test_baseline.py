"""libsvm baseline time model."""

import pytest

from repro.core import SVMParams, solve_libsvm_style
from repro.kernels import RBFKernel
from repro.perfmodel import MachineSpec, baseline_time
from repro.perfmodel.baseline import paper_scale_baseline

from ..conftest import make_blobs

M = MachineSpec.cascade()


def fit_counters():
    X, y = make_blobs(n=100, sep=2.0, noise=1.1, seed=21)
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5))
    return solve_libsvm_style(X, y, params), X


def test_more_cores_faster():
    res, X = fit_counters()
    t1 = baseline_time(res, X.shape[0], X.avg_row_nnz, M, ncores=1)
    t16 = baseline_time(res, X.shape[0], X.avg_row_nnz, M, ncores=16)
    assert t16.total < t1.total
    assert t16.kernel_time == pytest.approx(t1.kernel_time / 16)
    assert t16.serial_time == t1.serial_time  # Amdahl: serial part fixed


def test_invalid_cores():
    res, X = fit_counters()
    with pytest.raises(ValueError):
        baseline_time(res, X.shape[0], 3.0, M, ncores=0)
    with pytest.raises(ValueError):
        paper_scale_baseline(100, 100, 3.0, M, ncores=0)


class TestPaperScale:
    def test_cache_collapse_on_huge_n(self):
        """The §III-A argument: for HIGGS-sized N the node-memory cache
        holds a vanishing fraction of rows, so kernel cost dominates."""
        small = paper_scale_baseline(21_000, 60_000, 150, M, ncores=16)
        huge = paper_scale_baseline(34e6, 2_600_000, 28, M, ncores=16)
        # HIGGS baseline must be catastrophically slower (paper: > 2 days)
        assert huge.total > 2 * 24 * 3600
        assert small.total < 3600

    def test_cold_miss_floor(self):
        """Even a fully covering cache computes each row once."""
        bt = paper_scale_baseline(
            1e6, 1000, 50, M, ncores=1, cache_bytes=1e18
        )
        floor = M.time_kernel_evals(1000 * 1000, 50)
        assert bt.kernel_time >= floor * 0.99

    def test_scales_with_iterations(self):
        a = paper_scale_baseline(1e5, 100_000, 50, M)
        b = paper_scale_baseline(2e5, 100_000, 50, M)
        assert b.total > a.total

    def test_str_renders(self):
        bt = paper_scale_baseline(1e4, 10_000, 20, M)
        assert "cores" in str(bt)
