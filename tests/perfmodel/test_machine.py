"""Machine model sanity."""

import pytest

from repro.perfmodel import MachineSpec


def test_cascade_defaults():
    m = MachineSpec.cascade()
    assert m.cores_per_node == 16
    assert 0 < m.latency < 1e-4
    assert 0 < m.byte_time < 1e-8
    assert m.flop_rate > 1e9
    assert m.mem_per_node > 2**30


def test_p2p_time_monotone_in_bytes():
    m = MachineSpec.cascade()
    assert m.p2p_time(0) == m.latency
    assert m.p2p_time(10**6) > m.p2p_time(10**3)


def test_kernel_eval_time_scales_with_nnz():
    m = MachineSpec.cascade()
    assert m.time_kernel_evals(100, 200) > m.time_kernel_evals(100, 10)
    assert m.time_kernel_evals(200, 50) == pytest.approx(
        2 * m.time_kernel_evals(100, 50)
    )


def test_lambda_positive():
    assert MachineSpec.cascade().kernel_eval_time > 0


def test_python_host_variants():
    default = MachineSpec.python_host(calibrate=False)
    assert default.name == "python-host"
    calibrated = MachineSpec.python_host(calibrate=True)
    assert calibrated.flop_rate > 1e6  # any real machine beats a MFLOP


def test_frozen():
    m = MachineSpec.cascade()
    with pytest.raises(Exception):
        m.latency = 0.0
