"""Streaming cost shapes: the γ-seed slab and the refresh projection."""

from __future__ import annotations

import pytest

from repro.config import RunConfig
from repro.perfmodel import MachineSpec, costs, project_stream
from repro.stream import IncrementalSVC

from ..conftest import make_blobs


@pytest.fixture(scope="module")
def traces():
    """A real warm/cold trace pair off a two-batch incremental run."""
    from repro.core.solver import fit_parallel

    clf = IncrementalSVC(C=5.0, gamma=0.5, config=RunConfig(nprocs=2))
    clf.partial_fit(*make_blobs(n=32, seed=0))
    clf.partial_fit(*make_blobs(n=16, seed=1))
    cold = fit_parallel(
        clf.X_, clf.y_, clf._params(), config=RunConfig(nprocs=2)
    )
    return clf, cold


def test_stream_seed_time_scales():
    m = MachineSpec.cascade()
    t1 = costs.stream_seed_time(m, 64, 100, 3.0, 1)
    t2 = costs.stream_seed_time(m, 128, 100, 3.0, 1)
    assert 0 < t1 < t2  # more appended rows, more slab
    # parallel seeding splits the slab but pays an allgather
    t_par = costs.stream_seed_time(m, 128, 100, 3.0, 8)
    assert t_par < t2
    assert costs.stream_seed_time(m, 128, 200, 3.0, 1) > t2  # more SVs


def test_project_stream_fields(traces):
    clf, cold = traces
    m = MachineSpec.multinode()
    proj = project_stream(
        clf.fit_result_.trace,
        cold.trace,
        m,
        16,
        n_new=16,
        n_sv=clf.model_.n_sv,
        avg_nnz=clf.X_.avg_row_nnz,
    )
    assert proj.p == 16
    assert proj.seed_time > 0 and proj.reshard_time > 0
    assert proj.warm_total == pytest.approx(proj.seed_time + proj.refit_time)
    assert proj.time_to_refresh == pytest.approx(
        proj.warm_total + proj.reshard_time
    )
    assert proj.speedup == pytest.approx(proj.cold_time / proj.warm_total)


def test_project_stream_empty_batch_has_no_seed(traces):
    clf, cold = traces
    m = MachineSpec.cascade()
    proj = project_stream(
        clf.fit_result_.trace, cold.trace, m, 4,
        n_new=0, n_sv=clf.model_.n_sv, avg_nnz=2.0,
    )
    assert proj.seed_time == 0.0


def test_project_stream_validation(traces):
    clf, cold = traces
    m = MachineSpec.cascade()
    with pytest.raises(ValueError, match=">= 0"):
        project_stream(
            clf.fit_result_.trace, cold.trace, m, 4,
            n_new=-1, n_sv=3, avg_nnz=2.0,
        )
