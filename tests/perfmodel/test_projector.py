"""Trace-driven projection: consistency with the runtime's virtual time."""

import numpy as np
import pytest

from repro.core import SVMParams, fit_parallel
from repro.kernels import RBFKernel
from repro.perfmodel import (
    MachineSpec,
    parallel_efficiency,
    project,
    project_series,
    speedup_vs,
)

from ..conftest import make_blobs

M = MachineSpec.cascade()
PARAMS = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)


@pytest.fixture(scope="module")
def traced_fit():
    """A trace that actually shrinks: threshold placed mid-run, where
    the bounds are tight enough for Eq. (9) to fire."""
    from repro.core.shrinking import Heuristic

    X, y = make_blobs(n=200, d=5, sep=1.2, noise=1.3, seed=23)
    mid = Heuristic("mid", "random", 100, "multi", "average")
    fr = fit_parallel(X, y, PARAMS, heuristic=mid, nprocs=1, machine=M)
    assert fr.trace.total_shrunk() > 0  # fixture precondition
    return fr


def test_projection_positive_and_decomposed(traced_fit):
    t = project(traced_fit.trace, M, 8)
    assert t.total > 0
    assert t.total == pytest.approx(
        t.iter_compute + t.iter_comm + t.recon_compute + t.recon_comm
    )
    assert 0 <= t.recon_fraction <= 1
    assert 0 <= t.comm_fraction <= 1


def test_projection_close_to_simulated_vtime(traced_fit):
    """At the run's own p, the analytic model should land near the
    runtime's emergent virtual time (same cost constants)."""
    t = project(traced_fit.trace, M, 1)
    vtime = traced_fit.vtime
    assert t.total == pytest.approx(vtime, rel=0.5)


def test_compute_shrinks_with_p(traced_fit):
    t1 = project(traced_fit.trace, M, 1)
    t64 = project(traced_fit.trace, M, 64)
    assert t64.iter_compute < t1.iter_compute
    assert t64.iter_comm > t1.iter_comm  # log p factors


def test_recon_fraction_decreases_with_scale(traced_fit):
    """Figure 8's trend, at paper-like problem scales (the paper's four
    large datasets have N and iteration counts far above the miniature)."""
    fr = [
        project(
            traced_fit.trace, M, p, n_scale=500, iteration_scale=500
        ).recon_fraction
        for p in (16, 64, 256, 1024)
    ]
    assert fr[0] >= fr[1] >= fr[2] >= fr[3]
    assert fr[3] < 0.10  # the paper's "<10% at scale" observation


def test_n_scale_inflates_compute(traced_fit):
    base = project(traced_fit.trace, M, 16)
    scaled = project(traced_fit.trace, M, 16, n_scale=10)
    assert scaled.iter_compute > 5 * base.iter_compute
    assert scaled.recon_compute > 50 * base.recon_compute  # quadratic


def test_iteration_scale_stretches_axis(traced_fit):
    base = project(traced_fit.trace, M, 16)
    stretched = project(traced_fit.trace, M, 16, iteration_scale=3.0)
    assert stretched.iter_comm == pytest.approx(3 * base.iter_comm, rel=0.1)


def test_invalid_args(traced_fit):
    with pytest.raises(ValueError):
        project(traced_fit.trace, M, 0)
    with pytest.raises(ValueError):
        project(traced_fit.trace, M, 4, n_scale=-1)


def test_series_and_speedups(traced_fit):
    series = project_series(traced_fit.trace, M, [1, 4, 16])
    assert [t.p for t in series] == [1, 4, 16]
    sp = speedup_vs(series, series[0].total)
    assert sp[0] == pytest.approx(1.0)
    assert all(s > 0 for s in sp)
    with pytest.raises(ValueError):
        speedup_vs(series, 0.0)


def test_parallel_efficiency(traced_fit):
    series = project_series(traced_fit.trace, M, [1, 4, 16])
    eff = parallel_efficiency(series)
    assert eff[0] == pytest.approx(1.0)
    assert all(0 < e <= 1.5 for e in eff)
    assert parallel_efficiency([]) == []


def test_shrinking_trace_projects_faster_iter_compute(traced_fit):
    """A shrunk active set means fewer modeled kernel evals."""
    X, y = make_blobs(n=200, d=5, sep=1.2, noise=1.3, seed=23)
    orig = fit_parallel(X, y, PARAMS, heuristic="original", nprocs=1, machine=M)
    assert (
        project(traced_fit.trace, M, 1).iter_compute
        < project(orig.trace, M, 1).iter_compute
    )


# ----------------------------------------------------------------------
# WSS-aware projection
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def wss_fits():
    X, y = make_blobs(n=200, d=5, sep=1.2, noise=1.3, seed=23)
    out = {}
    for wss in ("mvp", "second_order", "planning_ahead"):
        out[wss] = fit_parallel(
            X, y, PARAMS, heuristic="multi5pc", nprocs=2, machine=M, wss=wss
        )
    return out


def test_wss_mvp_matches_historical_model(wss_fits):
    """A zero-counter trace projects identically with or without the
    wss argument — the model reduces to one election per iteration."""
    tr = wss_fits["mvp"].trace
    for engine in ("packed", "legacy"):
        a = project(tr, M, 8, engine=engine)
        b = project(tr, M, 8, engine=engine, wss="mvp")
        assert a.total == b.total


def test_wss_second_order_prices_phase_b(wss_fits):
    """Phase-B combines add communication per electing iteration, on
    both engine shapes — the counters in the trace drive the price."""
    import dataclasses

    tr = wss_fits["second_order"].trace
    assert tr.wss_elections > 0
    stripped = dataclasses.replace(tr, wss_elections=0, wss_reuses=0)
    for engine in ("packed", "legacy"):
        plain = project(stripped, M, 8, engine=engine, wss="second_order")
        wss2 = project(tr, M, 8, engine=engine, wss="second_order")
        assert wss2.iter_comm > plain.iter_comm
        assert wss2.iter_compute > plain.iter_compute  # b²/a scoring


def test_wss_reuse_skips_elections(wss_fits):
    """Reuse iterations elect nothing: the trace's reuse counter
    discounts exactly that many phase-A elections."""
    import dataclasses

    from repro.perfmodel import costs

    tr = wss_fits["planning_ahead"].trace
    if tr.wss_reuses == 0:
        pytest.skip("no reuse fired on this miniature")
    stripped = dataclasses.replace(tr, wss_reuses=0)
    pa = project(tr, M, 8, engine="packed", wss="planning_ahead")
    full = project(stripped, M, 8, engine="packed", wss="planning_ahead")
    saved = tr.wss_reuses * costs.election_time(M, 8)
    assert pa.iter_comm == pytest.approx(full.iter_comm - saved)


def test_wss_legacy_movement_follows_trace(wss_fits):
    """Non-mvp legacy moves samples one at a time through the
    stash-aware relay; the trace-counted movement undercuts the mvp
    two-samples-every-iteration shape."""
    tr = wss_fits["second_order"].trace
    assert tr.pair_broadcasts < 2 * tr.iterations
    two_per_iter = project(tr, M, 8, engine="legacy", wss="mvp")
    counted = project(tr, M, 8, engine="legacy", wss="second_order")
    assert counted.iter_comm < two_per_iter.iter_comm


def test_wss_projection_close_to_simulated_vtime(wss_fits):
    """The wss-aware model lands near the runtime's emergent virtual
    time at the run's own p for every policy."""
    for wss, fr in wss_fits.items():
        t = project(fr.trace, M, 2, engine="packed", wss=wss)
        assert t.total == pytest.approx(fr.vtime, rel=0.5), wss


def test_wss_invalid_rejected(wss_fits):
    with pytest.raises(ValueError):
        project(wss_fits["mvp"].trace, M, 4, wss="newton")
