"""λ measurement and projector cross-validation."""

import pytest

from repro.perfmodel import (
    MachineSpec,
    measure_lambda,
    validate_projector,
    validation_report,
)


def test_measure_lambda_sane():
    lam = measure_lambda(n_rows=500, avg_nnz=30.0, repeats=3)
    # any real host evaluates sparse kernels between 10^4 and 10^10 /s
    assert 1e4 < lam.evals_per_second < 1e10
    assert lam.effective_flop_rate > 1e6
    assert lam.avg_nnz > 0


def test_lambda_as_machine():
    lam = measure_lambda(n_rows=300, avg_nnz=20.0, repeats=2)
    m = lam.as_machine()
    assert m.name == "calibrated-host"
    assert m.flop_rate == lam.effective_flop_rate
    # network parameters inherited from the base spec
    assert m.latency == MachineSpec.cascade().latency


def test_projector_matches_runtime_within_tolerance():
    """The analytic model and the emergent virtual time agree — the
    fidelity claim behind the paper-scale projections."""
    rows = validate_projector(n=150, ps=(1, 2, 4, 8), seed=3)
    for r in rows:
        assert r.relative_error < 0.25, (r.p, r.relative_error)
    # at p = 1 the two accountings are nearly identical
    assert rows[0].relative_error < 0.05


def test_projector_validation_with_shrinking():
    rows = validate_projector(
        n=150, ps=(1, 4), seed=5, heuristic="multi5pc"
    )
    for r in rows:
        assert r.relative_error < 0.35, (r.p, r.relative_error)


def test_validation_report_renders():
    rows = validate_projector(n=80, ps=(1, 2), seed=1)
    text = validation_report(rows)
    assert "rel.err" in text
    assert len(text.splitlines()) == 4
