"""End-to-end integration: data generation → distributed training →
prediction → serialization, across engines and process counts."""

import numpy as np
import pytest

from repro.core import (
    SVC,
    SVMParams,
    fit_parallel,
    solve_libsvm_style,
    solve_sequential,
)
from repro.core.model import SVMModel
from repro.data import load_dataset, two_gaussians
from repro.kernels import RBFKernel
from repro.perfmodel import MachineSpec
from repro.sparse import dumps_libsvm, loads_libsvm


def test_full_pipeline_on_registry_dataset():
    ds = load_dataset("w7a", scale=0.02)
    clf = SVC(C=32.0, sigma_sq=64.0, heuristic="multi5pc", nprocs=3)
    clf.fit(ds.X_train, ds.y_train)
    acc = clf.score(ds.X_test, ds.y_test)
    assert acc > 0.9

    # model round-trips through plain data
    m2 = SVMModel.from_dict(clf.model_.to_dict())
    assert np.array_equal(m2.predict(ds.X_test), clf.model_.predict(ds.X_test))


def test_three_solvers_agree_on_one_problem():
    ds = two_gaussians(n=120, overlap=0.35, seed=3)
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3)
    seq = solve_sequential(ds.X_train, ds.y_train, params)
    lib = solve_libsvm_style(ds.X_train, ds.y_train, params)
    par = fit_parallel(ds.X_train, ds.y_train, params,
                       heuristic="multi5pc", nprocs=4)
    assert np.allclose(seq.alpha, par.alpha, atol=0.05 * params.C)
    assert np.allclose(seq.alpha, lib.alpha, atol=0.05 * params.C)
    assert abs(seq.beta - par.model.beta) < 0.05
    assert abs(seq.beta - lib.beta) < 0.05


def test_training_data_roundtrips_through_libsvm_format():
    ds = two_gaussians(n=60, overlap=0.3, seed=4)
    text = dumps_libsvm(ds.X_train, ds.y_train)
    X2, y2 = loads_libsvm(text, n_features=ds.n_features)
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5))
    a = fit_parallel(ds.X_train, ds.y_train, params, nprocs=2)
    b = fit_parallel(X2, y2, params, nprocs=2)
    assert np.allclose(a.alpha, b.alpha, atol=1e-9)


def test_machine_choice_changes_vtime_not_solution():
    ds = two_gaussians(n=80, overlap=0.3, seed=5)
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5))
    fast = fit_parallel(ds.X_train, ds.y_train, params, nprocs=2,
                        machine=MachineSpec.cascade())
    slow_machine = MachineSpec.python_host()
    slow = fit_parallel(ds.X_train, ds.y_train, params, nprocs=2,
                        machine=slow_machine)
    assert np.array_equal(fast.alpha, slow.alpha)
    assert slow.vtime > fast.vtime  # python host is slower per flop


def test_imbalanced_classes():
    rng = np.random.default_rng(6)
    n_pos, n_neg = 12, 88
    Xd = np.vstack([
        rng.normal(2.0, 0.8, (n_pos, 3)),
        rng.normal(-2.0, 0.8, (n_neg, 3)),
    ])
    y = np.concatenate([np.ones(n_pos), -np.ones(n_neg)])
    clf = SVC(C=10.0, gamma=0.5, nprocs=2).fit(Xd, y)
    pred = clf.predict(Xd)
    assert np.mean(pred[:n_pos] == 1.0) > 0.8  # minority class learned


def test_tiny_problem_more_ranks_than_sensible():
    """p == n: one sample per rank still converges correctly."""
    ds = two_gaussians(n=16, overlap=0.1, seed=7)
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5))
    fr = fit_parallel(ds.X_train, ds.y_train, params, nprocs=16)
    ref = solve_sequential(ds.X_train, ds.y_train, params)
    assert np.array_equal(fr.alpha, ref.alpha)


def test_duplicate_samples_handled():
    ds = two_gaussians(n=30, overlap=0.2, seed=8)
    from repro.sparse import CSRMatrix

    X = CSRMatrix.vstack([ds.X_train, ds.X_train])
    y = np.concatenate([ds.y_train, ds.y_train])
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5))
    fr = fit_parallel(X, y, params, heuristic="multi2", nprocs=3)
    assert fr.model.accuracy(X, y) > 0.9


def test_vtime_reported_consistently():
    ds = two_gaussians(n=60, overlap=0.3, seed=9)
    params = SVMParams(C=10.0, kernel=RBFKernel(0.5))
    fr = fit_parallel(ds.X_train, ds.y_train, params, nprocs=3)
    assert fr.vtime == fr.stats.vtime == fr.spmd.vtime > 0
