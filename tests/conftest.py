"""Shared fixtures: small, fast, deterministic problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVMParams
from repro.kernels import LinearKernel, RBFKernel
from repro.sparse import CSRMatrix


def make_blobs(n=80, d=3, sep=3.0, noise=1.0, seed=0, density=1.0):
    """Two Gaussian blobs; returns (CSRMatrix, y in ±1)."""
    rng = np.random.default_rng(seed)
    half = n // 2
    X1 = rng.normal(sep / 2, noise, (half, d))
    X2 = rng.normal(-sep / 2, noise, (n - half, d))
    Xd = np.vstack([X1, X2])
    if density < 1.0:
        Xd = Xd * (rng.random(Xd.shape) < density)
    y = np.concatenate([np.ones(half), -np.ones(n - half)])
    perm = rng.permutation(n)
    return CSRMatrix.from_dense(Xd[perm]), y[perm]


@pytest.fixture
def blobs():
    return make_blobs()

@pytest.fixture
def blobs_hard():
    """Overlapping classes: many support vectors, shrinking matters."""
    return make_blobs(n=120, sep=1.2, noise=1.3, seed=3)


@pytest.fixture
def rbf_params():
    return SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)


@pytest.fixture
def linear_params():
    return SVMParams(C=1.0, kernel=LinearKernel(), eps=1e-3, max_iter=200_000)


def dense_kernel_matrix(X: CSRMatrix, kernel) -> np.ndarray:
    """Reference kernel matrix via the public row API."""
    n = X.shape[0]
    norms = X.row_norms_sq()
    K = np.empty((n, n))
    for i in range(n):
        xi, xv = X.row(i)
        K[i] = kernel.row_against_block(X, norms, xi, xv, float(norms[i]))
    return K


def check_kkt(X, y, alpha, beta, kernel, C, eps, tol_scale=3.0):
    """Assert the KKT conditions of the trained dual solution."""
    K = dense_kernel_matrix(X, kernel)
    gamma = K @ (alpha * y) - y
    # box constraints and the equality constraint
    assert np.all(alpha >= -1e-10)
    assert np.all(alpha <= C + 1e-8)
    assert abs(float(alpha @ y)) < 1e-6 * max(1.0, C)
    # eps-KKT via the beta_up/beta_low gap
    from repro.core.sets import low_mask, up_mask

    up = up_mask(alpha, y, C)
    low = low_mask(alpha, y, C)
    beta_up = gamma[up].min() if up.any() else np.inf
    beta_low = gamma[low].max() if low.any() else -np.inf
    assert beta_up + tol_scale * eps >= beta_low - eps, (
        f"KKT gap too large: beta_low - beta_up = {beta_low - beta_up}"
    )
