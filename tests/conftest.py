"""Shared fixtures: small, fast, deterministic problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVMParams
from repro.kernels import LinearKernel, RBFKernel
from repro.sparse import CSRMatrix


def make_blobs(n=80, d=3, sep=3.0, noise=1.0, seed=0, density=1.0):
    """Two Gaussian blobs; returns (CSRMatrix, y in ±1)."""
    rng = np.random.default_rng(seed)
    half = n // 2
    X1 = rng.normal(sep / 2, noise, (half, d))
    X2 = rng.normal(-sep / 2, noise, (n - half, d))
    Xd = np.vstack([X1, X2])
    if density < 1.0:
        Xd = Xd * (rng.random(Xd.shape) < density)
    y = np.concatenate([np.ones(half), -np.ones(n - half)])
    perm = rng.permutation(n)
    return CSRMatrix.from_dense(Xd[perm]), y[perm]


@pytest.fixture
def blobs():
    return make_blobs()

@pytest.fixture
def blobs_hard():
    """Overlapping classes: many support vectors, shrinking matters."""
    return make_blobs(n=120, sep=1.2, noise=1.3, seed=3)


@pytest.fixture
def rbf_params():
    return SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)


@pytest.fixture
def linear_params():
    return SVMParams(C=1.0, kernel=LinearKernel(), eps=1e-3, max_iter=200_000)


def dense_kernel_matrix(X: CSRMatrix, kernel) -> np.ndarray:
    """Reference kernel matrix via the public row API."""
    n = X.shape[0]
    norms = X.row_norms_sq()
    K = np.empty((n, n))
    for i in range(n):
        xi, xv = X.row(i)
        K[i] = kernel.row_against_block(X, norms, xi, xv, float(norms[i]))
    return K


def check_kkt(X, y, alpha, beta, kernel, C, eps, tol_scale=3.0):
    """Assert the KKT conditions of the trained dual solution."""
    K = dense_kernel_matrix(X, kernel)
    gamma = K @ (alpha * y) - y
    # box constraints and the equality constraint
    assert np.all(alpha >= -1e-10)
    assert np.all(alpha <= C + 1e-8)
    assert abs(float(alpha @ y)) < 1e-6 * max(1.0, C)
    # eps-KKT via the beta_up/beta_low gap
    from repro.core.sets import low_mask, up_mask

    up = up_mask(alpha, y, C)
    low = low_mask(alpha, y, C)
    beta_up = gamma[up].min() if up.any() else np.inf
    beta_low = gamma[low].max() if low.any() else -np.inf
    assert beta_up + tol_scale * eps >= beta_low - eps, (
        f"KKT gap too large: beta_low - beta_up = {beta_low - beta_up}"
    )


def held_out_grid(X: CSRMatrix, n_probe: int = 64, seed: int = 7) -> CSRMatrix:
    """A deterministic probe set the training never saw: midpoints of
    random training-sample pairs, jittered by a fraction of the
    per-feature spread.  Stays inside the data's support, where the
    decision function is meaningful, without reusing any training row."""
    Xd = X.to_dense()
    n, d = Xd.shape
    rng = np.random.default_rng(seed)
    i = rng.integers(0, n, size=n_probe)
    j = rng.integers(0, n, size=n_probe)
    spread = np.std(Xd, axis=0, ddof=0)
    probe = 0.5 * (Xd[i] + Xd[j]) + 0.15 * spread * rng.standard_normal(
        (n_probe, d)
    )
    return CSRMatrix.from_dense(probe)


def assert_model_equiv(a, b, X, y, params, tol=None):
    """Certify two fits of the same problem as tolerance-equivalent.

    ``a`` and ``b`` are :class:`repro.core.FitResult`-like objects (need
    ``.alpha`` and ``.model``).  Warm-started and cold solves follow
    different SMO paths and stop at *different* eps-KKT points, so
    bitwise equality is the wrong contract; this is the right one:

    1. **KKT residual**: each solution satisfies the eps-KKT conditions
       (box, equality, and the beta_up/beta_low gap) in its own right;
    2. **objective gap**: the dual objectives agree to ``tol`` — both
       sit on the (eps-wide) optimal plateau of the same problem;
    3. **decision agreement**: the decision functions match on a
       held-out probe grid to ``tol`` in value, and the predicted
       labels agree wherever either model is confident (|f| > tol).

    ``tol`` defaults to ``50 * params.eps`` — generous against the
    plateau width yet far below any sample's contribution to the
    decision function (alphas are O(C)).
    """
    from repro.core import decision_function_parallel

    eps = params.eps
    tol = 50.0 * eps if tol is None else tol
    C = params.C
    y = np.asarray(y, dtype=np.float64)

    K = dense_kernel_matrix(X, params.kernel)
    for r in (a, b):
        check_kkt(X, y, r.alpha, None, params.kernel, C, eps)

    def dual_objective(alpha):
        v = alpha * y
        return float(alpha.sum() - 0.5 * (v @ (K @ v)))

    da, db = dual_objective(a.alpha), dual_objective(b.alpha)
    assert abs(da - db) <= tol * max(1.0, abs(da)), (
        f"dual objectives disagree: {da} vs {db} "
        f"(gap {abs(da - db)}, tol {tol * max(1.0, abs(da))})"
    )

    probe = held_out_grid(X)
    fa = decision_function_parallel(a.model, probe).decision_values
    fb = decision_function_parallel(b.model, probe).decision_values
    scale = max(1.0, float(np.max(np.abs(fa))))
    worst = float(np.max(np.abs(fa - fb)))
    assert worst <= tol * scale, (
        f"decision functions disagree on the held-out grid: "
        f"max |f_a - f_b| = {worst}, tol {tol * scale}"
    )
    confident = (np.abs(fa) > tol * scale) | (np.abs(fb) > tol * scale)
    assert np.array_equal(
        np.sign(fa[confident]), np.sign(fb[confident])
    ), "confident predictions disagree on the held-out grid"
