"""Shared fixtures: small, fast, deterministic problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVMParams
from repro.kernels import LinearKernel, RBFKernel
from repro.sparse import CSRMatrix


def make_blobs(n=80, d=3, sep=3.0, noise=1.0, seed=0, density=1.0):
    """Two Gaussian blobs; returns (CSRMatrix, y in ±1)."""
    rng = np.random.default_rng(seed)
    half = n // 2
    X1 = rng.normal(sep / 2, noise, (half, d))
    X2 = rng.normal(-sep / 2, noise, (n - half, d))
    Xd = np.vstack([X1, X2])
    if density < 1.0:
        Xd = Xd * (rng.random(Xd.shape) < density)
    y = np.concatenate([np.ones(half), -np.ones(n - half)])
    perm = rng.permutation(n)
    return CSRMatrix.from_dense(Xd[perm]), y[perm]


@pytest.fixture
def blobs():
    return make_blobs()

@pytest.fixture
def blobs_hard():
    """Overlapping classes: many support vectors, shrinking matters."""
    return make_blobs(n=120, sep=1.2, noise=1.3, seed=3)


@pytest.fixture
def rbf_params():
    return SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)


@pytest.fixture
def linear_params():
    return SVMParams(C=1.0, kernel=LinearKernel(), eps=1e-3, max_iter=200_000)


# The certification harness graduated into the package proper so the
# streaming subsystem can certify refits at runtime; re-exported here so
# every test keeps importing it from conftest unchanged.
from repro.core.equiv import (  # noqa: F401
    assert_model_equiv,
    check_kkt,
    dense_kernel_matrix,
    held_out_grid,
)
