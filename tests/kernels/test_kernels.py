"""Kernel functions vs closed-form dense references."""

import numpy as np
import pytest

from repro.kernels import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    SigmoidKernel,
    make_kernel,
)
from repro.sparse import CSRMatrix

RNG = np.random.default_rng(0)
DENSE = RNG.normal(size=(10, 6)) * (RNG.random((10, 6)) < 0.7)
X = CSRMatrix.from_dense(DENSE)
NORMS = X.row_norms_sq()


def reference(kernel_fn):
    n = DENSE.shape[0]
    K = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            K[i, j] = kernel_fn(DENSE[i], DENSE[j])
    return K


def computed(kernel):
    n = DENSE.shape[0]
    K = np.empty((n, n))
    for i in range(n):
        xi, xv = X.row(i)
        K[i] = kernel.row_against_block(X, NORMS, xi, xv, float(NORMS[i]))
    return K


class TestRBF:
    def test_matches_closed_form(self):
        g = 0.37
        K = computed(RBFKernel(g))
        ref = reference(lambda a, b: np.exp(-g * ((a - b) ** 2).sum()))
        assert np.allclose(K, ref)

    def test_diag_is_one(self):
        k = RBFKernel(2.0)
        assert np.allclose(np.diag(computed(k)), 1.0)
        assert np.allclose(k.diag(NORMS), 1.0)
        assert k.self_value(123.4) == 1.0

    def test_symmetry(self):
        K = computed(RBFKernel(0.8))
        assert np.allclose(K, K.T)

    def test_psd(self):
        K = computed(RBFKernel(0.8))
        evals = np.linalg.eigvalsh(K)
        assert evals.min() > -1e-10

    def test_from_sigma_sq(self):
        assert RBFKernel.from_sigma_sq(4.0).gamma == 0.25

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RBFKernel(0.0)
        with pytest.raises(ValueError):
            RBFKernel.from_sigma_sq(-1.0)

    def test_pair_matches_row(self):
        k = RBFKernel(0.5)
        ai, av = X.row(1)
        bi, bv = X.row(4)
        pair = k.pair((ai, av, float(NORMS[1])), (bi, bv, float(NORMS[4])))
        assert np.isclose(pair, computed(k)[1, 4])

    def test_values_bounded(self):
        K = computed(RBFKernel(1.3))
        assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)


class TestLinear:
    def test_matches_closed_form(self):
        K = computed(LinearKernel())
        assert np.allclose(K, DENSE @ DENSE.T)

    def test_diag(self):
        assert np.allclose(LinearKernel().diag(NORMS), NORMS)


class TestPolynomial:
    def test_matches_closed_form(self):
        k = PolynomialKernel(degree=3, gamma=0.5, coef0=1.0)
        K = computed(k)
        ref = reference(lambda a, b: (0.5 * (a @ b) + 1.0) ** 3)
        assert np.allclose(K, ref)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)
        with pytest.raises(ValueError):
            PolynomialKernel(gamma=-1)

    def test_params_dict(self):
        p = PolynomialKernel(2, 0.3, 1.5).params()
        assert p == {"degree": 2, "gamma": 0.3, "coef0": 1.5}


class TestSigmoid:
    def test_matches_closed_form(self):
        k = SigmoidKernel(gamma=0.2, coef0=-0.5)
        K = computed(k)
        ref = reference(lambda a, b: np.tanh(0.2 * (a @ b) - 0.5))
        assert np.allclose(K, ref)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            SigmoidKernel(gamma=0)


class TestFactory:
    def test_make_each(self):
        assert isinstance(make_kernel("rbf", gamma=1.0), RBFKernel)
        assert isinstance(make_kernel("linear"), LinearKernel)
        assert isinstance(make_kernel("poly"), PolynomialKernel)
        assert isinstance(make_kernel("sigmoid"), SigmoidKernel)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_kernel("wavelet")
