"""LRU kernel-row cache and the two-tier training column cache."""

import numpy as np
import pytest

from repro.kernels import KernelColumnCache, KernelRowCache


def row(n=10, fill=1.0):
    return np.full(n, fill)


def test_hit_after_put():
    c = KernelRowCache(10_000)
    c.put(3, row())
    assert np.array_equal(c.get(3), row())
    assert c.hits == 1 and c.misses == 0


def test_miss_counts():
    c = KernelRowCache(10_000)
    assert c.get(1) is None
    assert c.misses == 1
    assert c.hit_rate == 0.0


def test_lru_eviction_order():
    r = row()
    c = KernelRowCache(r.nbytes * 2)
    c.put(1, row(fill=1))
    c.put(2, row(fill=2))
    c.get(1)  # 1 is now most recent
    c.put(3, row(fill=3))  # evicts 2
    assert c.get(2) is None
    assert c.get(1) is not None
    assert c.get(3) is not None
    assert c.evictions == 1


def test_byte_budget_respected():
    r = row()
    c = KernelRowCache(r.nbytes * 3)
    for i in range(10):
        c.put(i, row(fill=i))
    assert c.used_bytes <= c.capacity_bytes
    assert len(c) == 3


def test_oversized_row_not_cached():
    c = KernelRowCache(8)
    c.put(0, row(100))
    assert len(c) == 0
    assert c.get(0) is None


def test_replace_same_key():
    c = KernelRowCache(10_000)
    c.put(1, row(fill=1))
    c.put(1, row(fill=9))
    assert c.get(1)[0] == 9
    assert len(c) == 1


def test_invalidate():
    c = KernelRowCache(10_000)
    c.put(1, row())
    c.invalidate()
    assert len(c) == 0
    assert c.used_bytes == 0
    assert c.get(1) is None


def test_zero_capacity():
    c = KernelRowCache(0)
    c.put(1, row())
    assert c.get(1) is None


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        KernelRowCache(-1)


def test_simulate_misses_uniform_vs_callable():
    """A per-key size callable predicts evictions a uniform size gets
    wrong: post-shrink columns are narrower, so more of them fit."""
    c = KernelRowCache(100)
    seq = [1, 2, 3, 1]
    # uniform 40-byte rows: inserting 3 evicts LRU key 1 -> 1 re-misses
    assert c.simulate_misses(seq, 40) == [1, 2, 3, 1]
    # per-key sizes: key 3 is a narrow post-shrink column, all fit
    sizes = {1: 40, 2: 40, 3: 10}
    assert c.simulate_misses(seq, lambda k: sizes[k]) == [1, 2, 3]
    # pure lookahead: nothing was actually cached and no counters moved
    assert len(c) == 0 and c.hits == 0 and c.misses == 0


def test_simulate_misses_replays_current_state():
    r = row()  # 80 bytes
    c = KernelRowCache(r.nbytes * 2)
    c.put(1, row(fill=1))
    c.put(2, row(fill=2))
    hits_before, misses_before = c.hits, c.misses
    # 1 and 2 are resident; 3 evicts the shadow's LRU (1)
    assert c.simulate_misses([1, 2, 3, 1], lambda _k: r.nbytes) == [3, 1]
    # the real cache is untouched by the shadow replay
    assert c.get(1) is not None and c.get(2) is not None
    assert c.hits == hits_before + 2 and c.misses == misses_before


def test_stats_dict():
    c = KernelRowCache(10_000)
    c.put(1, row())
    c.get(1)
    c.get(2)
    s = c.stats()
    assert s["entries"] == 1
    assert s["hits"] == 1
    assert s["misses"] == 1
    assert s["hit_rate"] == 0.5


class TestKernelColumnCache:
    def test_pinned_tier_is_budget_exempt(self):
        c = KernelColumnCache(0, pinned_slots=2)  # zero LRU budget
        c.put(1, row(fill=1))
        assert c.get(1) is not None  # served from the pinned workspace
        c.put(2, row(fill=2))
        c.put(3, row(fill=3))  # pushes 1 out of the 2 pinned slots
        assert c.get(1) is None  # no LRU tier to fall back to
        assert c.get(3) is not None

    def test_lru_tier_outlives_pinned(self):
        c = KernelColumnCache(10_000, pinned_slots=2)
        c.put(1, row(fill=1))
        c.put(2, row(fill=2))
        c.put(3, row(fill=3))  # 1 leaves pinned, stays in LRU
        assert c.get(1) is not None

    def test_bump_epoch_drops_everything(self):
        c = KernelColumnCache(10_000)
        c.put(1, row())
        c.bump_epoch()
        assert c.epoch == 1
        assert c.get(1) is None

    def test_request_counters_and_stats(self):
        c = KernelColumnCache(10_000)
        c.put(1, row())
        c.get(1)
        c.get(2)
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate == 0.5
        s = c.stats()
        assert s["hits"] == 1 and s["epoch"] == 0
        assert s["pinned_entries"] == 1

    def test_pinned_slots_floor(self):
        with pytest.raises(ValueError):
            KernelColumnCache(1000, pinned_slots=1)
