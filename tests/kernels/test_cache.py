"""LRU kernel-row cache behaviour."""

import numpy as np
import pytest

from repro.kernels import KernelRowCache


def row(n=10, fill=1.0):
    return np.full(n, fill)


def test_hit_after_put():
    c = KernelRowCache(10_000)
    c.put(3, row())
    assert np.array_equal(c.get(3), row())
    assert c.hits == 1 and c.misses == 0


def test_miss_counts():
    c = KernelRowCache(10_000)
    assert c.get(1) is None
    assert c.misses == 1
    assert c.hit_rate == 0.0


def test_lru_eviction_order():
    r = row()
    c = KernelRowCache(r.nbytes * 2)
    c.put(1, row(fill=1))
    c.put(2, row(fill=2))
    c.get(1)  # 1 is now most recent
    c.put(3, row(fill=3))  # evicts 2
    assert c.get(2) is None
    assert c.get(1) is not None
    assert c.get(3) is not None
    assert c.evictions == 1


def test_byte_budget_respected():
    r = row()
    c = KernelRowCache(r.nbytes * 3)
    for i in range(10):
        c.put(i, row(fill=i))
    assert c.used_bytes <= c.capacity_bytes
    assert len(c) == 3


def test_oversized_row_not_cached():
    c = KernelRowCache(8)
    c.put(0, row(100))
    assert len(c) == 0
    assert c.get(0) is None


def test_replace_same_key():
    c = KernelRowCache(10_000)
    c.put(1, row(fill=1))
    c.put(1, row(fill=9))
    assert c.get(1)[0] == 9
    assert len(c) == 1


def test_invalidate():
    c = KernelRowCache(10_000)
    c.put(1, row())
    c.invalidate()
    assert len(c) == 0
    assert c.used_bytes == 0
    assert c.get(1) is None


def test_zero_capacity():
    c = KernelRowCache(0)
    c.put(1, row())
    assert c.get(1) is None


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        KernelRowCache(-1)


def test_stats_dict():
    c = KernelRowCache(10_000)
    c.put(1, row())
    c.get(1)
    c.get(2)
    s = c.stats()
    assert s["entries"] == 1
    assert s["hits"] == 1
    assert s["misses"] == 1
    assert s["hit_rate"] == 0.5
