"""The batched ``Kernel.block`` API and the vectorized diagonal.

The solvers treat ``block`` as a drop-in replacement for per-sample
``row_against_block`` loops, so the tests here assert *bitwise*
equality, not tolerance agreement.
"""

import numpy as np
import pytest

from repro.kernels import (
    Kernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    SigmoidKernel,
)
from repro.sparse import CSRMatrix

RNG = np.random.default_rng(3)
DENSE_A = RNG.normal(size=(17, 9)) * (RNG.random((17, 9)) < 0.5)
DENSE_B = RNG.normal(size=(11, 9)) * (RNG.random((11, 9)) < 0.5)
DENSE_B[4] = 0.0  # an empty visiting row
A = CSRMatrix.from_dense(DENSE_A)
B = CSRMatrix.from_dense(DENSE_B)
NORMS_A = A.row_norms_sq()
NORMS_B = B.row_norms_sq()

KERNELS = [
    LinearKernel(),
    RBFKernel(0.7),
    PolynomialKernel(degree=3, gamma=0.5, coef0=1.0),
    SigmoidKernel(gamma=0.2, coef0=-0.5),
]


def columns_via_row_path(kernel) -> np.ndarray:
    out = np.empty((A.shape[0], B.shape[0]))
    for j in range(B.shape[0]):
        bi, bv = B.row(j)
        out[:, j] = kernel.row_against_block(
            A, NORMS_A, bi, bv, float(NORMS_B[j])
        )
    return out


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
def test_block_bitwise_equals_row_path(kernel):
    slab = kernel.block(A, NORMS_A, B, NORMS_B)
    assert slab.shape == (A.shape[0], B.shape[0])
    assert np.array_equal(slab, columns_via_row_path(kernel))


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("tile_rows", [1, 2, 5, 64])
def test_block_tiling_invariant(kernel, tile_rows):
    assert np.array_equal(
        kernel.block(A, NORMS_A, B, NORMS_B, tile_rows=tile_rows),
        kernel.block(A, NORMS_A, B, NORMS_B),
    )


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
def test_diag_bitwise_equals_self_value(kernel):
    expected = np.array([kernel.self_value(float(n)) for n in NORMS_A])
    assert np.array_equal(kernel.diag(NORMS_A), expected)


def test_diag_known_values():
    assert np.array_equal(RBFKernel(1.3).diag(NORMS_A), np.ones(A.shape[0]))
    assert np.array_equal(LinearKernel().diag(NORMS_A), NORMS_A)
    poly = PolynomialKernel(degree=2, gamma=0.5, coef0=1.0)
    assert np.allclose(poly.diag(NORMS_A), (0.5 * NORMS_A + 1.0) ** 2)


class _NormSumKernel(Kernel):
    """Toy norm-dependent kernel exercising the *base-class* block path
    (no ``block_from_dots`` override)."""

    name = "normsum"

    def from_dots(self, dots, norms_a, norm_b):
        return np.asarray(dots) + 0.125 * norms_a + 0.25 * norm_b


def test_base_block_from_dots_broadcasts_correctly():
    kernel = _NormSumKernel()
    slab = kernel.block(A, NORMS_A, B, NORMS_B)
    out = np.empty_like(slab)
    for j in range(B.shape[0]):
        bi, bv = B.row(j)
        out[:, j] = kernel.row_against_block(
            A, NORMS_A, bi, bv, float(NORMS_B[j])
        )
    assert np.array_equal(slab, out)
    # the base-class vectorized diag honours norm dependence too
    assert np.array_equal(
        kernel.diag(NORMS_A),
        np.array([kernel.self_value(float(n)) for n in NORMS_A]),
    )


def test_block_empty_operands():
    kernel = RBFKernel(0.5)
    empty = CSRMatrix.empty(A.shape[1])
    no_norms = np.zeros(0)
    assert kernel.block(A, NORMS_A, empty, no_norms).shape == (A.shape[0], 0)
    assert kernel.block(empty, no_norms, B, NORMS_B).shape == (0, B.shape[0])
