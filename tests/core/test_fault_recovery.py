"""Fault matrix for the solver, plus the edge-case bugfix regressions.

The tentpole invariant, end to end: a *fit* that completes under fault
injection is bitwise identical — α, β and virtual time — to the
fault-free fit at the same process count.  Unrecoverable schedules must
fail with a structured :class:`SpmdJobError`, never a watchdog hang.

Also here: the satellite regressions — zero-support ranks in the
reconstruction ring, ``nprocs > n_samples`` partitions, the
shrink-to-empty guard, and the final-β NaN guard.
"""

import numpy as np
import pytest

from repro.core import SVMParams, fit_parallel
from repro.core.parallel import RankSolver
from repro.core.reconstruction import (
    TAG_RING,
    _apply_chunk,
    _pack_contrib,
    _verify_chunk,
    gradient_reconstruction,
)
from repro.core.shrinking import get_heuristic
from repro.core.state import LocalBlock
from repro.core.trace import RankTrace
from repro.core.wss import Violators
from repro.kernels import RBFKernel
from repro.mpi import frames, run_spmd
from repro.mpi.errors import (
    CorruptMessageError,
    InjectedFault,
    MessageLostError,
    RingRecoveryError,
    SpmdJobError,
)
from repro.mpi.faults import Fault, FaultPlan, RetryPolicy
from repro.sparse.partition import BlockPartition

from ..conftest import make_blobs

PARAMS = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)
FAST = RetryPolicy(timeout=0.05, backoff=1.5, max_retries=3)


@pytest.fixture(scope="module")
def problem():
    # overlapping blobs: shrinking fires and reconstruction rings run
    return make_blobs(n=90, sep=1.2, noise=1.3, seed=3)


@pytest.fixture(scope="module")
def reference(problem):
    X, y = problem
    return {
        p: fit_parallel(X, y, PARAMS, heuristic="multi5pc", nprocs=p)
        for p in (1, 2, 4)
    }


def _fit_with(problem, p, faults):
    X, y = problem
    return fit_parallel(
        X, y, PARAMS, heuristic="multi5pc", nprocs=p, faults=faults,
        deadlock_timeout=20.0,
    )


def _assert_identical(fr, ref):
    assert np.array_equal(fr.alpha, ref.alpha)
    assert fr.model.beta == ref.model.beta
    assert fr.iterations == ref.iterations
    assert fr.vtime == ref.vtime


@pytest.mark.faults
class TestFaultMatrix:
    """Each fault kind × {reconstruction ring, allreduce} × p."""

    @pytest.mark.parametrize("p", [2, 4])
    @pytest.mark.parametrize("kind", ["delay", "drop", "dup", "corrupt"])
    def test_ring_faults_recovered_bitwise(self, problem, reference, kind, p):
        fault = Fault(
            kind, tag=TAG_RING, nth=1,
            seconds=0.05 if kind == "delay" else 0.0,
        )
        fr = _fit_with(problem, p, FaultPlan((fault,), seed=7, retry=FAST))
        stats = fr.spmd.fault_stats["stats"]
        counter = {"delay": "delayed", "drop": "dropped",
                   "dup": "duplicated", "corrupt": "corrupted"}[kind]
        assert stats[counter] >= 1
        ref = reference[p]
        assert np.array_equal(fr.alpha, ref.alpha)
        assert fr.model.beta == ref.model.beta
        if kind != "delay":  # delay legitimately shifts virtual time
            assert fr.vtime == ref.vtime

    @pytest.mark.parametrize("p", [2, 4])
    @pytest.mark.parametrize("kind", ["delay", "drop", "dup"])
    def test_collective_faults_recovered_bitwise(
        self, problem, reference, kind, p
    ):
        # wildcard tag + dest filter: lands on allreduce election traffic
        fault = Fault(
            kind, dest=p - 1, nth=3,
            seconds=0.05 if kind == "delay" else 0.0,
        )
        fr = _fit_with(problem, p, FaultPlan((fault,), seed=11, retry=FAST))
        ref = reference[p]
        assert np.array_equal(fr.alpha, ref.alpha)
        assert fr.model.beta == ref.model.beta
        if kind != "delay":
            assert fr.vtime == ref.vtime

    def test_rank_stall_recovered_bitwise(self, problem, reference):
        plan = FaultPlan(
            (Fault("stall", rank=1, after=2, seconds=0.2),),
            seed=1, retry=RetryPolicy(timeout=0.5, max_retries=4),
        )
        fr = _fit_with(problem, 2, plan)
        assert fr.spmd.fault_stats["stats"]["stalled"] == 1
        _assert_identical(fr, reference[2])

    def test_rank_kill_structured_error(self, problem):
        plan = FaultPlan(
            (Fault("kill", rank=1, after=5),), seed=1, retry=FAST
        )
        with pytest.raises(SpmdJobError) as ei:
            _fit_with(problem, 2, plan)
        assert any(
            isinstance(e, InjectedFault) for e in ei.value.failures.values()
        )

    def test_unrecoverable_ring_loss_structured_error(self, problem):
        # suppress 99 delivery attempts: retry budget exhausts first
        plan = FaultPlan(
            (Fault("drop", tag=TAG_RING, nth=1, count=99),),
            seed=1, retry=FAST,
        )
        with pytest.raises(SpmdJobError) as ei:
            _fit_with(problem, 2, plan)
        assert any(
            isinstance(e, (RingRecoveryError, MessageLostError))
            for e in ei.value.failures.values()
        )

    def test_same_plan_same_fit(self, problem):
        plan = "seed=13;retry:timeout=0.05,max=3;drop:tag=3,nth=1;dup:nth=7"
        a = _fit_with(problem, 2, plan)
        b = _fit_with(problem, 2, plan)
        assert a.spmd.fault_stats["schedule"] == b.spmd.fault_stats["schedule"]
        assert np.array_equal(a.alpha, b.alpha)


class TestRingChunkIntegrity:
    def _block(self, n=10, seed=0, with_support=True):
        X, y = make_blobs(n=n, seed=seed)
        blk = LocalBlock(X, y, 0)
        if with_support:
            blk.alpha[: n // 2] = 1.0
        return blk

    def test_pack_carries_valid_crc(self):
        # frames wire (default): bare 3-tuple, integrity lives in the
        # typed frame's CRC; pickle wire: chunk-level CRC as 4th field
        chunk = _pack_contrib(self._block())
        assert len(chunk) == 3
        _verify_chunk(chunk, source=0)  # must not raise
        legacy = _pack_contrib(self._block(), wire="pickle")
        assert len(legacy) == 4
        _verify_chunk(legacy, source=0)

    def test_tampered_chunk_detected(self):
        blob, coefs, norms, crc = _pack_contrib(self._block(), wire="pickle")
        bad = bytearray(blob)
        bad[len(bad) // 2] ^= 0xFF
        with pytest.raises(CorruptMessageError, match="CRC32"):
            _verify_chunk((bytes(bad), coefs, norms, crc), source=0)
        with pytest.raises(CorruptMessageError, match="malformed"):
            _verify_chunk((blob, coefs, norms, crc, None), source=0)
        # a framed chunk is protected by the frame CRC: a flipped wire
        # byte fails decode before _verify_chunk ever sees the tuple
        frame = bytearray(frames.encode((blob, coefs, norms)))
        frame[len(frame) // 2] ^= 0xFF
        with pytest.raises(CorruptMessageError):
            frames.decode(bytes(frame))

    @pytest.mark.parametrize("fold", ["blocked", "rowwise"])
    def test_empty_chunk_round_trip(self, fold):
        """A zero-support rank's payload folds as an exact no-op."""
        empty = _pack_contrib(self._block(with_support=False))
        assert empty[1].size == 0 and empty[2].size == 0
        _verify_chunk(empty, source=0)
        tgt = self._block(seed=1)
        idx = np.arange(4)
        accum = np.full(4, 0.5)
        evals = _apply_chunk(
            PARAMS.kernel, tgt.X.take_rows(idx), tgt.norms[idx],
            accum, empty, fold,
        )
        assert evals == 0
        assert np.array_equal(accum, np.full(4, 0.5))

    @pytest.mark.parametrize("fold", ["blocked", "rowwise"])
    @pytest.mark.parametrize("deterministic", [True, False])
    def test_zero_support_rank_in_ring(self, fold, deterministic):
        """p=2 ring where rank 1 contributes nothing: exact γ plus exact
        evals/bytes accounting on both sides."""
        X, y = make_blobs(n=12, seed=2)
        part = BlockPartition(12, 2)

        def entry(comm):
            lo, hi = part.bounds(comm.rank)
            blk = LocalBlock(X.take_rows(np.arange(lo, hi)), y[lo:hi], lo)
            if comm.rank == 0:
                blk.alpha[:] = 0.5  # all support on rank 0
            blk.active[:] = False  # everything stale -> full reconstruction
            blk.invalidate_active()
            trace = RankTrace(rank=comm.rank, n_local=blk.n_local)
            gradient_reconstruction(
                comm, blk, PARAMS.kernel, 0, trace,
                deterministic=deterministic, fold=fold,
            )
            return blk.gamma.copy(), trace.recon_events[0]

        res = run_spmd(entry, 2)
        gamma = np.concatenate([r[0] for r in res.results])
        ev0, ev1 = (r[1] for r in res.results)

        # dense reference: γ_i = Σ_j α_j y_j K(x_j, x_i) − y_i
        coef = np.where(np.arange(12) < part.bounds(0)[1], 0.5, 0.0) * y
        K = np.array([
            [float(PARAMS.kernel.pair(
                (X.row(i)[0], X.row(i)[1], X.row_norms_sq()[i]),
                (X.row(j)[0], X.row(j)[1], X.row_norms_sq()[j]),
            )) for j in range(12)] for i in range(12)
        ])
        np.testing.assert_allclose(gamma, K @ coef - y, rtol=1e-12)

        n0 = part.bounds(0)[1]
        n1 = 12 - n0
        # every kernel evaluation pairs a local shrunk row with one of
        # rank 0's contributing rows; rank 1 contributes zero rows
        assert ev0.kernel_evals == n0 * n0
        assert ev1.kernel_evals == n1 * n0
        assert ev0.n_contrib_local == n0 and ev1.n_contrib_local == 0
        # p=2: one ring step; each rank ships exactly its own chunk
        chunk0 = _pack_contrib_of(X, y, part, 0, 0.5)
        chunk1 = _pack_contrib_of(X, y, part, 1, 0.0)
        assert ev0.bytes_sent == _chunk_nbytes(chunk0)
        assert ev1.bytes_sent == _chunk_nbytes(chunk1)


def _pack_contrib_of(X, y, part, rank, alpha_val):
    lo, hi = part.bounds(rank)
    blk = LocalBlock(X.take_rows(np.arange(lo, hi)), y[lo:hi], lo)
    blk.alpha[:] = alpha_val
    return _pack_contrib(blk)


def _chunk_nbytes(chunk):
    # exact wire size of the framed chunk (the default ring wire)
    return frames.frame_nbytes(chunk)


class TestPartitionEdgeCases:
    def test_more_ranks_than_samples_bitwise(self):
        X, y = make_blobs(n=6, seed=4)
        ref = fit_parallel(X, y, PARAMS, nprocs=1)
        for p in (7, 9):
            fr = fit_parallel(X, y, PARAMS, nprocs=p)
            assert np.array_equal(fr.alpha, ref.alpha)
            assert fr.iterations == ref.iterations

    def test_empty_rank_with_shrinking_heuristic(self):
        X, y = make_blobs(n=5, seed=4)
        ref = fit_parallel(X, y, PARAMS, heuristic="single5pc", nprocs=1)
        fr = fit_parallel(X, y, PARAMS, heuristic="single5pc", nprocs=8)
        assert np.array_equal(fr.alpha, ref.alpha)


class TestShrinkGuards:
    def _solver_with_all_shrinkable(self, comm, n=8):
        X, y = make_blobs(n=n, seed=6)
        y = np.ones(n)  # all positive, all α=0 => every sample in I1
        blk = LocalBlock(X, y, 0)
        part = BlockPartition(n, 1)
        solver = RankSolver(
            comm, blk, part, PARAMS, get_heuristic("single5pc")
        )
        # every γ above β_low makes the whole of I1 shrinkable (Eq. 9)
        blk.gamma[:] = 1.0
        viol = Violators(
            beta_up=2.0, i_up=0, gamma_up=2.0,
            beta_low=0.0, i_low=1, gamma_low=0.0,
        )
        return solver, blk, viol

    def test_shrink_to_global_empty_is_skipped(self):
        def entry(comm):
            solver, blk, viol = self._solver_with_all_shrinkable(comm)
            solver._shrink_pass(viol)
            return blk.n_active, solver.trace.shrunk_per_event[-1]

        (n_active, shrunk), = run_spmd(entry, 1).results
        assert n_active == 8  # guard kept the active set
        assert shrunk == 0

    def test_partial_shrink_still_fires(self):
        def entry(comm):
            solver, blk, viol = self._solver_with_all_shrinkable(comm)
            blk.gamma[:3] = -1.0  # three samples stay unshrinkable
            solver._shrink_pass(viol)
            return blk.n_active, solver.trace.shrunk_per_event[-1]

        (n_active, shrunk), = run_spmd(entry, 1).results
        assert n_active == 3
        assert shrunk == 5

    def test_aggressive_threshold_converges(self):
        """A threshold that fires every iteration must still terminate
        (the reconstruct loop this guards against never converged)."""
        from repro.core.shrinking import Heuristic

        X, y = make_blobs(n=40, sep=1.0, noise=1.4, seed=9)
        heur = Heuristic(
            name="everystep", threshold_kind="random", threshold_value=1,
            reconstruction="multi", klass="safe", subsequent="initial",
        )
        params = SVMParams(
            C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=50_000
        )
        ref = fit_parallel(X, y, params, heuristic="original", nprocs=1)
        fr = fit_parallel(X, y, params, heuristic=heur, nprocs=2)
        assert np.array_equal(fr.alpha, ref.alpha)


class TestFinalBetaGuard:
    def test_no_free_svs_one_sided_bounds(self):
        def entry(comm):
            X, y = make_blobs(n=4, seed=1)
            blk = LocalBlock(X, np.ones(4), 0)
            part = BlockPartition(4, 1)
            solver = RankSolver(
                comm, blk, part, PARAMS, get_heuristic("original")
            )
            viol = Violators(
                beta_up=np.inf, i_up=-1, gamma_up=np.inf,
                beta_low=-np.inf, i_low=-1, gamma_low=-np.inf,
            )
            return solver._final_beta(viol)

        (beta,) = run_spmd(entry, 1).results
        assert beta == 0.0  # used to be NaN (inf + -inf)

    def test_free_svs_still_averaged(self):
        def entry(comm):
            X, y = make_blobs(n=4, seed=1)
            blk = LocalBlock(X, np.ones(4), 0)
            blk.alpha[:] = 5.0  # strictly inside (0, C)
            blk.gamma[:] = 2.0
            part = BlockPartition(4, 1)
            solver = RankSolver(
                comm, blk, part, PARAMS, get_heuristic("original")
            )
            viol = Violators(
                beta_up=0.0, i_up=0, gamma_up=0.0,
                beta_low=0.0, i_low=1, gamma_low=0.0,
            )
            return solver._final_beta(viol)

        (beta,) = run_spmd(entry, 1).results
        assert beta == 2.0
