"""LocalBlock state container."""

import numpy as np
import pytest

from repro.core.state import LocalBlock, make_blocks
from repro.sparse import BlockPartition, CSRMatrix

from ..conftest import make_blobs


def test_initial_state():
    X, y = make_blobs(n=20)
    blk = LocalBlock(X, y, global_start=100)
    assert np.array_equal(blk.gamma, -y)
    assert np.array_equal(blk.alpha, np.zeros(20))
    assert blk.active.all()
    assert blk.n_active == 20
    assert blk.n_shrunk == 0


def test_label_mismatch():
    X, y = make_blobs(n=20)
    with pytest.raises(ValueError):
        LocalBlock(X, y[:-1], 0)


def test_global_local_translation():
    X, y = make_blobs(n=10)
    blk = LocalBlock(X, y, global_start=50)
    assert blk.owns_global(50) and blk.owns_global(59)
    assert not blk.owns_global(49) and not blk.owns_global(60)
    assert blk.to_local(53) == 3
    with pytest.raises(IndexError):
        blk.to_local(60)


def test_active_view_cache_and_invalidation():
    X, y = make_blobs(n=12)
    blk = LocalBlock(X, y, 0)
    idx1, Xa1, na1 = blk.active_view()
    assert idx1.size == 12
    # same object until invalidated
    assert blk.active_view()[1] is Xa1
    blk.active[3] = False
    blk.invalidate_active()
    idx2, Xa2, na2 = blk.active_view()
    assert idx2.size == 11
    assert 3 not in idx2
    assert np.array_equal(Xa2.to_dense(), X.take_rows(idx2).to_dense())


def test_sample_payload_roundtrip():
    X, y = make_blobs(n=8)
    blk = LocalBlock(X, y, 0)
    blk.alpha[2] = 3.5
    idx, vals, norm, label, alpha = blk.sample_payload(2)
    xi, xv = X.row(2)
    assert np.array_equal(idx, xi)
    assert np.array_equal(vals, xv)
    assert norm == pytest.approx(float(X.row_norms_sq()[2]))
    assert label == y[2]
    assert alpha == 3.5
    # payload is a copy: mutating it leaves the block intact
    vals[:] = 0
    assert np.array_equal(X.row(2)[1], xv)


def test_make_blocks_covers_problem():
    X, y = make_blobs(n=23)
    part = BlockPartition(23, 4)
    blocks = make_blocks(X, y, part)
    assert len(blocks) == 4
    total = sum(b.n_local for b in blocks)
    assert total == 23
    re_X = CSRMatrix.vstack([b.X for b in blocks])
    assert np.array_equal(re_X.to_dense(), X.to_dense())
    re_y = np.concatenate([b.y for b in blocks])
    assert np.array_equal(re_y, y)
    for r, b in enumerate(blocks):
        assert b.global_start == part.start(r)
