"""SVC facade."""

import numpy as np
import pytest

from repro.core import SVC, NotFittedError
from repro.kernels import LinearKernel, RBFKernel

from ..conftest import make_blobs


@pytest.fixture(scope="module")
def data():
    X, y = make_blobs(n=90, sep=2.5, noise=1.0, seed=11)
    return X.to_dense(), y


def test_fit_predict_score(data):
    Xd, y = data
    clf = SVC(C=10.0, gamma=0.5, nprocs=2).fit(Xd, y)
    assert clf.score(Xd, y) > 0.85
    assert clf.n_iter_ > 0
    assert clf.n_support_ > 0


def test_string_labels_roundtrip(data):
    Xd, y = data
    labels = np.where(y > 0, "pos", "neg")
    clf = SVC(C=10.0, gamma=0.5).fit(Xd, labels)
    pred = clf.predict(Xd)
    assert set(pred) <= {"pos", "neg"}
    assert clf.score(Xd, labels) > 0.85


def test_integer_labels(data):
    Xd, y = data
    labels = np.where(y > 0, 7, 3)
    clf = SVC(C=10.0, gamma=0.5).fit(Xd, labels)
    assert set(clf.predict(Xd)) <= {3, 7}


def test_not_fitted_errors():
    clf = SVC()
    with pytest.raises(NotFittedError):
        clf.predict(np.ones((1, 2)))
    with pytest.raises(NotFittedError):
        _ = clf.support_


def test_needs_two_classes(data):
    Xd, _ = data
    with pytest.raises(ValueError):
        SVC().fit(Xd, np.ones(Xd.shape[0]))
    with pytest.raises(ValueError):
        SVC().fit(Xd, np.arange(Xd.shape[0]))


def test_sigma_sq_sets_gamma(data):
    Xd, y = data
    clf = SVC(C=10.0, sigma_sq=4.0).fit(Xd, y)
    assert clf.fit_result_.model.kernel.gamma == pytest.approx(0.25)


def test_gamma_and_sigma_sq_conflict():
    with pytest.raises(ValueError):
        SVC(gamma=1.0, sigma_sq=4.0)


def test_kernel_instance_accepted(data):
    Xd, y = data
    clf = SVC(C=5.0, kernel=LinearKernel(), heuristic="original").fit(Xd, y)
    assert clf.score(Xd, y) > 0.8


def test_heuristic_choice_does_not_change_predictions(data):
    Xd, y = data
    a = SVC(C=10.0, gamma=0.5, heuristic="original").fit(Xd, y)
    b = SVC(C=10.0, gamma=0.5, heuristic="multi2", nprocs=3).fit(Xd, y)
    assert np.array_equal(a.predict(Xd), b.predict(Xd))


def test_decision_function_consistent_with_predict(data):
    Xd, y = data
    clf = SVC(C=10.0, gamma=0.5).fit(Xd, y)
    f = clf.decision_function(Xd)
    pred = clf.predict(Xd)
    assert np.array_equal(pred, np.where(f >= 0, clf.classes_[1], clf.classes_[0]))


def test_get_set_params(data):
    clf = SVC(C=2.0, heuristic="multi10pc", nprocs=4)
    p = clf.get_params()
    assert p["C"] == 2.0 and p["heuristic"] == "multi10pc" and p["nprocs"] == 4
    clf.set_params(C=5.0)
    assert clf.C == 5.0
    with pytest.raises(ValueError):
        clf.set_params(bogus=1)


def test_fitted_attributes(data):
    Xd, y = data
    clf = SVC(C=10.0, gamma=0.5).fit(Xd, y)
    assert clf.support_.shape == (clf.n_support_,)
    assert clf.dual_coef_.shape == (clf.n_support_,)
    assert isinstance(clf.intercept_, float)
