"""Working-set selection and the analytic pair step."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wss import (
    NO_INDEX,
    Violators,
    compute_beta,
    local_extrema,
    solve_pair,
)


class TestLocalExtrema:
    def test_basic(self):
        gamma = np.array([3.0, -1.0, 2.0, 0.5])
        up = np.array([True, True, False, True])
        low = np.array([False, True, True, True])
        bu, iu, bl, il = local_extrema(gamma, up, low, global_offset=100)
        assert (bu, iu) == (-1.0, 101)
        assert (bl, il) == (2.0, 102)

    def test_empty_sets(self):
        gamma = np.array([1.0])
        none = np.array([False])
        bu, iu, bl, il = local_extrema(gamma, none, none, 0)
        assert bu == np.inf and iu == NO_INDEX
        assert bl == -np.inf and il == NO_INDEX

    def test_tie_breaks_to_first(self):
        gamma = np.array([1.0, 1.0, 1.0])
        all_ = np.ones(3, dtype=bool)
        bu, iu, bl, il = local_extrema(gamma, all_, all_, 0)
        assert iu == 0 and il == 0


class TestViolators:
    def test_convergence_rule(self):
        v = Violators(-1.0, 0, -1.0, 1.0, 1, 1.0)
        assert v.gap() == 2.0
        assert not v.converged(0.5)
        assert v.converged(1.0)

    def test_inf_bounds_converged(self):
        v = Violators(np.inf, NO_INDEX, np.inf, -np.inf, NO_INDEX, -np.inf)
        assert v.converged(1e-3)


class TestSolvePair:
    C = 10.0

    def run(self, y_up, y_low, a_up, a_low, g_up, g_low,
            k_uu=1.0, k_ll=1.0, k_ul=0.3, C=None):
        C = C or self.C
        return solve_pair(k_uu, k_ll, k_ul, y_up, y_low, a_up, a_low,
                          g_up, g_low, C)

    def test_box_constraints_always_hold(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            y_up, y_low = rng.choice([-1.0, 1.0], 2)
            a_up, a_low = rng.random(2) * self.C
            g_up, g_low = rng.normal(size=2) * 5
            k_ul = rng.uniform(-0.9, 0.9)
            nu, nl = self.run(y_up, y_low, a_up, a_low, g_up, g_low, k_ul=k_ul)
            assert -1e-12 <= nu <= self.C + 1e-12
            assert -1e-12 <= nl <= self.C + 1e-12

    def test_pair_constraint_preserved(self):
        """y_up·α_up + y_low·α_low is invariant."""
        rng = np.random.default_rng(1)
        for _ in range(300):
            y_up, y_low = rng.choice([-1.0, 1.0], 2)
            a_up, a_low = rng.random(2) * self.C
            g_up, g_low = rng.normal(size=2) * 5
            nu, nl = self.run(y_up, y_low, a_up, a_low, g_up, g_low)
            before = y_up * a_up + y_low * a_low
            after = y_up * nu + y_low * nl
            assert np.isclose(before, after, atol=1e-9)

    def test_no_change_when_no_violation(self):
        """γ_up == γ_low -> Newton step is zero."""
        nu, nl = self.run(1.0, -1.0, 2.0, 3.0, 0.5, 0.5)
        assert np.isclose(nu, 2.0) and np.isclose(nl, 3.0)

    def test_step_direction_reduces_violation(self):
        """A feasible violating pair (i_up ∈ I1, i_low ∈ I4) must move:
        α_low increases off its zero bound."""
        nu, nl = self.run(1.0, -1.0, 0.0, 0.0, -1.0, 1.0)
        assert nl > 0.0
        assert nu > 0.0  # pair constraint: y_up α_up + y_low α_low fixed

    def test_non_psd_curvature_regularized(self):
        # k_ul > (k_uu + k_ll)/2 makes rho positive: must not blow up
        nu, nl = self.run(1.0, 1.0, 1.0, 1.0, -1.0, 1.0, k_ul=2.0)
        assert 0.0 <= nu <= self.C and 0.0 <= nl <= self.C

    def test_objective_nonincreasing(self):
        """The dual objective (minimization form) never increases."""
        rng = np.random.default_rng(2)
        for _ in range(100):
            k_uu, k_ll = 1.0, 1.0
            k_ul = rng.uniform(-0.9, 0.9)
            y_up, y_low = rng.choice([-1.0, 1.0], 2)
            a_up, a_low = rng.random(2) * self.C
            g_up, g_low = rng.normal(size=2) * 3

            def dual_delta(nu, nl):
                du, dl = nu - a_up, nl - a_low
                # ΔW = γ_up y_up dα_up + γ_low y_low dα_low + quadratic
                quad = 0.5 * (
                    k_uu * du * du * 1.0
                    + k_ll * dl * dl
                    + 2 * k_ul * du * dl * y_up * y_low
                )
                return g_up * y_up * du + g_low * y_low * dl + quad

            nu, nl = self.run(y_up, y_low, a_up, a_low, g_up, g_low, k_ul=k_ul)
            assert dual_delta(nu, nl) <= 1e-9


class TestComputeBeta:
    def test_mean_over_free(self):
        gamma = np.array([1.0, 2.0, 5.0])
        free = np.array([True, True, False])
        assert compute_beta(gamma, free, -3.0, 3.0) == pytest.approx(1.5)

    def test_fallback_midpoint(self):
        gamma = np.array([1.0])
        free = np.array([False])
        assert compute_beta(gamma, free, -1.0, 2.0) == pytest.approx(0.5)


@settings(max_examples=150, deadline=None)
@given(
    y_up=st.sampled_from([-1.0, 1.0]),
    y_low=st.sampled_from([-1.0, 1.0]),
    a_up=st.floats(0, 10),
    a_low=st.floats(0, 10),
    g_up=st.floats(-10, 10),
    g_low=st.floats(-10, 10),
    k_ul=st.floats(-0.99, 0.99),
)
def test_solve_pair_properties(y_up, y_low, a_up, a_low, g_up, g_low, k_ul):
    nu, nl = solve_pair(1.0, 1.0, k_ul, y_up, y_low, a_up, a_low,
                        g_up, g_low, 10.0)
    assert -1e-9 <= nu <= 10.0 + 1e-9
    assert -1e-9 <= nl <= 10.0 + 1e-9
    assert np.isclose(
        y_up * a_up + y_low * a_low, y_up * nu + y_low * nl, atol=1e-8
    )


@settings(max_examples=200, deadline=None)
@given(
    y_up=st.sampled_from([-1.0, 1.0]),
    y_low=st.sampled_from([-1.0, 1.0]),
    C_up=st.floats(0.1, 20),
    C_low=st.floats(0.1, 20),
    f_up=st.floats(0, 1),
    f_low=st.floats(0, 1),
    g_up=st.floats(-10, 10),
    g_low=st.floats(-10, 10),
    k_ul=st.floats(-0.99, 0.99),
)
def test_solve_pair_asymmetric_boxes(
    y_up, y_low, C_up, C_low, f_up, f_low, g_up, g_low, k_ul
):
    """Per-class weighting: each alpha honours its *own* box and the
    pair constraint survives the asymmetric clipping."""
    a_up, a_low = f_up * C_up, f_low * C_low
    nu, nl = solve_pair(1.0, 1.0, k_ul, y_up, y_low, a_up, a_low,
                        g_up, g_low, C_up, C_low)
    assert -1e-9 <= nu <= C_up + 1e-9
    assert -1e-9 <= nl <= C_low + 1e-9
    assert np.isclose(
        y_up * a_up + y_low * a_low, y_up * nu + y_low * nl, atol=1e-8
    )


@settings(max_examples=200, deadline=None)
@given(
    y_up=st.sampled_from([-1.0, 1.0]),
    y_low=st.sampled_from([-1.0, 1.0]),
    a_up=st.floats(0, 10),
    a_low=st.floats(0, 10),
    g_up=st.floats(-10, 10),
    g_low=st.floats(-10, 10),
    k_uu=st.floats(0.1, 2.0),
    k_ll=st.floats(0.1, 2.0),
    bump=st.floats(0.0, 3.0),
)
def test_solve_pair_non_psd_branch(
    y_up, y_low, a_up, a_low, g_up, g_low, k_uu, k_ll, bump
):
    """rho = 2·k_ul − k_uu − k_ll >= 0 (indefinite 2x2 block) takes the
    −τ regularization branch and must stay finite and feasible."""
    k_ul = (k_uu + k_ll) / 2.0 + bump  # forces rho >= 0 exactly at 0 too
    nu, nl = solve_pair(k_uu, k_ll, k_ul, y_up, y_low, a_up, a_low,
                        g_up, g_low, 10.0)
    assert np.isfinite(nu) and np.isfinite(nl)
    assert -1e-9 <= nu <= 10.0 + 1e-9
    assert -1e-9 <= nl <= 10.0 + 1e-9
    assert np.isclose(
        y_up * a_up + y_low * a_low, y_up * nu + y_low * nl, atol=1e-8
    )
