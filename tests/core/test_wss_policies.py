"""WSS policy layer: registry plumbing, cross-p/engine determinism,
model equivalence, the planning-ahead reuse pool, and the training-side
kernel-column cache.

The contract (ISSUE-9): the default ``mvp`` policy is bitwise identical
to the historical solver at every process count on both engines, with
or without a cache budget; ``second_order`` and ``planning_ahead``
produce tolerance-equivalent models (``assert_model_equiv``) while
keeping their *own* iteration sequences p- and engine-independent.
"""

import numpy as np
import pytest

from repro.core import SVMParams, fit_parallel
from repro.core.wss import SolverError
from repro.core.wss_policies import (
    MAX_CONSECUTIVE_REUSES,
    WSS_ENV,
    PoolSample,
    ReusePool,
    get_wss_policy,
    resolve_wss,
    second_order_best,
)
from repro.data import DATASETS, load_dataset
from repro.kernels import LinearKernel, RBFKernel
from repro.sparse import CSRMatrix

from ..conftest import assert_model_equiv

PS = [1, 2, 4]
MINIATURES = [("mushrooms", 0.02), ("w7a", 0.006)]
KERNELS = {
    "rbf": lambda sigma_sq: RBFKernel.from_sigma_sq(sigma_sq),
    "linear": lambda sigma_sq: LinearKernel(),
}


@pytest.fixture(scope="module")
def miniatures():
    out = {}
    for name, scale in MINIATURES:
        ds = load_dataset(name, scale=scale)
        classes = np.unique(ds.y_train)
        y = np.where(ds.y_train == classes[1], 1.0, -1.0)
        entry = DATASETS[name]
        out[name] = (ds.X_train, y, entry.C, entry.sigma_sq)
    return out


def _params(kernel_name, C, sigma_sq):
    return SVMParams(
        C=C, kernel=KERNELS[kernel_name](sigma_sq), eps=1e-3,
        max_iter=200_000,
    )


def _fit(X, y, params, p, engine, wss, cache_mb=0.0):
    return fit_parallel(
        X, y, params, heuristic="multi5pc", nprocs=p, engine=engine,
        wss=wss, kernel_cache_mb=cache_mb,
    )


# ----------------------------------------------------------------------
# default policy: bitwise-unchanged across the whole matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
@pytest.mark.parametrize("dataset", [name for name, _ in MINIATURES])
def test_mvp_default_bitwise_matrix(miniatures, dataset, kernel_name):
    X, y, C, sigma_sq = miniatures[dataset]
    params = _params(kernel_name, C, sigma_sq)
    # the implicit default IS mvp cache-off
    ref = fit_parallel(X, y, params, heuristic="multi5pc", nprocs=1)
    assert ref.stats.wss == "mvp"
    for p in PS:
        per_p = None
        for engine in ("packed", "legacy"):
            fr = _fit(X, y, params, p, engine, "mvp")
            # cross-p: the iteration sequence is p-independent (β's
            # free-sample mean reduces in p-dependent order, so only
            # the trajectory is bitwise across p)
            assert np.array_equal(fr.alpha, ref.alpha)
            assert fr.iterations == ref.iterations
            # within a process count the engines agree on everything
            # (kernel evals are charged per rank — the 3 pair evals
            # are redundantly computed — so they too are per-p)
            if per_p is None:
                per_p = (fr.model.beta, fr.stats.kernel_evals)
            else:
                assert (fr.model.beta, fr.stats.kernel_evals) == per_p
            assert fr.stats.trace.wss_elections == 0
            assert fr.stats.trace.wss_reuses == 0


# ----------------------------------------------------------------------
# non-mvp policies: p/engine-deterministic + model-equivalent to mvp
# ----------------------------------------------------------------------
@pytest.mark.parametrize("wss", ["second_order", "planning_ahead"])
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
@pytest.mark.parametrize("dataset", [name for name, _ in MINIATURES])
def test_policy_equivalence_matrix(miniatures, dataset, kernel_name, wss):
    X, y, C, sigma_sq = miniatures[dataset]
    params = _params(kernel_name, C, sigma_sq)
    mvp = _fit(X, y, params, 1, "packed", "mvp")
    ref = None
    for p in PS:
        beta_p = None
        for engine in ("packed", "legacy"):
            fr = _fit(X, y, params, p, engine, wss)
            if ref is None:
                ref = fr
                # a different election rule must yield an equivalent
                # model, certified once per (dataset, kernel, policy)
                assert_model_equiv(fr, mvp, X, y, params)
            else:
                # ... and the policy's own trajectory is bitwise
                # p- and engine-independent, like mvp's (β's mean
                # reduces in p-dependent order, so it is per-p)
                assert np.array_equal(fr.alpha, ref.alpha)
                assert fr.iterations == ref.iterations
            if beta_p is None:
                beta_p = fr.model.beta
            else:
                assert fr.model.beta == beta_p
            assert fr.stats.wss == wss


def test_second_order_elects_and_saves_evals(miniatures):
    """The point of WSS2: fewer iterations and kernel evals on w7a."""
    X, y, C, sigma_sq = miniatures["w7a"]
    params = _params("rbf", C, sigma_sq)
    mvp = _fit(X, y, params, 2, "packed", "mvp")
    so = _fit(X, y, params, 2, "packed", "second_order")
    assert so.stats.trace.wss_elections > 0
    assert so.iterations < mvp.iterations
    assert so.stats.kernel_evals < mvp.stats.kernel_evals


def test_planning_ahead_reuses(miniatures):
    X, y, C, sigma_sq = miniatures["w7a"]
    params = _params("rbf", C, sigma_sq)
    fr = _fit(X, y, params, 2, "packed", "planning_ahead")
    tr = fr.stats.trace
    assert tr.wss_reuses > 0
    # every iteration either reused or elected; an election's phase B
    # only fires when phase A neither converged nor emptied the low
    # set, so phase-B combines can undercount elected iterations
    assert tr.wss_elections > 0
    assert tr.wss_elections + tr.wss_reuses <= fr.iterations + 1


# ----------------------------------------------------------------------
# training-side kernel-column cache
# ----------------------------------------------------------------------
@pytest.mark.parametrize("p", [1, 2])
def test_mvp_cache_changes_nothing_but_evals(miniatures, p):
    X, y, C, sigma_sq = miniatures["mushrooms"]
    params = _params("rbf", C, sigma_sq)
    off = _fit(X, y, params, p, "packed", "mvp", cache_mb=0.0)
    on = _fit(X, y, params, p, "packed", "mvp", cache_mb=4.0)
    assert np.array_equal(on.alpha, off.alpha)
    assert on.model.beta == off.model.beta
    assert on.iterations == off.iterations
    # the cache only changes who computes a column: hits are recorded,
    # evals can only go down
    assert on.stats.trace.cache_hits > 0
    assert on.stats.kernel_evals <= off.stats.kernel_evals
    assert off.stats.trace.cache_hits == 0
    assert 0.0 < on.stats.trace.cache_hit_rate <= 1.0


def test_cache_on_legacy_engine_matches_packed(miniatures):
    X, y, C, sigma_sq = miniatures["mushrooms"]
    params = _params("rbf", C, sigma_sq)
    pak = _fit(X, y, params, 2, "packed", "second_order", cache_mb=2.0)
    leg = _fit(X, y, params, 2, "legacy", "second_order", cache_mb=2.0)
    assert np.array_equal(pak.alpha, leg.alpha)
    assert pak.iterations == leg.iterations
    assert pak.stats.kernel_evals == leg.stats.kernel_evals
    assert pak.stats.trace.cache_hits == leg.stats.trace.cache_hits


# ----------------------------------------------------------------------
# registry / resolve plumbing
# ----------------------------------------------------------------------
def test_wss_toggle_plumbing(miniatures, monkeypatch):
    assert resolve_wss(None) == "mvp"
    monkeypatch.setenv(WSS_ENV, "second_order")
    assert resolve_wss(None) == "second_order"
    assert resolve_wss("planning_ahead") == "planning_ahead"  # arg wins
    monkeypatch.setenv(WSS_ENV, "")
    assert resolve_wss(None) == "mvp"
    with pytest.raises(ValueError):
        resolve_wss("newton")
    with pytest.raises(ValueError):
        get_wss_policy("newton")
    assert get_wss_policy("planning_ahead").reuse_eta == 0.5
    assert get_wss_policy("second_order").uses_provider
    assert not get_wss_policy("mvp").uses_provider

    X, y, C, sigma_sq = miniatures["mushrooms"]
    params = _params("rbf", C, sigma_sq)
    monkeypatch.setenv(WSS_ENV, "second_order")
    fr = fit_parallel(X, y, params, heuristic="multi5pc", nprocs=2)
    assert fr.stats.wss == "second_order"
    assert fr.stats.trace.wss_elections > 0


# ----------------------------------------------------------------------
# NaN guard: a poisoned gradient fails loudly, naming rank and index
# ----------------------------------------------------------------------
class _PoisonKernel(LinearKernel):
    """Returns NaN kernel columns — a stand-in for overflowing kernel
    parameters poisoning the dual state."""

    def block(self, X, norms, rows, row_norms):
        out = super().block(X, norms, rows, row_norms)
        out[...] = np.nan
        return out


@pytest.mark.parametrize("engine", ["packed", "legacy"])
def test_nan_gradient_raises_solver_error(engine):
    rng = np.random.default_rng(0)
    Xd = rng.normal(size=(24, 3))
    y = np.where(rng.random(24) > 0.5, 1.0, -1.0)
    params = SVMParams(C=1.0, kernel=_PoisonKernel(), eps=1e-3,
                       max_iter=1000)
    from repro.mpi.errors import SpmdJobError

    # the rank thread's SolverError surfaces through the SPMD runtime
    # with its diagnostic (rank + local index) intact
    with pytest.raises(SpmdJobError, match="NaN gradient") as ei:
        fit_parallel(CSRMatrix.from_dense(Xd), y, params,
                     heuristic="original", nprocs=2, engine=engine)
    assert "SolverError" in str(ei.value)
    assert "rank 0" in str(ei.value)


def test_nan_guard_names_rank_and_index():
    from repro.core.wss import guard_gamma_finite, local_extrema

    g = np.array([0.0, np.nan, np.nan])
    with pytest.raises(SolverError) as ei:
        guard_gamma_finite(g, rank=3, local_indices=np.array([7, 11, 13]))
    msg = str(ei.value)
    assert "rank 3" in msg and "local index 11" in msg
    assert "2 NaN entries" in msg
    # the election path guards too, mapping packed positions back
    m = np.ones(2, dtype=bool)
    with pytest.raises(SolverError, match="local index 9"):
        local_extrema(np.array([1.0, np.nan]), m, m, 0,
                      rank=0, local_indices=np.array([4, 9]))
    # clean gradients pass untouched (inf is legitimate early state)
    guard_gamma_finite(np.array([1.0, np.inf, -np.inf]))


# ----------------------------------------------------------------------
# second_order_best scoring
# ----------------------------------------------------------------------
class TestSecondOrderBest:
    def test_prefers_flat_curvature(self):
        gamma = np.array([0.0, 1.0, 1.0])
        low = np.array([False, True, True])
        # same b, but sample 2's column is closer to the up sample
        # (higher Φ(u,j) -> smaller a -> larger gain)
        kcol = np.array([1.0, 0.0, 0.9])
        diag = np.ones(3)
        gain, j, gj = second_order_best(
            gamma, low, kcol, diag, 1.0, -1.0, np.arange(3)
        )
        assert j == 2 and gj == 1.0
        assert gain == pytest.approx(4.0 / 0.2)

    def test_no_positive_b(self):
        gamma = np.zeros(3)
        low = np.ones(3, dtype=bool)
        gain, j, gj = second_order_best(
            gamma, low, np.zeros(3), np.ones(3), 1.0, 5.0, np.arange(3)
        )
        assert j == -1 and gain == -np.inf

    def test_tie_breaks_to_smallest_gidx(self):
        gamma = np.array([1.0, 1.0])
        low = np.ones(2, dtype=bool)
        gain, j, _ = second_order_best(
            gamma, low, np.zeros(2), np.ones(2), 1.0, 0.0,
            np.array([40, 10]),
        )
        assert j == 40  # first max in local order == ascending gidx

    def test_non_psd_curvature_regularized(self):
        gamma = np.array([2.0])
        low = np.array([True])
        # a = k_uu + diag - 2*kcol = 1 + 1 - 4 < 0 -> tau floor
        gain, j, _ = second_order_best(
            gamma, low, np.array([2.0]), np.ones(1), 1.0, 0.0,
            np.arange(1),
        )
        assert np.isfinite(gain) and gain > 0 and j == 0


# ----------------------------------------------------------------------
# ReusePool unit behaviour
# ----------------------------------------------------------------------
class _DotKernel:
    """Linear kernel over sparse (indices, values, norm) rows."""

    def pair(self, ra, rb):
        da = dict(zip(ra[0].tolist(), ra[1].tolist()))
        return float(sum(v * da.get(i, 0.0)
                         for i, v in zip(rb[0].tolist(), rb[1].tolist())))


def _row(*dense):
    v = np.asarray(dense, dtype=np.float64)
    idx = np.flatnonzero(v)
    return (idx, v[idx], float(v @ v))


def _sample(gidx, row, y=1.0, C=10.0, alpha=1.0, gamma=0.0):
    return PoolSample(gidx=gidx, row=row, y=y, C=C, alpha=alpha,
                      gamma=gamma)


class TestReusePool:
    def test_memoized_pair_kernels(self):
        pool = ReusePool(_DotKernel())
        a = _sample(0, _row(1.0, 0.0))
        b = _sample(1, _row(1.0, 1.0))
        assert pool.k(a, b) == 1.0
        assert pool.take_new_evals() == 1
        assert pool.k(b, a) == 1.0  # symmetric key, memo hit
        assert pool.take_new_evals() == 0

    def test_seed_k_is_free(self):
        pool = ReusePool(_DotKernel())
        a, b = _sample(3, _row(1.0)), _sample(7, _row(2.0))
        pool.seed_k(7, 3, 2.0)
        assert pool.k(a, b) == 2.0
        assert pool.take_new_evals() == 0

    def test_eviction_purges_memo(self):
        pool = ReusePool(_DotKernel(), capacity=2)
        s = [_sample(i, _row(float(i + 1))) for i in range(4)]
        pool.observe_update(s[0], s[1], 0.0, 0.0)
        pool.k(s[0], s[1])
        pool.observe_update(s[2], s[3], 0.0, 0.0)  # evicts 0 and 1
        assert len(pool) == 2
        assert not any(0 in k or 1 in k for k in pool._pair_k)
        pool.clear()
        assert len(pool) == 0 and pool._pair_k == {}

    def test_bystander_gamma_maintenance(self):
        pool = ReusePool(_DotKernel())
        bys = _sample(0, _row(1.0, 0.0), gamma=0.5)
        u0 = _sample(1, _row(2.0, 0.0))
        l0 = _sample(2, _row(0.0, 3.0))
        pool.observe_update(u0, l0, 0.0, 0.0)
        pool.observe_update(bys, _sample(3, _row(0.0, 1.0)), 0.0, 0.0)
        # now step the (1, 2) pair: bystander 0 advances by
        # coef_up * K(0,1) + coef_low * K(0,2) = 0.25*2 + (-0.5)*0
        pool.observe_update(
            _sample(1, u0.row, alpha=2.0, gamma=1.0),
            _sample(2, l0.row, alpha=0.5, gamma=1.0),
            0.25, -0.5,
        )
        assert pool._samples[0].gamma == pytest.approx(0.5 + 0.5)
        # the updated pair carries its caller-computed state verbatim
        assert pool._samples[1].alpha == 2.0
        assert pool._samples[2].gamma == 1.0

    def test_best_pair_orientation_and_threshold(self):
        pool = ReusePool(_DotKernel())
        # a is low-eligible (alpha interior), b is up-eligible;
        # gamma gap favours up=b, low=a
        a = _sample(0, _row(1.0, 0.0), alpha=5.0, gamma=2.0)
        b = _sample(1, _row(0.0, 1.0), alpha=5.0, gamma=-2.0)
        pool.observe_update(a, b, 0.0, 0.0)
        got = pool.best_pair(phase_eps=1e-3)
        assert got is not None
        gain, up, low = got
        assert (up.gidx, low.gidx) == (1, 0)
        assert gain == pytest.approx(16.0 / 2.0)  # gap² / (1+1-0)
        # a gap below 2·eps is not reusable
        assert pool.best_pair(phase_eps=3.0) is None

    def test_best_pair_respects_eligibility(self):
        pool = ReusePool(_DotKernel())
        # up candidate pinned at C for y=+1 -> not up-eligible
        a = _sample(0, _row(1.0, 0.0), alpha=10.0, C=10.0, gamma=-2.0)
        b = _sample(1, _row(0.0, 1.0), alpha=0.0, C=10.0, gamma=2.0)
        pool.observe_update(a, b, 0.0, 0.0)
        # orientation up=a/low=b has the gap, but a is at its bound and
        # b (alpha=0, y=+1) is not low-eligible either
        assert pool.best_pair(phase_eps=1e-3) is None

    def test_best_pair_first_max_in_insertion_order(self):
        pool = ReusePool(_DotKernel(), capacity=4)
        rows = [_row(1.0, 0.0, 0.0), _row(0.0, 1.0, 0.0),
                _row(0.0, 0.0, 1.0)]
        # two pairs with identical gain; the earlier-inserted must win
        s0 = _sample(0, rows[0], alpha=5.0, gamma=2.0)
        s1 = _sample(1, rows[1], alpha=5.0, gamma=-2.0)
        s2 = _sample(2, rows[2], alpha=5.0, gamma=2.0)
        pool.observe_update(s0, s1, 0.0, 0.0)
        pool.observe_update(s2, _sample(3, _row(0.0), alpha=5.0,
                                        gamma=0.0), 0.0, 0.0)
        gain, up, low = pool.best_pair(phase_eps=1e-3)
        assert (up.gidx, low.gidx) == (1, 0)

    def test_reuse_cap_constant_sane(self):
        assert MAX_CONSECUTIVE_REUSES >= 1
