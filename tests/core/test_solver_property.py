"""Property-based end-to-end solver agreement on random problems."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SVMParams, fit_parallel, solve_sequential
from repro.kernels import RBFKernel
from repro.sparse import CSRMatrix


def random_problem(seed, n, sep, noise):
    rng = np.random.default_rng(seed)
    half = n // 2
    Xd = np.vstack(
        [
            rng.normal(sep / 2, noise, (half, 2)),
            rng.normal(-sep / 2, noise, (n - half, 2)),
        ]
    )
    y = np.concatenate([np.ones(half), -np.ones(n - half)])
    perm = rng.permutation(n)
    return CSRMatrix.from_dense(Xd[perm]), y[perm]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**20),
    n=st.integers(24, 70),
    sep=st.floats(0.5, 4.0),
    noise=st.floats(0.5, 1.5),
    C=st.sampled_from([0.5, 2.0, 10.0]),
    heuristic=st.sampled_from(["multi2", "single2", "multi5pc", "single50pc"]),
    p=st.integers(1, 4),
)
def test_shrinking_solver_equals_reference(seed, n, sep, noise, C, heuristic, p):
    """Every heuristic returns an ε-optimal point of the same dual.

    On ill-conditioned (heavily overlapping) data the ε-optimal set is
    not a single point — near-duplicate samples can trade α mass — so
    the invariants are KKT optimality, matching dual objective and
    matching decision function, not raw α equality.
    """
    X, y = random_problem(seed, n, sep, noise)
    params = SVMParams(C=C, kernel=RBFKernel(0.7), eps=1e-3, max_iter=100_000)
    ref = solve_sequential(X, y, params)
    fr = fit_parallel(X, y, params, heuristic=heuristic, nprocs=p)
    # dual feasibility
    assert fr.alpha.min() >= -1e-12
    assert fr.alpha.max() <= C + 1e-9
    assert abs(float(fr.alpha @ y)) < 1e-7 * max(1.0, C)
    # eps-KKT on the full problem
    from ..conftest import check_kkt, dense_kernel_matrix

    check_kkt(X, y, fr.alpha, fr.model.beta, params.kernel, C, params.eps)
    # same dual objective (minimization form), up to the eps band
    K = dense_kernel_matrix(X, params.kernel)

    def dual(alpha):
        v = alpha * y
        return 0.5 * float(v @ K @ v) - float(alpha.sum())

    scale = max(1.0, abs(dual(ref.alpha)))
    assert abs(dual(fr.alpha) - dual(ref.alpha)) <= 0.02 * scale + 10 * params.eps * C
    # same decision function where it matters (bounded disagreement)
    f_ref = K @ (ref.alpha * y) - ref.beta
    f_fr = K @ (fr.alpha * y) - fr.model.beta
    assert np.abs(f_ref - f_fr).max() < 0.25


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**20), p=st.integers(2, 5))
def test_prediction_invariant_to_p(seed, p):
    X, y = random_problem(seed, 50, 2.0, 1.0)
    params = SVMParams(C=5.0, kernel=RBFKernel(0.7), eps=1e-3, max_iter=100_000)
    a = fit_parallel(X, y, params, heuristic="multi5pc", nprocs=1)
    b = fit_parallel(X, y, params, heuristic="multi5pc", nprocs=p)
    assert np.array_equal(a.alpha, b.alpha)
    assert np.array_equal(a.model.predict(X), b.model.predict(X))


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**20),
    slope=st.floats(-3.0, 3.0),
    intercept=st.floats(-2.0, 2.0),
    epsilon=st.floats(0.01, 0.2),
)
def test_svr_recovers_linear_functions(seed, slope, intercept, epsilon):
    """ε-SVR with a linear kernel recovers any linear target within the
    tube width (plus solver tolerance)."""
    from repro.core import fit_svr_parallel
    from repro.kernels import LinearKernel

    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, (50, 1))
    y = slope * X[:, 0] + intercept
    params = SVMParams(C=100.0, kernel=LinearKernel(), eps=1e-4,
                       max_iter=100_000)
    res = fit_svr_parallel(X, y, params, epsilon=epsilon, nprocs=2)
    pred = res.model.decision_function(X)
    assert np.abs(pred - y).max() <= epsilon + 0.05
    # dual structure holds
    assert abs(res.beta_coef.sum()) < 1e-7
    assert np.all(np.abs(res.beta_coef) <= params.C + 1e-9)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**20),
    w_pos=st.floats(0.5, 8.0),
    w_neg=st.floats(0.5, 8.0),
)
def test_weighted_solver_respects_boxes(seed, w_pos, w_neg):
    X, y = random_problem(seed, 40, 1.2, 1.2)
    params = SVMParams(C=2.0, kernel=RBFKernel(0.7), eps=1e-3,
                       max_iter=100_000, weight_pos=w_pos, weight_neg=w_neg)
    fr = fit_parallel(X, y, params, heuristic="multi5pc", nprocs=2)
    assert fr.alpha[y > 0].max(initial=0.0) <= 2.0 * w_pos + 1e-9
    assert fr.alpha[y < 0].max(initial=0.0) <= 2.0 * w_neg + 1e-9
    assert abs(float(fr.alpha @ y)) < 1e-7 * max(1.0, 2.0 * max(w_pos, w_neg))
