"""Gradient initialization and incremental updates vs direct Eq. (1)."""

import numpy as np
import pytest

from repro.core.gradient import apply_pair_update, full_gradient, init_gradient


def test_init_is_minus_y():
    y = np.array([1.0, -1.0, 1.0])
    assert np.array_equal(init_gradient(y), [-1.0, 1.0, -1.0])


def test_init_copies():
    y = np.ones(3)
    g = init_gradient(y)
    g[0] = 99
    assert y[0] == 1.0


def test_full_gradient_at_zero_alpha():
    K = np.eye(4)
    y = np.array([1.0, -1.0, 1.0, -1.0])
    assert np.array_equal(full_gradient(K, np.zeros(4), y), -y)


def test_incremental_matches_direct():
    """A sequence of pair updates equals the closed-form gradient."""
    rng = np.random.default_rng(0)
    n = 12
    A = rng.normal(size=(n, n))
    K = A @ A.T  # PSD
    y = rng.choice([-1.0, 1.0], n)
    alpha = np.zeros(n)
    gamma = init_gradient(y)
    for _ in range(30):
        i, j = rng.integers(0, n, 2)
        d_i, d_j = rng.normal(size=2) * 0.1
        apply_pair_update(
            gamma, K[i], K[j], float(y[i]), float(y[j]), d_i, d_j
        )
        alpha[i] += d_i
        alpha[j] += d_j
    assert np.allclose(gamma, full_gradient(K, alpha, y))


def test_zero_deltas_are_noops():
    gamma = np.array([1.0, 2.0])
    before = gamma.copy()
    apply_pair_update(gamma, np.ones(2), np.ones(2), 1.0, -1.0, 0.0, 0.0)
    assert np.array_equal(gamma, before)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        apply_pair_update(np.zeros(3), np.zeros(2), np.zeros(3), 1, 1, 1, 1)


def test_subset_update():
    """Updates restricted to an active subset touch only that subset."""
    rng = np.random.default_rng(1)
    K = np.eye(6)
    y = np.ones(6)
    gamma = init_gradient(y)
    idx = np.array([1, 3])
    sub = gamma[idx]
    apply_pair_update(sub, K[0][idx], K[2][idx], 1.0, 1.0, 0.5, 0.5)
    gamma[idx] = sub
    # rows 1 and 3 of K[0]/K[2] are zero (identity), so unchanged here;
    # everything outside idx must be untouched regardless
    assert np.array_equal(gamma, -np.ones(6))
