"""Solver-level equivalence across communicator suites and wire modes.

The acceptance bar for the hierarchical collectives and the typed-frame
reconstruction wire: identical bits out.  A fit on the hierarchical
suite — faulted or fault-free — must reproduce the flat fit's α, β and
iteration count exactly, across engines, heuristics and kernels; and
the framed reconstruction ring must reproduce the pickled ring's fit
while moving measurably fewer bytes.
"""

import numpy as np
import pytest

from repro.core import SVMParams, fit_parallel
from repro.core import reconstruction
from repro.core.reconstruction import _pack_contrib, _verify_chunk
from repro.core.state import LocalBlock
from repro.kernels import LinearKernel, RBFKernel
from repro.mpi import frames
from repro.perfmodel import MachineSpec
from repro.sparse.csr import CSRMatrix

from ..conftest import make_blobs

#: the multi-node geometry that makes the two-level plan non-trivial
#: at the smoke scales (p=4 → 2 nodes of 2)
MACHINE = MachineSpec.multinode(ranks_per_node=2)

#: fault schedule aimed at *framed* traffic (tag 3 is the ring): raw
#: typed envelopes are silently tamperable by design, frames carry the
#: CRC that makes corruption detectable and recoverable
FRAME_FAULTS = (
    "seed=13;retry:timeout=0.05,max=3;"
    "corrupt:tag=3,nth=1;drop:tag=4,nth=1;dup:nth=7"
)

PARAMS = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)


@pytest.fixture(scope="module")
def problem():
    # overlapping blobs: shrinking fires and reconstruction rings run
    return make_blobs(n=90, sep=1.2, noise=1.3, seed=3)


def _fit(problem, *, comm=None, p=4, engine=None, heuristic="multi5pc",
         params=PARAMS, faults=None):
    X, y = problem
    return fit_parallel(
        X, y, params, heuristic=heuristic, nprocs=p, machine=MACHINE,
        comm=comm, engine=engine, faults=faults,
        deadlock_timeout=20.0,
    )


def _assert_same_fit(a, b):
    assert np.array_equal(a.alpha, b.alpha)
    assert a.beta_up == b.beta_up
    assert a.beta_low == b.beta_low
    assert a.model.beta == b.model.beta
    assert a.iterations == b.iterations


class TestCommEquivalence:
    @pytest.mark.parametrize("engine", ["packed", "legacy"])
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_fit_bitwise_identical(self, problem, engine, p):
        flat = _fit(problem, comm="flat", p=p, engine=engine)
        hier = _fit(problem, comm="hierarchical", p=p, engine=engine)
        _assert_same_fit(hier, flat)

    @pytest.mark.parametrize("heuristic", ["single2", "multi50pc"])
    def test_heuristics_bitwise_identical(self, problem, heuristic):
        flat = _fit(problem, comm="flat", heuristic=heuristic)
        hier = _fit(problem, comm="hierarchical", heuristic=heuristic)
        _assert_same_fit(hier, flat)

    def test_linear_kernel_bitwise_identical(self, problem):
        params = SVMParams(
            C=1.0, kernel=LinearKernel(), eps=1e-3, max_iter=200_000
        )
        flat = _fit(problem, comm="flat", params=params)
        hier = _fit(problem, comm="hierarchical", params=params)
        _assert_same_fit(hier, flat)

    def test_hierarchical_moves_fewer_bytes(self, problem):
        flat = _fit(problem, comm="flat")
        hier = _fit(problem, comm="hierarchical")
        assert hier.spmd.total_messages < flat.spmd.total_messages
        assert hier.spmd.total_bytes_sent < flat.spmd.total_bytes_sent

    @pytest.mark.faults
    @pytest.mark.parametrize("comm", ["flat", "hierarchical"])
    def test_faulted_fit_bitwise_identical(self, problem, comm):
        ref = _fit(problem, comm=comm)
        faulted = _fit(problem, comm=comm, faults=FRAME_FAULTS)
        _assert_same_fit(faulted, ref)
        stats = faulted.spmd.fault_stats["stats"]
        assert stats["corrupted"] >= 1
        assert stats["dropped"] >= 1
        assert stats["retransmitted"] >= 2


class TestReconstructionWire:
    def test_frames_vs_pickle_bitwise_identical(self, problem, monkeypatch):
        ref = _fit(problem)
        monkeypatch.setattr(reconstruction, "DEFAULT_WIRE", "pickle")
        pickled = _fit(problem)
        _assert_same_fit(pickled, ref)

    def test_frames_move_fewer_bytes(self, problem, monkeypatch):
        """Satellite acceptance: typed reconstruction at p=4 moves
        measurably fewer bytes than the pickled ring (exact counts)."""
        framed = _fit(problem)
        recon_framed = sum(e.bytes_sent for e in framed.trace.recon_events)
        monkeypatch.setattr(reconstruction, "DEFAULT_WIRE", "pickle")
        pickled = _fit(problem)
        recon_pickled = sum(e.bytes_sent for e in pickled.trace.recon_events)
        assert framed.trace.n_reconstructions() > 0
        assert recon_framed < recon_pickled
        assert framed.spmd.total_bytes_sent < pickled.spmd.total_bytes_sent

    def test_zero_support_chunk_frames_roundtrip(self):
        # a rank with no α>0 rows ships an empty-CSR descriptor; the
        # frame must survive the wire and verify
        X = CSRMatrix.from_dense(np.zeros((3, 4)))
        blk = LocalBlock(X=X, y=np.ones(3), global_start=0)
        chunk = _pack_contrib(blk)
        _verify_chunk(chunk, source=0)  # raises on failure
        blob = frames.encode(chunk)
        assert blob is not None
        out = frames.decode(blob)
        _verify_chunk(out, source=0)
        rebuilt = CSRMatrix.from_bytes(out[0])
        assert rebuilt.shape[0] == 0
        assert out[1].size == 0 and out[2].size == 0
