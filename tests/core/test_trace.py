"""SolveTrace: merging, analysis helpers, persistence."""

import numpy as np
import pytest

from repro.core import SVMParams, fit_parallel
from repro.core.trace import RankTrace, ReconEvent, SolveTrace
from repro.kernels import RBFKernel

from ..conftest import make_blobs


def make_rank_trace(rank, active, gaps=(), shrinks=(), recons=()):
    t = RankTrace(rank=rank, n_local=max(active, default=0))
    t.active_counts = list(active)
    t.gap_history = list(gaps)
    for it, n in shrinks:
        t.shrink_iters.append(it)
        t.shrunk_per_event.append(n)
    for ev in recons:
        t.recon_events.append(ev)
    return t


class TestMerge:
    def test_active_counts_summed(self):
        a = make_rank_trace(0, [10, 8, 8])
        b = make_rank_trace(1, [10, 10, 9])
        tr = SolveTrace.merge([a, b], n_samples=20, n_features=2, avg_nnz=2.0)
        assert tr.active_counts.tolist() == [20, 18, 17]
        assert tr.iterations == 3
        assert tr.nprocs == 2

    def test_shrink_events_aggregated(self):
        a = make_rank_trace(0, [5], shrinks=[(3, 2)])
        b = make_rank_trace(1, [5], shrinks=[(3, 1), (7, 4)])
        tr = SolveTrace.merge([a, b], 10, 2, 2.0)
        assert tr.shrink_iters == [3, 7]
        assert tr.shrunk_per_event == [3, 4]
        assert tr.total_shrunk() == 7

    def test_recon_rounds_deduplicated_by_iteration(self):
        ev = lambda it: ReconEvent(it, 1, 1, 10, 5)
        a = make_rank_trace(0, [5], recons=[ev(4), ev(9)])
        b = make_rank_trace(1, [5], recons=[ev(4)])
        tr = SolveTrace.merge([a, b], 10, 2, 2.0)
        assert tr.n_reconstructions() == 2
        assert tr.recon_kernel_evals() == 15
        assert tr.recon_bytes() == 30

    def test_gap_history_from_rank0(self):
        a = make_rank_trace(0, [5, 5], gaps=[2.0, 1.0])
        b = make_rank_trace(1, [5, 5])
        tr = SolveTrace.merge([a, b], 10, 2, 2.0)
        assert tr.gap_history.tolist() == [2.0, 1.0]


class TestAnalysis:
    def test_active_fraction(self):
        tr = SolveTrace.merge([make_rank_trace(0, [10, 5])], 10, 2, 2.0)
        assert tr.active_fraction().tolist() == [1.0, 0.5]
        assert tr.fraction_of_iters_below(0.6) == 0.5
        assert tr.fraction_of_iters_below(1.0) == 1.0

    def test_empty_trace(self):
        tr = SolveTrace.merge([make_rank_trace(0, [])], 0, 2, 2.0)
        assert tr.fraction_of_iters_below(0.5) == 0.0
        assert tr.active_fraction().size == 0


class TestPersistence:
    def test_roundtrip_from_real_solve(self, tmp_path):
        X, y = make_blobs(n=60, sep=1.5, noise=1.2, seed=17)
        fr = fit_parallel(
            X, y, SVMParams(C=10.0, kernel=RBFKernel(0.5)),
            heuristic="multi2", nprocs=2,
        )
        path = tmp_path / "trace.json"
        fr.trace.save(path)
        loaded = SolveTrace.load(path)
        assert loaded.iterations == fr.trace.iterations
        assert np.array_equal(loaded.active_counts, fr.trace.active_counts)
        assert np.array_equal(loaded.gap_history, fr.trace.gap_history)
        assert loaded.total_shrunk() == fr.trace.total_shrunk()
        assert loaded.n_reconstructions() == fr.trace.n_reconstructions()

    def test_loaded_trace_projects_identically(self, tmp_path):
        from repro.perfmodel import MachineSpec, project

        X, y = make_blobs(n=60, sep=1.5, noise=1.2, seed=18)
        fr = fit_parallel(
            X, y, SVMParams(C=10.0, kernel=RBFKernel(0.5)), nprocs=1
        )
        path = tmp_path / "t.json"
        fr.trace.save(path)
        loaded = SolveTrace.load(path)
        m = MachineSpec.cascade()
        assert project(loaded, m, 64).total == project(fr.trace, m, 64).total


class TestGapHistory:
    def test_gap_monotone_trend_and_convergence(self):
        X, y = make_blobs(n=80, sep=1.6, noise=1.2, seed=19)
        params = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3)
        fr = fit_parallel(X, y, params, heuristic="original", nprocs=2)
        gaps = fr.trace.gap_history
        assert gaps.shape == (fr.iterations,)
        assert gaps[0] == pytest.approx(2.0)  # initial ±1 gradient gap
        # final recorded gap is near the stopping band
        assert gaps[-1] >= 2 * params.eps  # last *violating* iteration
        assert gaps[-1] < 0.5
        # broadly decreasing: last tenth far below the first tenth
        k = max(1, len(gaps) // 10)
        assert gaps[-k:].mean() < 0.2 * gaps[:k].mean()