"""ε-SVR on the distributed shrinking engine."""

import numpy as np
import pytest

from repro.core import SVR, NotFittedError, SVMParams, fit_svr_parallel
from repro.kernels import LinearKernel, RBFKernel
from repro.sparse import CSRMatrix


def sine_problem(n=120, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(-3, 3, n))[:, None]
    y = np.sin(X[:, 0]) + rng.normal(0, noise, n)
    return X, y


PARAMS = SVMParams(C=10.0, kernel=RBFKernel(1.0), eps=1e-3, max_iter=200_000)


class TestFitSVRParallel:
    def test_sine_fit_quality(self):
        X, y = sine_problem()
        res = fit_svr_parallel(X, y, PARAMS, epsilon=0.1, nprocs=2)
        pred = res.model.decision_function(X)
        # predictions within tube + noise of the true function
        assert np.abs(pred - np.sin(X[:, 0])).max() < 0.25

    def test_deterministic_across_p(self):
        X, y = sine_problem(seed=1)
        a = fit_svr_parallel(X, y, PARAMS, nprocs=1)
        b = fit_svr_parallel(X, y, PARAMS, nprocs=5)
        assert np.array_equal(a.beta_coef, b.beta_coef)
        assert a.iterations == b.iterations

    def test_shrinking_matches_original(self):
        X, y = sine_problem(seed=2)
        shr = fit_svr_parallel(X, y, PARAMS, heuristic="multi5pc", nprocs=2)
        orig = fit_svr_parallel(X, y, PARAMS, heuristic="original", nprocs=2)
        assert np.allclose(shr.beta_coef, orig.beta_coef, atol=0.05 * PARAMS.C)
        assert shr.trace.total_shrunk() > 0  # shrinking actually engaged

    def test_equality_constraint(self):
        X, y = sine_problem(seed=3)
        res = fit_svr_parallel(X, y, PARAMS, nprocs=2)
        assert abs(res.beta_coef.sum()) < 1e-8

    def test_coefficients_bounded(self):
        X, y = sine_problem(seed=4)
        res = fit_svr_parallel(X, y, PARAMS, nprocs=1)
        assert np.all(np.abs(res.beta_coef) <= PARAMS.C + 1e-9)

    def test_kkt_tube_condition(self):
        """Samples strictly inside the ε-tube have β = 0."""
        X, y = sine_problem(seed=5)
        eps_tube = 0.15
        res = fit_svr_parallel(X, y, PARAMS, epsilon=eps_tube, nprocs=1)
        pred = res.model.decision_function(X)
        resid = np.abs(pred - y)
        inside = resid < eps_tube - 5e-3
        assert np.all(np.abs(res.beta_coef[inside]) < 1e-9)

    def test_validation(self):
        X, y = sine_problem()
        with pytest.raises(ValueError):
            fit_svr_parallel(X, y, PARAMS, epsilon=-0.1)
        with pytest.raises(ValueError):
            fit_svr_parallel(X, y[:-1], PARAMS)
        with pytest.raises(ValueError):
            fit_svr_parallel(X, y, PARAMS, nprocs=0)
        weighted = SVMParams(C=1.0, kernel=RBFKernel(1.0), weight_pos=2.0)
        with pytest.raises(ValueError):
            fit_svr_parallel(X, y, weighted)


class TestSVRFacade:
    def test_linear_recovery(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(-2, 2, (80, 1))
        y = 2.0 * X[:, 0] + 1.0
        svr = SVR(C=100.0, kernel=LinearKernel(), epsilon=0.01, eps=1e-4)
        svr.fit(X, y)
        assert svr.score(X, y) > 0.999
        # recover slope/intercept through predictions
        p0 = svr.predict(np.array([[0.0]]))[0]
        p1 = svr.predict(np.array([[1.0]]))[0]
        assert p0 == pytest.approx(1.0, abs=0.05)
        assert p1 - p0 == pytest.approx(2.0, abs=0.05)

    def test_r2_score_range(self):
        X, y = sine_problem(seed=7)
        svr = SVR(C=10.0, gamma=1.0, epsilon=0.1, nprocs=2).fit(X, y)
        assert 0.9 < svr.score(X, y) <= 1.0

    def test_larger_epsilon_fewer_svs(self):
        X, y = sine_problem(seed=8)
        tight = SVR(C=10.0, gamma=1.0, epsilon=0.02).fit(X, y)
        loose = SVR(C=10.0, gamma=1.0, epsilon=0.4).fit(X, y)
        assert loose.n_support_ < tight.n_support_

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            SVR().predict(np.ones((1, 1)))

    def test_sigma_sq(self):
        X, y = sine_problem(seed=9)
        svr = SVR(C=10.0, sigma_sq=1.0, epsilon=0.1).fit(X, y)
        assert svr.model_.kernel.gamma == pytest.approx(1.0)
        with pytest.raises(ValueError):
            SVR(gamma=1.0, sigma_sq=1.0)

    def test_sparse_input(self):
        X, y = sine_problem(seed=10)
        Xs = CSRMatrix.from_dense(X)
        svr = SVR(C=10.0, gamma=1.0, epsilon=0.1).fit(Xs, y)
        assert svr.score(Xs, y) > 0.9

    def test_constant_target(self):
        X = np.linspace(-1, 1, 30)[:, None]
        y = np.full(30, 3.0)
        svr = SVR(C=10.0, gamma=1.0, epsilon=0.05).fit(X, y)
        assert np.abs(svr.predict(X) - 3.0).max() < 0.1
        assert svr.score(X, y) in (0.0, 1.0)  # degenerate R² definition
