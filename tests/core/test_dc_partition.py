"""Property tests for the DC partitioner (:func:`partition_samples`).

The partitioner's contract (exactly-once assignment, per-class label
balance, seed-determinism) is what makes the sub-problems well-posed
and the outer loop reproducible at any process count, so it is tested
as properties over generated problems rather than a few examples.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from ..conftest import make_blobs
from repro.core import partition_samples
from repro.kernels import LinearKernel, RBFKernel

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def problems(draw):
    n = draw(st.integers(min_value=2, max_value=90))
    k = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    sep = draw(st.floats(min_value=0.0, max_value=4.0))
    data_seed = draw(st.integers(min_value=0, max_value=1000))
    kernel = draw(st.sampled_from([RBFKernel(0.5), LinearKernel()]))
    X, y = make_blobs(n=n, sep=sep, noise=1.0, seed=data_seed)
    # make_blobs is two-class; sometimes collapse to a single class to
    # exercise the degenerate one-class path
    if draw(st.booleans()) and n >= 4:
        y = np.ones(n)
    return X, y, k, kernel, seed


@given(problems())
@settings(**_SETTINGS)
def test_every_sample_assigned_exactly_once(problem):
    X, y, k, kernel, seed = problem
    assign = partition_samples(X, y, k, kernel, seed=seed)
    n = X.shape[0]
    assert assign.shape == (n,)
    assert np.issubdtype(assign.dtype, np.integer)
    k_eff = min(k, n)
    assert np.all(assign >= 0) and np.all(assign < k_eff)
    # "exactly once" is the shape contract: one entry per sample, and
    # the per-cluster counts add back up to n
    counts = np.bincount(assign, minlength=k_eff)
    assert counts.sum() == n


@given(problems())
@settings(**_SETTINGS)
def test_per_class_label_balance(problem):
    """Cluster j holds between floor(n_c/k) and ceil(n_c/k) samples of
    every class c — no sub-problem is starved of either label."""
    X, y, k, kernel, seed = problem
    assign = partition_samples(X, y, k, kernel, seed=seed)
    k_eff = min(k, X.shape[0])
    for cls in np.unique(y):
        per_cluster = np.bincount(assign[y == cls], minlength=k_eff)
        n_c = int((y == cls).sum())
        assert per_cluster.min() >= n_c // k_eff
        assert per_cluster.max() <= -(-n_c // k_eff)


@given(problems())
@settings(**_SETTINGS)
def test_identical_seed_identical_partition(problem):
    """The assignment is a pure function of (X, y, k, kernel, seed):
    repeated calls are bit-identical, which is what makes the DC path
    reproducible across process counts and comm suites."""
    X, y, k, kernel, seed = problem
    a = partition_samples(X, y, k, kernel, seed=seed)
    b = partition_samples(X, y, k, kernel, seed=seed)
    np.testing.assert_array_equal(a, b)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_different_seeds_rotate_the_partition(seed):
    """Different seeds should usually give different partitions — the
    outer loop relies on rotation for coverage.  (Not guaranteed per
    pair, so assert over a pair of well-separated seeds on a problem
    large enough that collisions are vanishingly unlikely.)"""
    X, y = make_blobs(n=80, sep=1.0, noise=1.2, seed=5)
    a = partition_samples(X, y, 4, RBFKernel(0.5), seed=seed)
    b = partition_samples(X, y, 4, RBFKernel(0.5), seed=seed + 104729)
    # identical is possible in principle; flag only the systematic case
    if np.array_equal(a, b):  # pragma: no cover - astronomically rare
        c = partition_samples(X, y, 4, RBFKernel(0.5), seed=seed + 224737)
        assert not np.array_equal(a, c)
