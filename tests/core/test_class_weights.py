"""Per-class weighted C (libsvm -w style)."""

import numpy as np
import pytest

from repro.core import SVC, SVMParams, fit_parallel, solve_sequential
from repro.kernels import RBFKernel
from repro.sparse import CSRMatrix

from ..conftest import check_kkt, make_blobs


def imbalanced(seed=0, n_pos=15, n_neg=120):
    rng = np.random.default_rng(seed)
    Xd = np.vstack(
        [rng.normal(1.2, 1.0, (n_pos, 3)), rng.normal(-1.2, 1.0, (n_neg, 3))]
    )
    y = np.concatenate([np.ones(n_pos), -np.ones(n_neg)])
    return CSRMatrix.from_dense(Xd), y


def test_params_validation():
    with pytest.raises(ValueError):
        SVMParams(weight_pos=0.0)
    with pytest.raises(ValueError):
        SVMParams(weight_neg=-1.0)
    assert not SVMParams().weighted
    assert SVMParams(weight_pos=2.0).weighted


def test_box_for_scalar_and_array():
    p = SVMParams(C=4.0, weight_pos=2.0, weight_neg=0.5)
    assert p.box_for(1.0) == 8.0
    assert p.box_for(-1.0) == 2.0
    out = p.box_for(np.array([1.0, -1.0, 1.0]))
    assert np.array_equal(out, [8.0, 2.0, 8.0])


def test_weighted_alpha_respects_per_class_bounds():
    X, y = imbalanced()
    params = SVMParams(
        C=1.0, kernel=RBFKernel(0.5), weight_pos=5.0, weight_neg=1.0
    )
    res = solve_sequential(X, y, params)
    assert res.alpha[y > 0].max() <= 5.0 + 1e-9
    assert res.alpha[y < 0].max() <= 1.0 + 1e-9
    # positive class actually uses its enlarged box
    assert res.alpha[y > 0].max() > 1.0 + 1e-9


def test_weighting_improves_minority_recall():
    X, y = imbalanced(seed=3)
    kern = RBFKernel(0.5)
    plain = solve_sequential(X, y, SVMParams(C=0.3, kernel=kern))
    weighted = solve_sequential(
        X, y, SVMParams(C=0.3, kernel=kern, weight_pos=8.0)
    )
    from ..conftest import dense_kernel_matrix

    K = dense_kernel_matrix(X, kern)

    def recall(res):
        f = K @ (res.alpha * y) - res.beta
        return np.mean(f[y > 0] > 0)

    assert recall(weighted) >= recall(plain)


def test_parallel_matches_sequential_weighted():
    X, y = imbalanced(seed=5)
    params = SVMParams(
        C=2.0, kernel=RBFKernel(0.5), weight_pos=3.0, weight_neg=0.7
    )
    ref = solve_sequential(X, y, params)
    for heur in ("original", "multi5pc"):
        for p in (1, 3):
            fr = fit_parallel(X, y, params, heuristic=heur, nprocs=p)
            assert np.allclose(fr.alpha, ref.alpha, atol=0.05 * params.C)


def test_weighted_equality_constraint_holds():
    X, y = imbalanced(seed=7)
    params = SVMParams(
        C=1.0, kernel=RBFKernel(0.5), weight_pos=4.0, weight_neg=0.5
    )
    fr = fit_parallel(X, y, params, heuristic="multi2", nprocs=2)
    assert abs(float(fr.alpha @ y)) < 1e-8


def test_unweighted_path_unchanged(blobs, rbf_params):
    """weight 1.0/1.0 must reproduce the scalar-C behaviour bitwise."""
    X, y = blobs
    a = solve_sequential(X, y, rbf_params)
    explicit = SVMParams(
        C=rbf_params.C, kernel=rbf_params.kernel, eps=rbf_params.eps,
        max_iter=rbf_params.max_iter, weight_pos=1.0, weight_neg=1.0,
    )
    b = solve_sequential(X, y, explicit)
    assert np.array_equal(a.alpha, b.alpha)


class TestSVCClassWeight:
    def test_dict_weights(self):
        X, y = imbalanced(seed=9)
        labels = np.where(y > 0, "rare", "common")
        clf = SVC(
            C=0.3, gamma=0.5, class_weight={"rare": 8.0, "common": 1.0}
        ).fit(X, labels)
        plain = SVC(C=0.3, gamma=0.5).fit(X, labels)
        rare = labels == "rare"
        assert np.mean(clf.predict(X)[rare] == "rare") >= np.mean(
            plain.predict(X)[rare] == "rare"
        )

    def test_balanced(self):
        X, y = imbalanced(seed=11)
        clf = SVC(C=0.3, gamma=0.5, class_weight="balanced").fit(X, y)
        assert clf.score(X, y) > 0.7
        # the balanced weights were actually applied
        wn = clf.fit_result_.stats
        assert clf.fit_result_ is not None

    def test_missing_label_in_dict(self):
        X, y = imbalanced()
        with pytest.raises(ValueError):
            SVC(class_weight={1.0: 2.0}).fit(X, y)

    def test_bad_type(self):
        X, y = imbalanced()
        with pytest.raises(ValueError):
            SVC(class_weight="bogus").fit(X, y)

    def test_get_params_roundtrip(self):
        clf = SVC(class_weight="balanced")
        assert clf.get_params()["class_weight"] == "balanced"
