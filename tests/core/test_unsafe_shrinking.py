"""The CA-SVM-style permanent-elimination mode (reconstruction='never').

The paper rejects this design because it can lose accuracy; the
library provides it for ablations.  These tests pin down both halves:
it is cheaper, and it is *allowed* to be wrong (while staying a valid
approximate solution)."""

import numpy as np
import pytest

from repro.core import (
    HEURISTICS,
    SVMParams,
    fit_parallel,
    solve_sequential,
    unsafe_variant,
)
from repro.core.shrinking import Heuristic
from repro.kernels import RBFKernel

from ..conftest import make_blobs

PARAMS = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)


@pytest.fixture(scope="module")
def problem():
    # noisy enough that shrinking actually fires mid-run
    return make_blobs(n=200, d=5, sep=1.2, noise=1.3, seed=23)


def mid_heuristic(recon):
    return Heuristic("mid", "random", 100, recon, "average")


def test_unsafe_variant_constructor():
    h = unsafe_variant("multi5pc")
    assert h.reconstruction == "never"
    assert h.name == "unsafe-multi5pc"
    assert h.threshold_kind == "numsamples"
    with pytest.raises(ValueError):
        unsafe_variant("original")


def test_unsafe_never_reconstructs(problem):
    X, y = problem
    fr = fit_parallel(X, y, PARAMS, heuristic=mid_heuristic("never"), nprocs=2)
    assert fr.trace.total_shrunk() > 0
    assert fr.trace.n_reconstructions() == 0


def test_unsafe_does_less_work_than_safe(problem):
    X, y = problem
    unsafe = fit_parallel(X, y, PARAMS, heuristic=mid_heuristic("never"), nprocs=1)
    safe = fit_parallel(X, y, PARAMS, heuristic=mid_heuristic("multi"), nprocs=1)
    assert unsafe.trace.kernel_evals < safe.trace.kernel_evals
    assert unsafe.iterations <= safe.iterations


def test_unsafe_still_produces_reasonable_classifier(problem):
    X, y = problem
    fr = fit_parallel(X, y, PARAMS, heuristic=mid_heuristic("never"), nprocs=2)
    assert fr.model.accuracy(X, y) > 0.75
    # dual feasibility still holds (it is a feasible, just suboptimal, point)
    assert fr.alpha.min() >= -1e-12
    assert fr.alpha.max() <= PARAMS.C + 1e-9
    assert abs(float(fr.alpha @ y)) < 1e-7


def test_unsafe_may_deviate_from_optimum(problem):
    """The true optimum has violators among the permanently-eliminated
    samples that the unsafe mode never revisits."""
    X, y = problem
    ref = solve_sequential(X, y, PARAMS)
    fr = fit_parallel(X, y, PARAMS, heuristic=mid_heuristic("never"), nprocs=1)
    # recompute the exact gradient of the unsafe solution and measure
    # its true KKT gap: it may exceed the 2ε the safe solver certifies
    from repro.core.sets import low_mask, up_mask

    from ..conftest import dense_kernel_matrix

    K = dense_kernel_matrix(X, PARAMS.kernel)
    gamma = K @ (fr.alpha * y) - y
    up = up_mask(fr.alpha, y, PARAMS.C)
    low = low_mask(fr.alpha, y, PARAMS.C)
    true_gap = gamma[low].max() - gamma[up].min()
    safe_gap = ref.beta_low - ref.beta_up
    # the unsafe run *reports* convergence on its active subset, but the
    # full-problem gap is at least what the safe solver achieved
    assert true_gap >= safe_gap - 1e-9


def test_safe_modes_unaffected(problem):
    """Regression guard: adding 'never' must not change Table II modes."""
    X, y = problem
    ref = solve_sequential(X, y, PARAMS)
    for name in ("single5pc", "multi5pc"):
        fr = fit_parallel(X, y, PARAMS, heuristic=name, nprocs=2)
        assert np.allclose(fr.alpha, ref.alpha, atol=0.05 * PARAMS.C)
