"""Warm-starting the distributed solver from a previous dual solution."""

import numpy as np
import pytest

from repro.core import SVMParams, fit_parallel, solve_sequential
from repro.kernels import RBFKernel

from ..conftest import check_kkt, make_blobs

PARAMS = SVMParams(C=10.0, kernel=RBFKernel(0.5), eps=1e-3, max_iter=200_000)


@pytest.fixture(scope="module")
def problem():
    return make_blobs(n=130, sep=1.7, noise=1.2, seed=41)


def test_warm_start_from_solution_converges_fast(problem):
    X, y = problem
    cold = fit_parallel(X, y, PARAMS, heuristic="original", nprocs=2)
    warm = fit_parallel(
        X, y, PARAMS, heuristic="original", nprocs=2,
        warm_start_alpha=cold.alpha,
    )
    # restarting at the optimum needs (almost) no iterations
    assert warm.iterations <= max(3, cold.iterations // 20)
    assert np.allclose(warm.alpha, cold.alpha, atol=1e-9)


def test_warm_start_reaches_same_solution(problem):
    X, y = problem
    ref = solve_sequential(X, y, PARAMS)
    # seed with a roughly feasible half-solution
    seed = ref.alpha * 0.5
    warm = fit_parallel(
        X, y, PARAMS, heuristic="multi5pc", nprocs=3, warm_start_alpha=seed
    )
    check_kkt(X, y, warm.alpha, warm.model.beta, PARAMS.kernel,
              PARAMS.C, PARAMS.eps)
    assert abs(warm.model.beta - ref.beta) < 0.1


def test_warm_start_across_C_change(problem):
    """The regularization-path use case: refit after a small C change."""
    X, y = problem
    first = fit_parallel(X, y, PARAMS, nprocs=2)
    params2 = SVMParams(C=12.0, kernel=RBFKernel(0.5), eps=1e-3,
                        max_iter=200_000)
    cold = fit_parallel(X, y, params2, nprocs=2)
    warm = fit_parallel(
        X, y, params2, nprocs=2, warm_start_alpha=first.alpha
    )
    assert warm.iterations < cold.iterations
    check_kkt(X, y, warm.alpha, warm.model.beta, params2.kernel,
              params2.C, params2.eps)


def test_warm_start_p_consistency(problem):
    X, y = problem
    seed_fit = fit_parallel(X, y, PARAMS, nprocs=1)
    seed = seed_fit.alpha * 0.7
    # project back onto the equality constraint
    seed -= y * (seed @ y) / len(y)
    seed = np.clip(seed, 0.0, PARAMS.C)
    seed -= y * (seed @ y) / len(y)
    seed = np.clip(seed, 0.0, PARAMS.C)
    if abs(seed @ y) > 1e-8:
        pytest.skip("could not project the seed onto the constraint")
    a = fit_parallel(X, y, PARAMS, nprocs=1, warm_start_alpha=seed)
    b = fit_parallel(X, y, PARAMS, nprocs=4, warm_start_alpha=seed)
    assert np.array_equal(a.alpha, b.alpha)


def test_warm_start_validation(problem):
    X, y = problem
    n = X.shape[0]
    with pytest.raises(ValueError):
        fit_parallel(X, y, PARAMS, warm_start_alpha=np.zeros(n - 1))
    with pytest.raises(ValueError):
        fit_parallel(X, y, PARAMS, warm_start_alpha=np.full(n, -1.0))
    with pytest.raises(ValueError):
        fit_parallel(X, y, PARAMS, warm_start_alpha=np.full(n, 100.0))
    bad = np.zeros(n)
    bad[0] = 1.0  # sum(alpha*y) != 0
    with pytest.raises(ValueError):
        fit_parallel(X, y, PARAMS, warm_start_alpha=bad)


def test_zero_seed_equals_cold_start(problem):
    X, y = problem
    cold = fit_parallel(X, y, PARAMS, heuristic="original", nprocs=2)
    warm = fit_parallel(
        X, y, PARAMS, heuristic="original", nprocs=2,
        warm_start_alpha=np.zeros(X.shape[0]),
    )
    assert np.array_equal(cold.alpha, warm.alpha)
    assert warm.iterations == cold.iterations